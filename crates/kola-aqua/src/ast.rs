//! The AQUA abstract syntax: a *variable-based* object algebra.
//!
//! AQUA [25] is the paper's §2 case study for why variables make rules hard:
//! anonymous functions are λ-expressions, so a rule that wants to compose or
//! decompose them must manipulate open terms — which demands renaming,
//! substitution and free-variable analysis (the "additional machinery" of
//! §2.1–2.3). This crate implements exactly the subset the paper's figures
//! use: `app`, `sel`, `flatten`, `join`, λ-functions, path expressions,
//! pairs, comparisons and conditionals.

use kola::value::{Sym, Value};
use std::sync::Arc;

/// Comparison operators usable in predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `<=`
    Leq,
    /// `>`
    Gt,
    /// `>=`
    Geq,
    /// `in` (set membership)
    In,
}

/// A one-argument λ-abstraction: `λx. body`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Lambda {
    /// The bound variable.
    pub var: Sym,
    /// The body (may reference `var` and any enclosing variables).
    pub body: Box<Expr>,
}

impl Lambda {
    /// Construct a lambda.
    pub fn new(var: &str, body: Expr) -> Lambda {
        Lambda {
            var: Arc::from(var),
            body: Box::new(body),
        }
    }
}

/// A two-argument λ-abstraction for `join`: `λ(x, y). body`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Lambda2 {
    /// First bound variable.
    pub var1: Sym,
    /// Second bound variable.
    pub var2: Sym,
    /// The body.
    pub body: Box<Expr>,
}

impl Lambda2 {
    /// Construct a two-variable lambda.
    pub fn new(var1: &str, var2: &str, body: Expr) -> Lambda2 {
        Lambda2 {
            var1: Arc::from(var1),
            var2: Arc::from(var2),
            body: Box::new(body),
        }
    }
}

/// An AQUA expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A variable reference.
    Var(Sym),
    /// A literal value.
    Lit(Value),
    /// A named extent (`P`, `V`).
    Extent(Sym),
    /// Attribute access `e.attr`.
    Attr(Box<Expr>, Sym),
    /// Pair construction `[e1, e2]`.
    Pair(Box<Expr>, Box<Expr>),
    /// Comparison `e1 op e2`.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// `app(λx. e)(S)` — map `e` over the set `S`.
    App(Lambda, Box<Expr>),
    /// `sel(λx. p)(S)` — select elements of `S` satisfying `p`.
    Sel(Lambda, Box<Expr>),
    /// `flatten(S)` — union the members of a set of sets.
    Flatten(Box<Expr>),
    /// `join(λ(x,y). p, λ(x,y). f)([A, B])`.
    Join {
        /// The join predicate.
        pred: Lambda2,
        /// The pairing function.
        func: Lambda2,
        /// Left input set.
        left: Box<Expr>,
        /// Right input set.
        right: Box<Expr>,
    },
    /// `if p then e1 else e2` — produced by the code-motion transformation
    /// of §2.2.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Variable reference.
    pub fn var(name: &str) -> Expr {
        Expr::Var(Arc::from(name))
    }

    /// Named extent.
    pub fn extent(name: &str) -> Expr {
        Expr::Extent(Arc::from(name))
    }

    /// Attribute access.
    pub fn attr(self, name: &str) -> Expr {
        Expr::Attr(Box::new(self), Arc::from(name))
    }

    /// Integer literal.
    pub fn int(i: i64) -> Expr {
        Expr::Lit(Value::Int(i))
    }

    /// Comparison.
    pub fn cmp(op: CmpOp, a: Expr, b: Expr) -> Expr {
        Expr::Cmp(op, Box::new(a), Box::new(b))
    }

    /// Pair.
    pub fn pair(a: Expr, b: Expr) -> Expr {
        Expr::Pair(Box::new(a), Box::new(b))
    }

    /// `app`.
    pub fn app(f: Lambda, s: Expr) -> Expr {
        Expr::App(f, Box::new(s))
    }

    /// `sel`.
    pub fn sel(p: Lambda, s: Expr) -> Expr {
        Expr::Sel(p, Box::new(s))
    }

    /// Node count (size accounting for the §4.2 experiment).
    pub fn size(&self) -> usize {
        match self {
            Expr::Var(_) | Expr::Lit(_) | Expr::Extent(_) => 1,
            Expr::Attr(e, _) | Expr::Not(e) | Expr::Flatten(e) => 1 + e.size(),
            Expr::Pair(a, b) | Expr::Cmp(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                1 + a.size() + b.size()
            }
            Expr::App(l, s) | Expr::Sel(l, s) => 1 + l.body.size() + s.size(),
            Expr::Join {
                pred,
                func,
                left,
                right,
            } => 1 + pred.body.size() + func.body.size() + left.size() + right.size(),
            Expr::If(p, a, b) => 1 + p.size() + a.size() + b.size(),
        }
    }

    /// Maximum number of λ-binders enclosing any point of the expression —
    /// the paper's `m`, the "degree of nesting" (§4.2).
    pub fn max_env_depth(&self) -> usize {
        fn go(e: &Expr, depth: usize, max: &mut usize) {
            *max = (*max).max(depth);
            match e {
                Expr::Var(_) | Expr::Lit(_) | Expr::Extent(_) => {}
                Expr::Attr(e, _) | Expr::Not(e) | Expr::Flatten(e) => go(e, depth, max),
                Expr::Pair(a, b) | Expr::Cmp(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                    go(a, depth, max);
                    go(b, depth, max);
                }
                Expr::App(l, s) | Expr::Sel(l, s) => {
                    go(&l.body, depth + 1, max);
                    go(s, depth, max);
                }
                Expr::Join {
                    pred,
                    func,
                    left,
                    right,
                } => {
                    go(&pred.body, depth + 2, max);
                    go(&func.body, depth + 2, max);
                    go(left, depth, max);
                    go(right, depth, max);
                }
                Expr::If(p, a, b) => {
                    go(p, depth, max);
                    go(a, depth, max);
                    go(b, depth, max);
                }
            }
        }
        let mut max = 0;
        go(self, 0, &mut max);
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        // app(λp. p.addr.city)(P)
        let q = Expr::app(
            Lambda::new("p", Expr::var("p").attr("addr").attr("city")),
            Expr::extent("P"),
        );
        match &q {
            Expr::App(l, s) => {
                assert_eq!(&*l.var, "p");
                assert_eq!(**s, Expr::extent("P"));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn size_counts() {
        let e = Expr::cmp(CmpOp::Gt, Expr::var("x").attr("age"), Expr::int(25));
        // cmp + attr + var + lit
        assert_eq!(e.size(), 4);
    }

    #[test]
    fn env_depth() {
        // A3: app(λp. [p, sel(λc. c.age > 25)(p.child)])(P): depth 2.
        let inner = Expr::sel(
            Lambda::new(
                "c",
                Expr::cmp(CmpOp::Gt, Expr::var("c").attr("age"), Expr::int(25)),
            ),
            Expr::var("p").attr("child"),
        );
        let a3 = Expr::app(
            Lambda::new("p", Expr::pair(Expr::var("p"), inner)),
            Expr::extent("P"),
        );
        assert_eq!(a3.max_env_depth(), 2);
        assert_eq!(Expr::extent("P").max_env_depth(), 0);
    }
}
