//! Pretty printing of AQUA expressions in the paper's notation.

use crate::ast::{CmpOp, Expr};
use std::fmt;

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Lt => "<",
            CmpOp::Leq => "<=",
            CmpOp::Gt => ">",
            CmpOp::Geq => ">=",
            CmpOp::In => "in",
        };
        write!(f, "{s}")
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Extent(s) => write!(f, "{s}"),
            Expr::Attr(e, a) => write!(f, "{e}.{a}"),
            Expr::Pair(a, b) => write!(f, "[{a}, {b}]"),
            Expr::Cmp(op, a, b) => write!(f, "{a} {op} {b}"),
            Expr::And(a, b) => write!(f, "({a} and {b})"),
            Expr::Or(a, b) => write!(f, "({a} or {b})"),
            Expr::Not(a) => write!(f, "(not {a})"),
            Expr::App(l, s) => write!(f, "app(\\{}. {})({s})", l.var, l.body),
            Expr::Sel(l, s) => write!(f, "sel(\\{}. {})({s})", l.var, l.body),
            Expr::Flatten(s) => write!(f, "flatten({s})"),
            Expr::Join {
                pred,
                func,
                left,
                right,
            } => write!(
                f,
                "join(\\({}, {}). {}, \\({}, {}). {})([{left}, {right}])",
                pred.var1, pred.var2, pred.body, func.var1, func.var2, func.body
            ),
            Expr::If(p, a, b) => write!(f, "if {p} then {a} else {b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::rules::{query_a4, query_t1};

    #[test]
    fn t1_prints_like_the_paper() {
        assert_eq!(
            query_t1().to_string(),
            "app(\\a. a.city)(app(\\p. p.addr)(P))"
        );
    }

    #[test]
    fn a4_prints_like_the_paper() {
        assert_eq!(
            query_a4().to_string(),
            "app(\\p. [p, sel(\\c. p.age > 25)(p.child)])(P)"
        );
    }
}
