//! Environment-based evaluation of AQUA expressions.
//!
//! This is the semantics of §2's `app`/`sel`/`flatten`/`join` operators,
//! against the same [`kola::Db`] object store the KOLA evaluator uses — so
//! "AQUA query Q and KOLA query K agree on database D" is directly testable,
//! which is how the translators in `kola-frontend` are validated.

use crate::ast::{CmpOp, Expr, Lambda, Lambda2};
use kola::db::Db;
use kola::eval::EvalError;
use kola::value::{Sym, Value, ValueSet};
use std::collections::BTreeMap;
use std::fmt;

/// Errors from AQUA evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AquaError {
    /// A free variable had no binding at runtime.
    UnboundVar(Sym),
    /// An operator was applied to a value of the wrong shape.
    Stuck(&'static str),
    /// Underlying database/semantic error.
    Kola(EvalError),
}

impl fmt::Display for AquaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AquaError::UnboundVar(v) => write!(f, "unbound variable {v}"),
            AquaError::Stuck(w) => write!(f, "stuck at {w}"),
            AquaError::Kola(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AquaError {}

impl From<EvalError> for AquaError {
    fn from(e: EvalError) -> Self {
        AquaError::Kola(e)
    }
}

impl From<kola::db::DbError> for AquaError {
    fn from(e: kola::db::DbError) -> Self {
        AquaError::Kola(EvalError::Db(e))
    }
}

/// A runtime environment: variable bindings.
pub type Env = BTreeMap<Sym, Value>;

/// Evaluate an AQUA expression in an environment against a database.
pub fn eval(db: &Db, env: &Env, e: &Expr) -> Result<Value, AquaError> {
    match e {
        Expr::Var(v) => env
            .get(v)
            .cloned()
            .ok_or_else(|| AquaError::UnboundVar(v.clone())),
        Expr::Lit(v) => Ok(v.clone()),
        Expr::Extent(name) => Ok(db.extent(name)?),
        Expr::Attr(e, attr) => {
            let v = eval(db, env, e)?;
            Ok(db.get_attr(&v, attr)?)
        }
        Expr::Pair(a, b) => Ok(Value::pair(eval(db, env, a)?, eval(db, env, b)?)),
        Expr::Cmp(op, a, b) => {
            let a = eval(db, env, a)?;
            let b = eval(db, env, b)?;
            let out = match op {
                CmpOp::Eq => a == b,
                CmpOp::In => match &b {
                    Value::Set(s) => s.contains(&a),
                    _ => return Err(AquaError::Stuck("in on non-set")),
                },
                _ => {
                    let (Value::Int(x), Value::Int(y)) = (&a, &b) else {
                        return Err(AquaError::Stuck("comparison on non-ints"));
                    };
                    match op {
                        CmpOp::Lt => x < y,
                        CmpOp::Leq => x <= y,
                        CmpOp::Gt => x > y,
                        CmpOp::Geq => x >= y,
                        _ => unreachable!(),
                    }
                }
            };
            Ok(Value::Bool(out))
        }
        Expr::And(a, b) => {
            let a = as_bool(eval(db, env, a)?)?;
            if !a {
                return Ok(Value::Bool(false));
            }
            Ok(Value::Bool(as_bool(eval(db, env, b)?)?))
        }
        Expr::Or(a, b) => {
            let a = as_bool(eval(db, env, a)?)?;
            if a {
                return Ok(Value::Bool(true));
            }
            Ok(Value::Bool(as_bool(eval(db, env, b)?)?))
        }
        Expr::Not(a) => Ok(Value::Bool(!as_bool(eval(db, env, a)?)?)),
        Expr::App(l, s) => {
            let set = as_set(eval(db, env, s)?)?;
            let mut out = ValueSet::new();
            for x in set.iter() {
                out.insert(apply(db, env, l, x.clone())?);
            }
            Ok(Value::Set(out))
        }
        Expr::Sel(l, s) => {
            let set = as_set(eval(db, env, s)?)?;
            let mut out = ValueSet::new();
            for x in set.iter() {
                if as_bool(apply(db, env, l, x.clone())?)? {
                    out.insert(x.clone());
                }
            }
            Ok(Value::Set(out))
        }
        Expr::Flatten(s) => {
            let set = as_set(eval(db, env, s)?)?;
            let mut out = ValueSet::new();
            for inner in set.iter() {
                match inner {
                    Value::Set(s) => {
                        for v in s.iter() {
                            out.insert(v.clone());
                        }
                    }
                    _ => return Err(AquaError::Stuck("flatten of non-set element")),
                }
            }
            Ok(Value::Set(out))
        }
        Expr::Join {
            pred,
            func,
            left,
            right,
        } => {
            let a = as_set(eval(db, env, left)?)?;
            let b = as_set(eval(db, env, right)?)?;
            let mut out = ValueSet::new();
            for x in a.iter() {
                for y in b.iter() {
                    if as_bool(apply2(db, env, pred, x.clone(), y.clone())?)? {
                        out.insert(apply2(db, env, func, x.clone(), y.clone())?);
                    }
                }
            }
            Ok(Value::Set(out))
        }
        Expr::If(p, a, b) => {
            if as_bool(eval(db, env, p)?)? {
                eval(db, env, a)
            } else {
                eval(db, env, b)
            }
        }
    }
}

/// Apply a λ to a value (extends the environment, shadowing).
pub fn apply(db: &Db, env: &Env, l: &Lambda, v: Value) -> Result<Value, AquaError> {
    let mut inner = env.clone();
    inner.insert(l.var.clone(), v);
    eval(db, &inner, &l.body)
}

fn apply2(db: &Db, env: &Env, l: &Lambda2, a: Value, b: Value) -> Result<Value, AquaError> {
    let mut inner = env.clone();
    inner.insert(l.var1.clone(), a);
    inner.insert(l.var2.clone(), b);
    eval(db, &inner, &l.body)
}

fn as_bool(v: Value) -> Result<bool, AquaError> {
    v.as_bool().ok_or(AquaError::Stuck("expected bool"))
}

fn as_set(v: Value) -> Result<ValueSet, AquaError> {
    match v {
        Value::Set(s) => Ok(s),
        _ => Err(AquaError::Stuck("expected set")),
    }
}

/// Evaluate a closed AQUA expression.
pub fn eval_closed(db: &Db, e: &Expr) -> Result<Value, AquaError> {
    eval(db, &Env::new(), e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Expr as E;
    use kola::schema::Schema;

    fn db() -> Db {
        let schema = Schema::paper_schema();
        let person = schema.class_id("Person").unwrap();
        let address = schema.class_id("Address").unwrap();
        let mut db = Db::new(schema);
        let a0 = db
            .insert(address, vec![Value::str("Boston"), Value::Int(1)])
            .unwrap();
        let a1 = db
            .insert(address, vec![Value::str("NYC"), Value::Int(2)])
            .unwrap();
        let mut people = Vec::new();
        for (i, (addr, age)) in [(a0, 30i64), (a1, 20)].into_iter().enumerate() {
            let p = db
                .insert(
                    person,
                    vec![
                        Value::Obj(addr),
                        Value::Int(age),
                        Value::str(&format!("p{i}")),
                        Value::empty_set(),
                        Value::empty_set(),
                        Value::empty_set(),
                    ],
                )
                .unwrap();
            people.push(Value::Obj(p));
        }
        db.bind_extent("P", Value::set(people));
        db
    }

    #[test]
    fn t1_original_query_evaluates() {
        // app(λa. a.city)(app(λp. p.addr)(P))
        let db = db();
        let q = E::app(
            Lambda::new("a", E::var("a").attr("city")),
            E::app(Lambda::new("p", E::var("p").attr("addr")), E::extent("P")),
        );
        assert_eq!(
            eval_closed(&db, &q).unwrap(),
            Value::set([Value::str("Boston"), Value::str("NYC")])
        );
    }

    #[test]
    fn t2_original_query_evaluates() {
        // app(λx. x.age)(sel(λp. p.age > 25)(P))
        let db = db();
        let q = E::app(
            Lambda::new("x", E::var("x").attr("age")),
            E::sel(
                Lambda::new("p", E::cmp(CmpOp::Gt, E::var("p").attr("age"), E::int(25))),
                E::extent("P"),
            ),
        );
        assert_eq!(eval_closed(&db, &q).unwrap(), Value::set([Value::Int(30)]));
    }

    #[test]
    fn shadowing_inner_binding_wins() {
        let db = db();
        // app(λx. app(λx. x.age)( {x} ))(P) — inner x shadows outer.
        let q = E::app(
            Lambda::new(
                "x",
                E::app(
                    Lambda::new("x", E::var("x").attr("age")),
                    E::app(Lambda::new("y", E::var("y")), E::extent("P")),
                ),
            ),
            E::extent("P"),
        );
        assert!(eval_closed(&db, &q).is_ok());
    }

    #[test]
    fn unbound_variable_errors() {
        let db = db();
        assert_eq!(
            eval_closed(&db, &E::var("z")),
            Err(AquaError::UnboundVar(std::sync::Arc::from("z")))
        );
    }

    #[test]
    fn join_evaluates() {
        let db = db();
        // join(λ(x,y). x = y, λ(x,y). x)([P, P]) = P
        let q = Expr::Join {
            pred: Lambda2::new("x", "y", E::cmp(CmpOp::Eq, E::var("x"), E::var("y"))),
            func: Lambda2::new("x", "y", E::var("x")),
            left: Box::new(E::extent("P")),
            right: Box::new(E::extent("P")),
        };
        assert_eq!(eval_closed(&db, &q).unwrap(), db.extent("P").unwrap());
    }

    #[test]
    fn flatten_and_if() {
        let db = db();
        let q = E::Flatten(Box::new(E::app(
            Lambda::new("p", E::var("p").attr("child")),
            E::extent("P"),
        )));
        assert_eq!(eval_closed(&db, &q).unwrap(), Value::empty_set());
        let q = E::If(
            Box::new(E::cmp(CmpOp::Lt, E::int(1), E::int(2))),
            Box::new(E::int(10)),
            Box::new(E::int(20)),
        );
        assert_eq!(eval_closed(&db, &q).unwrap(), Value::Int(10));
    }
}
