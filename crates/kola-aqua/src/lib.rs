#![warn(missing_docs)]
//! # kola-aqua — the variable-based baseline algebra (AQUA)
//!
//! The paper's §2 argues "variables considered harmful" using AQUA [25] as
//! the case study. This crate is that baseline, built honestly: λ-based
//! anonymous functions ([`ast`]), an environment-carrying evaluator
//! ([`eval`]), the full variable machinery — free-variable analysis,
//! α-renaming, capture-avoiding substitution ([`vars`]) — and the paper's
//! transformations T1, T2 and code motion implemented as rules *with head
//! and body routines* ([`rules`]), instrumented so experiments can count
//! exactly how much machinery each rule consumes.
pub mod ast;
pub mod display;
pub mod eval;
pub mod parse;
pub mod rules;
pub mod vars;

pub use ast::{CmpOp, Expr, Lambda, Lambda2};
pub use eval::{eval, eval_closed, AquaError, Env};
pub use parse::{parse_aqua, AquaParseError};
pub use vars::{free_vars, substitute, Machinery};
