//! A parser for AQUA's concrete syntax, matching the printer in
//! [`crate::display`]:
//!
//! ```text
//! app(\p. p.addr.city)(P)
//! sel(\p. p.age > 25)(P)
//! flatten(app(\p. p.grgs)(P))
//! join(\(x, y). x = y, \(x, y). [x, y])([A, B])
//! if p.age > 25 then [p, p.child] else [p, {}]
//! ```
//!
//! Round trip: `parse(e.to_string()) == e` for every expression the
//! printer emits (checked by property test).

use crate::ast::{CmpOp, Expr, Lambda, Lambda2};
use kola::value::{Value, ValueSet};
use std::fmt;

/// AQUA parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AquaParseError {
    /// Description.
    pub msg: String,
}

impl fmt::Display for AquaParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AQUA parse error: {}", self.msg)
    }
}

impl std::error::Error for AquaParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    Sym(char),
    Leq,
    Geq,
}

fn lex(src: &str) -> Result<Vec<Tok>, AquaParseError> {
    let mut out = Vec::new();
    let b = src.as_bytes();
    let mut i = 0;
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '<' | '>' if i + 1 < b.len() && b[i + 1] as char == '=' => {
                out.push(if c == '<' { Tok::Leq } else { Tok::Geq });
                i += 2;
            }
            '(' | ')' | '[' | ']' | '{' | '}' | ',' | '.' | '=' | '<' | '>' | '\\' => {
                out.push(Tok::Sym(c));
                i += 1;
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < b.len() && b[j] as char != '"' {
                    j += 1;
                }
                if j >= b.len() {
                    return Err(AquaParseError {
                        msg: "unterminated string".into(),
                    });
                }
                out.push(Tok::Str(src[start..j].to_string()));
                i = j + 1;
            }
            '0'..='9' | '-' => {
                let start = i;
                i += 1;
                while i < b.len() && (b[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let n = src[start..i].parse().map_err(|_| AquaParseError {
                    msg: format!("bad integer {:?}", &src[start..i]),
                })?;
                out.push(Tok::Int(n));
            }
            c if c.is_ascii_alphanumeric() || c == '_' => {
                let start = i;
                while i < b.len() && ((b[i] as char).is_ascii_alphanumeric() || b[i] as char == '_')
                {
                    i += 1;
                }
                out.push(Tok::Ident(src[start..i].to_string()));
            }
            other => {
                return Err(AquaParseError {
                    msg: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(out)
}

struct P {
    toks: Vec<Tok>,
    pos: usize,
    bound: Vec<String>,
}

const KEYWORDS: &[&str] = &[
    "app", "sel", "flatten", "join", "if", "then", "else", "and", "or", "not", "in", "T", "F",
];

impl P {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, AquaParseError> {
        Err(AquaParseError { msg: msg.into() })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn eat_sym(&mut self, c: char) -> bool {
        if self.peek() == Some(&Tok::Sym(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, c: char) -> Result<(), AquaParseError> {
        if self.eat_sym(c) {
            Ok(())
        } else {
            self.err(format!("expected {c:?}, found {:?}", self.peek()))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s == kw {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), AquaParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected {kw}, found {:?}", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String, AquaParseError> {
        match self.toks.get(self.pos).cloned() {
            Some(Tok::Ident(s)) if !KEYWORDS.contains(&s.as_str()) => {
                self.pos += 1;
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    /// expr := if-expr | or-expr
    fn expr(&mut self) -> Result<Expr, AquaParseError> {
        if self.eat_kw("if") {
            let p = self.expr()?;
            self.expect_kw("then")?;
            let a = self.expr()?;
            self.expect_kw("else")?;
            let b = self.expr()?;
            return Ok(Expr::If(Box::new(p), Box::new(a), Box::new(b)));
        }
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, AquaParseError> {
        let mut a = self.and_expr()?;
        while self.eat_kw("or") {
            let b = self.and_expr()?;
            a = Expr::Or(Box::new(a), Box::new(b));
        }
        Ok(a)
    }

    fn and_expr(&mut self) -> Result<Expr, AquaParseError> {
        let mut a = self.cmp_expr()?;
        while self.eat_kw("and") {
            let b = self.cmp_expr()?;
            a = Expr::And(Box::new(a), Box::new(b));
        }
        Ok(a)
    }

    fn cmp_expr(&mut self) -> Result<Expr, AquaParseError> {
        if self.eat_kw("not") {
            let e = self.cmp_expr()?;
            return Ok(Expr::Not(Box::new(e)));
        }
        let a = self.postfix()?;
        let op = match self.peek() {
            Some(Tok::Sym('=')) => Some(CmpOp::Eq),
            Some(Tok::Sym('<')) => Some(CmpOp::Lt),
            Some(Tok::Sym('>')) => Some(CmpOp::Gt),
            Some(Tok::Leq) => Some(CmpOp::Leq),
            Some(Tok::Geq) => Some(CmpOp::Geq),
            Some(Tok::Ident(s)) if s == "in" => Some(CmpOp::In),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let b = self.postfix()?;
            return Ok(Expr::Cmp(op, Box::new(a), Box::new(b)));
        }
        Ok(a)
    }

    /// postfix := atom ('.' ident)*
    fn postfix(&mut self) -> Result<Expr, AquaParseError> {
        let mut e = self.atom()?;
        while self.eat_sym('.') {
            let attr = self.ident()?;
            e = Expr::Attr(Box::new(e), std::sync::Arc::from(attr.as_str()));
        }
        Ok(e)
    }

    fn lambda(&mut self) -> Result<Lambda, AquaParseError> {
        self.expect_sym('(')?;
        self.expect_sym('\\')?;
        let var = self.ident()?;
        self.expect_sym('.')?;
        self.bound.push(var.clone());
        let body = self.expr()?;
        self.bound.pop();
        self.expect_sym(')')?;
        Ok(Lambda::new(&var, body))
    }

    fn lambda2(&mut self) -> Result<Lambda2, AquaParseError> {
        self.expect_sym('\\')?;
        self.expect_sym('(')?;
        let v1 = self.ident()?;
        self.expect_sym(',')?;
        let v2 = self.ident()?;
        self.expect_sym(')')?;
        self.expect_sym('.')?;
        self.bound.push(v1.clone());
        self.bound.push(v2.clone());
        let body = self.expr()?;
        self.bound.pop();
        self.bound.pop();
        Ok(Lambda2::new(&v1, &v2, body))
    }

    fn atom(&mut self) -> Result<Expr, AquaParseError> {
        match self.peek().cloned() {
            Some(Tok::Int(n)) => {
                self.pos += 1;
                Ok(Expr::Lit(Value::Int(n)))
            }
            Some(Tok::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Lit(Value::str(&s)))
            }
            Some(Tok::Ident(s)) if s == "T" || s == "F" => {
                self.pos += 1;
                Ok(Expr::Lit(Value::Bool(s == "T")))
            }
            Some(Tok::Ident(s)) if s == "app" || s == "sel" => {
                self.pos += 1;
                let l = self.lambda()?;
                self.expect_sym('(')?;
                let src = self.expr()?;
                self.expect_sym(')')?;
                Ok(if s == "app" {
                    Expr::App(l, Box::new(src))
                } else {
                    Expr::Sel(l, Box::new(src))
                })
            }
            Some(Tok::Ident(s)) if s == "flatten" => {
                self.pos += 1;
                self.expect_sym('(')?;
                let e = self.expr()?;
                self.expect_sym(')')?;
                Ok(Expr::Flatten(Box::new(e)))
            }
            Some(Tok::Ident(s)) if s == "join" => {
                self.pos += 1;
                self.expect_sym('(')?;
                let pred = self.lambda2()?;
                self.expect_sym(',')?;
                let func = self.lambda2()?;
                self.expect_sym(')')?;
                self.expect_sym('(')?;
                self.expect_sym('[')?;
                let left = self.expr()?;
                self.expect_sym(',')?;
                let right = self.expr()?;
                self.expect_sym(']')?;
                self.expect_sym(')')?;
                Ok(Expr::Join {
                    pred,
                    func,
                    left: Box::new(left),
                    right: Box::new(right),
                })
            }
            Some(Tok::Ident(s)) if !KEYWORDS.contains(&s.as_str()) => {
                self.pos += 1;
                if self.bound.contains(&s) {
                    Ok(Expr::Var(std::sync::Arc::from(s.as_str())))
                } else {
                    Ok(Expr::Extent(std::sync::Arc::from(s.as_str())))
                }
            }
            Some(Tok::Sym('[')) => {
                self.pos += 1;
                let a = self.expr()?;
                self.expect_sym(',')?;
                let b = self.expr()?;
                self.expect_sym(']')?;
                Ok(Expr::Pair(Box::new(a), Box::new(b)))
            }
            Some(Tok::Sym('{')) => {
                self.pos += 1;
                let mut set = ValueSet::new();
                if !self.eat_sym('}') {
                    loop {
                        match self.toks.get(self.pos).cloned() {
                            Some(Tok::Int(n)) => {
                                self.pos += 1;
                                set.insert(Value::Int(n));
                            }
                            Some(Tok::Str(s)) => {
                                self.pos += 1;
                                set.insert(Value::str(&s));
                            }
                            other => {
                                return self.err(format!(
                                    "expected scalar in set literal, found {other:?}"
                                ))
                            }
                        }
                        if self.eat_sym('}') {
                            break;
                        }
                        self.expect_sym(',')?;
                    }
                }
                Ok(Expr::Lit(Value::Set(set)))
            }
            Some(Tok::Sym('(')) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect_sym(')')?;
                Ok(e)
            }
            other => self.err(format!("expected expression, found {other:?}")),
        }
    }
}

/// Parse an AQUA expression.
pub fn parse_aqua(src: &str) -> Result<Expr, AquaParseError> {
    let mut p = P {
        toks: lex(src)?,
        pos: 0,
        bound: Vec::new(),
    };
    let e = p.expr()?;
    if p.pos != p.toks.len() {
        return p.err(format!("trailing input at token {}", p.pos));
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{query_a3, query_a4, query_t1, query_t2};

    #[test]
    fn parses_figure_queries_from_their_printed_form() {
        for q in [query_t1(), query_t2(), query_a3(), query_a4()] {
            let printed = q.to_string();
            let reparsed = parse_aqua(&printed).unwrap_or_else(|e| panic!("{printed}: {e}"));
            assert_eq!(reparsed, q, "{printed}");
        }
    }

    #[test]
    fn parses_basic_forms() {
        assert_eq!(
            parse_aqua("app(\\p. p.age)(P)").unwrap(),
            Expr::app(
                Lambda::new("p", Expr::var("p").attr("age")),
                Expr::extent("P")
            )
        );
        assert_eq!(
            parse_aqua("sel(\\p. p.age > 25)(P)").unwrap().to_string(),
            "sel(\\p. p.age > 25)(P)"
        );
        assert_eq!(
            parse_aqua("if 1 < 2 then 3 else 4").unwrap().to_string(),
            "if 1 < 2 then 3 else 4"
        );
    }

    #[test]
    fn join_round_trips() {
        let src = "join(\\(x, y). x = y, \\(x, y). [x, y])([A, B])";
        let e = parse_aqua(src).unwrap();
        assert_eq!(e.to_string(), src);
    }

    #[test]
    fn scoping_decides_var_vs_extent() {
        let e = parse_aqua("app(\\p. q)(P)").unwrap();
        match &e {
            Expr::App(l, _) => assert_eq!(*l.body, Expr::extent("q")),
            _ => panic!(),
        }
        let e = parse_aqua("app(\\p. p)(P)").unwrap();
        match &e {
            Expr::App(l, _) => assert_eq!(*l.body, Expr::var("p")),
            _ => panic!(),
        }
    }

    #[test]
    fn set_and_bool_literals() {
        assert_eq!(
            parse_aqua("{1, 2}").unwrap(),
            Expr::Lit(Value::set([Value::Int(1), Value::Int(2)]))
        );
        assert_eq!(parse_aqua("T").unwrap(), Expr::Lit(Value::Bool(true)));
        assert_eq!(parse_aqua("{}").unwrap(), Expr::Lit(Value::empty_set()));
    }

    #[test]
    fn errors() {
        assert!(parse_aqua("app(\\p. p)(P) extra").is_err());
        assert!(parse_aqua("app(\\p p)(P)").is_err());
        assert!(parse_aqua("sel(\\p. )(P)").is_err());
        assert!(parse_aqua("{1, [2, 3]}").is_err());
        assert!(parse_aqua("\"unterminated").is_err());
    }
}
