//! The paper's Figure 1/Figure 2 transformations over AQUA — implemented
//! the way Starburst/EXODUS-style systems must: as rules whose applicability
//! checks are **head routines** (code) and whose constructions are **body
//! routines** (code invoking the variable machinery of [`crate::vars`]).
//!
//! Each routine threads a [`Machinery`] counter. The contrast experiment
//! (E3/E4) shows these counters are non-zero here and identically zero for
//! the KOLA versions, which are plain pattern rules.

use crate::ast::{Expr, Lambda};
use crate::vars::{free_vars, substitute, Machinery};

/// T1 of Figure 1: `app(λa. body_a)(app(λp. body_p)(S))` ⇒
/// `app(λp. body_a[a := body_p])(S)` — composing the two anonymous
/// functions.
///
/// The *head routine* checks the nested-`app` shape; the *body routine*
/// builds the composed function by capture-avoiding substitution — the
/// "expression composition" machinery §2.1 says unification alone cannot
/// express.
pub fn t1_compose_apps(e: &Expr, m: &mut Machinery) -> Option<Expr> {
    // Head routine: e must be app(f)(app(g)(S)).
    let Expr::App(outer, inner) = e else {
        return None;
    };
    let Expr::App(inner_l, source) = &**inner else {
        return None;
    };
    // Body routine: compose outer.body[outer.var := inner.body], keeping
    // the inner λ's binder. Substitution must be capture-avoiding.
    let composed_body = substitute(&outer.body, &outer.var, &inner_l.body, m);
    Some(Expr::App(
        Lambda {
            var: inner_l.var.clone(),
            body: Box::new(composed_body),
        },
        source.clone(),
    ))
}

/// T2 of Figure 1: `app(λx. x.attr)(sel(λp. p.attr CMP k)(S))` ⇒
/// `sel(λa. a CMP k)(app(λp. p.attr)(S))` — decomposing the selection
/// predicate so the projection happens first.
///
/// The head routine must *recognize the projected attribute inside the
/// predicate body* — which requires comparing the two λ-bodies up to their
/// different bound variables (the "variable renaming" machinery of §2.1).
pub fn t2_decompose_sel(e: &Expr, m: &mut Machinery) -> Option<Expr> {
    // Head routine: shape app(λx. P)(sel(λp. C)(S)) where C = Cmp(op, L, R).
    let Expr::App(proj, inner) = e else {
        return None;
    };
    let Expr::Sel(pred, source) = &**inner else {
        return None;
    };
    let Expr::Cmp(op, lhs, rhs) = &*pred.body else {
        return None;
    };
    // The right side must be a constant (no free variables).
    if !free_vars(rhs, m).is_empty() {
        return None;
    }
    // Recognize that the predicate's left side is "the same function" as
    // the projection — i.e. lhs[pred.var := x] == proj.body[proj.var := x].
    // This needs an α-comparison: rename pred.var to proj.var and compare.
    let renamed = substitute(lhs, &pred.var, &Expr::Var(proj.var.clone()), m);
    if renamed != *proj.body {
        return None;
    }
    // Body routine: build sel(λa. a op k)(app(λp. lhs)(S)).
    let fresh: kola::value::Sym = std::sync::Arc::from("a");
    Some(Expr::Sel(
        Lambda {
            var: fresh.clone(),
            body: Box::new(Expr::Cmp(
                *op,
                Box::new(Expr::Var(fresh)),
                Box::new((**rhs).clone()),
            )),
        },
        Box::new(Expr::App(
            Lambda {
                var: pred.var.clone(),
                body: Box::new((**lhs).clone()),
            },
            source.clone(),
        )),
    ))
}

/// The code-motion transformation of §2.2 (Figure 2's A4):
/// `app(λp. [p, sel(λc. COND)(p.child)])(P)` ⇒
/// `app(λp. if COND then [p, p.child] else [p, {}])(P)`,
/// valid **only when `COND` does not mention the inner variable `c`** —
/// deciding that requires environmental (free-variable) analysis, the head
/// routine §2.2 says variable-based rules cannot avoid.
pub fn code_motion(e: &Expr, m: &mut Machinery) -> Option<Expr> {
    // Head routine: app(λp. [p, sel(λc. cond)(p.attr)])(P).
    let Expr::App(outer, source) = e else {
        return None;
    };
    let Expr::Pair(first, second) = &*outer.body else {
        return None;
    };
    if **first != Expr::Var(outer.var.clone()) {
        return None;
    }
    let Expr::Sel(inner, inner_src) = &**second else {
        return None;
    };
    // Environmental analysis: the predicate must not use the inner binder
    // (otherwise — query A3 — the transformation is invalid).
    let fv = free_vars(&inner.body, m);
    if fv.contains(&inner.var) {
        return None;
    }
    // Body routine: hoist the condition.
    let then_branch = Expr::Pair(first.clone(), inner_src.clone());
    let else_branch = Expr::Pair(
        first.clone(),
        Box::new(Expr::Lit(kola::value::Value::empty_set())),
    );
    Some(Expr::App(
        Lambda {
            var: outer.var.clone(),
            body: Box::new(Expr::If(
                inner.body.clone(),
                Box::new(then_branch),
                Box::new(else_branch),
            )),
        },
        source.clone(),
    ))
}

/// The paper's Figure 2 query A3 (inner variable used — NOT transformable).
pub fn query_a3() -> Expr {
    use crate::ast::CmpOp;
    Expr::app(
        Lambda::new(
            "p",
            Expr::pair(
                Expr::var("p"),
                Expr::sel(
                    Lambda::new(
                        "c",
                        Expr::cmp(CmpOp::Gt, Expr::var("c").attr("age"), Expr::int(25)),
                    ),
                    Expr::var("p").attr("child"),
                ),
            ),
        ),
        Expr::extent("P"),
    )
}

/// The paper's Figure 2 query A4 (outer variable used — transformable).
pub fn query_a4() -> Expr {
    use crate::ast::CmpOp;
    Expr::app(
        Lambda::new(
            "p",
            Expr::pair(
                Expr::var("p"),
                Expr::sel(
                    Lambda::new(
                        "c",
                        Expr::cmp(CmpOp::Gt, Expr::var("p").attr("age"), Expr::int(25)),
                    ),
                    Expr::var("p").attr("child"),
                ),
            ),
        ),
        Expr::extent("P"),
    )
}

/// Figure 1's T1 input: `app(λa. a.city)(app(λp. p.addr)(P))`.
pub fn query_t1() -> Expr {
    Expr::app(
        Lambda::new("a", Expr::var("a").attr("city")),
        Expr::app(
            Lambda::new("p", Expr::var("p").attr("addr")),
            Expr::extent("P"),
        ),
    )
}

/// Figure 1's T2 input: `app(λx. x.age)(sel(λp. p.age > 25)(P))`.
pub fn query_t2() -> Expr {
    use crate::ast::CmpOp;
    Expr::app(
        Lambda::new("x", Expr::var("x").attr("age")),
        Expr::sel(
            Lambda::new(
                "p",
                Expr::cmp(CmpOp::Gt, Expr::var("p").attr("age"), Expr::int(25)),
            ),
            Expr::extent("P"),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CmpOp;

    #[test]
    fn t1_composes_and_uses_machinery() {
        let mut m = Machinery::default();
        let out = t1_compose_apps(&query_t1(), &mut m).expect("T1 applies");
        // app(λp. p.addr.city)(P)
        let want = Expr::app(
            Lambda::new("p", Expr::var("p").attr("addr").attr("city")),
            Expr::extent("P"),
        );
        assert_eq!(out, want);
        assert!(m.substitutions > 0, "body routine needs substitution");
    }

    #[test]
    fn t2_decomposes_and_uses_machinery() {
        let mut m = Machinery::default();
        let out = t2_decompose_sel(&query_t2(), &mut m).expect("T2 applies");
        let want = Expr::sel(
            Lambda::new("a", Expr::cmp(CmpOp::Gt, Expr::var("a"), Expr::int(25))),
            Expr::app(
                Lambda::new("p", Expr::var("p").attr("age")),
                Expr::extent("P"),
            ),
        );
        assert_eq!(out, want);
        // Needed both variable renaming (α-compare) and analysis.
        assert!(m.substitutions > 0);
        assert!(m.free_var_analyses > 0);
    }

    #[test]
    fn t2_rejects_mismatched_projection() {
        // Projection is .addr but the predicate tests .age: head must fail.
        let mut m = Machinery::default();
        let q = Expr::app(
            Lambda::new("x", Expr::var("x").attr("addr")),
            Expr::sel(
                Lambda::new(
                    "p",
                    Expr::cmp(CmpOp::Gt, Expr::var("p").attr("age"), Expr::int(25)),
                ),
                Expr::extent("P"),
            ),
        );
        assert!(t2_decompose_sel(&q, &mut m).is_none());
    }

    #[test]
    fn code_motion_applies_to_a4_not_a3() {
        let mut m = Machinery::default();
        assert!(code_motion(&query_a4(), &mut m).is_some());
        assert!(
            m.free_var_analyses > 0,
            "distinguishing A4 from A3 requires environmental analysis"
        );
        let mut m = Machinery::default();
        assert!(code_motion(&query_a3(), &mut m).is_none());
        assert!(
            m.free_var_analyses > 0,
            "rejecting A3 also requires environmental analysis"
        );
    }

    #[test]
    fn a3_and_a4_differ_only_in_one_variable() {
        // The paper's point: the queries are structurally identical up to
        // one identifier, yet only one is transformable.
        let a3 = format!("{:?}", query_a3());
        let a4 = format!("{:?}", query_a4());
        assert_ne!(a3, a4);
        assert_eq!(a3.len(), a4.len());
    }
}
