//! Free-variable analysis, α-renaming and capture-avoiding substitution —
//! the "additional machinery" of §2.1/§2.3.
//!
//! None of this exists in the KOLA half of the repository: it is exactly
//! what a variable-based representation forces on an optimizer. Every entry
//! point threads a [`Machinery`] counter so experiments can report how much
//! of this machinery each transformation consumed (experiment E3/E4).

use crate::ast::{Expr, Lambda, Lambda2};
use kola::value::Sym;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Counters for the variable-handling machinery invoked by AQUA rules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Machinery {
    /// Free-variable analyses performed ("environmental analysis", §2.2).
    pub free_var_analyses: usize,
    /// α-renamings performed.
    pub renames: usize,
    /// Capture-avoiding substitutions performed (expression composition).
    pub substitutions: usize,
}

impl Machinery {
    /// Total machinery invocations.
    pub fn total(&self) -> usize {
        self.free_var_analyses + self.renames + self.substitutions
    }
}

/// Compute the free variables of an expression.
pub fn free_vars(e: &Expr, m: &mut Machinery) -> BTreeSet<Sym> {
    m.free_var_analyses += 1;
    let mut out = BTreeSet::new();
    collect(e, &mut BTreeSet::new(), &mut out);
    out
}

fn collect(e: &Expr, bound: &mut BTreeSet<Sym>, out: &mut BTreeSet<Sym>) {
    match e {
        Expr::Var(v) => {
            if !bound.contains(v) {
                out.insert(v.clone());
            }
        }
        Expr::Lit(_) | Expr::Extent(_) => {}
        Expr::Attr(e, _) | Expr::Not(e) | Expr::Flatten(e) => collect(e, bound, out),
        Expr::Pair(a, b) | Expr::Cmp(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
            collect(a, bound, out);
            collect(b, bound, out);
        }
        Expr::App(l, s) | Expr::Sel(l, s) => {
            let added = bound.insert(l.var.clone());
            collect(&l.body, bound, out);
            if added {
                bound.remove(&l.var);
            }
            collect(s, bound, out);
        }
        Expr::Join {
            pred,
            func,
            left,
            right,
        } => {
            for l in [pred, func] {
                let a1 = bound.insert(l.var1.clone());
                let a2 = bound.insert(l.var2.clone());
                collect(&l.body, bound, out);
                if a1 {
                    bound.remove(&l.var1);
                }
                if a2 {
                    bound.remove(&l.var2);
                }
            }
            collect(left, bound, out);
            collect(right, bound, out);
        }
        Expr::If(p, a, b) => {
            collect(p, bound, out);
            collect(a, bound, out);
            collect(b, bound, out);
        }
    }
}

/// Generate a variable name not occurring in `avoid`.
pub fn fresh_name(base: &Sym, avoid: &BTreeSet<Sym>, m: &mut Machinery) -> Sym {
    m.renames += 1;
    if !avoid.contains(base) {
        return base.clone();
    }
    for i in 0.. {
        let candidate: Sym = Arc::from(format!("{base}_{i}").as_str());
        if !avoid.contains(&candidate) {
            return candidate;
        }
    }
    unreachable!()
}

/// Capture-avoiding substitution: replace free occurrences of `var` in `e`
/// by `replacement`, renaming binders as necessary.
pub fn substitute(e: &Expr, var: &Sym, replacement: &Expr, m: &mut Machinery) -> Expr {
    m.substitutions += 1;
    let mut fv_repl = BTreeSet::new();
    collect(replacement, &mut BTreeSet::new(), &mut fv_repl);
    subst_inner(e, var, replacement, &fv_repl, m)
}

fn subst_lambda(
    l: &Lambda,
    var: &Sym,
    replacement: &Expr,
    fv_repl: &BTreeSet<Sym>,
    m: &mut Machinery,
) -> Lambda {
    if &l.var == var {
        // Shadowed: substitution stops here.
        return l.clone();
    }
    if fv_repl.contains(&l.var) {
        // Would capture: α-rename the binder first.
        let mut avoid = fv_repl.clone();
        let mut fv_body = BTreeSet::new();
        collect(&l.body, &mut BTreeSet::new(), &mut fv_body);
        avoid.extend(fv_body);
        avoid.insert(var.clone());
        let fresh = fresh_name(&l.var, &avoid, m);
        let renamed_body = substitute(&l.body, &l.var, &Expr::Var(fresh.clone()), m);
        Lambda {
            var: fresh,
            body: Box::new(subst_inner(&renamed_body, var, replacement, fv_repl, m)),
        }
    } else {
        Lambda {
            var: l.var.clone(),
            body: Box::new(subst_inner(&l.body, var, replacement, fv_repl, m)),
        }
    }
}

fn subst_lambda2(
    l: &Lambda2,
    var: &Sym,
    replacement: &Expr,
    fv_repl: &BTreeSet<Sym>,
    m: &mut Machinery,
) -> Lambda2 {
    if &l.var1 == var || &l.var2 == var {
        return l.clone();
    }
    if fv_repl.contains(&l.var1) || fv_repl.contains(&l.var2) {
        // Rename both binders defensively.
        let mut avoid = fv_repl.clone();
        let mut fv_body = BTreeSet::new();
        collect(&l.body, &mut BTreeSet::new(), &mut fv_body);
        avoid.extend(fv_body);
        avoid.insert(var.clone());
        let f1 = fresh_name(&l.var1, &avoid, m);
        avoid.insert(f1.clone());
        let f2 = fresh_name(&l.var2, &avoid, m);
        let body = substitute(&l.body, &l.var1, &Expr::Var(f1.clone()), m);
        let body = substitute(&body, &l.var2, &Expr::Var(f2.clone()), m);
        Lambda2 {
            var1: f1,
            var2: f2,
            body: Box::new(subst_inner(&body, var, replacement, fv_repl, m)),
        }
    } else {
        Lambda2 {
            var1: l.var1.clone(),
            var2: l.var2.clone(),
            body: Box::new(subst_inner(&l.body, var, replacement, fv_repl, m)),
        }
    }
}

fn subst_inner(
    e: &Expr,
    var: &Sym,
    replacement: &Expr,
    fv_repl: &BTreeSet<Sym>,
    m: &mut Machinery,
) -> Expr {
    match e {
        Expr::Var(v) => {
            if v == var {
                replacement.clone()
            } else {
                e.clone()
            }
        }
        Expr::Lit(_) | Expr::Extent(_) => e.clone(),
        Expr::Attr(e, a) => Expr::Attr(
            Box::new(subst_inner(e, var, replacement, fv_repl, m)),
            a.clone(),
        ),
        Expr::Not(e) => Expr::Not(Box::new(subst_inner(e, var, replacement, fv_repl, m))),
        Expr::Flatten(e) => Expr::Flatten(Box::new(subst_inner(e, var, replacement, fv_repl, m))),
        Expr::Pair(a, b) => Expr::Pair(
            Box::new(subst_inner(a, var, replacement, fv_repl, m)),
            Box::new(subst_inner(b, var, replacement, fv_repl, m)),
        ),
        Expr::Cmp(op, a, b) => Expr::Cmp(
            *op,
            Box::new(subst_inner(a, var, replacement, fv_repl, m)),
            Box::new(subst_inner(b, var, replacement, fv_repl, m)),
        ),
        Expr::And(a, b) => Expr::And(
            Box::new(subst_inner(a, var, replacement, fv_repl, m)),
            Box::new(subst_inner(b, var, replacement, fv_repl, m)),
        ),
        Expr::Or(a, b) => Expr::Or(
            Box::new(subst_inner(a, var, replacement, fv_repl, m)),
            Box::new(subst_inner(b, var, replacement, fv_repl, m)),
        ),
        Expr::App(l, s) => Expr::App(
            subst_lambda(l, var, replacement, fv_repl, m),
            Box::new(subst_inner(s, var, replacement, fv_repl, m)),
        ),
        Expr::Sel(l, s) => Expr::Sel(
            subst_lambda(l, var, replacement, fv_repl, m),
            Box::new(subst_inner(s, var, replacement, fv_repl, m)),
        ),
        Expr::Join {
            pred,
            func,
            left,
            right,
        } => Expr::Join {
            pred: subst_lambda2(pred, var, replacement, fv_repl, m),
            func: subst_lambda2(func, var, replacement, fv_repl, m),
            left: Box::new(subst_inner(left, var, replacement, fv_repl, m)),
            right: Box::new(subst_inner(right, var, replacement, fv_repl, m)),
        },
        Expr::If(p, a, b) => Expr::If(
            Box::new(subst_inner(p, var, replacement, fv_repl, m)),
            Box::new(subst_inner(a, var, replacement, fv_repl, m)),
            Box::new(subst_inner(b, var, replacement, fv_repl, m)),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{CmpOp, Expr as E};

    #[test]
    fn free_vars_basic() {
        let mut m = Machinery::default();
        let e = E::cmp(CmpOp::Gt, E::var("x").attr("age"), E::var("y"));
        let fv = free_vars(&e, &mut m);
        assert_eq!(fv.len(), 2);
        assert!(fv.contains("x") && fv.contains("y"));
        assert_eq!(m.free_var_analyses, 1);
    }

    #[test]
    fn lambda_binds() {
        let mut m = Machinery::default();
        // sel(λc. c.age > p.age)(S): free = {p, S? S is extent-free}
        let e = E::sel(
            Lambda::new(
                "c",
                E::cmp(CmpOp::Gt, E::var("c").attr("age"), E::var("p").attr("age")),
            ),
            E::var("p").attr("child"),
        );
        let fv = free_vars(&e, &mut m);
        assert_eq!(
            fv.into_iter().collect::<Vec<_>>(),
            vec![Arc::from("p") as Sym]
        );
    }

    #[test]
    fn substitution_replaces_free_occurrences_only() {
        let mut m = Machinery::default();
        // (λx. x) with substitution x := 1 leaves the bound x alone.
        let e = E::app(Lambda::new("x", E::var("x")), E::var("x"));
        let out = substitute(&e, &Arc::from("x"), &E::int(1), &mut m);
        assert_eq!(out, E::app(Lambda::new("x", E::var("x")), E::int(1)));
        assert!(m.substitutions >= 1);
    }

    #[test]
    fn substitution_avoids_capture() {
        let mut m = Machinery::default();
        // λy. x  with x := y  must NOT become λy. y.
        let e = E::sel(Lambda::new("y", E::var("x")), E::extent("S"));
        let out = substitute(&e, &Arc::from("x"), &E::var("y"), &mut m);
        match out {
            Expr::Sel(l, _) => {
                assert_ne!(&*l.var, "y", "binder must be renamed");
                assert_eq!(*l.body, E::var("y"), "substituted var stays free");
            }
            _ => panic!(),
        }
        assert!(m.renames >= 1, "capture avoidance must rename");
    }

    #[test]
    fn path_composition_via_substitution() {
        // The T1 body routine's core: substitute p.addr for a in a.city.
        let mut m = Machinery::default();
        let body = E::var("a").attr("city");
        let out = substitute(&body, &Arc::from("a"), &E::var("p").attr("addr"), &mut m);
        assert_eq!(out, E::var("p").attr("addr").attr("city"));
    }

    #[test]
    fn fresh_name_avoids() {
        let mut m = Machinery::default();
        let avoid: BTreeSet<Sym> = [Arc::from("x") as Sym, Arc::from("x_0") as Sym]
            .into_iter()
            .collect();
        let f = fresh_name(&Arc::from("x"), &avoid, &mut m);
        assert_eq!(&*f, "x_1");
    }
}
