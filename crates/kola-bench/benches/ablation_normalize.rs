//! Ablation — DESIGN.md §5's "composition is binary, right-normalized"
//! choice. The engine re-normalizes `∘` chains after every rule
//! application; this harness disables that (by looping `rewrite_once_query`
//! without the normalization the strategies perform) and shows the
//! hidden-join pull-up rules stall on left-associated chains, because
//! interior windows stop being prefixes of any subterm.

use kola::term::Query;
use kola_rewrite::engine::{rewrite_once_query, Oriented};
use kola_rewrite::{Catalog, PropDb};

/// Left-associate every composition chain — the shape `app-1` fusion
/// produces naturally, and the worst case for prefix matching.
fn left_associate(q: &Query) -> Query {
    use kola::term::Func;
    fn fix_func(f: &Func) -> Func {
        // Flatten and rebuild left-nested.
        let segs: Vec<Func> = kola_rewrite::matching::chain_segments(f)
            .into_iter()
            .map(descend)
            .collect();
        let mut it = segs.into_iter();
        let first = it.next().expect("non-empty chain");
        it.fold(first, |acc, g| Func::Compose(Box::new(acc), Box::new(g)))
    }
    fn descend(f: &Func) -> Func {
        match f {
            Func::Compose(..) => fix_func(f),
            Func::PairWith(a, b) => {
                Func::PairWith(Box::new(fix_func_or(a)), Box::new(fix_func_or(b)))
            }
            Func::Times(a, b) => Func::Times(Box::new(fix_func_or(a)), Box::new(fix_func_or(b))),
            other => other.clone(),
        }
    }
    fn fix_func_or(f: &Func) -> Func {
        match f {
            Func::Compose(..) => fix_func(f),
            other => descend(other),
        }
    }
    match q {
        Query::App(f, inner) => Query::App(fix_func(f), inner.clone()),
        other => other.clone(),
    }
}

fn main() {
    let catalog = Catalog::paper();
    let props = PropDb::new();
    // KG1b: the garage query after Steps 1–2 (a 4-segment chain over a
    // nest-of-join) — the input to the Step-3 pull-up rules.
    let kg1b = {
        let out = kola_rewrite::hidden_join::untangle(
            &catalog,
            &props,
            &kola_rewrite::hidden_join::garage_query_kg1(),
        );
        out.snapshots
            .iter()
            .find(|(n, _)| *n == "bottom-out")
            .map(|(_, q)| q.clone())
            .expect("snapshot exists")
    };
    let rules: Vec<Oriented> = ["20", "21", "4", "2", "1"]
        .iter()
        .map(|id| Oriented::fwd(catalog.get(id).expect("catalog rule")))
        .collect();

    let run = |start: &Query, renormalize: bool| {
        let mut cur = start.clone();
        let mut fires = 0usize;
        for _ in 0..1000 {
            match rewrite_once_query(&rules, &cur, &props) {
                Some(a) => {
                    cur = if renormalize {
                        a.result.normalize()
                    } else {
                        a.result
                    };
                    fires += 1;
                }
                None => break,
            }
        }
        (cur, fires)
    };

    println!("# Ablation — right-normalization of composition chains");
    println!(
        "{:<34} {:>10} {:>16}",
        "configuration", "rule fires", "nest pulled up?"
    );
    for (name, start, renorm) in [
        ("right-normalized + renormalize", kg1b.normalize(), true),
        ("right-normalized, no renormalize", kg1b.normalize(), false),
        ("left-associated + renormalize", left_associate(&kg1b), true),
        (
            "left-associated, no renormalize",
            left_associate(&kg1b),
            false,
        ),
    ] {
        let (out, fires) = run(&start, renorm);
        let pulled = out.to_string().starts_with("nest(pi1, pi2)");
        println!(
            "{:<34} {:>10} {:>16}",
            name,
            fires,
            if pulled { "yes" } else { "NO" }
        );
    }
    println!(
        "\nwithout renormalization, a left-associated chain hides the\n\
         iterate∘nest windows from prefix matching and Step 3 stalls —\n\
         the normalize-after-every-step design choice is load-bearing."
    );
}
