//! Experiment E16 (extension) — §6's deferred duplicate elimination,
//! measured: the eager set pipeline dedups at the union *and* at the
//! iterate; the bag pipeline pays one dedup at the end. Prints measured
//! operation counts and result sizes across scale.

use kola::parse::parse_query;
use kola_exec::datagen::{generate, DataSpec};
use kola_exec::{Executor, Mode};
use kola_rewrite::engine::{rewrite_once_query, Oriented};
use kola_rewrite::{Catalog, PropDb};

fn main() {
    let catalog = Catalog::paper();
    let props = PropDb::new();
    let rule_b7 = catalog.get("b7").expect("bag rule b7");

    println!("# E16 — deferred duplicate elimination (rule b7)");
    println!(
        "{:>6} | {:>12} {:>12} | {:>9} {:>9} {:>10}",
        "|P|", "eager dedups", "defer dedups", "distinct", "bag total", "dups seen"
    );
    for factor in [2usize, 4, 8, 16, 32] {
        let mut db = generate(&DataSpec::scaled(factor, 21));
        let people: Vec<kola::Value> = db
            .extent("P")
            .expect("generator binds P")
            .as_set()
            .expect("P is a set")
            .iter()
            .cloned()
            .collect();
        let half = people.len() / 2;
        // Overlapping halves: the union has duplicates to eliminate.
        db.bind_extent(
            "A",
            kola::Value::set(people[..(half * 3 / 2).min(people.len())].to_vec()),
        );
        db.bind_extent("B", kola::Value::set(people[half / 2..].to_vec()));

        let eager = parse_query("iterate(Kp(T), age) ! (A union B)").expect("parses");
        let rules = [Oriented::fwd(rule_b7)];
        let deferred = rewrite_once_query(&rules, &eager, &props)
            .expect("b7 applies")
            .result;

        let mut e1 = Executor::new(&db, Mode::Naive);
        let v1 = e1.run(&eager).expect("eager runs");
        let mut e2 = Executor::new(&db, Mode::Naive);
        let v2 = e2.run(&deferred).expect("deferred runs");
        assert_eq!(v1, v2, "plans agree");

        // Inspect the intermediate bag for the duplicate count.
        let inter = parse_query(
            "bunion ! [biterate(Kp(T), age) ! bagify ! A, \
                       biterate(Kp(T), age) ! bagify ! B]",
        )
        .expect("parses");
        let kola::Value::Bag(bag) = kola::eval_query(&db, &inter).expect("runs") else {
            unreachable!("bunion returns a bag");
        };
        assert!(
            e2.stats.dedup_work() < e1.stats.dedup_work(),
            "deferral must reduce duplicate-elimination work"
        );
        println!(
            "{:>6} | {:>12} {:>12} | {:>9} {:>9} {:>10}",
            people.len(),
            e1.stats.dedup_work(),
            e2.stats.dedup_work(),
            bag.distinct(),
            bag.len(),
            bag.len() - bag.distinct(),
        );
    }
    println!(
        "\nthe deferred plan carries multiplicities through the union and\n\
         projection, eliminating duplicates exactly once at the end — the\n\
         optimization §6 says bags exist to express."
    );
}
