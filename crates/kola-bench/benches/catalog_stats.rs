//! Experiment E11 — §4.2's rule-economy claims: "we have introduced 24
//! KOLA rules to replace the four transformations presented in this paper.
//! However, most of the rules introduced … have general applicability
//! beyond the transformations described here."
//!
//! Prints the catalog census and, per derivation, which rules fired — so
//! reuse across derivations is visible.

use kola_rewrite::engine::Trace;
use kola_rewrite::hidden_join::{garage_query_kg1, untangle};
use kola_rewrite::strategy::{apply, fix, seq, Runner};
use kola_rewrite::{Catalog, PropDb};
use std::collections::BTreeMap;

fn main() {
    let catalog = Catalog::paper();
    let props = PropDb::new();

    println!("# E11 — catalog census");
    let mut by_source: BTreeMap<String, usize> = BTreeMap::new();
    for r in catalog.rules() {
        *by_source.entry(format!("{:?}", r.source)).or_default() += 1;
    }
    for (source, n) in &by_source {
        println!("{source:<12} {n:>4}");
    }
    println!("{:<12} {:>4}", "total", catalog.len());
    let bidir = catalog.rules().iter().filter(|r| r.bidirectional).count();
    println!(
        "bidirectional: {bidir} (the paper's derivations use 2, 12, 14 \
         right-to-left)"
    );

    // Which rules fire in each paper derivation?
    let runner = Runner::new(&catalog, &props);
    let mut usage: BTreeMap<String, Vec<&'static str>> = BTreeMap::new();
    let mut record = |name: &'static str, trace: &Trace| {
        for step in &trace.steps {
            usage.entry(step.rule_id.clone()).or_default().push(name);
        }
    };

    let t1 = kola::parse::parse_query("iterate(Kp(T), city) . iterate(Kp(T), addr) ! P").unwrap();
    let mut trace = Trace::new();
    runner.run(&fix(&["11", "6", "5"]), t1, &mut trace);
    record("T1K", &trace);

    let t2 = kola::parse::parse_query("iterate(Kp(T), age) . iterate(gt @ (age, Kf(25)), id) ! P")
        .unwrap();
    let mut trace = Trace::new();
    runner.run(
        &seq(vec![
            apply("11"),
            fix(&["3", "e32", "1"]),
            apply("13"),
            apply("7"),
            apply("12-1"),
        ]),
        t2,
        &mut trace,
    );
    record("T2K", &trace);

    let garage = untangle(&catalog, &props, &garage_query_kg1());
    record("Garage", &garage.trace);

    println!("\n# rules fired per derivation (reuse across derivations)");
    println!("{:>6} {:>6} | derivations", "rule", "fires");
    let mut reused = 0;
    for (rule, derivations) in &usage {
        let mut names: Vec<&str> = derivations.to_vec();
        names.dedup();
        if names.len() > 1 {
            reused += 1;
        }
        println!(
            "{:>6} {:>6} | {}",
            rule,
            derivations.len(),
            names.join(", ")
        );
    }
    println!(
        "\n{} distinct rules fired across the three derivations; {} of them \
         in more than one — the generality the paper claims.",
        usage.len(),
        reused
    );
}
