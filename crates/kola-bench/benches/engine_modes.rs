//! Engine-mode comparison: the boxed reference engine vs the fast engine's
//! three layers (interning, discrimination-tree indexing, normalization
//! memo) — plus the catalog-size sweep behind the flat-match gate.
//!
//! Emits a machine-readable `BENCH_rewrite.json` at the repository root so
//! the README table and CI gate consume the same numbers this binary
//! prints. Environment switches:
//!
//! - `BENCH_SMOKE=1` — short warmup/batches (sub-second total), for CI.
//! - `BENCH_ENFORCE=1` — exit nonzero if (a) the indexed engine is slower
//!   than the naive engine on the fig4 workload, (b) per-step match cost
//!   under the tree index is not flat (±20%) from the 154-rule seed catalog
//!   to the full 500+-rule closed catalog (the `sweep` rows), or (c) the
//!   saturating engine's extracted plan costs more than the fixpoint
//!   engine's output at any sweep point, or its per-step cost is not flat
//!   across the same catalog sizes (the `saturation` rows).

use kola::term::{Func, Query};
use kola_bench::{bench_ns, smoke_mode};
use kola_rewrite::saturate::term_cost;
use kola_rewrite::{
    rewrite_fix_with, Budget, Catalog, Engine, EngineConfig, FaultPlan, Oriented, PropDb, TermSize,
};
use std::hint::black_box;
use std::sync::Arc;

struct Workload {
    name: &'static str,
    /// Rule ids to orient forward; empty = the full forward catalog.
    rule_ids: &'static [&'static str],
    query: Query,
}

fn workloads() -> Vec<Workload> {
    let fig4_t1 =
        kola::parse::parse_query("iterate(Kp(T), city) . iterate(Kp(T), addr) ! P").unwrap();

    // A ~2000-node already-normal sibling next to a 50-redex id-chain: the
    // naive engine re-scans the sibling on every one of the 50 steps; the
    // fast engine's normal-subtree marks and cached sizes keep each step
    // O(changed subtree).
    fn big_normal(depth: usize) -> Func {
        if depth == 0 {
            Func::Prim(Arc::from("age"))
        } else {
            Func::PairWith(
                Box::new(big_normal(depth - 1)),
                Box::new(big_normal(depth - 1)),
            )
        }
    }
    let mut chain = Func::Prim(Arc::from("age"));
    for _ in 0..50 {
        chain = Func::Compose(Box::new(Func::Id), Box::new(chain));
    }
    let sparse = Query::PairQ(
        Box::new(Query::App(
            big_normal(10),
            Box::new(Query::Extent(Arc::from("P"))),
        )),
        Box::new(Query::App(chain, Box::new(Query::Extent(Arc::from("Q"))))),
    );

    vec![
        // The enforced workload: the Figure 4 T1 derivation query against
        // the full forward catalog — the realistic optimizer setting, where
        // every step must consider every registered rule.
        Workload {
            name: "fig4",
            rule_ids: &[],
            query: fig4_t1.clone(),
        },
        // Same query, only the three rules its derivation needs: the
        // best case for the naive engine (nothing to index away).
        Workload {
            name: "fig4_minimal",
            rule_ids: &["11", "6", "5"],
            query: fig4_t1,
        },
        // The sparse-redex workload: interning + normal-marks dominate.
        Workload {
            name: "sparse_redex",
            rule_ids: &["1", "2"],
            query: sparse,
        },
    ]
}

fn rules_for<'a>(catalog: &'a Catalog, ids: &[&str]) -> Vec<Oriented<'a>> {
    if ids.is_empty() {
        catalog.rules().iter().map(Oriented::fwd).collect()
    } else {
        ids.iter()
            .map(|id| Oriented::fwd(catalog.get(id).expect("known rule id")))
            .collect()
    }
}

struct Row {
    name: &'static str,
    naive_ns: u128,
    interned_ns: u128,
    indexed_ns: u128,
    memoized_ns: u128,
}

/// One catalog-size point of the flat-match sweep: the fig4 query
/// normalized over the first `rules` catalog rules, tree-indexed vs
/// head-indexed, cost expressed per rewrite step.
struct SweepRow {
    rules: usize,
    steps: usize,
    tree_ns: u128,
    head_ns: u128,
}

impl SweepRow {
    fn tree_per_step(&self) -> f64 {
        self.tree_ns as f64 / self.steps.max(1) as f64
    }
    fn head_per_step(&self) -> f64 {
        self.head_ns as f64 / self.steps.max(1) as f64
    }
}

/// Seed-catalog size: figures 5+8, structural, and the first extended pool
/// — the rule count before the n-family and the systematic closure were
/// added. The sweep's baseline point.
const SEED_RULES: usize = 154;

/// One catalog-size point of the saturation sweep: the same query run
/// through the saturating engine, with the structural cost gate's inputs
/// (extracted vs fixpoint cost under term size) recorded alongside.
struct SatRow {
    rules: usize,
    steps: usize,
    sat_ns: u128,
    extracted_cost: u64,
    fixpoint_cost: u64,
}

impl SatRow {
    fn per_step(&self) -> f64 {
        self.sat_ns as f64 / self.steps.max(1) as f64
    }
}

fn size_cost(q: &Query) -> u64 {
    let mut it = kola::intern::Interner::new();
    term_cost(&it.intern_query(&q.normalize()), &TermSize)
}

/// The sweep workload: the fig4 T1 derivation with an id-compose tower
/// spliced into each chain. Plain fig4 normalizes in **one** step at every
/// catalog size, so its "per-step" cost was really per-run overhead — the
/// tower forces a genuinely multi-step derivation (one id-elimination per
/// `id ∘`) through full candidate dispatch on every step, which is the
/// thing the flat-match gate claims stays flat.
fn sweep_query() -> Query {
    let ids = "id . ".repeat(20);
    let s = format!("iterate(Kp(T), city) . {ids}iterate(Kp(T), addr) . {ids}city ! P");
    kola::parse::parse_query(&s).unwrap()
}

/// Measure fresh-normalization cost at each catalog-prefix size. Engines
/// are reused (index built once, outside the timing), but caches are
/// dropped before every iteration so each measures a cold normalization
/// through a warm index — per-step *match* cost, not memo replay.
///
/// The sizes are measured in three interleaved rounds and each point
/// keeps its fastest round: the gate below compares points *against each
/// other*, so a CPU-throttling window or background load landing on one
/// slice of a sequential run must not masquerade as catalog-size growth.
/// A genuine O(rules) cost survives the min — it inflates every round of
/// the larger points equally.
fn sweep(catalog: &Catalog, props: &PropDb, sizes: &[usize], query: &Query) -> Vec<SweepRow> {
    let budget = Budget::default();
    let mut points: Vec<(usize, usize, Engine, Engine)> = sizes
        .iter()
        .map(|&size| {
            let rules: Vec<Oriented> = catalog.rules()[..size].iter().map(Oriented::fwd).collect();
            let mut tree = Engine::new(rules.clone(), props, EngineConfig::indexed());
            let mut head = Engine::new(rules, props, EngineConfig::head_indexed());
            let reference = tree.normalize(query, &budget);
            let check = head.normalize(query, &budget);
            assert_eq!(
                check.query, reference.query,
                "sweep@{size}: head-indexed engine disagrees with tree-indexed"
            );
            assert!(
                reference.report.steps > 1,
                "sweep@{size}: workload normalized in {} step(s) — per-step \
                 cost would be per-run overhead, not match cost",
                reference.report.steps
            );
            (size, reference.report.steps, tree, head)
        })
        .collect();

    let mut rows: Vec<SweepRow> = points
        .iter()
        .map(|&(rules, steps, ..)| SweepRow {
            rules,
            steps,
            tree_ns: u128::MAX,
            head_ns: u128::MAX,
        })
        .collect();
    for round in 0..3 {
        for (row, (size, _, tree, head)) in rows.iter_mut().zip(points.iter_mut()) {
            let tree_ns = bench_ns(&format!("sweep{size}/tree#{round}"), || {
                tree.reset_caches();
                tree.normalize(black_box(query), &budget)
            });
            let head_ns = bench_ns(&format!("sweep{size}/head#{round}"), || {
                head.reset_caches();
                head.normalize(black_box(query), &budget)
            });
            row.tree_ns = row.tree_ns.min(tree_ns);
            row.head_ns = row.head_ns.min(head_ns);
        }
    }
    rows
}

/// The saturation sweep: the same query and catalog prefixes through
/// `EngineConfig::saturating()`. Per-step cost covers the internal seed
/// wave plus match-apply-rebuild rounds; the cost columns feed the
/// structural gate (extracted ≤ fixpoint, under the extraction model).
fn sat_sweep(catalog: &Catalog, props: &PropDb, sizes: &[usize], query: &Query) -> Vec<SatRow> {
    // Saturation explores strictly more than the fixpoint run; give it a
    // bounded step budget so each point measures a comparable workload.
    let budget = Budget::with_steps(256).depth(64).term_size(16_384);
    sizes
        .iter()
        .map(|&size| {
            let rules: Vec<Oriented> = catalog.rules()[..size].iter().map(Oriented::fwd).collect();
            let mut fix = Engine::new(rules.clone(), props, EngineConfig::indexed());
            let fixpoint_cost = size_cost(&fix.normalize(query, &budget).query);
            let mut sat = Engine::new(rules, props, EngineConfig::saturating());
            let out = sat.normalize(query, &budget);
            let steps = out.report.steps;
            let extracted_cost = size_cost(&out.query);
            let sat_ns = bench_ns(&format!("saturation{size}"), || {
                sat.reset_caches();
                sat.normalize(black_box(query), &budget)
            });
            SatRow {
                rules: size,
                steps,
                sat_ns,
                extracted_cost,
                fixpoint_cost,
            }
        })
        .collect()
}

fn main() {
    let catalog = Catalog::paper();
    let props = PropDb::new();
    let budget = Budget::default();
    let faults = FaultPlan::default();

    let mut rows = Vec::new();
    for w in workloads() {
        let rules = rules_for(&catalog, w.rule_ids);
        let reference = rewrite_fix_with(&rules, &w.query, &props, &budget, &faults);

        let naive_ns = bench_ns(&format!("{}/naive", w.name), || {
            rewrite_fix_with(&rules, black_box(&w.query), &props, &budget, &faults)
        });

        let mut mode_ns = [0u128; 3];
        let modes = [
            ("interned", EngineConfig::interned_only()),
            ("indexed", EngineConfig::indexed()),
            ("memoized", EngineConfig::fast()),
        ];
        for (slot, (label, config)) in modes.into_iter().enumerate() {
            let mut engine = Engine::new(rules_for(&catalog, w.rule_ids), &props, config);
            // Parity sanity check before timing: a fast engine that wins by
            // computing something else wins nothing.
            let out = engine.normalize(&w.query, &budget);
            assert_eq!(
                out.query, reference.query,
                "{}/{label} disagrees with the reference engine",
                w.name
            );
            mode_ns[slot] = bench_ns(&format!("{}/{label}", w.name), || {
                engine.normalize(black_box(&w.query), &budget)
            });
        }

        rows.push(Row {
            name: w.name,
            naive_ns,
            interned_ns: mode_ns[0],
            indexed_ns: mode_ns[1],
            memoized_ns: mode_ns[2],
        });
    }

    // Catalog-size sweep: a multi-step fig4 variant over growing catalog
    // prefixes. The 154-rule prefix is exactly the pre-closure seed
    // catalog; the last point is the full closed pool. The claim under
    // test: the discrimination tree keeps per-step match cost flat as the
    // pool grows past the paper's 500-rule operating point.
    let q = sweep_query();
    assert!(
        catalog.len() >= 500,
        "closed catalog below the 500-rule operating point: {}",
        catalog.len()
    );
    let sizes = [SEED_RULES, 300, catalog.len()];
    let sweep = sweep(&catalog, &props, &sizes, &q);
    let saturation = sat_sweep(&catalog, &props, &sizes, &q);

    let json = render_json(&rows, &sweep, &saturation);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_rewrite.json");
    std::fs::write(path, &json).expect("write BENCH_rewrite.json");
    println!("wrote {path}");

    if std::env::var("BENCH_ENFORCE").is_ok_and(|v| !v.is_empty() && v != "0") {
        let fig4 = rows.iter().find(|r| r.name == "fig4").expect("fig4 row");
        if fig4.indexed_ns > fig4.naive_ns {
            eprintln!(
                "BENCH_ENFORCE: indexed engine ({} ns) slower than naive ({} ns) on fig4",
                fig4.indexed_ns, fig4.naive_ns
            );
            std::process::exit(1);
        }
        println!(
            "BENCH_ENFORCE: ok (fig4 indexed {:.2}x naive)",
            fig4.naive_ns as f64 / fig4.indexed_ns.max(1) as f64
        );

        // The flat-match gate: per-step cost at the full closed catalog
        // must stay within +20% of the seed-catalog cost. Only an upper
        // bound — getting *faster* with more rules is not a failure.
        let seed = &sweep[0];
        let full = sweep.last().expect("sweep has points");
        let ratio = full.tree_per_step() / seed.tree_per_step().max(f64::MIN_POSITIVE);
        if ratio > 1.2 {
            eprintln!(
                "BENCH_ENFORCE: per-step match cost not flat across catalog sizes: \
                 {:.1} ns/step @ {} rules vs {:.1} ns/step @ {} rules (ratio {ratio:.3} > 1.2)",
                seed.tree_per_step(),
                seed.rules,
                full.tree_per_step(),
                full.rules,
            );
            std::process::exit(1);
        }
        println!(
            "BENCH_ENFORCE: ok (per-step cost {} -> {} rules: ratio {ratio:.3})",
            seed.rules, full.rules
        );

        // The saturation gates. (1) Structural: the extracted plan never
        // costs more than the fixpoint output — the seed wave makes this
        // an invariant, so a violation is an engine bug, not noise. (2)
        // Flat match: the e-graph trie walk must inherit the tree index's
        // catalog-size independence.
        for s in &saturation {
            if s.extracted_cost > s.fixpoint_cost {
                eprintln!(
                    "BENCH_ENFORCE: saturation@{} extracted cost {} > fixpoint {}",
                    s.rules, s.extracted_cost, s.fixpoint_cost
                );
                std::process::exit(1);
            }
        }
        let seed = &saturation[0];
        let full = saturation.last().expect("saturation has points");
        let ratio = full.per_step() / seed.per_step().max(f64::MIN_POSITIVE);
        if ratio > 1.2 {
            eprintln!(
                "BENCH_ENFORCE: saturation per-step cost not flat across catalog sizes: \
                 {:.1} ns/step @ {} rules vs {:.1} ns/step @ {} rules (ratio {ratio:.3} > 1.2)",
                seed.per_step(),
                seed.rules,
                full.per_step(),
                full.rules,
            );
            std::process::exit(1);
        }
        println!(
            "BENCH_ENFORCE: ok (saturation extracted<=fixpoint at every point; \
             per-step ratio {ratio:.3})"
        );
    }
}

fn render_json(rows: &[Row], sweep: &[SweepRow], saturation: &[SatRow]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"engine_modes\",\n");
    out.push_str(&format!("  \"smoke\": {},\n", smoke_mode()));
    out.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let speedup = |ns: u128| r.naive_ns as f64 / ns.max(1) as f64;
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"naive_ns\": {}, \"interned_ns\": {}, \"indexed_ns\": {}, \
             \"memoized_ns\": {}, \"speedup_interned\": {:.2}, \"speedup_indexed\": {:.2}, \
             \"speedup_memoized\": {:.2}}}{}\n",
            r.name,
            r.naive_ns,
            r.interned_ns,
            r.indexed_ns,
            r.memoized_ns,
            speedup(r.interned_ns),
            speedup(r.indexed_ns),
            speedup(r.memoized_ns),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"sweep\": [\n");
    for (i, s) in sweep.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rules\": {}, \"steps\": {}, \"tree_ns\": {}, \"head_ns\": {}, \
             \"tree_per_step_ns\": {:.1}, \"head_per_step_ns\": {:.1}}}{}\n",
            s.rules,
            s.steps,
            s.tree_ns,
            s.head_ns,
            s.tree_per_step(),
            s.head_per_step(),
            if i + 1 < sweep.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"saturation\": [\n");
    for (i, s) in saturation.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rules\": {}, \"steps\": {}, \"sat_ns\": {}, \"per_step_ns\": {:.1}, \
             \"extracted_cost\": {}, \"fixpoint_cost\": {}}}{}\n",
            s.rules,
            s.steps,
            s.sat_ns,
            s.per_step(),
            s.extracted_cost,
            s.fixpoint_cost,
            if i + 1 < saturation.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
