//! Experiment E5 (timing): rewrite throughput for the Figure 4 derivations
//! and the Figure 3 garage-query untangling.

use criterion::{criterion_group, criterion_main, Criterion};
use kola_rewrite::engine::Trace;
use kola_rewrite::hidden_join::{garage_query_kg1, synthetic_hidden_join, untangle};
use kola_rewrite::strategy::{apply, fix, seq, Runner};
use kola_rewrite::{Catalog, PropDb};
use std::hint::black_box;

fn bench_derivations(c: &mut Criterion) {
    let catalog = Catalog::paper();
    let props = PropDb::new();
    let runner = Runner::new(&catalog, &props);

    let t1 = kola::parse::parse_query("iterate(Kp(T), city) . iterate(Kp(T), addr) ! P")
        .unwrap();
    c.bench_function("fig4/t1k_derivation", |b| {
        b.iter(|| {
            let mut trace = Trace::new();
            let (out, _) = runner.run(&fix(&["11", "6", "5"]), black_box(t1.clone()), &mut trace);
            black_box(out)
        })
    });

    let t2 = kola::parse::parse_query(
        "iterate(Kp(T), age) . iterate(gt @ (age, Kf(25)), id) ! P",
    )
    .unwrap();
    let t2_strategy = seq(vec![
        apply("11"),
        fix(&["3", "e32", "1"]),
        apply("13"),
        apply("7"),
        apply("12-1"),
    ]);
    c.bench_function("fig4/t2k_derivation", |b| {
        b.iter(|| {
            let mut trace = Trace::new();
            let (out, _) = runner.run(&t2_strategy, black_box(t2.clone()), &mut trace);
            black_box(out)
        })
    });

    let kg1 = garage_query_kg1();
    c.bench_function("fig3/garage_untangle", |b| {
        b.iter(|| black_box(untangle(&catalog, &props, black_box(&kg1))))
    });

    let mut group = c.benchmark_group("fig7/untangle_by_depth");
    group.sample_size(20);
    for n in [1usize, 2, 4, 6] {
        let q = synthetic_hidden_join(n);
        group.bench_function(format!("depth_{n}"), |b| {
            b.iter(|| black_box(untangle(&catalog, &props, black_box(&q))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_derivations);
criterion_main!(benches);
