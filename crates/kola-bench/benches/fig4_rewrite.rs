//! Experiment E5 (timing): rewrite throughput for the Figure 4 derivations
//! and the Figure 3 garage-query untangling.

use kola_bench::bench;
use kola_rewrite::engine::Trace;
use kola_rewrite::hidden_join::{garage_query_kg1, synthetic_hidden_join, untangle};
use kola_rewrite::strategy::{apply, fix, seq, Runner};
use kola_rewrite::{Catalog, PropDb};
use std::hint::black_box;

fn main() {
    let catalog = Catalog::paper();
    let props = PropDb::new();
    let runner = Runner::new(&catalog, &props);

    let t1 = kola::parse::parse_query("iterate(Kp(T), city) . iterate(Kp(T), addr) ! P").unwrap();
    bench("fig4/t1k_derivation", || {
        let mut trace = Trace::new();
        let (out, _) = runner.run(&fix(&["11", "6", "5"]), black_box(t1.clone()), &mut trace);
        out
    });

    let t2 = kola::parse::parse_query("iterate(Kp(T), age) . iterate(gt @ (age, Kf(25)), id) ! P")
        .unwrap();
    let t2_strategy = seq(vec![
        apply("11"),
        fix(&["3", "e32", "1"]),
        apply("13"),
        apply("7"),
        apply("12-1"),
    ]);
    bench("fig4/t2k_derivation", || {
        let mut trace = Trace::new();
        let (out, _) = runner.run(&t2_strategy, black_box(t2.clone()), &mut trace);
        out
    });

    let kg1 = garage_query_kg1();
    bench("fig3/garage_untangle", || {
        untangle(&catalog, &props, black_box(&kg1))
    });

    for n in [1usize, 2, 4, 6] {
        let q = synthetic_hidden_join(n);
        bench(&format!("fig7/untangle_by_depth/depth_{n}"), || {
            untangle(&catalog, &props, black_box(&q))
        });
    }
}
