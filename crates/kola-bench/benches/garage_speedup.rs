//! Experiments E8 + E15: the payoff of untangling. Prints the series the
//! evaluation needs — abstract operation counts and wall time for the
//! hidden-join form (KG1) vs the untangled nest-of-join form (KG2), naive
//! and hash execution, swept over database scale.
//!
//! Expected shape: KG1 grows ~quadratically in scale regardless of mode;
//! KG2 under hash operators grows ~linearly, so the gap widens with scale.

use kola_exec::datagen::{generate, DataSpec};
use kola_exec::{Executor, Mode};
use kola_rewrite::hidden_join::{garage_query_kg1, garage_query_kg2};
use std::time::Instant;

fn main() {
    let kg1 = garage_query_kg1();
    let kg2 = garage_query_kg2();
    println!("# E8/E15 — garage query: hidden join vs untangled nest-of-join");
    println!(
        "{:>6} {:>6} | {:>12} {:>12} {:>12} | {:>10} {:>10} | {:>8}",
        "|V|", "|P|", "KG1 ops", "KG2 naive", "KG2 hash", "KG1 us", "KG2 us", "speedup"
    );
    for factor in [1usize, 2, 4, 8, 16, 32] {
        let spec = DataSpec::scaled(factor, 7);
        let db = generate(&spec);

        let ops = |q, mode| {
            let mut ex = Executor::new(&db, mode);
            ex.run(q).expect("query evaluates");
            ex.stats.total()
        };
        let time_us = |q| {
            let mut ex = Executor::new(&db, Mode::Smart);
            let reps = 5;
            let start = Instant::now();
            for _ in 0..reps {
                ex.run(q).expect("query evaluates");
            }
            start.elapsed().as_micros() as f64 / reps as f64
        };

        let kg1_ops = ops(&kg1, Mode::Smart); // hash can't help: no join node
        let kg2_naive = ops(&kg2, Mode::Naive);
        let kg2_hash = ops(&kg2, Mode::Smart);
        let kg1_us = time_us(&kg1);
        let kg2_us = time_us(&kg2);
        println!(
            "{:>6} {:>6} | {:>12} {:>12} {:>12} | {:>10.0} {:>10.0} | {:>7.1}x",
            spec.vehicles,
            spec.persons,
            kg1_ops,
            kg2_naive,
            kg2_hash,
            kg1_us,
            kg2_us,
            kg1_ops as f64 / kg2_hash as f64
        );
    }
    println!(
        "\nseries shape: KG1 ops grow quadratically with scale; KG2 under\n\
         hash operators grows near-linearly — the crossover is immediate and\n\
         the factor widens with scale, matching §4.1's motivation."
    );
}
