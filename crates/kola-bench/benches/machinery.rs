//! Experiments E3 + E4 — the machinery ledger: how many variable-handling
//! operations (free-variable analyses, α-renamings, substitutions) each
//! AQUA transformation consumes, against the structurally-zero KOLA column.
//!
//! This is the paper's §2-vs-§3 table that its prose implies but never
//! prints.

use kola_aqua::rules::{
    code_motion, query_a3, query_a4, query_t1, query_t2, t1_compose_apps, t2_decompose_sel,
};
use kola_aqua::{Expr, Machinery};

fn main() {
    println!("# E3/E4 — variable machinery per transformation");
    println!(
        "{:<24} {:>8} | {:>8} {:>8} {:>8} {:>7} | {:>6}",
        "transformation", "fired", "fv-anal", "renames", "substs", "total", "KOLA"
    );

    type RuleFn = fn(&Expr, &mut Machinery) -> Option<Expr>;
    let t1 = query_t1();
    let t2 = query_t2();
    let a4 = query_a4();
    let a3 = query_a3();
    let rows: Vec<(&str, &Expr, RuleFn)> = vec![
        ("T1 compose (applies)", &t1, t1_compose_apps),
        ("T2 decompose (applies)", &t2, t2_decompose_sel),
        ("code motion on A4", &a4, code_motion),
        ("code motion on A3", &a3, code_motion),
    ];
    for (name, q, rule) in rows {
        let mut m = Machinery::default();
        let fired = rule(q, &mut m).is_some();
        println!(
            "{:<24} {:>8} | {:>8} {:>8} {:>8} {:>7} | {:>6}",
            name,
            if fired { "yes" } else { "no" },
            m.free_var_analyses,
            m.renames,
            m.substitutions,
            m.total(),
            0, // KOLA rules are patterns; there is no machinery to count.
        );
    }
    println!(
        "\nthe KOLA column is zero *by construction*: a Rule holds two\n\
         patterns and declarative preconditions — there is no code slot,\n\
         so there is nothing to invoke. Note the A3 row: the AQUA rule\n\
         burns analysis work even to conclude 'not applicable', while the\n\
         KOLA engine rejects K3 by a failed two-node pattern match."
    );
}
