//! Experiment E13 — §4.2's monolithic-rule critique, measured:
//!
//! 1. The monolithic head routine's analysis cost grows with nesting depth
//!    — on matching *and* non-matching queries (the dive is wasted on the
//!    latter).
//! 2. After a failed monolithic match the query is unchanged; the gradual
//!    strategy's early steps still simplify it.

use kola::parse::parse_query;
use kola_rewrite::hidden_join::{synthetic_hidden_join, untangle};
use kola_rewrite::monolithic::recognize;
use kola_rewrite::{Catalog, PropDb};

/// Hidden-join near-miss of depth `n` (innermost set depends on the
/// environment, so the monolithic rule cannot fire).
fn near_miss(n: usize) -> kola::Query {
    let mut body = String::from("child");
    for _ in 0..n {
        body = format!("flat . iter(Kp(T), child . pi2) . (id, {body})");
    }
    parse_query(&format!("iterate(Kp(T), (id, {body})) ! A")).unwrap()
}

fn main() {
    let catalog = Catalog::paper();
    let props = PropDb::new();

    println!("# E13a — head-routine dive cost by nesting depth");
    println!(
        "{:>5} | {:>10} {:>12} | {:>10} {:>12}",
        "depth", "hit nodes", "hit depth", "miss nodes", "miss depth"
    );
    for n in 1..=8 {
        let (hit, hs) = recognize(&synthetic_hidden_join(n));
        let (miss, ms) = recognize(&near_miss(n));
        assert!(hit.is_some() && miss.is_none());
        println!(
            "{:>5} | {:>10} {:>12} | {:>10} {:>12}",
            n, hs.nodes_visited, hs.dive_depth, ms.nodes_visited, ms.dive_depth
        );
    }
    println!(
        "\nthe dive grows linearly with depth in both columns: the analysis\n\
         cost is paid in full even when the rule ends up inapplicable."
    );

    println!("\n# E13b — what a failed match leaves behind");
    println!(
        "{:>5} | {:>10} {:>14} {:>16}",
        "depth", "q size", "monolithic", "gradual size"
    );
    for n in 1..=5 {
        let q = near_miss(n);
        let before = q.size();
        let (mono, _) = recognize(&q);
        let gradual = untangle(&catalog, &props, &q);
        println!(
            "{:>5} | {:>10} {:>14} {:>16}",
            n,
            before,
            if mono.is_some() { "fired" } else { "unchanged" },
            gradual.query.size(),
        );
        assert!(mono.is_none());
        assert_ne!(gradual.query, q, "gradual always makes progress");
    }
    println!(
        "\nthe monolithic rule leaves every near-miss untouched; the gradual\n\
         strategy still normalizes them (the paper: \"the query has still\n\
         been simplified enough that other strategies can be considered\")."
    );
}
