//! Service latency/throughput across worker counts, on two streams.
//!
//! **chaos** — the deterministic chaos stream (same generator and seed as
//! the soak test): clean requests, deep adversarial terms, poison rules,
//! flood phases. Numbers describe the service *with* its degradation
//! machinery engaged — not a happy-path microbenchmark. Like the clean
//! stream, every chaos request carries a fixed 2 ms materialization stall
//! (timeouts are extended by the same stall, so expiry is
//! stall-independent), and the chaos wall-clock is the *serving* window
//! only — the post-hoc trace-replay audit is excluded.
//!
//! **clean** — the no-fault scaling stream: parseable queries with real
//! redexes, driven by 16 closed-loop clients, each request carrying a
//! fixed 2 ms simulated materialization stall (work a worker does while
//! holding no locks). The stall matters: this repo's benchmarks run on a
//! **single core**, where CPU-bound work cannot scale with workers at all
//! — what *can* scale is concurrency, N workers overlapping N stalls.
//! `scaling_efficiency` = (throughput at N workers) / (N × throughput at
//! 1 worker) against each stream's own 1-worker row.
//!
//! With `BENCH_ENFORCE=1` the run fails unless **both** streams scale:
//! clean 4-worker throughput ≥ 1.5× 1-worker, and chaos 8-worker
//! throughput ≥ 2× 1-worker (4-worker ≥ 1.5× in smoke mode, which skips
//! the 8-worker-scale confidence a 300-request stream cannot give). The
//! chaos gate is the one the degraded path earns: with the breaker, trace
//! ring, and reference rung sharded per worker, a fault-saturated stream
//! must scale too — a global lock on any failure surface would flatten it.
//! The measured ratios on an idle host leave generous headroom for noisy
//! shared runners. The clean stream runs with tracing **off** — the
//! default service configuration — so its gate doubles as the
//! zero-cost-when-disabled check for the observability layer.
//!
//! The chaos rows run with tracing **on**: their numbers describe the
//! service with the full degradation *and* provenance machinery engaged,
//! and the 4-worker row's metric snapshot, trace-replay tally, and
//! conservation verdict are emitted as `BENCH_obs.json`.
//!
//! **repeated** — the plan-cache workload: 8 closed-loop clients drawing
//! Zipf-skewed repeats from a fixed 32-query pool at a configured target
//! hit rate (0%, 50%, 90%), the rest a never-repeating unique tail. The
//! 0% row is the baseline: every request takes a worker and its 2 ms
//! stall. At 90% the cache answers nine requests in ten on the submitting
//! thread — no queue slot, no worker, no stall — which is the asymmetry
//! the rows measure. Both scaling streams run with the cache **off**
//! (chaos via `cache_capacity: 0` / `repeated: 0.0`, clean inside
//! `run_clean_stream`): their gates measure worker concurrency, and a
//! cache would answer part of the stream without workers touching it.
//! Cache-on chaos coverage lives in the chaos soak test.
//!
//! With `BENCH_ENFORCE=1` the repeated rows gate too: the 90%-target row
//! must achieve ≥ 0.90 hits, serve a sub-10 µs p50 (the stream is
//! hit-dominated, so its p50 *is* the cache-hit latency), and carry ≥ 10×
//! the 0%-row throughput (≥ 6× in smoke mode, where the short stream
//! leaves the ratio noisier). Every row also cross-checks the
//! client-tallied caught panics against the metric counter — the
//! per-row conservation audit.
//!
//! **tenant_solo / tenant_noisy** — the noisy-neighbor pair: a clean
//! victim tenant measured twice on an 8-worker two-tenant service, once
//! alone and once while an aggressor tenant pours poison-rule panics and
//! admission floods into the same workers. Both rows report the
//! *victim's* latency and throughput; the aggressor appears only through
//! whatever damage it manages. With `BENCH_ENFORCE=1` the pair gates the
//! isolation claim quantitatively: victim p99 under attack ≤ 2× its solo
//! p99, and victim throughput ≥ 0.7× solo. The qualitative claims (victim
//! taxonomy unchanged, no cross-tenant breaker charge or cache
//! invalidation, balanced per-tenant books) are asserted unconditionally
//! on both rows via `TenantChaosReport::violations`.
//!
//! Emits `BENCH_service.json` (and `BENCH_obs.json`) at the repository
//! root. `BENCH_SMOKE=1` shrinks the streams for CI.

use kola_bench::smoke_mode;
use kola_service::{
    percentile, run_chaos, run_clean_stream, run_noisy_neighbor, run_repeated_stream, ChaosConfig,
    ChaosReport, CleanConfig, RepeatedConfig, TenantChaosConfig,
};

struct Row {
    stream: &'static str,
    workers: usize,
    requests: usize,
    wall_ms: u128,
    throughput_rps: f64,
    scaling_efficiency: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    overloaded: usize,
    passthrough: usize,
    caught_panics: usize,
    peak_arena_nodes: usize,
    /// Target plan-cache hit rate ([0, 1]; 0 for the non-repeated streams).
    hit_target: f64,
    /// Achieved hit rate over the timed window.
    hit_actual: f64,
    /// Plan-cache hits inside the timed window.
    cache_hits: u64,
}

impl Row {
    fn print(&self) {
        println!(
            "service/{}/{}w: {} req in {} ms ({:.0} req/s, eff {:.2})  \
             p50 {} us  p95 {} us  p99 {} us  shed {}  passthrough {}  \
             panics-caught {}  peak-arena {}",
            self.stream,
            self.workers,
            self.requests,
            self.wall_ms,
            self.throughput_rps,
            self.scaling_efficiency,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.overloaded,
            self.passthrough,
            self.caught_panics,
            self.peak_arena_nodes,
        );
        if self.hit_target > 0.0 || self.cache_hits > 0 {
            println!(
                "service/{}/{}w: hit target {:.0}% -> achieved {:.1}% ({} hits)",
                self.stream,
                self.workers,
                self.hit_target * 100.0,
                self.hit_actual * 100.0,
                self.cache_hits,
            );
        }
    }
}

const WORKER_COUNTS: [usize; 3] = [1, 4, 8];

fn chaos_rows(requests: usize) -> (Vec<Row>, Option<(ChaosConfig, ChaosReport)>) {
    let mut rows = Vec::new();
    let mut obs = None;
    for workers in WORKER_COUNTS {
        let cfg = ChaosConfig {
            requests,
            workers,
            // The gate re-evaluates every optimized plan; leave it off so
            // the timing isolates queue + ladder + breaker overhead.
            verify: false,
            // Tracing on: the chaos rows measure (and the 4-worker row
            // exports) the service with provenance recording engaged.
            tracing: true,
            // Cache off: these are the worker-scaling rows (see the module
            // docs); the repeated rows below are the cache benchmark.
            cache_capacity: 0,
            repeated: 0.0,
            ..ChaosConfig::default()
        };
        let report = run_chaos(&cfg);

        let violations = report.violations();
        assert!(
            violations.is_empty(),
            "chaos invariants violated during bench:\n{}",
            violations.join("\n")
        );
        // Per-row conservation cross-check: every panic the clients saw in
        // a reply is in the books, and nothing panicked unobserved.
        assert_eq!(
            report.metrics.counter("caught_panics"),
            report.caught_panics as u64,
            "chaos/{workers}w: caught-panic books diverge from client tally"
        );
        if workers == 4 {
            obs = Some((cfg.clone(), report.clone()));
        }

        let mut lat = report.latencies_us.clone();
        lat.sort_unstable();
        // Serving window only: the post-hoc replay audit is not the
        // service's concurrency and must not dilute the scaling rows.
        let throughput = report.throughput_rps();
        let row = Row {
            stream: "chaos",
            workers,
            requests: report.requests,
            wall_ms: report.elapsed.as_millis(),
            throughput_rps: throughput,
            scaling_efficiency: efficiency(&rows, workers, throughput),
            p50_us: percentile(&lat, 50.0),
            p95_us: percentile(&lat, 95.0),
            p99_us: percentile(&lat, 99.0),
            overloaded: report.overloaded,
            passthrough: report.passthrough,
            caught_panics: report.caught_panics,
            peak_arena_nodes: report.peak_arena_nodes,
            hit_target: 0.0,
            hit_actual: 0.0,
            cache_hits: report.cache_hits,
        };
        row.print();
        rows.push(row);
    }
    (rows, obs)
}

fn clean_rows(requests: usize) -> Vec<Row> {
    let mut rows = Vec::new();
    for workers in WORKER_COUNTS {
        let cfg = CleanConfig {
            requests,
            workers,
            ..CleanConfig::default()
        };
        let report = run_clean_stream(&cfg);
        assert_eq!(
            report.other, 0,
            "clean stream must optimize every request on the fast rung \
             ({} of {} did not)",
            report.other, report.requests
        );
        let mut lat = report.latencies_us.clone();
        lat.sort_unstable();
        let throughput = report.throughput_rps();
        let row = Row {
            stream: "clean",
            workers,
            requests: report.requests,
            wall_ms: report.elapsed.as_millis(),
            throughput_rps: throughput,
            scaling_efficiency: efficiency(&rows, workers, throughput),
            p50_us: percentile(&lat, 50.0),
            p95_us: percentile(&lat, 95.0),
            p99_us: percentile(&lat, 99.0),
            overloaded: 0,
            passthrough: 0,
            caught_panics: 0,
            peak_arena_nodes: report.peak_arena_nodes,
            hit_target: 0.0,
            hit_actual: 0.0,
            cache_hits: 0,
        };
        row.print();
        rows.push(row);
    }
    rows
}

/// The plan-cache rows: one 4-worker repeated-traffic run per target hit
/// rate. The 0% row is the all-miss baseline the 90% row's throughput
/// gate compares against.
fn repeated_rows(requests: usize) -> Vec<Row> {
    let mut rows = Vec::new();
    for hit_target in [0.0, 0.5, 0.9] {
        let cfg = RepeatedConfig {
            requests,
            hit_target,
            // The baseline row disables the cache outright: its unique
            // tail would never hit anyway, but a disabled cache also pays
            // zero probe/claim overhead, making the comparison the honest
            // "service without this feature" one.
            cache_capacity: if hit_target > 0.0 { 2_048 } else { 0 },
            ..RepeatedConfig::default()
        };
        let report = run_repeated_stream(&cfg);
        assert!(
            report.violations.is_empty(),
            "repeated stream ({:.0}% target) violated invariants:\n{}",
            hit_target * 100.0,
            report.violations.join("\n")
        );
        // Per-row conservation cross-check (the repeated stream is
        // fault-free, so both sides must be zero).
        assert_eq!(report.caught_panics, 0);
        assert_eq!(report.metrics.counter("caught_panics"), 0);
        let mut lat = report.latencies_us.clone();
        lat.sort_unstable();
        let throughput = report.throughput_rps();
        let row = Row {
            stream: "repeated",
            workers: cfg.workers,
            requests: report.requests,
            wall_ms: report.elapsed.as_millis(),
            throughput_rps: throughput,
            scaling_efficiency: 1.0,
            p50_us: percentile(&lat, 50.0),
            p95_us: percentile(&lat, 95.0),
            p99_us: percentile(&lat, 99.0),
            overloaded: 0,
            passthrough: 0,
            caught_panics: report.caught_panics,
            peak_arena_nodes: 0,
            hit_target,
            hit_actual: report.hit_actual,
            cache_hits: report.cache_hits,
        };
        row.print();
        rows.push(row);
    }
    rows
}

/// The noisy-neighbor rows: the same clean victim measured solo and under
/// an aggressor tenant, on one 8-worker two-tenant service each. Row
/// numbers are the **victim's** view; the aggressor's sheds are printed
/// but gated only through the victim's degradation.
fn tenant_rows(requests: usize) -> Vec<Row> {
    let mut rows = Vec::new();
    for aggressor in [false, true] {
        let cfg = TenantChaosConfig {
            victim_requests: requests,
            aggressor_requests: requests,
            aggressor,
            ..TenantChaosConfig::default()
        };
        let report = run_noisy_neighbor(&cfg);
        let violations = report.violations();
        assert!(
            violations.is_empty(),
            "tenant isolation violated during bench ({}):\n{}",
            if aggressor { "noisy" } else { "solo" },
            violations.join("\n")
        );
        let mut lat = report.victim.latencies_us.clone();
        lat.sort_unstable();
        let row = Row {
            stream: if aggressor {
                "tenant_noisy"
            } else {
                "tenant_solo"
            },
            workers: cfg.workers,
            requests: report.victim.requests,
            wall_ms: report.victim_elapsed.as_millis(),
            throughput_rps: report.victim_throughput_rps(),
            scaling_efficiency: 1.0,
            p50_us: percentile(&lat, 50.0),
            p95_us: percentile(&lat, 95.0),
            p99_us: percentile(&lat, 99.0),
            overloaded: report.victim.overloaded,
            passthrough: report.victim.other,
            caught_panics: report.victim.caught_panics,
            peak_arena_nodes: report.peak_arena_nodes,
            hit_target: 0.0,
            hit_actual: 0.0,
            cache_hits: report.metrics.counter("cache_hits"),
        };
        row.print();
        if aggressor {
            println!(
                "service/tenant_noisy/{}w: aggressor drove {} req ({} quota sheds, \
                 {} caught panics, {} breaker trips) without touching the victim",
                cfg.workers,
                report.aggressor.requests,
                report.aggressor.overloaded,
                report.aggressor.caught_panics,
                report.aggressor_breaker_opened,
            );
        }
        rows.push(row);
    }
    rows
}

/// throughput_N / (N × throughput_1), against this stream's own 1-worker
/// row (1.0 for the 1-worker row itself).
fn efficiency(rows: &[Row], workers: usize, throughput: f64) -> f64 {
    match rows.iter().find(|r| r.workers == 1) {
        Some(base) if base.throughput_rps > 0.0 => {
            throughput / (workers as f64 * base.throughput_rps)
        }
        _ => 1.0,
    }
}

fn main() {
    let requests = if smoke_mode() { 300 } else { 4_000 };
    // The repeated rows need enough draws for the achieved hit rate to
    // concentrate; 300 is too few for a tight ratio gate.
    let repeated_requests = if smoke_mode() { 1_200 } else { 4_000 };
    let (mut rows, obs) = chaos_rows(requests);
    rows.extend(clean_rows(requests));
    rows.extend(repeated_rows(repeated_requests));
    rows.extend(tenant_rows(requests));

    // The CI scaling gates (scripts/ci.sh --bench-smoke sets
    // BENCH_ENFORCE): throughput must actually scale with workers on BOTH
    // streams. The thresholds are deliberately generous — an idle host
    // measures well past them — because CI runners are shared and noisy;
    // they still catch the regressions that matter (a global lock on the
    // hot or the failure path, per-request engine or rule-set rebuilds, a
    // serialized queue or breaker).
    let gate = |stream: &str, n: usize| -> f64 {
        let one = rows
            .iter()
            .find(|r| r.stream == stream && r.workers == 1)
            .expect("1-worker row");
        let n_row = rows
            .iter()
            .find(|r| r.stream == stream && r.workers == n)
            .expect("N-worker row");
        n_row.throughput_rps / one.throughput_rps.max(1e-9)
    };
    let clean4 = gate("clean", 4);
    let chaos4 = gate("chaos", 4);
    let chaos8 = gate("chaos", 8);
    println!("clean-stream scaling: 4w/1w = {clean4:.2}x");
    println!("chaos-stream scaling: 4w/1w = {chaos4:.2}x, 8w/1w = {chaos8:.2}x");
    if std::env::var("BENCH_ENFORCE").is_ok_and(|v| v == "1") {
        assert!(
            clean4 >= 1.5,
            "scaling gate: clean-stream 4-worker throughput is only \
             {clean4:.2}x the 1-worker run (gate: 1.5x) — worker \
             concurrency has regressed"
        );
        if smoke_mode() {
            // 300 requests cannot support an 8-worker claim; the smoke
            // gate checks the same property at 4 workers.
            assert!(
                chaos4 >= 1.5,
                "scaling gate: chaos-stream 4-worker throughput is only \
                 {chaos4:.2}x the 1-worker run (smoke gate: 1.5x) — the \
                 degraded path has re-serialized"
            );
            println!("scaling gates passed (clean 4w >= 1.5x, chaos 4w >= 1.5x)");
        } else {
            assert!(
                chaos8 >= 2.0,
                "scaling gate: chaos-stream 8-worker throughput is only \
                 {chaos8:.2}x the 1-worker run (gate: 2x) — the degraded \
                 path has re-serialized"
            );
            println!("scaling gates passed (clean 4w >= 1.5x, chaos 8w >= 2x)");
        }

        // The plan-cache gates: the 90%-target repeated row must actually
        // hit, must serve hits in microseconds, and must multiply
        // throughput over the all-miss baseline. Both rows are bound by
        // the same 2 ms worker stall, so the ratio is a worker-bypass
        // measurement, not a CPU-speed one.
        let repeated = |target: f64| -> &Row {
            rows.iter()
                .find(|r| r.stream == "repeated" && (r.hit_target - target).abs() < 1e-9)
                .expect("repeated row")
        };
        let base = repeated(0.0);
        let hot = repeated(0.9);
        let speedup = hot.throughput_rps / base.throughput_rps.max(1e-9);
        println!(
            "repeated-stream cache: 90%-target hit rate {:.1}%, p50 {} us, \
             {:.1}x the 0%-hit baseline",
            hot.hit_actual * 100.0,
            hot.p50_us,
            speedup
        );
        assert!(
            hot.hit_actual >= 0.90,
            "cache gate: 90%-target stream achieved only {:.1}% hits",
            hot.hit_actual * 100.0
        );
        assert!(
            hot.p50_us < 10,
            "cache gate: hit-dominated p50 is {} us (gate: < 10 us) — the \
             hit path is doing more than a shard probe",
            hot.p50_us
        );
        let speedup_gate = if smoke_mode() { 6.0 } else { 10.0 };
        assert!(
            speedup >= speedup_gate,
            "cache gate: 90%-hit throughput is only {speedup:.1}x the all-miss \
             baseline (gate: {speedup_gate:.0}x) — hits are not bypassing workers"
        );
        println!("cache gates passed (hits >= 90%, p50 < 10 us, >= {speedup_gate:.0}x baseline)");

        // The noisy-neighbor gates: the victim's service quality under an
        // aggressor flooding poison at 8 workers must stay within a small
        // constant of its solo run. The thresholds leave room for the real
        // cost the aggressor is *allowed* to impose — shared worker time —
        // while catching the failure modes the tenant walls exist for
        // (cross-tenant breaker trips recomputing victim plans, quota
        // exhaustion shedding victim traffic, trace/metric contention).
        let by_stream = |stream: &str| -> &Row {
            rows.iter()
                .find(|r| r.stream == stream)
                .expect("tenant row")
        };
        let solo = by_stream("tenant_solo");
        let noisy = by_stream("tenant_noisy");
        let p99_ratio = noisy.p99_us as f64 / (solo.p99_us as f64).max(1e-9);
        let tput_ratio = noisy.throughput_rps / solo.throughput_rps.max(1e-9);
        println!(
            "noisy-neighbor: victim p99 {} -> {} us ({p99_ratio:.2}x), \
             throughput {:.0} -> {:.0} rps ({tput_ratio:.2}x)",
            solo.p99_us, noisy.p99_us, solo.throughput_rps, noisy.throughput_rps
        );
        assert!(
            p99_ratio <= 2.0,
            "isolation gate: victim p99 under attack is {p99_ratio:.2}x its \
             solo p99 (gate: 2x) — the aggressor is bleeding through the \
             tenant walls"
        );
        assert!(
            tput_ratio >= 0.7,
            "isolation gate: victim throughput under attack is only \
             {tput_ratio:.2}x its solo run (gate: 0.7x) — the aggressor is \
             starving the victim"
        );
        println!("isolation gates passed (victim p99 <= 2x solo, throughput >= 0.7x solo)");
    }

    let json = render_json(&rows);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    std::fs::write(path, &json).expect("write BENCH_service.json");
    println!("wrote {path}");

    // Observability export: the traced 4-worker chaos row's full metric
    // snapshot, trace-replay tally, and conservation verdict.
    if let Some((cfg, report)) = obs {
        assert!(
            report.conservation.is_empty(),
            "metric books unbalanced after quiescence:\n{}",
            report.conservation.join("\n")
        );
        assert_eq!(
            report.traces_divergent, 0,
            "{} of {} replayed traces diverged from the reference engine",
            report.traces_divergent, report.traces_replayed
        );
        let obs_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
        std::fs::write(obs_path, report.obs_json("service_soak", &cfg))
            .expect("write BENCH_obs.json");
        println!(
            "wrote {obs_path} ({} traces replayed exactly, books balanced)",
            report.traces_replayed
        );
    }
}

fn render_json(rows: &[Row]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"service_soak\",\n");
    out.push_str(&format!("  \"smoke\": {},\n", smoke_mode()));
    out.push_str(
        "  \"workload\": \"chaos: deterministic fault stream, verify off, tracing on, \
         cache off, 2 ms per-request stall, serving window only (replay audit excluded); \
         clean: no-fault stream, tracing off (default), cache off, 16 closed-loop \
         clients, 2 ms per-request stall \
         (single-core host: scaling measures worker concurrency); \
         repeated: Zipf-skewed 32-query pool at a target hit rate plus a unique \
         tail, 8 closed-loop clients, 4 workers, 2 ms stall on worker passes \
         (cache hits bypass workers entirely); \
         tenant_solo/tenant_noisy: clean victim tenant on an 8-worker \
         two-tenant service, measured alone and under an aggressor tenant's \
         poison+flood stream (rows report the victim's view)\",\n",
    );
    out.push_str("  \"configs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"stream\": \"{}\", \"workers\": {}, \"requests\": {}, \"wall_ms\": {}, \
             \"throughput_rps\": {:.1}, \"scaling_efficiency\": {:.3}, \
             \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \
             \"overloaded\": {}, \"passthrough\": {}, \"caught_panics\": {}, \
             \"peak_arena_nodes\": {}, \"hit_target\": {:.2}, \
             \"hit_actual\": {:.4}, \"cache_hits\": {}}}{}\n",
            r.stream,
            r.workers,
            r.requests,
            r.wall_ms,
            r.throughput_rps,
            r.scaling_efficiency,
            r.p50_us,
            r.p95_us,
            r.p99_us,
            r.overloaded,
            r.passthrough,
            r.caught_panics,
            r.peak_arena_nodes,
            r.hit_target,
            r.hit_actual,
            r.cache_hits,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
