//! Service latency/throughput under the chaos workload, across worker
//! counts.
//!
//! Runs the deterministic chaos stream (same generator as the soak test,
//! same seed) against a 1-, 4-, and 8-worker service and reports p50/p95/p99
//! end-to-end latency plus throughput. The stream mixes clean requests,
//! deep adversarial terms, poison rules, and flood phases, so the numbers
//! describe the service *with* its degradation machinery engaged — not a
//! happy-path microbenchmark.
//!
//! Emits `BENCH_service.json` at the repository root. `BENCH_SMOKE=1`
//! shrinks the stream for CI.

use kola_bench::smoke_mode;
use kola_service::{percentile, run_chaos, ChaosConfig};
use std::time::Instant;

struct Row {
    workers: usize,
    requests: usize,
    wall_ms: u128,
    throughput_rps: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    overloaded: usize,
    passthrough: usize,
    caught_panics: usize,
}

fn main() {
    let requests = if smoke_mode() { 300 } else { 4_000 };
    let mut rows = Vec::new();
    for workers in [1usize, 4, 8] {
        let cfg = ChaosConfig {
            requests,
            workers,
            // The gate re-evaluates every optimized plan; leave it off so
            // the timing isolates queue + ladder + breaker overhead.
            verify: false,
            ..ChaosConfig::default()
        };
        let start = Instant::now();
        let report = run_chaos(&cfg);
        let wall = start.elapsed();

        let violations = report.violations();
        assert!(
            violations.is_empty(),
            "chaos invariants violated during bench:\n{}",
            violations.join("\n")
        );

        let mut lat = report.latencies_us.clone();
        lat.sort_unstable();
        let row = Row {
            workers,
            requests: report.requests,
            wall_ms: wall.as_millis(),
            throughput_rps: report.requests as f64 / wall.as_secs_f64().max(1e-9),
            p50_us: percentile(&lat, 50.0),
            p95_us: percentile(&lat, 95.0),
            p99_us: percentile(&lat, 99.0),
            overloaded: report.overloaded,
            passthrough: report.passthrough,
            caught_panics: report.caught_panics,
        };
        println!(
            "service/{}w: {} req in {} ms ({:.0} req/s)  p50 {} us  p95 {} us  p99 {} us  \
             shed {}  passthrough {}  panics-caught {}",
            row.workers,
            row.requests,
            row.wall_ms,
            row.throughput_rps,
            row.p50_us,
            row.p95_us,
            row.p99_us,
            row.overloaded,
            row.passthrough,
            row.caught_panics,
        );
        rows.push(row);
    }

    let json = render_json(&rows);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    std::fs::write(path, &json).expect("write BENCH_service.json");
    println!("wrote {path}");
}

fn render_json(rows: &[Row]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"service_soak\",\n");
    out.push_str(&format!("  \"smoke\": {},\n", smoke_mode()));
    out.push_str("  \"workload\": \"deterministic chaos stream, verify off\",\n");
    out.push_str("  \"configs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workers\": {}, \"requests\": {}, \"wall_ms\": {}, \
             \"throughput_rps\": {:.1}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \
             \"overloaded\": {}, \"passthrough\": {}, \"caught_panics\": {}}}{}\n",
            r.workers,
            r.requests,
            r.wall_ms,
            r.throughput_rps,
            r.p50_us,
            r.p95_us,
            r.p99_us,
            r.overloaded,
            r.passthrough,
            r.caught_panics,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
