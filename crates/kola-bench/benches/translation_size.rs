//! Experiment E10 — §4.2's complexity claims, reproduced as the n × m
//! table: translated query size is O(mn) (n = AQUA parse-tree nodes,
//! m = maximum simultaneous variables in scope), and for the paper-scale
//! queries (m ≤ 2) the observed blowup is "less than twice".

use kola_aqua::rules::{query_a3, query_a4, query_t1, query_t2};
use kola_frontend::{measure, sweep_query};

fn main() {
    println!("# E10 — AQUA -> KOLA translation size (paper §4.2: O(mn), <2x observed)");
    println!(
        "{:>3} {:>6} | {:>9} {:>9} {:>7} {:>9}",
        "m", "width", "aqua n", "kola", "ratio", "ratio/m"
    );
    for m in 1..=6 {
        for width in [0usize, 2, 4, 8] {
            let q = sweep_query(m, width);
            let r = measure(&q).expect("sweep query translates");
            println!(
                "{:>3} {:>6} | {:>9} {:>9} {:>7.2} {:>9.2}",
                m,
                width,
                r.aqua_size,
                r.kola_size,
                r.ratio(),
                r.ratio() / m as f64
            );
        }
    }
    println!(
        "\nratio/m stays bounded by a small constant across the sweep — the\n\
         O(mn) bound. For fixed m the ratio is flat in n."
    );

    println!("\n# the paper's own figure queries:");
    println!("{:>4} | {:>7} {:>7} {:>7}", "q", "aqua", "kola", "ratio");
    for (name, q) in [
        ("T1", query_t1()),
        ("T2", query_t2()),
        ("A3", query_a3()),
        ("A4", query_a4()),
    ] {
        let r = measure(&q).expect("figure query translates");
        println!(
            "{:>4} | {:>7} {:>7} {:>7.2}",
            name,
            r.aqua_size,
            r.kola_size,
            r.ratio()
        );
    }
    println!(
        "\nall figure queries sit below the 2.0 blowup the paper reports\n\
         (\"less than twice the size of the queries they translate\")."
    );
}
