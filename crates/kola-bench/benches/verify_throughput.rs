//! Experiment E12 (timing) — throughput of the randomized rule verifier:
//! how quickly the catalog (the stand-in for the paper's 500 LP-proved
//! rules) is re-checked end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use kola::typecheck::TypeEnv;
use kola_exec::datagen::{generate, DataSpec};
use kola_rewrite::{Catalog, Rule};
use kola_verify::{check_rule, verify_catalog};
use std::hint::black_box;

fn bench_verify(c: &mut Criterion) {
    let env = TypeEnv::paper_env();
    let db = generate(&DataSpec::small(5));
    let catalog = Catalog::paper();

    let mut group = c.benchmark_group("verify");
    group.sample_size(10);
    group.bench_function("rule_11_x25_trials", |b| {
        let rule = catalog.get("11").unwrap();
        b.iter(|| black_box(check_rule(&env, &db, rule, 25, 3)))
    });
    group.bench_function("rule_19_query_level_x25", |b| {
        let rule = catalog.get("19").unwrap();
        b.iter(|| black_box(check_rule(&env, &db, rule, 25, 3)))
    });
    group.bench_function("whole_catalog_x5_trials", |b| {
        b.iter(|| black_box(verify_catalog(&env, &db, &catalog, 5, 3)))
    });
    group.bench_function("broken_rule_counterexample_time", |b| {
        // How fast a wrong rule is refuted (first counterexample).
        let broken = Rule::func("bad", "bad", "pi1 . ($f, $g)", "$g");
        b.iter(|| black_box(check_rule(&env, &db, &broken, 25, 3)))
    });
    group.finish();
}

criterion_group!(benches, bench_verify);
criterion_main!(benches);
