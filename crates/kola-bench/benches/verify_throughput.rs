//! Experiment E12 (timing) — throughput of the randomized rule verifier:
//! how quickly the catalog (the stand-in for the paper's 500 LP-proved
//! rules) is re-checked end to end.

use kola::typecheck::TypeEnv;
use kola_bench::bench;
use kola_exec::datagen::{generate, DataSpec};
use kola_rewrite::{Catalog, Rule};
use kola_verify::{check_rule, verify_catalog};

fn main() {
    let env = TypeEnv::paper_env();
    let db = generate(&DataSpec::small(5));
    let catalog = Catalog::paper();

    let rule11 = catalog.get("11").unwrap();
    bench("verify/rule_11_x25_trials", || {
        check_rule(&env, &db, rule11, 25, 3)
    });
    let rule19 = catalog.get("19").unwrap();
    bench("verify/rule_19_query_level_x25", || {
        check_rule(&env, &db, rule19, 25, 3)
    });
    bench("verify/whole_catalog_x5_trials", || {
        verify_catalog(&env, &db, &catalog, 5, 3)
    });
    // How fast a wrong rule is refuted (first counterexample).
    let broken = Rule::func("bad", "bad", "pi1 . ($f, $g)", "$g");
    bench("verify/broken_rule_counterexample_time", || {
        check_rule(&env, &db, &broken, 25, 3)
    });
}
