//! Benchmark-only crate; see the benches directory.
//!
//! The benches run offline with no external harness: [`bench`] is a minimal
//! measured-loop timer (warmup, then the median of several timed batches)
//! that every `harness = false` bench target shares.

use std::hint::black_box;
use std::time::Instant;

/// Run `f` in a measured loop and print `name: <median> ns/iter`.
///
/// Warmup runs the closure for ~20ms, then the batch size is chosen so one
/// batch takes roughly 10ms, and the median over 5 batches is reported.
pub fn bench<T>(name: &str, f: impl FnMut() -> T) {
    bench_ns(name, f);
}

/// Whether the `BENCH_SMOKE` environment variable requests short runs.
///
/// Smoke mode cuts the warmup and batch time budgets by ~10x so a bench
/// binary finishes in well under a second — suitable for CI gating where
/// only relative ordering (not tight confidence intervals) matters.
pub fn smoke_mode() -> bool {
    std::env::var("BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Like [`bench`], but returns the median ns/iter so callers can compute
/// speedups and emit machine-readable reports. Honors [`smoke_mode`].
pub fn bench_ns<T>(name: &str, mut f: impl FnMut() -> T) -> u128 {
    let (warm_ms, batch_ns) = if smoke_mode() {
        (2u128, 1_000_000u128)
    } else {
        (20, 10_000_000)
    };
    // Warmup + calibration.
    let calib = Instant::now();
    let mut warm = 0u32;
    while calib.elapsed().as_millis() < warm_ms && warm < 1000 {
        black_box(f());
        warm += 1;
    }
    let per_iter = calib.elapsed().as_nanos().max(1) / u128::from(warm.max(1));
    let batch = ((batch_ns / per_iter.max(1)) as usize).clamp(1, 100_000);

    let mut samples = Vec::with_capacity(5);
    for _ in 0..5 {
        let t = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        samples.push(t.elapsed().as_nanos() / batch as u128);
    }
    samples.sort_unstable();
    println!("{name}: {} ns/iter (batch {batch} x5)", samples[2]);
    samples[2]
}
