//! Benchmark-only crate; see the benches directory.
//!
//! The benches run offline with no external harness: [`bench`] is a minimal
//! measured-loop timer (warmup, then the median of several timed batches)
//! that every `harness = false` bench target shares.

use std::hint::black_box;
use std::time::Instant;

/// Run `f` in a measured loop and print `name: <median> ns/iter`.
///
/// Warmup runs the closure for ~20ms, then the batch size is chosen so one
/// batch takes roughly 10ms, and the median over 5 batches is reported.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    // Warmup + calibration.
    let calib = Instant::now();
    let mut warm = 0u32;
    while calib.elapsed().as_millis() < 20 && warm < 1000 {
        black_box(f());
        warm += 1;
    }
    let per_iter = calib.elapsed().as_nanos().max(1) / u128::from(warm.max(1));
    let batch = ((10_000_000 / per_iter.max(1)) as usize).clamp(1, 100_000);

    let mut samples = Vec::with_capacity(5);
    for _ in 0..5 {
        let t = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        samples.push(t.elapsed().as_nanos() / batch as u128);
    }
    samples.sort_unstable();
    println!("{name}: {} ns/iter (batch {batch} x5)", samples[2]);
}
