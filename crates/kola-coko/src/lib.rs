#![warn(missing_docs)]
//! # kola-coko — the COKO rule-block language
//!
//! §4.2: "to handle the still large set of rules … we are developing a
//! language, COKO (Control Of KOLA Optimizations), with which to express
//! *rule blocks*: sets of rules that are used together, together with
//! strategies for their firing. Rule blocks correspond to 'conceptual
//! transformations' … Example rule blocks include 'push selects past
//! joins' … as well as each of the steps in the hidden join transformation."
//!
//! The paper deferred COKO to a later publication; this crate implements it
//! from that description. A COKO program is a set of named
//! `TRANSFORMATION`s whose bodies fire catalog rules under strategy
//! combinators, compiled down to [`kola_rewrite::Strategy`].
//!
//! ## Syntax
//!
//! ```text
//! TRANSFORMATION BreakUp
//! BEGIN
//!   FIX { [17], [18], [2], [1], [3], [4] }
//! END
//!
//! TRANSFORMATION Untangle
//! USES BreakUp, BottomOut
//! BEGIN
//!   TRY BreakUp ; TRY BottomOut
//! END
//! ```
//!
//! - `[id]` fires catalog rule `id` once (use `[id-1]` for right-to-left).
//! - `FIX { … }` applies a rule set exhaustively.
//! - `REPEAT s`, `TRY s`, `s ; s` (sequence), `s | s` (first that
//!   succeeds), `{ s }` (grouping).
//! - A bare name invokes another transformation (declared in `USES`).

pub mod parse;
pub mod stdlib;

pub use parse::{compile, parse_program, CokoError, Program, Transformation};
