//! COKO parser and compiler (COKO AST → [`Strategy`]).

use kola_rewrite::Strategy;
use std::collections::BTreeMap;
use std::fmt;

/// A COKO parse/compile error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CokoError {
    /// Description.
    pub msg: String,
}

impl fmt::Display for CokoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "COKO error: {}", self.msg)
    }
}

impl std::error::Error for CokoError {}

fn err<T>(msg: impl Into<String>) -> Result<T, CokoError> {
    Err(CokoError { msg: msg.into() })
}

/// A COKO statement (strategy expression).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `[id]` — fire one catalog rule once.
    Fire(String),
    /// `FIX { [a], [b], … }` — exhaustively apply a rule set.
    Fix(Vec<String>),
    /// `BU { [a], [b], … }` — one bottom-up sweep applying the set at
    /// every position (children first).
    BottomUp(Vec<String>),
    /// `REPEAT s`.
    Repeat(Box<Stmt>),
    /// `TRY s`.
    Try(Box<Stmt>),
    /// `s ; s ; …`.
    Seq(Vec<Stmt>),
    /// `s | s | …`.
    Choice(Vec<Stmt>),
    /// Invoke another transformation by name.
    Call(String),
}

/// A named COKO transformation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transformation {
    /// Its name.
    pub name: String,
    /// Declared dependencies.
    pub uses: Vec<String>,
    /// The body.
    pub body: Stmt,
}

/// A COKO program: an ordered set of transformations.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// The transformations, in source order.
    pub transformations: Vec<Transformation>,
}

impl Program {
    /// Look up a transformation by name.
    pub fn get(&self, name: &str) -> Option<&Transformation> {
        self.transformations.iter().find(|t| t.name == name)
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    RuleRef(String),
    Semi,
    Pipe,
    Comma,
    LBrace,
    RBrace,
}

fn lex(src: &str) -> Result<Vec<Tok>, CokoError> {
    let mut out = Vec::new();
    let b = src.as_bytes();
    let mut i = 0;
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '-' if i + 1 < b.len() && b[i + 1] as char == '-' => {
                // Line comment.
                while i < b.len() && b[i] as char != '\n' {
                    i += 1;
                }
            }
            ';' => {
                out.push(Tok::Semi);
                i += 1;
            }
            '|' => {
                out.push(Tok::Pipe);
                i += 1;
            }
            ',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            '{' => {
                out.push(Tok::LBrace);
                i += 1;
            }
            '}' => {
                out.push(Tok::RBrace);
                i += 1;
            }
            '[' => {
                let start = i + 1;
                let mut j = start;
                while j < b.len() && b[j] as char != ']' {
                    j += 1;
                }
                if j >= b.len() {
                    return err("unterminated rule reference");
                }
                out.push(Tok::RuleRef(src[start..j].trim().to_string()));
                i = j + 1;
            }
            c if c.is_ascii_alphanumeric() || c == '_' => {
                let start = i;
                while i < b.len() && ((b[i] as char).is_ascii_alphanumeric() || b[i] as char == '_')
                {
                    i += 1;
                }
                out.push(Tok::Ident(src[start..i].to_string()));
            }
            other => return err(format!("unexpected character {other:?}")),
        }
    }
    Ok(out)
}

struct P {
    toks: Vec<Tok>,
    pos: usize,
}

impl P {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn ident(&mut self) -> Result<String, CokoError> {
        match self.toks.get(self.pos).cloned() {
            Some(Tok::Ident(s)) => {
                self.pos += 1;
                Ok(s)
            }
            other => err(format!("expected identifier, found {other:?}")),
        }
    }

    fn transformation(&mut self) -> Result<Transformation, CokoError> {
        if !self.eat_kw("TRANSFORMATION") {
            return err(format!("expected TRANSFORMATION, found {:?}", self.peek()));
        }
        let name = self.ident()?;
        let mut uses = Vec::new();
        if self.eat_kw("USES") {
            uses.push(self.ident()?);
            while self.eat(&Tok::Comma) {
                uses.push(self.ident()?);
            }
        }
        if !self.eat_kw("BEGIN") {
            return err(format!("expected BEGIN in {name}, found {:?}", self.peek()));
        }
        let body = self.stmt()?;
        if !self.eat_kw("END") {
            return err(format!("expected END in {name}, found {:?}", self.peek()));
        }
        Ok(Transformation { name, uses, body })
    }

    fn stmt(&mut self) -> Result<Stmt, CokoError> {
        let mut parts = vec![self.choice()?];
        while self.eat(&Tok::Semi) {
            parts.push(self.choice()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one element")
        } else {
            Stmt::Seq(parts)
        })
    }

    fn choice(&mut self) -> Result<Stmt, CokoError> {
        let mut parts = vec![self.basic()?];
        while self.eat(&Tok::Pipe) {
            parts.push(self.basic()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one element")
        } else {
            Stmt::Choice(parts)
        })
    }

    fn basic(&mut self) -> Result<Stmt, CokoError> {
        if self.eat_kw("REPEAT") {
            return Ok(Stmt::Repeat(Box::new(self.basic()?)));
        }
        if self.eat_kw("TRY") {
            return Ok(Stmt::Try(Box::new(self.basic()?)));
        }
        for (kw, ctor) in [
            ("FIX", Stmt::Fix as fn(Vec<String>) -> Stmt),
            ("BU", Stmt::BottomUp as fn(Vec<String>) -> Stmt),
        ] {
            if self.eat_kw(kw) {
                if !self.eat(&Tok::LBrace) {
                    return err(format!("expected {{ after {kw}"));
                }
                let mut refs = Vec::new();
                loop {
                    match self.toks.get(self.pos).cloned() {
                        Some(Tok::RuleRef(r)) => {
                            self.pos += 1;
                            refs.push(r);
                        }
                        other => return err(format!("expected [rule], found {other:?}")),
                    }
                    if self.eat(&Tok::RBrace) {
                        break;
                    }
                    if !self.eat(&Tok::Comma) {
                        return err(format!("expected , or }} in {kw}"));
                    }
                }
                return Ok(ctor(refs));
            }
        }
        if self.eat(&Tok::LBrace) {
            let s = self.stmt()?;
            if !self.eat(&Tok::RBrace) {
                return err("expected }");
            }
            return Ok(s);
        }
        match self.toks.get(self.pos).cloned() {
            Some(Tok::RuleRef(r)) => {
                self.pos += 1;
                Ok(Stmt::Fire(r))
            }
            Some(Tok::Ident(name))
                if !["END", "TRANSFORMATION"]
                    .iter()
                    .any(|k| name.eq_ignore_ascii_case(k)) =>
            {
                self.pos += 1;
                Ok(Stmt::Call(name))
            }
            other => err(format!("expected statement, found {other:?}")),
        }
    }
}

/// Parse a COKO program.
///
/// ```
/// let p = kola_coko::parse_program(
///     "TRANSFORMATION Clean BEGIN FIX { [1], [2] } END").unwrap();
/// let s = kola_coko::compile(&p, "Clean").unwrap();
/// assert_eq!(s.to_string(), "fix(1, 2)");
/// ```
pub fn parse_program(src: &str) -> Result<Program, CokoError> {
    let mut p = P {
        toks: lex(src)?,
        pos: 0,
    };
    let mut transformations = Vec::new();
    while p.peek().is_some() {
        transformations.push(p.transformation()?);
    }
    if transformations.is_empty() {
        return err("empty program");
    }
    Ok(Program { transformations })
}

/// Compile one transformation of a program into a [`Strategy`], inlining
/// calls. Cycles are rejected.
pub fn compile(program: &Program, name: &str) -> Result<Strategy, CokoError> {
    let by_name: BTreeMap<&str, &Transformation> = program
        .transformations
        .iter()
        .map(|t| (t.name.as_str(), t))
        .collect();
    let t = by_name.get(name).ok_or_else(|| CokoError {
        msg: format!("unknown transformation {name}"),
    })?;
    let mut stack = vec![name.to_string()];
    compile_stmt(&by_name, &t.body, &mut stack)
}

fn compile_stmt(
    by_name: &BTreeMap<&str, &Transformation>,
    s: &Stmt,
    stack: &mut Vec<String>,
) -> Result<Strategy, CokoError> {
    Ok(match s {
        Stmt::Fire(r) => Strategy::Apply(r.clone()),
        Stmt::Fix(rs) => Strategy::Fix(rs.clone()),
        Stmt::BottomUp(rs) => Strategy::BottomUp(rs.clone()),
        Stmt::Repeat(s) => Strategy::Repeat(Box::new(compile_stmt(by_name, s, stack)?)),
        Stmt::Try(s) => Strategy::Try(Box::new(compile_stmt(by_name, s, stack)?)),
        Stmt::Seq(ss) => Strategy::Seq(
            ss.iter()
                .map(|s| compile_stmt(by_name, s, stack))
                .collect::<Result<_, _>>()?,
        ),
        Stmt::Choice(ss) => Strategy::Choice(
            ss.iter()
                .map(|s| compile_stmt(by_name, s, stack))
                .collect::<Result<_, _>>()?,
        ),
        Stmt::Call(name) => {
            if stack.iter().any(|n| n == name) {
                return err(format!("recursive transformation {name}"));
            }
            let t = by_name.get(name.as_str()).ok_or_else(|| CokoError {
                msg: format!("unknown transformation {name}"),
            })?;
            stack.push(name.clone());
            let out = compile_stmt(by_name, &t.body, stack)?;
            stack.pop();
            out
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_transformation() {
        let p = parse_program("TRANSFORMATION Clean BEGIN FIX { [1], [2] } END").unwrap();
        assert_eq!(p.transformations.len(), 1);
        assert_eq!(
            p.transformations[0].body,
            Stmt::Fix(vec!["1".into(), "2".into()])
        );
    }

    #[test]
    fn parses_sequences_and_combinators() {
        let p = parse_program("TRANSFORMATION T BEGIN REPEAT [app] ; [19] ; REPEAT [app-1] END")
            .unwrap();
        match &p.transformations[0].body {
            Stmt::Seq(parts) => {
                assert_eq!(parts.len(), 3);
                assert_eq!(parts[1], Stmt::Fire("19".into()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_choice_and_grouping() {
        let p = parse_program("TRANSFORMATION T BEGIN { [1] | [2] } ; TRY [3] END").unwrap();
        match &p.transformations[0].body {
            Stmt::Seq(parts) => {
                assert!(matches!(&parts[0], Stmt::Choice(cs) if cs.len() == 2));
                assert!(matches!(&parts[1], Stmt::Try(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn comments_ignored() {
        let p =
            parse_program("-- cleanup pass\nTRANSFORMATION T BEGIN [1] -- id-right\nEND").unwrap();
        assert_eq!(p.transformations[0].body, Stmt::Fire("1".into()));
    }

    #[test]
    fn calls_compile_by_inlining() {
        let p = parse_program(
            "TRANSFORMATION A BEGIN [1] END \
             TRANSFORMATION B USES A BEGIN TRY A END",
        )
        .unwrap();
        let s = compile(&p, "B").unwrap();
        assert_eq!(s.to_string(), "try 1");
    }

    #[test]
    fn recursion_rejected() {
        let p = parse_program(
            "TRANSFORMATION A USES B BEGIN B END \
             TRANSFORMATION B USES A BEGIN A END",
        )
        .unwrap();
        assert!(compile(&p, "A").is_err());
    }

    #[test]
    fn errors() {
        assert!(parse_program("").is_err());
        assert!(parse_program("TRANSFORMATION T BEGIN END").is_err());
        assert!(parse_program("TRANSFORMATION T [1] END").is_err());
        assert!(parse_program("TRANSFORMATION T BEGIN [1").is_err());
        let p = parse_program("TRANSFORMATION T BEGIN Unknown END").unwrap();
        assert!(compile(&p, "T").is_err());
        assert!(compile(&p, "Nope").is_err());
    }
}
