//! The standard COKO library: the paper's conceptual transformations as
//! COKO source.
//!
//! Each of §4.1's five hidden-join steps is one rule block, plus the
//! "push selects past joins"-style blocks §4.2 names as examples.

use crate::parse::{compile, parse_program, CokoError, Program};
use kola_rewrite::Strategy;

/// COKO source for the hidden-join untangling pipeline (§4.1).
pub const HIDDEN_JOIN_COKO: &str = r#"
-- Step 1: break the monolithic iterate into a composition chain.
TRANSFORMATION BreakUp
BEGIN
  FIX { [17], [18], [2], [1], [3], [4], [4a], [9], [10], [5], [6] }
END

-- Step 2: bottom out the (id, Kf(B)) tail into a nest of a join.
TRANSFORMATION BottomOut
BEGIN
  REPEAT [app] ; [19] ; REPEAT [app-1]
END

-- Step 3: pull nest to the top of the chain.
TRANSFORMATION PullUpNest
BEGIN
  FIX { [20], [21], [4], [2], [1] }
END

-- Step 4: pull unnests up below the nest.
TRANSFORMATION PullUpUnnest
BEGIN
  FIX { [22], [23] }
END

-- Step 5: absorb iterates into the join.
TRANSFORMATION Absorb
BEGIN
  FIX { [24], [3], [5], [e32], [1], [2], [e6] }
END

-- Tidy: <pi1, g.pi2> forms into id * g (Figure 3 notation).
TRANSFORMATION Tidy
BEGIN
  FIX { [e110], [e111], [e112], [e6] }
END

TRANSFORMATION UntangleHiddenJoin
USES BreakUp, BottomOut, PullUpNest, PullUpUnnest, Absorb, Tidy
BEGIN
  TRY BreakUp ;
  TRY BottomOut ;
  TRY PullUpNest ;
  TRY PullUpUnnest ;
  TRY Absorb ;
  TRY Tidy
END
"#;

/// COKO source for general-purpose cleanup blocks (§4.2's examples of
/// "conceptual transformations").
pub const CLEANUP_COKO: &str = r#"
-- Identity and projection elimination.
TRANSFORMATION EliminateIdentities
BEGIN
  FIX { [1], [2], [3], [4], [9], [10], [e6] }
END

-- Constant folding over predicates.
TRANSFORMATION SimplifyPredicates
BEGIN
  FIX { [5], [6], [e32], [e33], [e34], [e35], [e36], [e37], [e38],
        [e41], [e42], [e43], [e30], [e31] }
END

-- Fuse cascaded iterations (select/map pipelines into one pass).
TRANSFORMATION FuseIterates
BEGIN
  FIX { [11], [12] }
END

-- §4.2's named example block: "push selects past joins".
TRANSFORMATION PushSelectsPastJoins
BEGIN
  FIX { [e80], [e81], [5], [e32], [1], [2], [3] }
END

-- §4.2's named example block: "convert predicates to CNF".
TRANSFORMATION PredicatesToCNF
BEGIN
  FIX { [e41], [e39], [e40], [e49], [e42], [e43] }
END

TRANSFORMATION Simplify
USES EliminateIdentities, SimplifyPredicates, FuseIterates
BEGIN
  TRY EliminateIdentities ; TRY SimplifyPredicates ; TRY FuseIterates ;
  TRY EliminateIdentities ; TRY SimplifyPredicates
END
"#;

/// Parse the hidden-join library.
pub fn hidden_join_program() -> Result<Program, CokoError> {
    parse_program(HIDDEN_JOIN_COKO)
}

/// The full pipeline as a compiled strategy.
pub fn untangle_strategy() -> Result<Strategy, CokoError> {
    compile(&hidden_join_program()?, "UntangleHiddenJoin")
}

/// Parse the cleanup library.
pub fn cleanup_program() -> Result<Program, CokoError> {
    parse_program(CLEANUP_COKO)
}

/// The simplification block as a compiled strategy.
pub fn simplify_strategy() -> Result<Strategy, CokoError> {
    compile(&cleanup_program()?, "Simplify")
}

/// The "push selects past joins" block §4.2 names.
pub fn push_selects_strategy() -> Result<Strategy, CokoError> {
    compile(&cleanup_program()?, "PushSelectsPastJoins")
}

/// The "convert predicates to CNF" block §4.2 names.
pub fn cnf_strategy() -> Result<Strategy, CokoError> {
    compile(&cleanup_program()?, "PredicatesToCNF")
}

#[cfg(test)]
mod tests {
    use super::*;
    use kola_rewrite::engine::Trace;
    use kola_rewrite::hidden_join::{garage_query_kg1, garage_query_kg2};
    use kola_rewrite::strategy::Runner;
    use kola_rewrite::{Catalog, PropDb};

    #[test]
    fn stdlib_parses_and_compiles() {
        assert!(untangle_strategy().is_ok());
        assert!(simplify_strategy().is_ok());
    }

    #[test]
    fn coko_untangle_reproduces_figure_3() {
        let catalog = Catalog::paper();
        let props = PropDb::new();
        let runner = Runner::new(&catalog, &props);
        let strategy = untangle_strategy().unwrap();
        let mut trace = Trace::new();
        let (out, _) = runner.run(&strategy, garage_query_kg1(), &mut trace);
        assert_eq!(out, garage_query_kg2(), "COKO pipeline must match");
    }

    #[test]
    fn coko_matches_builtin_pipeline() {
        // The COKO source and the hand-built Rust pipeline must agree on
        // arbitrary hidden joins.
        let catalog = Catalog::paper();
        let props = PropDb::new();
        let runner = Runner::new(&catalog, &props);
        let strategy = untangle_strategy().unwrap();
        for n in 1..=3 {
            let q = kola_rewrite::hidden_join::synthetic_hidden_join(n);
            let mut trace = Trace::new();
            let (coko_out, _) = runner.run(&strategy, q.clone(), &mut trace);
            let built_in = kola_rewrite::hidden_join::untangle(&catalog, &props, &q);
            assert_eq!(coko_out, built_in.query, "depth {n}");
        }
    }

    #[test]
    fn push_selects_past_joins_block() {
        let catalog = Catalog::paper();
        let props = PropDb::new();
        let runner = Runner::new(&catalog, &props);
        let strategy = push_selects_strategy().unwrap();
        // A selection after a join gets absorbed into the join predicate.
        let q = kola::parse::parse_query(
            "iterate(gt @ (age . pi1, age . pi2), id) . join(Kp(T), id) ! [P, P]",
        )
        .unwrap();
        let mut trace = Trace::new();
        let (out, _) = runner.run(&strategy, q, &mut trace);
        assert_eq!(
            out,
            kola::parse::parse_query("join(gt @ (age . pi1, age . pi2), id) ! [P, P]").unwrap()
        );
    }

    #[test]
    fn predicates_to_cnf_block() {
        let catalog = Catalog::paper();
        let props = PropDb::new();
        let runner = Runner::new(&catalog, &props);
        let strategy = cnf_strategy().unwrap();
        // ~(a | b) | (c & d)  ==>  CNF: conjunction of disjunctions.
        let q = kola::parse::parse_query(
            "iterate(~(gt @ (age, Kf(10)) | gt @ (age, Kf(20))) |              (gt @ (age, Kf(30)) & gt @ (age, Kf(40))), id) ! P",
        )
        .unwrap();
        let mut trace = Trace::new();
        let (out, _) = runner.run(&strategy, q.clone(), &mut trace);
        // Check the CNF shape structurally: an AND-tree of OR-trees of
        // literals (atom or negated atom).
        fn is_literal(p: &kola::Pred) -> bool {
            match p {
                kola::Pred::Not(inner) => {
                    is_literal(inner)
                        && !matches!(
                            **inner,
                            kola::Pred::And(..) | kola::Pred::Or(..) | kola::Pred::Not(..)
                        )
                }
                kola::Pred::And(..) | kola::Pred::Or(..) => false,
                _ => true,
            }
        }
        fn is_clause(p: &kola::Pred) -> bool {
            match p {
                kola::Pred::Or(a, b) => is_clause(a) && is_clause(b),
                other => is_literal(other),
            }
        }
        fn is_cnf(p: &kola::Pred) -> bool {
            match p {
                kola::Pred::And(a, b) => is_cnf(a) && is_cnf(b),
                other => is_clause(other),
            }
        }
        let kola::Query::App(kola::Func::Iterate(pred, _), _) = &out else {
            panic!("unexpected shape: {out}");
        };
        assert!(is_cnf(pred), "not CNF: {out}");
        // And semantics preserved.
        let db = kola_exec_free_db();
        assert_eq!(
            kola::eval_query(&db, &q).unwrap(),
            kola::eval_query(&db, &out).unwrap()
        );
    }

    fn kola_exec_free_db() -> kola::Db {
        // A tiny hand-rolled database (the coko crate doesn't depend on
        // kola-exec).
        let schema = kola::Schema::paper_schema();
        let person = schema.class_id("Person").unwrap();
        let address = schema.class_id("Address").unwrap();
        let mut db = kola::Db::new(schema);
        let a = db
            .insert(address, vec![kola::Value::str("X"), kola::Value::Int(1)])
            .unwrap();
        let mut people = Vec::new();
        for age in [5i64, 15, 25, 35, 45] {
            let p = db
                .insert(
                    person,
                    vec![
                        kola::Value::Obj(a),
                        kola::Value::Int(age),
                        kola::Value::str(&format!("p{age}")),
                        kola::Value::empty_set(),
                        kola::Value::empty_set(),
                        kola::Value::empty_set(),
                    ],
                )
                .unwrap();
            people.push(kola::Value::Obj(p));
        }
        db.bind_extent("P", kola::Value::set(people));
        db
    }

    #[test]
    fn simplify_block_fuses_figure_4() {
        let catalog = Catalog::paper();
        let props = PropDb::new();
        let runner = Runner::new(&catalog, &props);
        let strategy = simplify_strategy().unwrap();
        // T1K: the nested iterates fuse to a single pass.
        let q =
            kola::parse::parse_query("iterate(Kp(T), city) . iterate(Kp(T), addr) ! P").unwrap();
        let mut trace = Trace::new();
        let (out, _) = runner.run(&strategy, q, &mut trace);
        assert_eq!(
            out,
            kola::parse::parse_query("iterate(Kp(T), city . addr) ! P").unwrap()
        );
    }
}
