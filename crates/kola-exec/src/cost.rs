//! A cardinality-and-cost estimator for KOLA queries.
//!
//! The paper stops at producing the rewritten query; a real optimizer also
//! *chooses* among the equivalent forms the rules generate. This module
//! adds the missing piece: database statistics ([`Stats::collect`]), a
//! recursive cardinality/cost model mirroring the executor's physical
//! operators, and [`choose`], which picks the cheapest of a set of
//! equivalent plans — enough to prefer Figure 3's KG2 over KG1 on
//! estimates alone.
//!
//! The model is deliberately simple (independence assumptions, fixed
//! default selectivity); its job is *ranking*, which the tests validate
//! against measured operation counts.

use crate::engine::Mode;
use kola::db::Db;
use kola::term::{Func, Pred, Query};
use kola::value::{Sym, Value};
use std::collections::BTreeMap;

/// Collected database statistics.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    /// Cardinality of each named extent.
    pub extent_card: BTreeMap<Sym, f64>,
    /// Average cardinality of each set-valued attribute.
    pub avg_set_attr: BTreeMap<Sym, f64>,
    /// Selectivity assumed for non-trivial predicates.
    pub default_selectivity: f64,
    /// Selectivity assumed for membership (`in`) predicates — typically
    /// much lower than comparisons.
    pub membership_selectivity: f64,
}

impl Stats {
    /// Scan a database, collecting extent cardinalities and average sizes
    /// of set-valued attributes.
    pub fn collect(db: &Db) -> Stats {
        let mut extent_card = BTreeMap::new();
        for name in db.extent_names() {
            if let Ok(Value::Set(s)) = db.extent(name) {
                extent_card.insert(name.clone(), s.len() as f64);
            }
        }
        let mut avg_set_attr = BTreeMap::new();
        for class in db.schema().classes() {
            for attr in &class.attrs {
                if !matches!(attr.ty, kola::Type::Set(_)) {
                    continue;
                }
                let cid = db.schema().class_id(&class.name).expect("own class");
                let n = db.count(cid);
                if n == 0 {
                    continue;
                }
                let mut total = 0usize;
                for idx in 0..n as u32 {
                    let obj = Value::Obj(kola::value::ObjId { class: cid, idx });
                    if let Ok(Value::Set(s)) = db.get_attr(&obj, &attr.name) {
                        total += s.len();
                    }
                }
                avg_set_attr.insert(attr.name.clone(), total as f64 / n as f64);
            }
        }
        Stats {
            extent_card,
            avg_set_attr,
            default_selectivity: 0.3,
            membership_selectivity: 0.05,
        }
    }
}

/// Estimated shape of a value: how many elements a set has, component-wise
/// for pairs, 1 for scalars.
#[derive(Debug, Clone, PartialEq)]
pub enum Card {
    /// A scalar (or object) — no iteration possible.
    Scalar,
    /// A set with the given estimated cardinality; elements shaped as the
    /// inner card.
    Set(f64, Box<Card>),
    /// A pair.
    Pair(Box<Card>, Box<Card>),
}

impl Card {
    fn scalar() -> Card {
        Card::Scalar
    }

    fn set(n: f64, elem: Card) -> Card {
        Card::Set(n.max(0.0), Box::new(elem))
    }

    /// The set cardinality, or 1 for non-sets.
    pub fn count(&self) -> f64 {
        match self {
            Card::Set(n, _) => *n,
            _ => 1.0,
        }
    }
}

/// An estimate: output shape plus cumulative abstract cost.
#[derive(Debug, Clone, PartialEq)]
pub struct Estimate {
    /// Output shape.
    pub card: Card,
    /// Estimated abstract operations (commensurate with
    /// [`crate::engine::ExecStats::total`]'s order of magnitude).
    pub cost: f64,
}

/// Estimate a query under a physical-operator mode.
pub fn estimate_query(stats: &Stats, mode: Mode, q: &Query) -> Estimate {
    match q {
        Query::Lit(v) => Estimate {
            card: card_of_value(v),
            cost: 0.0,
        },
        Query::Extent(name) => {
            let n = stats.extent_card.get(name).copied().unwrap_or(10.0);
            Estimate {
                card: Card::set(n, Card::scalar()),
                cost: 0.0,
            }
        }
        Query::PairQ(a, b) => {
            let ea = estimate_query(stats, mode, a);
            let eb = estimate_query(stats, mode, b);
            Estimate {
                card: Card::Pair(Box::new(ea.card), Box::new(eb.card)),
                cost: ea.cost + eb.cost,
            }
        }
        Query::App(f, inner) => {
            let e = estimate_query(stats, mode, inner);
            let out = estimate_func(stats, mode, f, &e.card);
            Estimate {
                card: out.card,
                cost: e.cost + out.cost,
            }
        }
        Query::Test(_, inner) => {
            let e = estimate_query(stats, mode, inner);
            Estimate {
                card: Card::scalar(),
                cost: e.cost + 1.0,
            }
        }
        Query::Union(a, b) | Query::Intersect(a, b) | Query::Diff(a, b) => {
            let ea = estimate_query(stats, mode, a);
            let eb = estimate_query(stats, mode, b);
            let (na, nb) = (ea.card.count(), eb.card.count());
            let out = match q {
                Query::Union(..) => na + nb,
                Query::Intersect(..) => na.min(nb) * stats.default_selectivity,
                _ => na,
            };
            Estimate {
                card: Card::set(out, Card::scalar()),
                cost: ea.cost + eb.cost + na + nb,
            }
        }
    }
}

fn card_of_value(v: &Value) -> Card {
    match v {
        Value::Set(s) => {
            let elem = s.iter().next().map(card_of_value).unwrap_or(Card::Scalar);
            Card::set(s.len() as f64, elem)
        }
        Value::Pair(p) => Card::Pair(Box::new(card_of_value(&p.0)), Box::new(card_of_value(&p.1))),
        _ => Card::Scalar,
    }
}

fn selectivity(stats: &Stats, p: &Pred) -> f64 {
    match p {
        Pred::ConstP(true) => 1.0,
        Pred::ConstP(false) => 0.0,
        Pred::And(a, b) => selectivity(stats, a) * selectivity(stats, b),
        Pred::Or(a, b) => {
            let (sa, sb) = (selectivity(stats, a), selectivity(stats, b));
            (sa + sb - sa * sb).min(1.0)
        }
        Pred::Not(a) => 1.0 - selectivity(stats, a),
        Pred::Oplus(a, _) | Pred::Conv(a) | Pred::CurryP(a, _) => selectivity(stats, a),
        Pred::In => stats.membership_selectivity,
        _ => stats.default_selectivity,
    }
}

/// Estimate the result-shape of applying a schema primitive.
fn prim_card(stats: &Stats, name: &Sym) -> Card {
    match stats.avg_set_attr.get(name) {
        Some(avg) => Card::set(*avg, Card::scalar()),
        None => Card::Scalar,
    }
}

/// Whether the executor's hash path engages for this predicate.
fn hashable(p: &Pred) -> bool {
    matches!(
        p,
        Pred::Oplus(base, f)
            if matches!(**base, Pred::Eq | Pred::In)
                && matches!(**f, Func::PairWith(..) | Func::Times(..))
    )
}

/// Estimate applying a function to an input of the given shape.
pub fn estimate_func(stats: &Stats, mode: Mode, f: &Func, input: &Card) -> Estimate {
    match f {
        Func::Id => Estimate {
            card: input.clone(),
            cost: 0.0,
        },
        Func::Pi1 => Estimate {
            card: match input {
                Card::Pair(a, _) => (**a).clone(),
                _ => Card::Scalar,
            },
            cost: 0.0,
        },
        Func::Pi2 => Estimate {
            card: match input {
                Card::Pair(_, b) => (**b).clone(),
                _ => Card::Scalar,
            },
            cost: 0.0,
        },
        Func::Prim(name) => Estimate {
            card: prim_card(stats, name),
            cost: 1.0,
        },
        Func::Compose(a, b) => {
            let eb = estimate_func(stats, mode, b, input);
            let ea = estimate_func(stats, mode, a, &eb.card);
            Estimate {
                card: ea.card,
                cost: ea.cost + eb.cost,
            }
        }
        Func::PairWith(a, b) => {
            let ea = estimate_func(stats, mode, a, input);
            let eb = estimate_func(stats, mode, b, input);
            Estimate {
                card: Card::Pair(Box::new(ea.card), Box::new(eb.card)),
                cost: ea.cost + eb.cost,
            }
        }
        Func::Times(a, b) => {
            let (ia, ib) = match input {
                Card::Pair(a, b) => ((**a).clone(), (**b).clone()),
                _ => (Card::Scalar, Card::Scalar),
            };
            let ea = estimate_func(stats, mode, a, &ia);
            let eb = estimate_func(stats, mode, b, &ib);
            Estimate {
                card: Card::Pair(Box::new(ea.card), Box::new(eb.card)),
                cost: ea.cost + eb.cost,
            }
        }
        Func::ConstF(q) => estimate_query(stats, mode, q),
        Func::CurryF(g, q) => {
            let payload = estimate_query(stats, mode, q);
            let arg = Card::Pair(Box::new(payload.card), Box::new(input.clone()));
            let e = estimate_func(stats, mode, g, &arg);
            Estimate {
                card: e.card,
                cost: e.cost + payload.cost,
            }
        }
        Func::Cond(_, a, b) => {
            let ea = estimate_func(stats, mode, a, input);
            let eb = estimate_func(stats, mode, b, input);
            Estimate {
                card: ea.card.clone(),
                cost: ea.cost.max(eb.cost) + 1.0,
            }
        }
        Func::Flat => {
            let (n, inner) = match input {
                Card::Set(n, inner) => (*n, (**inner).clone()),
                _ => (1.0, Card::Scalar),
            };
            let inner_count = inner.count();
            Estimate {
                card: Card::set(n * inner_count, Card::Scalar),
                cost: n * inner_count,
            }
        }
        Func::Iterate(p, body) => {
            let (n, elem) = match input {
                Card::Set(n, e) => (*n, (**e).clone()),
                _ => (1.0, Card::Scalar),
            };
            let per = estimate_func(stats, mode, body, &elem);
            let out = n * selectivity(stats, p);
            Estimate {
                card: Card::set(out, per.card),
                cost: n * (1.0 + per.cost),
            }
        }
        Func::Iter(p, body) => {
            let (env, set) = match input {
                Card::Pair(e, s) => ((**e).clone(), (**s).clone()),
                _ => (Card::Scalar, Card::Scalar),
            };
            let (n, elem) = match set {
                Card::Set(n, e) => (n, *e),
                _ => (1.0, Card::Scalar),
            };
            let arg = Card::Pair(Box::new(env), Box::new(elem));
            let per = estimate_func(stats, mode, body, &arg);
            Estimate {
                card: Card::set(n * selectivity(stats, p), per.card),
                cost: n * (1.0 + per.cost),
            }
        }
        Func::Join(p, body) => {
            let (a, b) = match input {
                Card::Pair(a, b) => ((**a).clone(), (**b).clone()),
                _ => (Card::Scalar, Card::Scalar),
            };
            let (na, ea) = match a {
                Card::Set(n, e) => (n, *e),
                _ => (1.0, Card::Scalar),
            };
            let (nb, eb) = match b {
                Card::Set(n, e) => (n, *e),
                _ => (1.0, Card::Scalar),
            };
            let arg = Card::Pair(Box::new(ea), Box::new(eb));
            let per = estimate_func(stats, mode, body, &arg);
            let out = na * nb * selectivity(stats, p);
            let scan = if mode == Mode::Smart && hashable(p) {
                na + nb + out
            } else {
                na * nb
            };
            Estimate {
                card: Card::set(out, per.card),
                cost: scan * (1.0 + per.cost),
            }
        }
        Func::Nest(_, _) => {
            let (a, b) = match input {
                Card::Pair(a, b) => (a.count(), b.count()),
                _ => (1.0, 1.0),
            };
            let group = if b > 0.0 { a / b } else { 0.0 };
            let scan = if mode == Mode::Smart { a + b } else { a * b };
            Estimate {
                card: Card::set(
                    b,
                    Card::Pair(
                        Box::new(Card::Scalar),
                        Box::new(Card::set(group, Card::Scalar)),
                    ),
                ),
                cost: scan,
            }
        }
        Func::Unnest(_, g) => {
            let (n, elem) = match input {
                Card::Set(n, e) => (*n, (**e).clone()),
                _ => (1.0, Card::Scalar),
            };
            let inner = estimate_func(stats, mode, g, &elem);
            let fanout = inner.card.count();
            Estimate {
                card: Card::set(
                    n * fanout,
                    Card::Pair(Box::new(Card::Scalar), Box::new(Card::Scalar)),
                ),
                cost: n * (1.0 + inner.cost + fanout),
            }
        }
        Func::Bagify | Func::Dedup => {
            let n = input.count();
            Estimate {
                card: Card::set(n, Card::Scalar),
                cost: n,
            }
        }
        Func::BIterate(p, body) => {
            let (n, elem) = match input {
                Card::Set(n, e) => (*n, (**e).clone()),
                _ => (1.0, Card::Scalar),
            };
            let per = estimate_func(stats, mode, body, &elem);
            Estimate {
                card: Card::set(n * selectivity(stats, p), per.card),
                cost: n * (1.0 + per.cost),
            }
        }
        Func::BUnion => {
            let (a, b) = match input {
                Card::Pair(a, b) => (a.count(), b.count()),
                _ => (1.0, 1.0),
            };
            Estimate {
                card: Card::set(a + b, Card::Scalar),
                cost: a + b,
            }
        }
        Func::BFlat => {
            let (n, inner) = match input {
                Card::Set(n, inner) => (*n, inner.count()),
                _ => (1.0, 1.0),
            };
            Estimate {
                card: Card::set(n * inner, Card::Scalar),
                cost: n * inner,
            }
        }
        Func::SetUnion | Func::SetIntersect | Func::SetDiff => {
            let (a, b) = match input {
                Card::Pair(a, b) => (a.count(), b.count()),
                _ => (1.0, 1.0),
            };
            let out = match f {
                Func::SetUnion => a + b,
                Func::SetIntersect => a.min(b) * stats.default_selectivity,
                _ => a,
            };
            Estimate {
                card: Card::set(out, Card::Scalar),
                cost: a + b,
            }
        }
    }
}

/// Choose the cheapest of a set of (assumed-equivalent) plans. Returns the
/// winning index and all estimates.
pub fn choose(stats: &Stats, mode: Mode, plans: &[&Query]) -> (usize, Vec<Estimate>) {
    let estimates: Vec<Estimate> = plans
        .iter()
        .map(|q| estimate_query(stats, mode, q))
        .collect();
    let best = estimates
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| a.cost.total_cmp(&b.cost))
        .map(|(i, _)| i)
        .unwrap_or(0);
    (best, estimates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::{generate, DataSpec};
    use crate::engine::Executor;
    use kola::parse::parse_query;

    fn setup() -> (kola::Db, Stats) {
        let db = generate(&DataSpec::scaled(6, 11));
        let stats = Stats::collect(&db);
        (db, stats)
    }

    #[test]
    fn stats_collection() {
        let (db, stats) = setup();
        assert_eq!(
            stats.extent_card.get("P").copied().unwrap() as usize,
            db.extent("P").unwrap().as_set().unwrap().len()
        );
        assert!(stats.avg_set_attr.contains_key("child"));
        assert!(stats.avg_set_attr.contains_key("cars"));
    }

    #[test]
    fn extent_cardinality_exact() {
        let (_, stats) = setup();
        let q = parse_query("P").unwrap();
        let e = estimate_query(&stats, Mode::Naive, &q);
        assert_eq!(e.card.count(), *stats.extent_card.get("P").unwrap());
    }

    #[test]
    fn iterate_applies_selectivity() {
        let (_, stats) = setup();
        let all = estimate_query(
            &stats,
            Mode::Naive,
            &parse_query("iterate(Kp(T), id) ! P").unwrap(),
        );
        let some = estimate_query(
            &stats,
            Mode::Naive,
            &parse_query("iterate(gt @ (age, Kf(25)), id) ! P").unwrap(),
        );
        let none = estimate_query(
            &stats,
            Mode::Naive,
            &parse_query("iterate(Kp(F), id) ! P").unwrap(),
        );
        assert!(some.card.count() < all.card.count());
        assert_eq!(none.card.count(), 0.0);
    }

    #[test]
    fn estimator_prefers_kg2_under_hash_mode() {
        let (_, stats) = setup();
        let kg1 = parse_query(
            "iterate(Kp(T), (id, \
                flat . iter(Kp(T), grgs . pi2) . \
                (id, iter(in @ (pi1, cars . pi2), pi2) . (id, Kf(P))))) ! V",
        )
        .unwrap();
        let kg2 = parse_query(
            "nest(pi1, pi2) . unnest(pi1, pi2) * id . \
             (join(in @ id * cars, id * grgs), pi1) ! [V, P]",
        )
        .unwrap();
        let (winner, estimates) = choose(&stats, Mode::Smart, &[&kg1, &kg2]);
        assert_eq!(winner, 1, "estimates: {estimates:?}");
    }

    #[test]
    fn estimates_rank_like_measurements() {
        // Ranking validation: for the garage pair, estimated cost order
        // matches measured op-count order in both modes.
        let (db, stats) = setup();
        let kg1 = parse_query(
            "iterate(Kp(T), (id, \
                flat . iter(Kp(T), grgs . pi2) . \
                (id, iter(in @ (pi1, cars . pi2), pi2) . (id, Kf(P))))) ! V",
        )
        .unwrap();
        let kg2 = parse_query(
            "nest(pi1, pi2) . unnest(pi1, pi2) * id . \
             (join(in @ id * cars, id * grgs), pi1) ! [V, P]",
        )
        .unwrap();
        for mode in [Mode::Naive, Mode::Smart] {
            let est1 = estimate_query(&stats, mode, &kg1).cost;
            let est2 = estimate_query(&stats, mode, &kg2).cost;
            let mut ex1 = Executor::new(&db, mode);
            ex1.run(&kg1).unwrap();
            let mut ex2 = Executor::new(&db, mode);
            ex2.run(&kg2).unwrap();
            let measured1 = ex1.stats.total() as f64;
            let measured2 = ex2.stats.total() as f64;
            // Ranking is only demanded where the measured gap is material
            // (the naive-mode garage pair is a near-tie that a simple
            // independence model is not expected to resolve).
            let gap = measured1.max(measured2) / measured1.min(measured2);
            if gap >= 1.5 {
                assert_eq!(
                    est1 < est2,
                    measured1 < measured2,
                    "{mode:?}: est ({est1:.0} vs {est2:.0}), \
                     measured ({measured1} vs {measured2})"
                );
            }
        }
    }

    #[test]
    fn join_cost_model_responds_to_mode() {
        let (_, stats) = setup();
        let q = parse_query("join(in @ id * cars, pi1) ! [V, P]").unwrap();
        let naive = estimate_query(&stats, Mode::Naive, &q).cost;
        let smart = estimate_query(&stats, Mode::Smart, &q).cost;
        assert!(smart < naive, "hash join must estimate cheaper");
        // Non-hashable predicate: modes estimate alike.
        let q = parse_query("join(gt @ (age . pi1, age . pi2), pi1) ! [P, P]").unwrap();
        let naive = estimate_query(&stats, Mode::Naive, &q).cost;
        let smart = estimate_query(&stats, Mode::Smart, &q).cost;
        assert_eq!(naive, smart);
    }
}
