//! Deterministic data generation over the paper's schema.
//!
//! The paper evaluates no concrete dataset (it is a language paper); to
//! *measure* its transformations we need populated databases. This
//! generator builds Person/Address/Vehicle worlds of configurable size and
//! fan-out, seeded so every run (tests, benches) sees identical data.

use crate::rng::Rng;
use kola::db::Db;
use kola::schema::Schema;
use kola::value::{ObjId, Value};

/// Dataset-shape parameters.
#[derive(Debug, Clone, Copy)]
pub struct DataSpec {
    /// Number of Person objects (extent `P`).
    pub persons: usize,
    /// Number of Address objects.
    pub addresses: usize,
    /// Number of Vehicle objects (extent `V`).
    pub vehicles: usize,
    /// Maximum children per person.
    pub max_children: usize,
    /// Maximum cars per person.
    pub max_cars: usize,
    /// Maximum garages per person.
    pub max_garages: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DataSpec {
    fn default() -> Self {
        DataSpec {
            persons: 50,
            addresses: 20,
            vehicles: 30,
            max_children: 3,
            max_cars: 2,
            max_garages: 2,
            seed: DEFAULT_SEED,
        }
    }
}

/// The fixed default seed.
const DEFAULT_SEED: u64 = 0xC0DE_CAFE;

/// Generate a populated database with extents `P` (all persons) and `V`
/// (all vehicles) bound.
pub fn generate(spec: &DataSpec) -> Db {
    let schema = Schema::paper_schema();
    let person = schema.class_id("Person").expect("paper schema");
    let address = schema.class_id("Address").expect("paper schema");
    let vehicle = schema.class_id("Vehicle").expect("paper schema");
    let mut db = Db::new(schema);
    let mut rng = Rng::seed_from_u64(spec.seed);

    let cities = ["Boston", "NYC", "Montreal", "Providence", "Cambridge"];
    let makes = ["Saab", "Volvo", "Honda", "Ford", "Fiat"];

    let mut addr_ids = Vec::with_capacity(spec.addresses);
    for i in 0..spec.addresses {
        let city = cities[rng.gen_range(0..cities.len())];
        let id = db
            .insert(
                address,
                vec![Value::str(city), Value::Int(10_000 + i as i64)],
            )
            .expect("schema arity");
        addr_ids.push(id);
    }
    // Ensure at least one address exists to reference.
    if addr_ids.is_empty() {
        let id = db
            .insert(address, vec![Value::str("Nowhere"), Value::Int(0)])
            .expect("schema arity");
        addr_ids.push(id);
    }

    let mut vehicle_ids = Vec::with_capacity(spec.vehicles);
    for i in 0..spec.vehicles {
        let make = makes[rng.gen_range(0..makes.len())];
        let id = db
            .insert(
                vehicle,
                vec![Value::str(make), Value::Int(1980 + (i as i64 % 40))],
            )
            .expect("schema arity");
        vehicle_ids.push(id);
    }

    // Persons, first pass without children (to allow references).
    let mut person_ids: Vec<ObjId> = Vec::with_capacity(spec.persons);
    for i in 0..spec.persons {
        let addr = addr_ids[rng.gen_range(0..addr_ids.len())];
        let cars = pick(&mut rng, &vehicle_ids, spec.max_cars);
        let grgs = pick(&mut rng, &addr_ids, spec.max_garages);
        let id = db
            .insert(
                person,
                vec![
                    Value::Obj(addr),
                    Value::Int(rng.gen_range(1..=90i64)),
                    Value::str(&format!("person{i}")),
                    Value::empty_set(), // children filled in below
                    Value::set(cars.into_iter().map(Value::Obj)),
                    Value::set(grgs.into_iter().map(Value::Obj)),
                ],
            )
            .expect("schema arity");
        person_ids.push(id);
    }
    // Second pass: children.
    for &p in &person_ids {
        let kids = pick(&mut rng, &person_ids, spec.max_children);
        let kids: Vec<Value> = kids
            .into_iter()
            .filter(|k| *k != p) // no self-children
            .map(Value::Obj)
            .collect();
        db.set_attr(p, "child", Value::set(kids)).expect("attr");
    }

    db.bind_extent("P", Value::set(person_ids.iter().copied().map(Value::Obj)));
    db.bind_extent("V", Value::set(vehicle_ids.iter().copied().map(Value::Obj)));
    db
}

fn pick(rng: &mut Rng, pool: &[ObjId], max: usize) -> Vec<ObjId> {
    if pool.is_empty() || max == 0 {
        return Vec::new();
    }
    let n = rng.gen_range(0..=max.min(pool.len()));
    (0..n).map(|_| pool[rng.gen_range(0..pool.len())]).collect()
}

impl DataSpec {
    /// A small world (fast tests).
    pub fn small(seed: u64) -> DataSpec {
        DataSpec {
            persons: 20,
            addresses: 8,
            vehicles: 12,
            max_children: 3,
            max_cars: 2,
            max_garages: 2,
            seed,
        }
    }

    /// A world scaled by a factor (benches).
    pub fn scaled(factor: usize, seed: u64) -> DataSpec {
        DataSpec {
            persons: 10 * factor,
            addresses: 4 * factor,
            vehicles: 6 * factor,
            max_children: 3,
            max_cars: 2,
            max_garages: 2,
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kola::builder::*;
    use kola::eval::eval_query;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&DataSpec::small(7));
        let b = generate(&DataSpec::small(7));
        assert_eq!(a.extent("P").unwrap(), b.extent("P").unwrap());
        let qa = eval_query(&a, &app(iterate(kp(true), prim("age")), ext("P"))).unwrap();
        let qb = eval_query(&b, &app(iterate(kp(true), prim("age")), ext("P"))).unwrap();
        assert_eq!(qa, qb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&DataSpec::small(1));
        let b = generate(&DataSpec::small(2));
        let q = app(iterate(kp(true), prim("age")), ext("P"));
        assert_ne!(eval_query(&a, &q).unwrap(), eval_query(&b, &q).unwrap());
    }

    #[test]
    fn extents_sized_as_specified() {
        let db = generate(&DataSpec {
            persons: 13,
            vehicles: 7,
            ..DataSpec::small(0)
        });
        assert_eq!(db.extent("P").unwrap().as_set().unwrap().len(), 13);
        assert_eq!(db.extent("V").unwrap().as_set().unwrap().len(), 7);
    }

    #[test]
    fn queries_over_generated_data_run() {
        let db = generate(&DataSpec::small(3));
        // Every figure-style query should evaluate without getting stuck.
        for src in [
            "iterate(Kp(T), city . addr) ! P",
            "iterate(gt @ (age, Kf(25)), age) ! P",
            "iterate(Kp(T), (id, child)) ! P",
        ] {
            let q = kola::parse::parse_query(src).unwrap();
            eval_query(&db, &q).unwrap_or_else(|e| panic!("{src}: {e}"));
        }
    }

    #[test]
    fn no_self_children() {
        let db = generate(&DataSpec::small(5));
        let people = db.extent("P").unwrap();
        for p in people.as_set().unwrap().iter() {
            let kids = db.get_attr(p, "child").unwrap();
            assert!(!kids.as_set().unwrap().contains(p));
        }
    }
}
