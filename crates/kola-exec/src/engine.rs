//! An op-counting execution engine for KOLA queries with pluggable physical
//! operators.
//!
//! §4.1 motivates the hidden-join transformation: explicit joins "may be
//! advantageous because of the variety of implementation techniques known
//! for performing nestings of joins". This engine makes that measurable:
//!
//! - [`Mode::Naive`] interprets Table 2 literally — `join` and `nest` are
//!   nested loops, exactly like the hidden join's nested iteration.
//! - [`Mode::Smart`] recognizes *hashable* join predicates
//!   (`eq ⊕ ⟨f∘π1, g∘π2⟩`-style equalities and `in ⊕ ⟨f∘π1, g∘π2⟩`-style
//!   memberships, in either `⟨,⟩` or `×` form) and executes them by
//!   building a hash table on the right input; `nest` groups by hash.
//!
//! A hidden join contains no `join` node, so `Smart` cannot help it — the
//! speedup only exists *after* untangling. That asymmetry is the measured
//! payoff of §4 (experiment E15).
//!
//! [`ExecStats`] counts abstract operations (element visits, predicate
//! tests, hash probes) so results are machine-independent; wall-clock is
//! measured separately by Criterion.

use kola::db::Db;
use kola::eval::{EvalError, EvalResult};
use kola::term::{Func, Pred, Query};
use kola::value::{Value, ValueSet};
use std::collections::BTreeMap;

/// Physical operator selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Literal Table 2 semantics (nested loops everywhere).
    Naive,
    /// Hash-based `join`/`nest` where the predicate shape allows.
    Smart,
}

/// Abstract operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Set elements visited.
    pub elements_visited: usize,
    /// Predicate evaluations.
    pub predicate_tests: usize,
    /// Function invocations.
    pub func_calls: usize,
    /// Hash-table inserts + probes.
    pub hash_ops: usize,
    /// Set insertions — each one is duplicate-elimination work (ordered
    /// comparisons against existing elements). Bag appends don't count:
    /// that asymmetry is what the §6 deferral optimization exploits.
    pub set_inserts: usize,
}

impl ExecStats {
    /// Total abstract cost.
    pub fn total(&self) -> usize {
        self.elements_visited + self.predicate_tests + self.func_calls + self.hash_ops
    }

    /// Duplicate-elimination work only (see [`ExecStats::set_inserts`]).
    pub fn dedup_work(&self) -> usize {
        self.set_inserts
    }
}

/// The executor: a database handle, a mode and counters.
pub struct Executor<'a> {
    /// Database evaluated against.
    pub db: &'a Db,
    /// Physical operator mode.
    pub mode: Mode,
    /// Operation counters (reset per [`Executor::run`]).
    pub stats: ExecStats,
    /// Recursion-depth guard (see [`Executor::run`]).
    pub depth_limit: usize,
    /// Native-stack position at [`Executor::run`] entry, for the
    /// stack-budget backstop shared with `kola::eval`.
    stack_base: usize,
}

impl<'a> Executor<'a> {
    /// New executor.
    pub fn new(db: &'a Db, mode: Mode) -> Self {
        Executor {
            db,
            mode,
            stats: ExecStats::default(),
            depth_limit: kola::eval::MAX_EVAL_DEPTH,
            stack_base: 0,
        }
    }

    #[inline]
    fn guard(&self, d: usize) -> Result<(), EvalError> {
        if d >= self.depth_limit || kola::eval::stack_exhausted(self.stack_base) {
            Err(EvalError::DepthExceeded {
                limit: self.depth_limit,
            })
        } else {
            Ok(())
        }
    }

    /// Evaluate a query, counting operations. Resets stats first. Like the
    /// reference evaluator, recursion is guarded by `self.depth_limit`
    /// (default [`kola::MAX_EVAL_DEPTH`]) plus a native-stack budget
    /// ([`kola::eval::EVAL_STACK_BUDGET`]): adversarially deep terms return
    /// [`EvalError::DepthExceeded`] instead of overflowing the stack.
    pub fn run(&mut self, q: &Query) -> EvalResult {
        self.stats = ExecStats::default();
        self.stack_base = kola::eval::stack_mark();
        self.query(q, 0)
    }

    fn query(&mut self, q: &Query, d: usize) -> EvalResult {
        self.guard(d)?;
        match q {
            Query::Lit(v) => Ok(v.clone()),
            Query::Extent(name) => Ok(self.db.extent(name).map_err(EvalError::Db)?),
            Query::PairQ(a, b) => Ok(Value::pair(self.query(a, d + 1)?, self.query(b, d + 1)?)),
            Query::App(f, q) => {
                let arg = self.query(q, d + 1)?;
                self.func(f, &arg, d + 1)
            }
            Query::Test(p, q) => {
                let arg = self.query(q, d + 1)?;
                Ok(Value::Bool(self.pred(p, &arg, d + 1)?))
            }
            Query::Union(a, b) | Query::Intersect(a, b) | Query::Diff(a, b) => {
                let va = self.query(a, d + 1)?;
                let vb = self.query(b, d + 1)?;
                let sa = as_set(&va)?;
                let sb = as_set(&vb)?;
                self.stats.elements_visited += sa.len() + sb.len();
                self.stats.set_inserts += sa.len() + sb.len();
                Ok(Value::Set(match q {
                    Query::Union(..) => sa.union(sb),
                    Query::Intersect(..) => sa.intersect(sb),
                    _ => sa.difference(sb),
                }))
            }
        }
    }

    fn func(&mut self, f: &Func, x: &Value, d: usize) -> EvalResult {
        self.guard(d)?;
        self.stats.func_calls += 1;
        match f {
            Func::Join(p, body) if self.mode == Mode::Smart => self.smart_join(p, body, x, d),
            Func::Nest(key, val) if self.mode == Mode::Smart => self.smart_nest(key, val, x, d),
            Func::Compose(a, b) => {
                let mid = self.func(b, x, d + 1)?;
                self.func(a, &mid, d + 1)
            }
            Func::Iterate(p, body) => {
                let set = as_set(x)?.clone();
                let mut out = ValueSet::new();
                for v in set.iter() {
                    self.stats.elements_visited += 1;
                    if self.pred(p, v, d + 1)? {
                        self.stats.set_inserts += 1;
                        out.insert(self.func(body, v, d + 1)?);
                    }
                }
                Ok(Value::Set(out))
            }
            Func::Iter(p, body) => {
                let (e, b) = as_pair(x)?;
                let set = as_set(b)?.clone();
                let mut out = ValueSet::new();
                for y in set.iter() {
                    self.stats.elements_visited += 1;
                    let pair = Value::pair(e.clone(), y.clone());
                    if self.pred(p, &pair, d + 1)? {
                        out.insert(self.func(body, &pair, d + 1)?);
                    }
                }
                Ok(Value::Set(out))
            }
            Func::Join(p, body) => {
                // Naive: nested loop.
                let (a, b) = as_pair(x)?;
                let aset = as_set(a)?.clone();
                let bset = as_set(b)?.clone();
                let mut out = ValueSet::new();
                for x in aset.iter() {
                    for y in bset.iter() {
                        self.stats.elements_visited += 1;
                        let pair = Value::pair(x.clone(), y.clone());
                        if self.pred(p, &pair, d + 1)? {
                            out.insert(self.func(body, &pair, d + 1)?);
                        }
                    }
                }
                Ok(Value::Set(out))
            }
            Func::Nest(key, val) => {
                // Naive: per-group scan.
                let (a, b) = as_pair(x)?;
                let aset = as_set(a)?.clone();
                let bset = as_set(b)?.clone();
                let mut out = ValueSet::new();
                for y in bset.iter() {
                    let mut group = ValueSet::new();
                    for x in aset.iter() {
                        self.stats.elements_visited += 1;
                        if &self.func(key, x, d + 1)? == y {
                            group.insert(self.func(val, x, d + 1)?);
                        }
                    }
                    out.insert(Value::pair(y.clone(), Value::Set(group)));
                }
                Ok(Value::Set(out))
            }
            Func::Unnest(key, val) => {
                let set = as_set(x)?.clone();
                let mut out = ValueSet::new();
                for v in set.iter() {
                    self.stats.elements_visited += 1;
                    let k = self.func(key, v, d + 1)?;
                    let inner = self.func(val, v, d + 1)?;
                    for y in as_set(&inner)?.iter() {
                        self.stats.elements_visited += 1;
                        out.insert(Value::pair(k.clone(), y.clone()));
                    }
                }
                Ok(Value::Set(out))
            }
            Func::Cond(p, f, g) => {
                if self.pred(p, x, d + 1)? {
                    self.func(f, x, d + 1)
                } else {
                    self.func(g, x, d + 1)
                }
            }
            Func::PairWith(f, g) => Ok(Value::pair(
                self.func(f, x, d + 1)?,
                self.func(g, x, d + 1)?,
            )),
            Func::Times(f, g) => {
                let (a, b) = as_pair(x)?;
                let (a, b) = (a.clone(), b.clone());
                Ok(Value::pair(
                    self.func(f, &a, d + 1)?,
                    self.func(g, &b, d + 1)?,
                ))
            }
            Func::ConstF(q) => self.query(q, d + 1),
            Func::CurryF(f, q) => {
                let payload = self.query(q, d + 1)?;
                let arg = Value::pair(payload, x.clone());
                self.func(f, &arg, d + 1)
            }
            Func::Flat => {
                let set = as_set(x)?;
                let mut out = ValueSet::new();
                for inner in set.iter() {
                    for v in as_set(inner)?.iter() {
                        self.stats.elements_visited += 1;
                        out.insert(v.clone());
                    }
                }
                Ok(Value::Set(out))
            }
            Func::Bagify => {
                let set = as_set(x)?;
                let mut bag = kola::bag::ValueBag::new();
                for v in set.iter() {
                    self.stats.elements_visited += 1;
                    bag.insert(v.clone());
                }
                Ok(Value::Bag(bag))
            }
            Func::Dedup => match x {
                Value::Bag(b) => {
                    self.stats.elements_visited += b.distinct();
                    self.stats.set_inserts += b.distinct();
                    Ok(Value::Set(b.support()))
                }
                other => Err(EvalError::Stuck {
                    what: "dedup",
                    got: other.kind_name(),
                }),
            },
            Func::BIterate(p, body) => {
                let Value::Bag(bag) = x else {
                    return Err(EvalError::Stuck {
                        what: "biterate",
                        got: x.kind_name(),
                    });
                };
                let bag = bag.clone();
                let mut out = kola::bag::ValueBag::new();
                for (v, n) in bag.iter() {
                    self.stats.elements_visited += 1;
                    if self.pred(p, v, d + 1)? {
                        out.insert_n(self.func(body, v, d + 1)?, n);
                    }
                }
                Ok(Value::Bag(out))
            }
            Func::BUnion => {
                let (a, b) = as_pair(x)?;
                match (a, b) {
                    (Value::Bag(a), Value::Bag(b)) => {
                        self.stats.elements_visited += a.distinct() + b.distinct();
                        Ok(Value::Bag(a.additive_union(b)))
                    }
                    (other, _) => Err(EvalError::Stuck {
                        what: "bunion",
                        got: other.kind_name(),
                    }),
                }
            }
            // Everything else is cheap and delegates to the reference
            // semantics.
            _ => kola::eval::eval_func(self.db, f, x),
        }
    }

    fn pred(&mut self, p: &Pred, x: &Value, d: usize) -> Result<bool, EvalError> {
        self.guard(d)?;
        self.stats.predicate_tests += 1;
        match p {
            Pred::Oplus(inner, f) => {
                let mid = self.func(f, x, d + 1)?;
                self.pred(inner, &mid, d + 1)
            }
            Pred::And(a, b) => Ok(self.pred(a, x, d + 1)? && self.pred(b, x, d + 1)?),
            Pred::Or(a, b) => Ok(self.pred(a, x, d + 1)? || self.pred(b, x, d + 1)?),
            Pred::Not(a) => Ok(!self.pred(a, x, d + 1)?),
            Pred::Conv(a) => {
                let (l, r) = as_pair(x)?;
                let sw = Value::pair(r.clone(), l.clone());
                self.pred(a, &sw, d + 1)
            }
            Pred::CurryP(inner, q) => {
                let payload = self.query(q, d + 1)?;
                let arg = Value::pair(payload, x.clone());
                self.pred(inner, &arg, d + 1)
            }
            _ => kola::eval::eval_pred(self.db, p, x),
        }
    }

    /// Recognize `BASE ⊕ ⟨f-of-left, g-of-right⟩` join predicates where
    /// BASE is `eq` or `in`: returns `(base, left_key_func, right_func)`
    /// with both functions taking the *component* (not the pair).
    fn hashable(p: &Pred) -> Option<(HashKind, Func, Func)> {
        let Pred::Oplus(base, f) = p else { return None };
        let kind = match **base {
            Pred::Eq => HashKind::Eq,
            Pred::In => HashKind::In,
            _ => return None,
        };
        // ⟨a, b⟩ or a × b, where a touches only π1 and b only π2.
        let (a, b) = match &**f {
            Func::PairWith(a, b) => (split_left(a)?, split_right(b)?),
            Func::Times(a, b) => ((**a).clone(), (**b).clone()),
            _ => return None,
        };
        Some((kind, a, b))
    }

    /// Hash join: build on the right, probe from the left.
    ///
    /// - `Eq`: right rows keyed by `g(y)`; probe with `f(x)`.
    /// - `In`: `g(y)` is a set; key every member; probe with `f(x)`.
    fn smart_join(&mut self, p: &Pred, body: &Func, x: &Value, d: usize) -> EvalResult {
        let Some((kind, fl, fr)) = Self::hashable(p) else {
            // Not hashable: fall back to the nested loop.
            let (a, b) = as_pair(x)?;
            let (a, b) = (a.clone(), b.clone());
            let mut out = ValueSet::new();
            let aset = as_set(&a)?.clone();
            let bset = as_set(&b)?.clone();
            for x in aset.iter() {
                for y in bset.iter() {
                    self.stats.elements_visited += 1;
                    let pair = Value::pair(x.clone(), y.clone());
                    if self.pred(p, &pair, d + 1)? {
                        out.insert(self.func(body, &pair, d + 1)?);
                    }
                }
            }
            return Ok(Value::Set(out));
        };
        let (a, b) = as_pair(x)?;
        let aset = as_set(a)?.clone();
        let bset = as_set(b)?.clone();
        // Either side empty: the nested-loop semantics would evaluate
        // nothing at all; match that exactly (strictness included).
        if aset.is_empty() || bset.is_empty() {
            return Ok(Value::Set(ValueSet::new()));
        }
        // Build phase.
        let mut table: BTreeMap<Value, Vec<Value>> = BTreeMap::new();
        for y in bset.iter() {
            self.stats.elements_visited += 1;
            let key = self.func(&fr, y, d + 1)?;
            match kind {
                HashKind::Eq => {
                    self.stats.hash_ops += 1;
                    table.entry(key).or_default().push(y.clone());
                }
                HashKind::In => {
                    for member in as_set(&key)?.iter() {
                        self.stats.hash_ops += 1;
                        table.entry(member.clone()).or_default().push(y.clone());
                    }
                }
            }
        }
        // Probe phase.
        let mut out = ValueSet::new();
        for x in aset.iter() {
            self.stats.elements_visited += 1;
            let key = self.func(&fl, x, d + 1)?;
            self.stats.hash_ops += 1;
            if let Some(matches) = table.get(&key) {
                for y in matches.clone() {
                    let pair = Value::pair(x.clone(), y);
                    out.insert(self.func(body, &pair, d + 1)?);
                }
            }
        }
        Ok(Value::Set(out))
    }

    /// Hash nest: one pass over A grouping by `key`, one pass over B
    /// emitting groups (empty for unmatched).
    fn smart_nest(&mut self, key: &Func, val: &Func, x: &Value, d: usize) -> EvalResult {
        let (a, b) = as_pair(x)?;
        let aset = as_set(a)?.clone();
        let bset = as_set(b)?.clone();
        // An empty second input means the reference semantics evaluate
        // nothing; preserve that strictness.
        if bset.is_empty() {
            return Ok(Value::Set(ValueSet::new()));
        }
        let mut groups: BTreeMap<Value, ValueSet> = BTreeMap::new();
        for x in aset.iter() {
            self.stats.elements_visited += 1;
            let k = self.func(key, x, d + 1)?;
            // `val` is only evaluated for rows some group will keep —
            // exactly when the reference semantics would evaluate it.
            if !bset.contains(&k) {
                continue;
            }
            let v = self.func(val, x, d + 1)?;
            self.stats.hash_ops += 1;
            groups.entry(k).or_default().insert(v);
        }
        let mut out = ValueSet::new();
        for y in bset.iter() {
            self.stats.elements_visited += 1;
            self.stats.hash_ops += 1;
            let group = groups.get(y).cloned().unwrap_or_default();
            out.insert(Value::pair(y.clone(), Value::Set(group)));
        }
        Ok(Value::Set(out))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HashKind {
    Eq,
    In,
}

/// Extract the `f` from `f ∘ π1` (or `π1` itself as `id`).
fn split_left(f: &Func) -> Option<Func> {
    match f {
        Func::Pi1 => Some(Func::Id),
        Func::Compose(g, h) if **h == Func::Pi1 => Some((**g).clone()),
        _ => None,
    }
}

/// Extract the `g` from `g ∘ π2` (or `π2` itself as `id`).
fn split_right(f: &Func) -> Option<Func> {
    match f {
        Func::Pi2 => Some(Func::Id),
        Func::Compose(g, h) if **h == Func::Pi2 => Some((**g).clone()),
        _ => None,
    }
}

fn as_set(v: &Value) -> Result<&ValueSet, EvalError> {
    v.as_set().ok_or(EvalError::Stuck {
        what: "executor set operand",
        got: v.kind_name(),
    })
}

fn as_pair(v: &Value) -> Result<(&Value, &Value), EvalError> {
    v.as_pair().ok_or(EvalError::Stuck {
        what: "executor pair operand",
        got: v.kind_name(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::{generate, DataSpec};
    use kola::eval::eval_query;
    use kola::parse::parse_query;

    fn check_agrees(src: &str) {
        let db = generate(&DataSpec::small(11));
        let q = parse_query(src).unwrap();
        let reference = eval_query(&db, &q).unwrap();
        for mode in [Mode::Naive, Mode::Smart] {
            let mut ex = Executor::new(&db, mode);
            let got = ex.run(&q).unwrap();
            assert_eq!(got, reference, "{src} under {mode:?}");
        }
    }

    #[test]
    fn executor_agrees_with_reference_semantics() {
        for src in [
            "iterate(Kp(T), city . addr) ! P",
            "iterate(gt @ (age, Kf(25)), age) ! P",
            "join(eq @ (age . pi1, age . pi2), pi1) ! [P, P]",
            "join(in @ (pi1, cars . pi2), pi2) ! [V, P]",
            "nest(pi1, pi2) . (join(Kp(T), id), pi1) ! [V, P]",
            "unnest(pi1, pi2) ! iterate(Kp(T), (id, child)) ! P",
        ] {
            check_agrees(src);
        }
    }

    #[test]
    fn garage_queries_agree_across_modes() {
        let kg1 = "iterate(Kp(T), (id, \
            flat . iter(Kp(T), grgs . pi2) . \
            (id, iter(in @ (pi1, cars . pi2), pi2) . (id, Kf(P))))) ! V";
        let kg2 = "nest(pi1, pi2) . unnest(pi1, pi2) * id . \
            (join(in @ id * cars, id * grgs), pi1) ! [V, P]";
        let db = generate(&DataSpec::small(42));
        let q1 = parse_query(kg1).unwrap();
        let q2 = parse_query(kg2).unwrap();
        let r1 = eval_query(&db, &q1).unwrap();
        let r2 = eval_query(&db, &q2).unwrap();
        assert_eq!(r1, r2, "KG1 and KG2 must be equivalent");
        for mode in [Mode::Naive, Mode::Smart] {
            let mut ex = Executor::new(&db, mode);
            assert_eq!(ex.run(&q1).unwrap(), r1);
            assert_eq!(ex.run(&q2).unwrap(), r1);
        }
    }

    #[test]
    fn smart_join_probes_instead_of_scanning() {
        let db = generate(&DataSpec::scaled(5, 3));
        let q = parse_query("join(in @ id * cars, id * grgs), pi1 ! [V, P]");
        // That string has a top-level comma; build via the pair form:
        drop(q);
        let q = parse_query("(join(in @ id * cars, id * grgs), pi1) ! [V, P]").unwrap();
        let mut naive = Executor::new(&db, Mode::Naive);
        naive.run(&q).unwrap();
        let mut smart = Executor::new(&db, Mode::Smart);
        smart.run(&q).unwrap();
        assert!(
            smart.stats.elements_visited < naive.stats.elements_visited,
            "smart {:?} vs naive {:?}",
            smart.stats,
            naive.stats
        );
        assert!(smart.stats.hash_ops > 0);
    }

    #[test]
    fn untangling_enables_the_speedup() {
        // The paper's payoff: KG1 (hidden join) sees no benefit from Smart
        // mode; KG2 (explicit join) does.
        let db = generate(&DataSpec::scaled(6, 9));
        let kg1 = parse_query(
            "iterate(Kp(T), (id, \
                flat . iter(Kp(T), grgs . pi2) . \
                (id, iter(in @ (pi1, cars . pi2), pi2) . (id, Kf(P))))) ! V",
        )
        .unwrap();
        let kg2 = parse_query(
            "nest(pi1, pi2) . unnest(pi1, pi2) * id . \
             (join(in @ id * cars, id * grgs), pi1) ! [V, P]",
        )
        .unwrap();
        let cost = |q: &Query, mode: Mode| {
            let mut ex = Executor::new(&db, mode);
            ex.run(q).unwrap();
            ex.stats.total()
        };
        let kg1_naive = cost(&kg1, Mode::Naive);
        let kg1_smart = cost(&kg1, Mode::Smart);
        let kg2_smart = cost(&kg2, Mode::Smart);
        assert_eq!(kg1_naive, kg1_smart, "no join node -> Smart can't help");
        assert!(
            kg2_smart < kg1_naive,
            "untangled+hash ({kg2_smart}) should beat hidden join ({kg1_naive})"
        );
    }

    #[test]
    fn executor_depth_guard_matches_reference_evaluator() {
        // Adversarially deep terms must yield EvalError::DepthExceeded from
        // BOTH the op-counting executor and the reference evaluator, never a
        // stack overflow — and with the same default limit.
        let db = generate(&DataSpec::small(3));
        let mut f = kola::term::Func::Id;
        for _ in 0..50_000 {
            f = kola::term::Func::Compose(Box::new(kola::term::Func::Id), Box::new(f));
        }
        let q = Query::App(f.clone(), Box::new(Query::Lit(Value::Int(1))));
        let reference = eval_query(&db, &q);
        for mode in [Mode::Naive, Mode::Smart] {
            let mut ex = Executor::new(&db, mode);
            assert_eq!(ex.run(&q), reference, "{mode:?}");
            assert_eq!(
                ex.run(&q),
                Err(EvalError::DepthExceeded {
                    limit: kola::MAX_EVAL_DEPTH
                })
            );
        }
    }

    #[test]
    fn nest_smart_and_naive_agree_on_empty_groups() {
        let db = generate(&DataSpec::small(2));
        let q = parse_query("nest(age, id) ! [P, {1, 2, 3}]").unwrap();
        let reference = eval_query(&db, &q).unwrap();
        let mut smart = Executor::new(&db, Mode::Smart);
        assert_eq!(smart.run(&q).unwrap(), reference);
    }
}
