#![warn(missing_docs)]
//! # kola-exec — execution engine, cost accounting and data generation
//!
//! [`datagen`] builds deterministic Person/Address/Vehicle worlds over the
//! paper's schema; [`engine`] executes KOLA queries with either literal
//! (naive nested-loop) or hash-based physical operators, counting abstract
//! operations. Together they make the benefit of §4's hidden-join
//! untangling *measurable* (experiment E15).
pub mod cost;
pub mod datagen;
pub mod engine;

pub use cost::{choose, estimate_query, Estimate, Stats};
pub use datagen::{generate, DataSpec};
pub use engine::{ExecStats, Executor, Mode};
