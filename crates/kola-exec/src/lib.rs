#![warn(missing_docs)]
//! # kola-exec — execution engine, cost accounting and data generation
//!
//! [`datagen`] builds deterministic Person/Address/Vehicle worlds over the
//! paper's schema; [`engine`] executes KOLA queries with either literal
//! (naive nested-loop) or hash-based physical operators, counting abstract
//! operations. Together they make the benefit of §4's hidden-join
//! untangling *measurable* (experiment E15).
//!
//! [`rng`] vendors the deterministic PRNG that keeps the whole workspace
//! hermetic (no external `rand` dependency, so tier-1 builds run offline).
pub mod cost;
pub mod datagen;
pub mod engine;
pub mod rng;

pub use cost::{choose, estimate_query, Estimate, Stats};
pub use datagen::{generate, DataSpec};
pub use engine::{ExecStats, Executor, Mode};
pub use rng::Rng;
