//! A small, vendored, deterministic PRNG — no external dependencies.
//!
//! The repository's data generation, randomized rule verification and fuzz
//! harnesses all need reproducible pseudo-randomness, but the build must be
//! hermetic (tier-1 CI runs with no network access, so no `rand` crate).
//! This module vendors the well-known xoshiro256** generator seeded through
//! SplitMix64 — the exact construction recommended by Blackman & Vigna —
//! which is tiny, fast, and more than adequate for test-data generation.
//!
//! The API deliberately mirrors the subset of `rand` the repository used
//! (`seed_from_u64`, `gen`, `gen_range`, `gen_bool`) so call sites read the
//! same. Determinism is guaranteed across platforms and releases: the
//! generated streams are pinned by the tests at the bottom of this file.

use std::ops::{Range, RangeInclusive};

/// Advance a SplitMix64 state and return the next output. Used both for
/// seeding [`Rng`] and as a standalone one-liner mixer.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256** generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seed the generator from a single `u64` (via SplitMix64, so similar
    /// seeds still produce uncorrelated streams).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut st = seed;
        Rng {
            s: [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ],
        }
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// A uniformly random value of a supported primitive type (`bool`,
    /// `u64`, `i64`, `u32`, `f64` in `[0, 1)`).
    #[inline]
    pub fn gen<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// A uniform sample from a range (`a..b` or `a..=b`, over `usize`,
    /// `i64`, `u64` or `u32`). Panics on empty `a..b` ranges, like `rand`.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Uniform `u64` below `bound` (Lemire-style; `bound` must be > 0).
    #[inline]
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift with rejection of the biased low zone.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Types [`Rng::gen`] can produce.
pub trait FromRng {
    /// Draw a uniform value.
    fn from_rng(rng: &mut Rng) -> Self;
}

impl FromRng for u64 {
    fn from_rng(rng: &mut Rng) -> u64 {
        rng.next_u64()
    }
}

impl FromRng for i64 {
    fn from_rng(rng: &mut Rng) -> i64 {
        rng.next_u64() as i64
    }
}

impl FromRng for u32 {
    fn from_rng(rng: &mut Rng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRng for bool {
    fn from_rng(rng: &mut Rng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for f64 {
    fn from_rng(rng: &mut Rng) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draw a uniform sample.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut Rng) -> usize {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SampleRange for RangeInclusive<usize> {
    type Output = usize;
    fn sample(self, rng: &mut Rng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range on empty range");
        let span = (hi - lo) as u64;
        if span == u64::MAX {
            return rng.next_u64() as usize;
        }
        lo + rng.below(span + 1) as usize
    }
}

impl SampleRange for Range<u32> {
    type Output = u32;
    fn sample(self, rng: &mut Rng) -> u32 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + rng.below((self.end - self.start) as u64) as u32
    }
}

impl SampleRange for Range<i64> {
    type Output = i64;
    fn sample(self, rng: &mut Rng) -> i64 {
        assert!(self.start < self.end, "gen_range on empty range");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(rng.below(span) as i64)
    }
}

impl SampleRange for RangeInclusive<i64> {
    type Output = i64;
    fn sample(self, rng: &mut Rng) -> i64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range on empty range");
        let span = hi.wrapping_sub(lo) as u64;
        if span == u64::MAX {
            return rng.next_u64() as i64;
        }
        lo.wrapping_add(rng.below(span + 1) as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn pinned_stream() {
        // Guards cross-release reproducibility of every seeded test/bench.
        let mut r = Rng::seed_from_u64(0);
        let got: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                11091344671253066420,
                13793997310169335082,
                1900383378846508768,
                7684712102626143532
            ]
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = r.gen_range(-10..=40i64);
            assert!((-10..=40).contains(&y));
            let z = r.gen_range(0..=4usize);
            assert!(z <= 4);
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = Rng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Rng::seed_from_u64(3);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
