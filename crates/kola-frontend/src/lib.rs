#![warn(missing_docs)]
//! # kola-frontend — OQL surface language and translators into KOLA
//!
//! The paper's [11]: translators from OQL and AQUA into the combinator
//! algebra. [`oql`] parses a `select/from/where` subset and lowers it to
//! AQUA; [`to_kola`] compiles AQUA's λ-terms into variable-free KOLA via
//! explicit environments; [`size`] measures the §4.2 O(mn) translation-size
//! claim.
pub mod oql;
pub mod size;
pub mod to_kola;

pub use oql::{oql_to_kola, parse_oql, OqlError};
pub use size::{measure, sweep_query, SizeReport};
pub use to_kola::{translate_query, TranslateError};

/// Parse a request in either surface syntax: OQL (`select … from …`,
/// detected by its leading keyword) is lowered through AQUA to KOLA;
/// anything else is parsed as a KOLA query directly. This is the
/// optimization service's front door — requests arrive as text in
/// whichever notation the client speaks.
pub fn parse_any_query(src: &str) -> Result<kola::term::Query, String> {
    let first = src.trim_start().get(..6).unwrap_or("");
    if first.eq_ignore_ascii_case("select") {
        oql_to_kola(src).map_err(|e| format!("oql: {e}"))
    } else {
        kola::parse::parse_query(src).map_err(|e| format!("kola: {e}"))
    }
}
