#![warn(missing_docs)]
//! # kola-frontend — OQL surface language and translators into KOLA
//!
//! The paper's [11]: translators from OQL and AQUA into the combinator
//! algebra. [`oql`] parses a `select/from/where` subset and lowers it to
//! AQUA; [`to_kola`] compiles AQUA's λ-terms into variable-free KOLA via
//! explicit environments; [`size`] measures the §4.2 O(mn) translation-size
//! claim.
pub mod oql;
pub mod size;
pub mod to_kola;

pub use oql::{oql_to_kola, parse_oql, OqlError};
pub use size::{measure, sweep_query, SizeReport};
pub use to_kola::{translate_query, TranslateError};
