//! A small OQL-style surface language and its lowering to AQUA.
//!
//! The paper implemented translators "from both OQL [9] and AQUA [25]" into
//! KOLA [11]. This module provides the OQL half: a `select / from / where`
//! subset with nesting, path expressions, comparisons and boolean
//! connectives, lowered to AQUA (and from there to KOLA via
//! [`crate::to_kola`]).
//!
//! Grammar (nesting allowed anywhere an expression is):
//!
//! ```text
//! query  := select expr from ident in expr [where expr]
//!         | flatten ( query )
//! expr   := or-expr
//! or     := and ("or" and)*
//! and    := cmp ("and" cmp)*
//! cmp    := add (("="|"<"|"<="|">"|">="|"in") add)?
//! atom   := path | literal | "(" query-or-expr ")" | "[" expr "," expr "]"
//!         | "not" atom | select-query
//! path   := ident ("." ident)*
//! ```
//!
//! A bare identifier is a variable if bound by an enclosing `from`, else an
//! extent.

use kola::value::Value;
use kola_aqua::ast::{CmpOp, Expr, Lambda};
use std::collections::BTreeSet;
use std::fmt;

/// OQL parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OqlError {
    /// Description.
    pub msg: String,
}

impl fmt::Display for OqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OQL error: {}", self.msg)
    }
}

impl std::error::Error for OqlError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    Sym(char),
    Leq,
    Geq,
}

fn lex(src: &str) -> Result<Vec<Tok>, OqlError> {
    let mut out = Vec::new();
    let b = src.as_bytes();
    let mut i = 0;
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '<' | '>' if i + 1 < b.len() && b[i + 1] as char == '=' => {
                out.push(if c == '<' { Tok::Leq } else { Tok::Geq });
                i += 2;
            }
            '(' | ')' | '[' | ']' | ',' | '.' | '=' | '<' | '>' => {
                out.push(Tok::Sym(c));
                i += 1;
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < b.len() && b[j] as char != '"' {
                    j += 1;
                }
                if j >= b.len() {
                    return Err(OqlError {
                        msg: "unterminated string".into(),
                    });
                }
                out.push(Tok::Str(src[start..j].to_string()));
                i = j + 1;
            }
            '0'..='9' | '-' => {
                let start = i;
                i += 1;
                while i < b.len() && (b[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let n = src[start..i].parse().map_err(|_| OqlError {
                    msg: format!("bad int {:?}", &src[start..i]),
                })?;
                out.push(Tok::Int(n));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && ((b[i] as char).is_ascii_alphanumeric() || b[i] as char == '_')
                {
                    i += 1;
                }
                out.push(Tok::Ident(src[start..i].to_string()));
            }
            other => {
                return Err(OqlError {
                    msg: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(out)
}

struct P {
    toks: Vec<Tok>,
    pos: usize,
    /// Variables bound by enclosing `from` clauses.
    scope: BTreeSet<String>,
}

impl P {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, OqlError> {
        Err(OqlError { msg: msg.into() })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn eat_sym(&mut self, c: char) -> bool {
        if self.peek() == Some(&Tok::Sym(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, c: char) -> Result<(), OqlError> {
        if self.eat_sym(c) {
            Ok(())
        } else {
            self.err(format!("expected {c:?}, found {:?}", self.peek()))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), OqlError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected {kw:?}, found {:?}", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String, OqlError> {
        match self.toks.get(self.pos).cloned() {
            Some(Tok::Ident(s)) => {
                self.pos += 1;
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    /// `select e from x in C [where p]` — lowered to
    /// `app(λx. e)(sel(λx. p)(C))` (or without the `sel` when no `where`).
    fn select(&mut self) -> Result<Expr, OqlError> {
        self.expect_kw("select")?;
        // The projection references the from-variable, so parse clauses out
        // of order: find `from` first by snapshotting.
        let proj_start = self.pos;
        let mut depth = 0usize;
        // Skip to matching top-level `from`.
        loop {
            match self.toks.get(self.pos) {
                None => return self.err("select without from"),
                Some(Tok::Sym('(')) | Some(Tok::Sym('[')) => {
                    depth += 1;
                    self.pos += 1;
                }
                Some(Tok::Sym(')')) | Some(Tok::Sym(']')) => {
                    if depth == 0 {
                        return self.err("select without from");
                    }
                    depth -= 1;
                    self.pos += 1;
                }
                Some(Tok::Ident(s)) if depth == 0 && s.eq_ignore_ascii_case("from") => {
                    break;
                }
                Some(Tok::Ident(s)) if depth == 0 && s.eq_ignore_ascii_case("select") => {
                    // A nested select inside the projection without parens
                    // would be ambiguous; require parentheses.
                    return self.err("parenthesize nested select in projection");
                }
                _ => self.pos += 1,
            }
        }
        let from_pos = self.pos;
        self.pos += 1; // consume `from`
        let var = self.ident()?;
        self.expect_kw("in")?;
        let source = self.expr()?;
        let filter = if self.eat_kw("where") {
            self.scope.insert(var.clone());
            let p = self.expr()?;
            Some(p)
        } else {
            None
        };
        let end_pos = self.pos;
        // Now parse the projection with the variable in scope.
        self.pos = proj_start;
        self.scope.insert(var.clone());
        let proj = self.expr()?;
        if self.pos != from_pos {
            return self.err("trailing tokens in select projection");
        }
        self.scope.remove(&var);
        self.pos = end_pos;

        let mut src = source;
        if let Some(p) = filter {
            src = Expr::sel(Lambda::new(&var, p), src);
        }
        Ok(Expr::app(Lambda::new(&var, proj), src))
    }

    fn expr(&mut self) -> Result<Expr, OqlError> {
        let mut a = self.and_expr()?;
        while self.eat_kw("or") {
            let b = self.and_expr()?;
            a = Expr::Or(Box::new(a), Box::new(b));
        }
        Ok(a)
    }

    fn and_expr(&mut self) -> Result<Expr, OqlError> {
        let mut a = self.cmp_expr()?;
        while self.eat_kw("and") {
            let b = self.cmp_expr()?;
            a = Expr::And(Box::new(a), Box::new(b));
        }
        Ok(a)
    }

    fn cmp_expr(&mut self) -> Result<Expr, OqlError> {
        let a = self.atom()?;
        let op = match self.peek() {
            Some(Tok::Sym('=')) => Some(CmpOp::Eq),
            Some(Tok::Sym('<')) => Some(CmpOp::Lt),
            Some(Tok::Sym('>')) => Some(CmpOp::Gt),
            Some(Tok::Leq) => Some(CmpOp::Leq),
            Some(Tok::Geq) => Some(CmpOp::Geq),
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("in") => Some(CmpOp::In),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let b = self.atom()?;
            return Ok(Expr::cmp(op, a, b));
        }
        Ok(a)
    }

    fn atom(&mut self) -> Result<Expr, OqlError> {
        match self.peek().cloned() {
            Some(Tok::Int(n)) => {
                self.pos += 1;
                Ok(Expr::Lit(Value::Int(n)))
            }
            Some(Tok::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Lit(Value::str(&s)))
            }
            Some(Tok::Sym('(')) => {
                self.pos += 1;
                let e = if matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("select"))
                {
                    self.select()?
                } else {
                    self.expr()?
                };
                self.expect_sym(')')?;
                Ok(e)
            }
            Some(Tok::Sym('[')) => {
                self.pos += 1;
                let a = self.expr()?;
                self.expect_sym(',')?;
                let b = self.expr()?;
                self.expect_sym(']')?;
                Ok(Expr::pair(a, b))
            }
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("not") => {
                self.pos += 1;
                let e = self.cmp_expr()?;
                Ok(Expr::Not(Box::new(e)))
            }
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("select") => self.select(),
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("flatten") => {
                self.pos += 1;
                self.expect_sym('(')?;
                let e = if matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("select"))
                {
                    self.select()?
                } else {
                    self.expr()?
                };
                self.expect_sym(')')?;
                Ok(Expr::Flatten(Box::new(e)))
            }
            Some(Tok::Ident(_)) => {
                let head = self.ident()?;
                let mut e = if self.scope.contains(&head) {
                    Expr::var(&head)
                } else {
                    Expr::extent(&head)
                };
                while self.eat_sym('.') {
                    let attr = self.ident()?;
                    e = e.attr(&attr);
                }
                Ok(e)
            }
            other => self.err(format!("expected expression, found {other:?}")),
        }
    }
}

/// Parse an OQL query and lower it to AQUA.
pub fn parse_oql(src: &str) -> Result<Expr, OqlError> {
    let mut p = P {
        toks: lex(src)?,
        pos: 0,
        scope: BTreeSet::new(),
    };
    let e = if matches!(p.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("select")) {
        p.select()?
    } else {
        p.expr()?
    };
    if p.pos != p.toks.len() {
        return p.err("trailing input");
    }
    Ok(e)
}

/// Parse OQL and translate all the way to a KOLA query.
///
/// ```
/// let q = kola_frontend::oql_to_kola(
///     "select p.age from p in P where p.age > 25").unwrap();
/// assert_eq!(
///     q.to_string(),
///     "iterate(Kp(T), age) . iterate(gt @ (age, Kf(25)), id) ! P",
/// );
/// ```
pub fn oql_to_kola(src: &str) -> Result<kola::term::Query, OqlError> {
    let aqua = parse_oql(src)?;
    crate::to_kola::translate_query(&aqua).map_err(|e| OqlError {
        msg: format!("translation: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_select() {
        let e = parse_oql("select p.age from p in P").unwrap();
        assert_eq!(e.to_string(), "app(\\p. p.age)(P)");
    }

    #[test]
    fn select_with_where() {
        let e = parse_oql("select p.age from p in P where p.age > 25").unwrap();
        assert_eq!(e.to_string(), "app(\\p. p.age)(sel(\\p. p.age > 25)(P))");
    }

    #[test]
    fn nested_select_in_projection() {
        // The garage-ish query: per person, their children's cities.
        let e = parse_oql("select [p, (select c.age from c in p.child)] from p in P").unwrap();
        assert_eq!(e.to_string(), "app(\\p. [p, app(\\c. c.age)(p.child)])(P)");
    }

    #[test]
    fn scoping_extent_vs_variable() {
        // `q` is not bound: treated as an extent.
        let e = parse_oql("select q from p in P").unwrap();
        assert_eq!(e.to_string(), "app(\\p. q)(P)");
    }

    #[test]
    fn booleans_and_comparisons() {
        let e = parse_oql("select p from p in P where p.age > 18 and not p.age > 65").unwrap();
        assert_eq!(
            e.to_string(),
            "app(\\p. p)(sel(\\p. (p.age > 18 and (not p.age > 65)))(P))"
        );
    }

    #[test]
    fn flatten_and_membership() {
        let e = parse_oql("flatten(select p.grgs from p in P where v in p.cars)").unwrap();
        assert!(e.to_string().starts_with("flatten("), "{e}");
    }

    #[test]
    fn full_pipeline_to_kola() {
        let q = oql_to_kola("select p.age from p in P where p.age > 25").unwrap();
        assert_eq!(
            q.to_string(),
            "iterate(Kp(T), age) . iterate(gt @ (age, Kf(25)), id) ! P"
        );
    }

    #[test]
    fn garage_query_in_oql() {
        let q = oql_to_kola(
            "select [v, flatten(select p.grgs from p in P where v in p.cars)] \
             from v in V",
        )
        .unwrap();
        assert_eq!(q, kola_rewrite_kg1());
    }

    fn kola_rewrite_kg1() -> kola::term::Query {
        kola::parse::parse_query(
            "iterate(Kp(T), (id, \
                flat . \
                iter(Kp(T), grgs . pi2) . \
                (id, iter(in @ (pi1, cars . pi2), pi2) . \
                (id, Kf(P))))) ! V",
        )
        .unwrap()
    }

    #[test]
    fn errors() {
        assert!(parse_oql("select p.age").is_err());
        assert!(parse_oql("select from p in P").is_err());
        assert!(parse_oql("select p from p in P extra").is_err());
        assert!(parse_oql("select p from p in P where").is_err());
    }
}
