//! Translation-size measurement — the §4.2 complexity claims.
//!
//! The paper: translated queries are **O(mn)** in parse-tree nodes, where
//! `n` is the size of the input query and `m` the maximum number of
//! variables simultaneously in scope ("degree of nesting"), and "in our
//! experience … translated queries are less than twice the size of the
//! queries they translate". [`measure`] produces the numbers for one query;
//! the `translation_size` bench sweeps `n × m` and prints the table.

use crate::to_kola::{translate_query, TranslateError};
use kola_aqua::ast::Expr;

/// Size measurements for one AQUA→KOLA translation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeReport {
    /// AQUA parse-tree nodes (the paper's `n`).
    pub aqua_size: usize,
    /// Maximum simultaneous variables in scope (the paper's `m`).
    pub env_depth: usize,
    /// KOLA parse-tree nodes after translation.
    pub kola_size: usize,
}

impl SizeReport {
    /// The blowup factor `kola_size / aqua_size`.
    pub fn ratio(&self) -> f64 {
        self.kola_size as f64 / self.aqua_size as f64
    }
}

/// Translate and measure.
pub fn measure(e: &Expr) -> Result<SizeReport, TranslateError> {
    let k = translate_query(e)?;
    Ok(SizeReport {
        aqua_size: e.size(),
        env_depth: e.max_env_depth(),
        kola_size: k.size(),
    })
}

/// Build a family member for the `n × m` sweep: a query of nesting depth
/// `m` whose innermost body is padded with `width` extra conjuncts (so `n`
/// grows while `m` stays fixed).
///
/// Shape (for m = 2, width = w):
/// `app(λx1. app(λx2. [x1, pad_w(x2)])(x1.child))(P)` where `pad_w` chains
/// `w` attribute accesses and comparisons referencing the innermost binder.
pub fn sweep_query(m: usize, width: usize) -> Expr {
    use kola_aqua::ast::{CmpOp, Lambda};
    assert!(m >= 1);
    // Innermost body: a pair referencing every binder, padded with `width`
    // conjunct-filters on the innermost variable.
    let innermost = format!("x{m}");
    let mut body = Expr::var(&innermost);
    for i in (1..m).rev() {
        body = Expr::pair(Expr::var(&format!("x{i}")), body);
    }
    let source_of = |i: usize| {
        if i == 1 {
            Expr::extent("P")
        } else {
            Expr::var(&format!("x{}", i - 1)).attr("child")
        }
    };
    // Pad with width-many selections on the innermost level.
    let mut inner_src = source_of(m);
    for _ in 0..width {
        inner_src = Expr::sel(
            Lambda::new(
                &innermost,
                Expr::cmp(CmpOp::Gt, Expr::var(&innermost).attr("age"), Expr::int(25)),
            ),
            inner_src,
        );
    }
    let mut q = Expr::app(Lambda::new(&innermost, body), inner_src);
    for i in (1..m).rev() {
        q = Expr::app(Lambda::new(&format!("x{i}"), q), source_of(i));
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_queries_translate_at_all_depths() {
        for m in 1..=5 {
            for width in [0, 2, 4] {
                let q = sweep_query(m, width);
                let r = measure(&q).unwrap_or_else(|e| panic!("m={m} w={width}: {e}"));
                assert_eq!(r.env_depth, m, "m={m} w={width}");
                assert!(r.kola_size > 0);
            }
        }
    }

    #[test]
    fn blowup_less_than_the_paper_bound() {
        // O(mn): ratio should be bounded by c·m for small constant c.
        for m in 1..=6 {
            let q = sweep_query(m, 3);
            let r = measure(&q).unwrap();
            assert!(
                r.ratio() <= 2.0 * m as f64,
                "m={m}: ratio {} exceeds 2m",
                r.ratio()
            );
        }
    }

    #[test]
    fn shallow_queries_blow_up_less_than_2x() {
        // The paper's empirical claim holds for the m <= 2 queries of its
        // figures.
        for (m, w) in [(1, 0), (1, 3), (2, 0), (2, 3)] {
            let r = measure(&sweep_query(m, w)).unwrap();
            assert!(r.ratio() < 2.5, "m={m} w={w}: ratio {}", r.ratio());
        }
    }

    #[test]
    fn figure_queries_measured() {
        let r = measure(&kola_aqua::rules::query_t1()).unwrap();
        assert_eq!(r.env_depth, 1);
        let r = measure(&kola_aqua::rules::query_a4()).unwrap();
        assert_eq!(r.env_depth, 2);
    }
}
