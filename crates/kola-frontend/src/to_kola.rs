//! The AQUA → KOLA combinator translator ([11] in the paper).
//!
//! λ-bound variables are compiled away by threading an *explicit
//! environment*: entering a λ under environment `e` evaluates the body
//! against the pair `[e, x]` (built by `(id, …)` and consumed by `iter`),
//! and a variable occurrence becomes a π-chain addressing its slot — the
//! scheme §5 describes ("combinators that permit generation of explicit
//! environments (id and ⟨⟩), and access to those environments (π1, π2 and
//! ∘)"). Applied to the garage query, the output is *literally* Figure 3's
//! KG1 (see the tests).
//!
//! Supported: the full [`Expr`] language except `join` under a non-empty
//! environment (the paper's translator is likewise scoped; see DESIGN.md).

use kola::builder as k;
use kola::term::{Func, Pred, Query};
use kola::value::Sym;
use kola_aqua::ast::{CmpOp, Expr, Lambda};
use std::fmt;

/// Errors the translator can raise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranslateError {
    /// The variable is not bound by any enclosing λ.
    UnboundVar(Sym),
    /// A boolean expression appeared where a value was required (or vice
    /// versa).
    BoolValueMismatch,
    /// `join` under a non-empty environment is out of the supported subset.
    JoinUnderEnv,
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::UnboundVar(v) => write!(f, "unbound variable {v}"),
            TranslateError::BoolValueMismatch => {
                write!(f, "boolean used as value (or value as boolean)")
            }
            TranslateError::JoinUnderEnv => {
                write!(f, "join under a non-empty environment is unsupported")
            }
        }
    }
}

impl std::error::Error for TranslateError {}

type TResult<T> = Result<T, TranslateError>;

/// Compose with `id`-collapse, so variable paths print exactly like the
/// paper's (`π1` rather than `id ∘ π1`).
fn compose(f: Func, g: Func) -> Func {
    match (f, g) {
        (Func::Id, g) => g,
        (f, Func::Id) => f,
        (f, g) => k::o(f, g),
    }
}

/// The environment: the stack of λ-bound variable names, outermost first.
/// Runtime encoding: `[…[[v1, v2], v3]…]` — entering a binder pairs the
/// current environment with the new value.
#[derive(Debug, Clone, Default)]
struct EnvStack(Vec<Sym>);

impl EnvStack {
    fn push(&self, v: &Sym) -> EnvStack {
        let mut next = self.0.clone();
        next.push(v.clone());
        EnvStack(next)
    }

    /// The π-chain accessing `v` in the current encoding.
    fn access(&self, v: &Sym) -> TResult<Func> {
        let pos = self
            .0
            .iter()
            .rposition(|x| x == v)
            .ok_or_else(|| TranslateError::UnboundVar(v.clone()))?;
        // Innermost variable: π2 (or id if it is the only binding).
        // Each enclosing level adds a ∘ π1.
        let depth_from_top = self.0.len() - 1 - pos;
        let mut path = if pos == 0 {
            // The bottom of the environment is the raw value, not a pair.
            Func::Id
        } else {
            Func::Pi2
        };
        for _ in 0..depth_from_top {
            path = compose(path, Func::Pi1);
        }
        Ok(path)
    }
}

/// Apply `f` to a translated query, fusing with an existing application so
/// nested `app`s become composition chains (`f ∘ g ! x` rather than
/// `f ! (g ! x)`) — the form the paper's figures print.
fn apply_fused(f: Func, mut q: Query) -> Query {
    // `Query` has a manual `Drop`, so its fields can't be moved out by
    // pattern; detach them with `mem::replace` instead.
    if let Query::App(g, base) = &mut q {
        let g = std::mem::replace(g, Func::Id);
        let base = std::mem::replace(&mut **base, Query::Lit(kola::Value::Unit));
        return Query::App(compose(f, g), Box::new(base));
    }
    k::app(f, q)
}

/// Translate a *closed* AQUA expression to a KOLA query.
pub fn translate_query(e: &Expr) -> TResult<Query> {
    let env = EnvStack::default();
    match e {
        Expr::Lit(v) => Ok(Query::Lit(v.clone())),
        Expr::Extent(s) => Ok(Query::Extent(s.clone())),
        Expr::Pair(a, b) => Ok(k::pairq(translate_query(a)?, translate_query(b)?)),
        Expr::Attr(inner, attr) => Ok(apply_fused(
            Func::Prim(attr.clone()),
            translate_query(inner)?,
        )),
        Expr::App(l, s) => Ok(apply_fused(
            k::iterate(k::kp(true), func_under(&env, l)?),
            translate_query(s)?,
        )),
        Expr::Sel(l, s) => Ok(apply_fused(
            k::iterate(pred_under(&env, l)?, Func::Id),
            translate_query(s)?,
        )),
        Expr::Flatten(s) => Ok(apply_fused(Func::Flat, translate_query(s)?)),
        Expr::Join {
            pred,
            func,
            left,
            right,
        } => {
            // Two-variable environment [x, y] encoded as the raw pair.
            let env2 = EnvStack(vec![pred.var1.clone(), pred.var2.clone()]);
            let p = translate_pred(&env2, &pred.body)?;
            let envf = EnvStack(vec![func.var1.clone(), func.var2.clone()]);
            let f = translate_func(&envf, &func.body)?;
            Ok(k::app(
                k::join(p, f),
                k::pairq(translate_query(left)?, translate_query(right)?),
            ))
        }
        Expr::Cmp(..) | Expr::And(..) | Expr::Or(..) | Expr::Not(..) => {
            let p = translate_pred(&env, e)?;
            // A closed boolean: test it against a dummy unit argument.
            Ok(Query::Test(
                strip_env_pred(p),
                Box::new(Query::Lit(kola::value::Value::Unit)),
            ))
        }
        Expr::If(..) | Expr::Var(_) => Err(TranslateError::BoolValueMismatch),
    }
}

/// A closed boolean translated under the empty env expects the env value
/// itself as input; any input works, so pass it through unchanged.
fn strip_env_pred(p: Pred) -> Pred {
    p
}

/// Enter a λ from environment `env` and translate its body as a function
/// over the extended environment.
fn func_under(env: &EnvStack, l: &Lambda) -> TResult<Func> {
    translate_func(&env.push(&l.var), &l.body)
}

fn pred_under(env: &EnvStack, l: &Lambda) -> TResult<Pred> {
    translate_pred(&env.push(&l.var), &l.body)
}

/// Translate an expression to a KOLA function of the environment.
fn translate_func(env: &EnvStack, e: &Expr) -> TResult<Func> {
    match e {
        Expr::Var(v) => env.access(v),
        Expr::Lit(v) => Ok(k::kf(v.clone())),
        Expr::Extent(s) => Ok(Func::ConstF(Box::new(Query::Extent(s.clone())))),
        Expr::Attr(inner, attr) => Ok(compose(
            Func::Prim(attr.clone()),
            translate_func(env, inner)?,
        )),
        Expr::Pair(a, b) => Ok(k::pairf(translate_func(env, a)?, translate_func(env, b)?)),
        Expr::App(l, s) => {
            // iter(Kp(T), T⟦body⟧(env+x)) ∘ (id, T⟦S⟧env)
            let body = func_under(env, l)?;
            let source = translate_func(env, s)?;
            Ok(compose(
                k::iter(k::kp(true), body),
                k::pairf(Func::Id, source),
            ))
        }
        Expr::Sel(l, s) => {
            // iter(P⟦p⟧(env+x), π2) ∘ (id, T⟦S⟧env)
            let p = pred_under(env, l)?;
            let source = translate_func(env, s)?;
            Ok(compose(k::iter(p, Func::Pi2), k::pairf(Func::Id, source)))
        }
        Expr::Flatten(s) => Ok(compose(Func::Flat, translate_func(env, s)?)),
        Expr::If(p, a, b) => Ok(k::con(
            translate_pred(env, p)?,
            translate_func(env, a)?,
            translate_func(env, b)?,
        )),
        Expr::Join { .. } => Err(TranslateError::JoinUnderEnv),
        Expr::Cmp(..) | Expr::And(..) | Expr::Or(..) | Expr::Not(..) => {
            Err(TranslateError::BoolValueMismatch)
        }
    }
}

/// Translate a boolean expression to a KOLA predicate on the environment.
fn translate_pred(env: &EnvStack, e: &Expr) -> TResult<Pred> {
    match e {
        Expr::Cmp(op, a, b) => {
            let fa = translate_func(env, a)?;
            let fb = translate_func(env, b)?;
            let base = match op {
                CmpOp::Eq => Pred::Eq,
                CmpOp::Lt => Pred::Lt,
                CmpOp::Leq => Pred::Leq,
                CmpOp::Gt => Pred::Gt,
                CmpOp::Geq => Pred::Geq,
                CmpOp::In => Pred::In,
            };
            Ok(k::oplus(base, k::pairf(fa, fb)))
        }
        Expr::And(a, b) => Ok(k::and(translate_pred(env, a)?, translate_pred(env, b)?)),
        Expr::Or(a, b) => Ok(k::or(translate_pred(env, a)?, translate_pred(env, b)?)),
        Expr::Not(a) => Ok(k::not(translate_pred(env, a)?)),
        _ => Err(TranslateError::BoolValueMismatch),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kola_aqua::ast::Expr as E;
    use kola_aqua::rules::{query_a3, query_a4, query_t1, query_t2};

    #[test]
    fn t1_translates_to_nested_iterates() {
        let q = translate_query(&query_t1()).unwrap();
        assert_eq!(
            q.to_string(),
            "iterate(Kp(T), city) . iterate(Kp(T), addr) ! P"
        );
    }

    #[test]
    fn t2_translates_to_figure_4_start() {
        let q = translate_query(&query_t2()).unwrap();
        assert_eq!(
            q.to_string(),
            "iterate(Kp(T), age) . iterate(gt @ (age, Kf(25)), id) ! P"
        );
    }

    #[test]
    fn a3_a4_translate_to_structurally_distinct_kola() {
        // §3.2: the KOLA forms differ by π1 vs π2 — structure reveals what
        // the variable-based forms hide.
        let k3 = translate_query(&query_a3()).unwrap().to_string();
        let k4 = translate_query(&query_a4()).unwrap().to_string();
        assert_ne!(k3, k4);
        assert!(
            k3.contains("age . pi2"),
            "A3 tests the inner variable: {k3}"
        );
        assert!(
            k4.contains("age . pi1"),
            "A4 tests the outer variable: {k4}"
        );
    }

    #[test]
    fn garage_query_translates_to_kg1() {
        // app(λv. [v, flatten(app(λp. p.grgs)(sel(λc. v in c.cars)(P)))])(V)
        let sel = E::sel(
            Lambda::new(
                "c",
                E::cmp(CmpOp::In, E::var("v"), E::var("c").attr("cars")),
            ),
            E::extent("P"),
        );
        let app_grgs = E::app(Lambda::new("p", E::var("p").attr("grgs")), sel);
        let garage = E::app(
            Lambda::new("v", E::pair(E::var("v"), E::Flatten(Box::new(app_grgs)))),
            E::extent("V"),
        );
        let q = translate_query(&garage).unwrap();
        assert_eq!(q, kola_rewrite_free_kg1(), "translated: {q}\nexpected KG1");
    }

    /// Figure 3's KG1, built from its printed text.
    fn kola_rewrite_free_kg1() -> Query {
        kola::parse::parse_query(
            "iterate(Kp(T), (id, \
                flat . \
                iter(Kp(T), grgs . pi2) . \
                (id, iter(in @ (pi1, cars . pi2), pi2) . \
                (id, Kf(P))))) ! V",
        )
        .unwrap()
    }

    #[test]
    fn deep_variable_access_paths() {
        // Three levels: innermost body references all three binders.
        // app(λa. app(λb. app(λc. [a, [b, c]])(c0.child))(b0.child))(P)
        let inner = E::app(
            Lambda::new("c", E::pair(E::var("a"), E::pair(E::var("b"), E::var("c")))),
            E::var("b").attr("child"),
        );
        let mid = E::app(Lambda::new("b", inner), E::var("a").attr("child"));
        let q = E::app(Lambda::new("a", mid), E::extent("P"));
        let k = translate_query(&q).unwrap().to_string();
        // a is two levels up: pi1 . pi1; b: pi2 . pi1; c: pi2.
        assert!(k.contains("pi1 . pi1"), "{k}");
        assert!(k.contains("pi2 . pi1"), "{k}");
    }

    #[test]
    fn unbound_variable_rejected() {
        let q = E::app(Lambda::new("x", E::var("y")), E::extent("P"));
        assert_eq!(
            translate_query(&q),
            Err(TranslateError::UnboundVar(std::sync::Arc::from("y")))
        );
    }

    #[test]
    fn closed_join_translates() {
        let q = Expr::Join {
            pred: kola_aqua::ast::Lambda2::new(
                "x",
                "y",
                E::cmp(CmpOp::Eq, E::var("x"), E::var("y")),
            ),
            func: kola_aqua::ast::Lambda2::new("x", "y", E::var("x")),
            left: Box::new(E::extent("P")),
            right: Box::new(E::extent("P")),
        };
        let k = translate_query(&q).unwrap();
        assert_eq!(k.to_string(), "join(eq @ (pi1, pi2), pi1) ! [P, P]");
    }

    use kola_aqua::ast::Lambda;
}
