#![warn(missing_docs)]
//! # kola-obs — observability for the KOLA optimizer stack
//!
//! Three pieces, each usable alone:
//!
//! - [`metrics`] — lock-free instruments (atomic [`Counter`]s, high-water
//!   [`MaxGauge`]s, fixed-bucket [`Histogram`]s, frozen-label
//!   [`CounterFamily`]s) collected in a [`Registry`] whose [`Snapshot`]
//!   exports hand-rolled JSON. Recording is wait-free and allocation-free,
//!   so instruments sit directly on `kola-service`'s admission and worker
//!   hot paths.
//! - [`trace`] — structured rewrite provenance: a [`RewriteTrace`] records
//!   one successful run as its input, active rule set, budget caps, fault
//!   plan, and a fingerprint-chained step list, stored in a bounded
//!   [`TraceRing`] — or, for multi-worker services, a [`ShardedTraceRing`]
//!   giving each worker its own uncontended ring whose merged drain is
//!   ordered by request id.
//! - [`replay`] — re-executes a recorded trace on the boxed reference
//!   engine and compares every step byte-for-byte (fingerprints, stop
//!   reason, final plan). This turns the fast engine's exactness contract
//!   into a property checkable against *live* traffic, in the spirit of
//!   provenance-checked rewrite rules (see PAPERS.md): each optimization a
//!   service performed leaves a record that an independent engine can
//!   re-derive. Bulk audits go through a pooled [`ReplayWorker`] instead of
//!   paying a thread spawn per trace.

pub mod metrics;
pub mod replay;
pub mod trace;

pub use metrics::{
    Counter, CounterFamily, Histogram, HistogramSnapshot, MaxGauge, Registry, Snapshot,
};
pub use replay::{replay, ReplayOutcome, ReplayWorker};
pub use trace::{RecordedStep, RewriteTrace, ShardedTraceRing, TraceRing};

/// Minimal JSON emission helpers (the workspace deliberately carries no
/// external dependencies, so the bench/obs artifacts hand-roll JSON with a
/// shared escaper instead of each inventing one).
pub mod json {
    /// `s` as a quoted, escaped JSON string literal.
    pub fn string(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    /// `ns` as a JSON array of numbers.
    pub fn u64_array(ns: &[u64]) -> String {
        let mut out = String::from("[");
        for (i, n) in ns.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&n.to_string());
        }
        out.push(']');
        out
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn escapes_and_arrays() {
            assert_eq!(super::string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
            assert_eq!(super::string("\u{1}"), "\"\\u0001\"");
            assert_eq!(super::u64_array(&[1, 2, 3]), "[1, 2, 3]");
            assert_eq!(super::u64_array(&[]), "[]");
        }
    }
}
