//! Lock-free metrics primitives and the registry that snapshots them.
//!
//! Every instrument is a thin shell over `AtomicU64`s: recording is a
//! relaxed atomic op with no lock, no allocation, and no branching beyond
//! the histogram's bucket scan, so instruments can sit directly on a
//! service's admission and worker hot paths. The only mutex in the module
//! guards *registration* (naming an instrument in a [`Registry`]) and
//! snapshotting — both cold.
//!
//! Counts are monotone and relaxed-ordered; a [`Snapshot`] taken while
//! traffic is in flight is a consistent-enough view for operations (each
//! individual counter is exact, cross-counter invariants settle once the
//! traffic they describe has drained — which is when the conservation
//! checks in `kola-service` read them).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotone counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge that only ratchets upward (a high-water mark).
#[derive(Debug, Default)]
pub struct MaxGauge(AtomicU64);

impl MaxGauge {
    /// Zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raise the mark to `v` if it is higher.
    pub fn record(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current mark.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram: `bounds[i]` is the inclusive upper edge of
/// bucket `i`, with one implicit overflow bucket above the last bound.
/// Bounds are fixed at construction, so recording is a short scan over an
/// immutable slice plus one atomic add — no lock, no allocation.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// Histogram with the given ascending bucket upper edges.
    pub fn new(bounds: &[u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Exponential bounds `1, 2, 4, …` up to (and including) the first
    /// power of two ≥ `cap` — the all-purpose shape for latencies and
    /// queue depths.
    pub fn pow2(cap: u64) -> Self {
        let mut bounds = Vec::new();
        let mut b = 1u64;
        loop {
            bounds.push(b);
            if b >= cap {
                break;
            }
            b = b.saturating_mul(2);
        }
        Histogram::new(&bounds)
    }

    /// Record one observation.
    pub fn record(&self, v: u64) {
        let i = self.bounds.partition_point(|&b| b < v);
        self.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Consistent-enough copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A plain-data copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Inclusive upper edges; `buckets` has one extra overflow slot.
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Largest observation.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Upper-edge estimate of quantile `q` in `[0, 1]`: the bound of the
    /// bucket containing the `⌈q·count⌉`-th observation (the recorded max
    /// for the overflow bucket). Zero when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return self.bounds.get(i).copied().unwrap_or(self.max);
            }
        }
        self.max
    }

    /// Mean observation (zero when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A fixed family of labeled counters (e.g. one per rule id). Labels are
/// frozen at construction, so the hot-path lookup reads an immutable map —
/// no lock. Observations for labels outside the registered set land in a
/// catch-all `other` slot instead of being dropped.
#[derive(Debug)]
pub struct CounterFamily {
    labels: Vec<String>,
    index: HashMap<String, usize>,
    slots: Vec<AtomicU64>,
    other: AtomicU64,
}

impl CounterFamily {
    /// Family over `labels` (duplicates collapse to the first occurrence).
    pub fn new<I, S>(labels: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut out = CounterFamily {
            labels: Vec::new(),
            index: HashMap::new(),
            slots: Vec::new(),
            other: AtomicU64::new(0),
        };
        for l in labels {
            let l = l.into();
            if !out.index.contains_key(&l) {
                out.index.insert(l.clone(), out.labels.len());
                out.labels.push(l);
                out.slots.push(AtomicU64::new(0));
            }
        }
        out
    }

    /// Add `n` to `label`'s counter (to `other` if unregistered).
    pub fn add(&self, label: &str, n: u64) {
        match self.index.get(label) {
            Some(&i) => self.slots[i].fetch_add(n, Ordering::Relaxed),
            None => self.other.fetch_add(n, Ordering::Relaxed),
        };
    }

    /// Add `n` to the counter at registration position `i` — the O(1) lane
    /// for callers that track labels positionally (out-of-range goes to
    /// `other`).
    pub fn add_index(&self, i: usize, n: u64) {
        match self.slots.get(i) {
            Some(s) => s.fetch_add(n, Ordering::Relaxed),
            None => self.other.fetch_add(n, Ordering::Relaxed),
        };
    }

    /// Current value for `label` (`other`'s total for unregistered labels).
    pub fn get(&self, label: &str) -> u64 {
        match self.index.get(label) {
            Some(&i) => self.slots[i].load(Ordering::Relaxed),
            None => self.other.load(Ordering::Relaxed),
        }
    }

    /// Sum across every slot including `other`.
    pub fn total(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .sum::<u64>()
            + self.other.load(Ordering::Relaxed)
    }

    /// `(label, value)` pairs in registration order, nonzero slots only,
    /// with `("other", n)` appended when the catch-all saw traffic.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = self
            .labels
            .iter()
            .zip(&self.slots)
            .map(|(l, s)| (l.clone(), s.load(Ordering::Relaxed)))
            .filter(|(_, n)| *n > 0)
            .collect();
        let o = self.other.load(Ordering::Relaxed);
        if o > 0 {
            v.push(("other".to_string(), o));
        }
        v
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Vec<(String, Arc<Counter>)>,
    gauges: Vec<(String, Arc<MaxGauge>)>,
    histograms: Vec<(String, Arc<Histogram>)>,
    families: Vec<(String, Arc<CounterFamily>)>,
}

/// A named collection of instruments. Registration hands back an
/// `Arc` handle the caller keeps and hits lock-free; the registry itself
/// is only locked to register and to [`Registry::snapshot`]. Registering
/// a name twice returns the existing instrument.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or fetch) the counter called `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().unwrap();
        if let Some((_, c)) = inner.counters.iter().find(|(n, _)| n == name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new());
        inner.counters.push((name.to_string(), Arc::clone(&c)));
        c
    }

    /// Register (or fetch) the high-water gauge called `name`.
    pub fn max_gauge(&self, name: &str) -> Arc<MaxGauge> {
        let mut inner = self.inner.lock().unwrap();
        if let Some((_, g)) = inner.gauges.iter().find(|(n, _)| n == name) {
            return Arc::clone(g);
        }
        let g = Arc::new(MaxGauge::new());
        inner.gauges.push((name.to_string(), Arc::clone(&g)));
        g
    }

    /// Register (or fetch) the histogram called `name`. `bounds` is used
    /// only on first registration.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        let mut inner = self.inner.lock().unwrap();
        if let Some((_, h)) = inner.histograms.iter().find(|(n, _)| n == name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new(bounds));
        inner.histograms.push((name.to_string(), Arc::clone(&h)));
        h
    }

    /// Register (or fetch) the counter family called `name`. `labels` is
    /// used only on first registration.
    pub fn family<I, S>(&self, name: &str, labels: I) -> Arc<CounterFamily>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut inner = self.inner.lock().unwrap();
        if let Some((_, f)) = inner.families.iter().find(|(n, _)| n == name) {
            return Arc::clone(f);
        }
        let f = Arc::new(CounterFamily::new(labels));
        inner.families.push((name.to_string(), Arc::clone(&f)));
        f
    }

    /// Plain-data copy of every instrument, in registration order.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().unwrap();
        Snapshot {
            counters: inner
                .counters
                .iter()
                .map(|(n, c)| (n.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(n, g)| (n.clone(), g.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(n, h)| (n.clone(), h.snapshot()))
                .collect(),
            families: inner
                .families
                .iter()
                .map(|(n, f)| (n.clone(), f.snapshot()))
                .collect(),
        }
    }
}

/// A plain-data copy of a [`Registry`] at one instant, exportable as JSON.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every high-water gauge.
    pub gauges: Vec<(String, u64)>,
    /// `(name, state)` for every histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// `(name, labeled values)` for every counter family.
    pub families: Vec<(String, Vec<(String, u64)>)>,
}

impl Snapshot {
    /// Value of the counter called `name` (zero if absent — absent and
    /// never-incremented are the same thing to an invariant check).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Value of the gauge called `name` (zero if absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The histogram called `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// The family called `name` as `(label, value)` pairs (empty if absent).
    pub fn family(&self, name: &str) -> &[(String, u64)] {
        self.families
            .iter()
            .find(|(n, _)| n == name)
            .map_or(&[], |(_, v)| v)
    }

    /// Serialize as a self-contained JSON object (the workspace carries no
    /// serde; the format is the same hand-rolled, stable-key JSON the bench
    /// artifacts use).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"counters\": {");
        push_pairs(&mut s, &self.counters, "    ");
        s.push_str("\n  },\n  \"gauges\": {");
        push_pairs(&mut s, &self.gauges, "    ");
        s.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {}: {{\"count\": {}, \"sum\": {}, \"max\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"bounds\": {}, \"buckets\": {}}}",
                crate::json::string(name),
                h.count,
                h.sum,
                h.max,
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99),
                crate::json::u64_array(&h.bounds),
                crate::json::u64_array(&h.buckets),
            ));
        }
        s.push_str("\n  },\n  \"families\": {");
        for (i, (name, pairs)) in self.families.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\n    {}: {{", crate::json::string(name)));
            push_pairs(&mut s, pairs, "      ");
            s.push_str("\n    }");
        }
        s.push_str("\n  }\n}");
        s
    }
}

fn push_pairs(s: &mut String, pairs: &[(String, u64)], indent: &str) {
    for (i, (name, v)) in pairs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\n{indent}{}: {v}", crate::json::string(name)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new(&[10, 100, 1000]);
        for v in [1, 5, 10, 11, 99, 100, 5000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.buckets, vec![3, 3, 0, 1]);
        assert_eq!(s.max, 5000);
        assert_eq!(s.quantile(0.0), 10);
        assert_eq!(s.quantile(0.5), 100);
        assert_eq!(s.quantile(1.0), 5000);
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
    }

    #[test]
    fn family_routes_unknown_labels_to_other() {
        let f = CounterFamily::new(["a", "b"]);
        f.add("a", 2);
        f.add_index(1, 3);
        f.add("zzz", 7);
        f.add_index(99, 1);
        assert_eq!(f.get("a"), 2);
        assert_eq!(f.get("b"), 3);
        assert_eq!(f.total(), 13);
        assert_eq!(
            f.snapshot(),
            vec![
                ("a".to_string(), 2),
                ("b".to_string(), 3),
                ("other".to_string(), 8)
            ]
        );
    }

    #[test]
    fn registry_dedupes_names_and_snapshots_json() {
        let r = Registry::new();
        let c1 = r.counter("requests");
        let c2 = r.counter("requests");
        c1.inc();
        c2.add(2);
        assert_eq!(c1.get(), 3);
        r.max_gauge("peak").record(41);
        r.max_gauge("peak").record(40);
        r.histogram("lat", &[1, 2, 4]).record(3);
        r.family("rules", ["x"]).add("x", 5);
        let s = r.snapshot();
        assert_eq!(s.counter("requests"), 3);
        assert_eq!(s.gauge("peak"), 41);
        assert_eq!(s.histogram("lat").unwrap().count, 1);
        assert_eq!(s.family("rules"), &[("x".to_string(), 5)]);
        let j = s.to_json();
        assert!(j.contains("\"requests\": 3"));
        assert!(j.contains("\"peak\": 41"));
        assert!(j.contains("\"p50\": 4"));
        assert!(j.contains("\"x\": 5"));
    }

    /// Tenant names are user-supplied strings that end up as metric names,
    /// histogram names, and family labels. Hostile names — embedded quotes,
    /// backslashes, control characters — must come out of `to_json` as
    /// valid escaped JSON strings, never as raw structure-breaking bytes.
    #[test]
    fn hostile_names_and_labels_are_escaped_in_json() {
        let hostile = "ten\"ant\\evil\nname\u{1}";
        let r = Registry::new();
        r.counter(hostile).add(7);
        r.histogram(&format!("latency/{hostile}"), &[1, 2])
            .record(1);
        let f = r.family("tenant_submitted", [hostile, "ok"]);
        f.add(hostile, 3);
        let j = r.snapshot().to_json();
        // The escaped form appears wherever the name was used…
        let escaped = "ten\\\"ant\\\\evil\\nname\\u0001";
        assert!(j.contains(&format!("\"{escaped}\": 7")), "{j}");
        assert!(j.contains(&format!("\"latency/{escaped}\"")), "{j}");
        assert!(j.contains(&format!("\"{escaped}\": 3")), "{j}");
        // …and no raw control byte or unescaped quote sequence leaks out.
        assert!(!j.chars().any(|c| (c as u32) < 0x20 && c != '\n'));
        assert!(!j.contains("ten\"ant"));
        assert!(!j.contains("evil\nname"));
        // Structural sanity: braces and brackets still balance.
        let balance = |open: char, close: char| {
            j.chars().filter(|&c| c == open).count() == j.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}'));
        assert!(balance('[', ']'));
    }
}
