//! Re-execute a recorded [`RewriteTrace`] on the boxed reference engine.
//!
//! The fast engine's exactness contract says every layer (interning,
//! indexing, marks, memo, epoch masking) is byte-identical to the boxed
//! `rewrite_fix_with` over the same active rule set — so a trace recorded
//! from *either* ladder rung must replay step-for-step on the reference
//! engine. This module is the checkable form of that claim: feed it a
//! trace and a catalog, and it reruns the derivation from the recorded
//! input, budget, and fault plan, comparing each step's rule, orientation,
//! and after-term fingerprint, then the stop reason and the returned plan.
//!
//! The recorded wall-clock deadline is deliberately absent (see
//! [`RewriteTrace::stop`]): a successful rung never stopped on one, so the
//! derivation is deadline-independent and the replay runs unclocked —
//! which is exactly what makes it deterministic on any machine.
//!
//! Two entry points share one implementation: the free [`replay`] function
//! spawns a throwaway big-stack thread per call (fine for a single trace in
//! a test), while [`ReplayWorker`] keeps one long-lived big-stack thread
//! fed over a channel — the form the chaos soak uses, so auditing hundreds
//! of traces pays one 32 MiB thread spawn total instead of one per trace.

use crate::trace::RewriteTrace;
use kola::intern::Interner;
use kola_rewrite::{rewrite_fix_with, Budget, Catalog, Oriented, PropDb, Rewritten};
use std::sync::mpsc;
use std::thread::JoinHandle;

/// Stack size for replay threads. The boxed engine recurses to the
/// recorded depth cap; a dedicated thread keeps that off the caller's
/// (possibly small test-runner) stack.
const REPLAY_STACK: usize = 32 * 1024 * 1024;

/// How a replay compared against its record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayOutcome {
    /// Every step, the stop reason, and the final plan matched.
    Match {
        /// Steps verified.
        steps: usize,
    },
    /// The replay disagreed with the record.
    Divergence {
        /// First disagreeing step (recorded step count on length/terminal
        /// mismatches).
        step: usize,
        /// What disagreed.
        detail: String,
    },
}

impl ReplayOutcome {
    /// True iff the replay matched exactly.
    pub fn is_match(&self) -> bool {
        matches!(self, ReplayOutcome::Match { .. })
    }
}

/// Replay `trace` on the *current* thread. The caller provides stack
/// headroom for the recorded depth cap ([`replay`] and [`ReplayWorker`]
/// both run this on a [`REPLAY_STACK`]-sized thread); panic containment is
/// a `catch_unwind` around the reference run — a recorded fault plan can in
/// principle carry a poison (panicking) fault the original run never
/// reached, and that must classify as divergence, not tear down the pool.
fn replay_on_this_stack(trace: &RewriteTrace, catalog: &Catalog, props: &PropDb) -> ReplayOutcome {
    let mut rules: Vec<Oriented<'_>> = Vec::with_capacity(trace.active_rules.len());
    for id in trace.active_rules.iter() {
        match catalog.get(id) {
            Some(rule) => rules.push(Oriented::fwd(rule)),
            None => {
                return ReplayOutcome::Divergence {
                    step: 0,
                    detail: format!("active rule {id:?} not in catalog"),
                }
            }
        }
    }
    let mut budget = Budget::default()
        .steps(trace.max_steps)
        .depth(trace.max_depth)
        .term_size(trace.max_term_size)
        .quarantine_after(trace.quarantine_after);
    budget.deadline = None;

    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rewrite_fix_with(&rules, &trace.input, props, &budget, &trace.faults)
    }));
    match run {
        Ok(rewritten) => compare(trace, &rewritten),
        Err(_) => ReplayOutcome::Divergence {
            step: trace.steps.len(),
            detail: "replay panicked where the recorded run did not".into(),
        },
    }
}

/// Compare a finished reference run against the record.
fn compare(trace: &RewriteTrace, rewritten: &Rewritten) -> ReplayOutcome {
    let mut scratch = Interner::new();
    let replayed = rewritten.trace.records(&mut scratch);
    if replayed.len() != trace.steps.len() {
        return ReplayOutcome::Divergence {
            step: replayed.len().min(trace.steps.len()),
            detail: format!(
                "step count: recorded {}, replayed {}",
                trace.steps.len(),
                replayed.len()
            ),
        };
    }
    for (i, (rec, (rule_id, dir, after_fp, after_size))) in
        trace.steps.iter().zip(&replayed).enumerate()
    {
        if &rec.rule_id != rule_id || rec.dir != *dir {
            return ReplayOutcome::Divergence {
                step: i,
                detail: format!(
                    "rule: recorded {} ({:?}), replayed {} ({:?})",
                    rec.rule_id, rec.dir, rule_id, dir
                ),
            };
        }
        if rec.after_fp != *after_fp || rec.after_size != *after_size {
            return ReplayOutcome::Divergence {
                step: i,
                detail: format!(
                    "after-term: recorded fp={:#018x} size={}, replayed fp={:#018x} size={}",
                    rec.after_fp, rec.after_size, after_fp, after_size
                ),
            };
        }
    }
    if rewritten.report.stop != trace.stop {
        return ReplayOutcome::Divergence {
            step: trace.steps.len(),
            detail: format!(
                "stop: recorded {:?}, replayed {:?}",
                trace.stop, rewritten.report.stop
            ),
        };
    }
    let result = scratch.intern_query(&rewritten.query);
    if result.fp() != trace.result_fp || result.size() != trace.result_size {
        return ReplayOutcome::Divergence {
            step: trace.steps.len(),
            detail: format!(
                "plan: recorded fp={:#018x} size={}, replayed fp={:#018x} size={}",
                trace.result_fp,
                trace.result_size,
                result.fp(),
                result.size()
            ),
        };
    }
    ReplayOutcome::Match {
        steps: trace.steps.len(),
    }
}

/// Replay `trace` against the reference engine over `catalog`/`props`.
///
/// The active rule set is resolved from the recorded ids in recorded
/// order, so a trace taken under an open breaker replays under the same
/// masked set. Faults are re-injected from the recorded plan — they are
/// deterministic (rule- and step-selective), so a derivation recorded
/// *through* injected failures replays through the same failures.
///
/// Spawns a fresh [`REPLAY_STACK`]-sized thread per call; replaying many
/// traces should go through a [`ReplayWorker`] instead.
pub fn replay(trace: &RewriteTrace, catalog: &Catalog, props: &PropDb) -> ReplayOutcome {
    std::thread::scope(|scope| {
        std::thread::Builder::new()
            .name("kola-obs-replay".into())
            .stack_size(REPLAY_STACK)
            .spawn_scoped(scope, || replay_on_this_stack(trace, catalog, props))
            .expect("spawn replay thread")
            .join()
            .expect("replay thread never panics (catch_unwind inside)")
    })
}

/// A pooled replay lane: one long-lived [`REPLAY_STACK`]-sized thread
/// owning its catalog and property database, fed traces over a channel.
/// Each [`ReplayWorker::replay`] call is a send plus a blocking receive —
/// same outcome as the free [`replay`] function (both run
/// `replay_on_this_stack`), without the per-trace thread spawn. Dropping
/// the worker closes the channel and joins the thread.
#[derive(Debug)]
pub struct ReplayWorker {
    tx: Option<mpsc::Sender<(RewriteTrace, mpsc::Sender<ReplayOutcome>)>>,
    handle: Option<JoinHandle<()>>,
}

impl ReplayWorker {
    /// Spawn the replay thread. It owns `catalog` and `props` for its whole
    /// life, so callers hand traces over by value and nothing is re-resolved
    /// per call but the trace's own rule list.
    pub fn new(catalog: Catalog, props: PropDb) -> ReplayWorker {
        let (tx, rx) = mpsc::channel::<(RewriteTrace, mpsc::Sender<ReplayOutcome>)>();
        let handle = std::thread::Builder::new()
            .name("kola-obs-replay-pool".into())
            .stack_size(REPLAY_STACK)
            .spawn(move || {
                for (trace, reply) in rx {
                    // A dropped reply receiver just discards the outcome.
                    let _ = reply.send(replay_on_this_stack(&trace, &catalog, &props));
                }
            })
            .expect("spawn pooled replay thread");
        ReplayWorker {
            tx: Some(tx),
            handle: Some(handle),
        }
    }

    /// Replay one trace on the pooled thread, blocking for its outcome.
    pub fn replay(&self, trace: RewriteTrace) -> ReplayOutcome {
        let (reply_tx, reply_rx) = mpsc::channel();
        self.tx
            .as_ref()
            .expect("replay worker channel open until drop")
            .send((trace, reply_tx))
            .expect("replay worker thread alive");
        reply_rx.recv().expect("replay worker always replies")
    }
}

impl Drop for ReplayWorker {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::RewriteTrace;
    use kola::term::{Func, Query};
    use kola_rewrite::{FaultKind, FaultPlan, FaultSpec, StepSelector};
    use std::sync::Arc;

    fn tower(n: usize) -> Query {
        let mut f = Func::Prim(Arc::from("age"));
        for _ in 0..n {
            f = Func::Compose(Box::new(Func::Id), Box::new(f));
        }
        Query::App(f, Box::new(Query::Extent(Arc::from("P"))))
    }

    fn record_reference_run(q: &Query, faults: FaultPlan) -> (RewriteTrace, Catalog, PropDb) {
        let catalog = Catalog::paper();
        let props = PropDb::new();
        let active: Vec<String> = catalog.forward_ids();
        let rules: Vec<Oriented<'_>> = catalog.rules().iter().map(Oriented::fwd).collect();
        let budget = Budget::default();
        let r = rewrite_fix_with(&rules, q, &props, &budget, &faults);
        let t = RewriteTrace::record(
            1,
            Arc::from("default"),
            "reference",
            q,
            Arc::new(active),
            budget.max_steps,
            budget.max_depth,
            budget.max_term_size,
            budget.quarantine_after,
            faults,
            &r.trace,
            r.report.stop,
            &r.query,
        );
        (t, catalog, props)
    }

    #[test]
    fn clean_run_replays_exactly() {
        let (t, catalog, props) = record_reference_run(&tower(6), FaultPlan::default());
        assert!(!t.steps.is_empty());
        let out = replay(&t, &catalog, &props);
        assert_eq!(
            out,
            ReplayOutcome::Match {
                steps: t.steps.len()
            }
        );
    }

    #[test]
    fn faulted_run_replays_through_the_same_faults() {
        let faults = FaultPlan::new().with(FaultSpec {
            rule_id: "11".into(),
            at: StepSelector::Steps(vec![0]),
            kind: FaultKind::Fail,
        });
        let (t, catalog, props) = record_reference_run(&tower(6), faults);
        let out = replay(&t, &catalog, &props);
        assert!(out.is_match(), "faulted replay diverged: {out:?}");
    }

    #[test]
    fn tampered_trace_is_caught() {
        let (mut t, catalog, props) = record_reference_run(&tower(6), FaultPlan::default());
        t.steps[0].after_fp ^= 1;
        let out = replay(&t, &catalog, &props);
        assert!(matches!(out, ReplayOutcome::Divergence { step: 0, .. }));

        let (mut t2, catalog2, props2) = record_reference_run(&tower(6), FaultPlan::default());
        t2.steps.pop();
        let out2 = replay(&t2, &catalog2, &props2);
        assert!(!out2.is_match());

        let (mut t3, catalog3, props3) = record_reference_run(&tower(6), FaultPlan::default());
        Arc::make_mut(&mut t3.active_rules).push("no-such-rule".into());
        assert!(!replay(&t3, &catalog3, &props3).is_match());
    }

    #[test]
    fn pooled_worker_matches_the_free_function() {
        // One long-lived worker replays many traces — clean and faulted —
        // with outcomes identical to per-call `replay`, and tampered traces
        // still classify as divergence without killing the pool.
        let worker = ReplayWorker::new(Catalog::paper(), PropDb::new());
        for n in [2, 5, 9] {
            let (t, catalog, props) = record_reference_run(&tower(n), FaultPlan::default());
            let direct = replay(&t, &catalog, &props);
            assert_eq!(worker.replay(t), direct);
        }
        let faults = FaultPlan::new().with(FaultSpec {
            rule_id: "11".into(),
            at: StepSelector::Steps(vec![1]),
            kind: FaultKind::Fail,
        });
        let (t, catalog, props) = record_reference_run(&tower(7), faults);
        assert_eq!(worker.replay(t.clone()), replay(&t, &catalog, &props));
        // Divergence does not wedge the worker for later traces.
        let (mut bad, ..) = record_reference_run(&tower(4), FaultPlan::default());
        bad.steps.clear();
        assert!(!worker.replay(bad).is_match());
        let (good, ..) = record_reference_run(&tower(3), FaultPlan::default());
        assert!(worker.replay(good).is_match());
    }
}
