//! Structured rewrite traces and their bounded ring-buffer storage.
//!
//! A [`RewriteTrace`] is a self-contained provenance record for one
//! successful ladder rung: the input query, the exact rule set and budget
//! the run saw, the fault plan (chaos runs inject deterministic faults —
//! replay must inject the same ones), and one [`RecordedStep`] per applied
//! rule. Self-contained is the point: `kola_obs::replay` re-executes the
//! record against the boxed reference engine with nothing but the catalog,
//! so a trace captured in production is a reproducible test case.
//!
//! Steps carry structural *fingerprints* (from `kola::intern`), not terms:
//! fingerprints depend only on structure, so two runs in different arenas
//! agree on them, and a trace of a thousand steps stays kilobytes. The
//! before/after chain is internally consistent by construction — step
//! `i+1`'s before is step `i`'s after.

use kola::intern::Interner;
use kola::term::Query;
use kola_rewrite::engine::Trace;
use kola_rewrite::{Direction, FaultPlan, StopReason};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One applied rule inside a [`RewriteTrace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedStep {
    /// The rule that fired.
    pub rule_id: String,
    /// Orientation it fired in.
    pub dir: Direction,
    /// Structural fingerprint of the whole query before the step.
    pub before_fp: u64,
    /// Node count before the step.
    pub before_size: usize,
    /// Structural fingerprint after the step.
    pub after_fp: u64,
    /// Node count after the step.
    pub after_size: usize,
    /// Step-budget (fuel) consumed through this step, 1-based — the last
    /// step's value is the run's total step count.
    pub budget_spent: usize,
}

/// A replayable provenance record for one rewrite run (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RewriteTrace {
    /// Service request id the run answered.
    pub request_id: u64,
    /// Tenant namespace the request ran under (`"default"` for
    /// single-tenant services). Shared, not cloned: the recorder hands the
    /// service's own tenant-name `Arc`.
    pub tenant: Arc<str>,
    /// Ladder rung that produced it (`"fast"` or `"reference"`).
    pub rung: String,
    /// The input query, as submitted.
    pub input: Query,
    /// Active rule ids, in catalog order — the exact set the run saw
    /// (open-breaker rules already excluded). Shared, not cloned: the
    /// recorder hands the published snapshot's own `Arc`, so recording a
    /// trace costs a refcount bump instead of a deep copy of the rule list.
    pub active_rules: Arc<Vec<String>>,
    /// Step cap the run was given.
    pub max_steps: usize,
    /// Depth cap the run was given.
    pub max_depth: usize,
    /// Term-size cap the run was given.
    pub max_term_size: usize,
    /// Per-run quarantine threshold the run was given.
    pub quarantine_after: usize,
    /// The deterministic fault plan in force (empty outside chaos runs).
    pub faults: FaultPlan,
    /// The applied rules, in order.
    pub steps: Vec<RecordedStep>,
    /// Why the run stopped. Wall-clock deadlines are deliberately *not*
    /// recorded: a successful rung never stopped on one (the ladder
    /// classifies `DeadlineExpired` as rung failure), so the deadline never
    /// shaped the derivation and replay runs without it.
    pub stop: StopReason,
    /// Fingerprint of the returned plan (the best-so-far query on
    /// `BudgetExhausted`/`CycleDetected` stops, not necessarily the last
    /// step's after-term).
    pub result_fp: u64,
    /// Node count of the returned plan.
    pub result_size: usize,
}

impl RewriteTrace {
    /// Build a record from a finished run. `trace` is the engine's own
    /// derivation (every step), `result` the plan the run returned. Budget
    /// fields are the caps the run was *given*, not what it used.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        request_id: u64,
        tenant: Arc<str>,
        rung: &str,
        input: &Query,
        active_rules: Arc<Vec<String>>,
        max_steps: usize,
        max_depth: usize,
        max_term_size: usize,
        quarantine_after: usize,
        faults: FaultPlan,
        trace: &Trace,
        stop: StopReason,
        result: &Query,
    ) -> RewriteTrace {
        let mut scratch = Interner::new();
        // The engines normalize the input before rewriting; the recorded
        // before-chain starts from that normalized form so it lines up
        // with the first step's redex.
        let t0 = scratch.intern_query(&input.normalize());
        let (mut prev_fp, mut prev_size) = (t0.fp(), t0.size());
        let steps = trace
            .records(&mut scratch)
            .into_iter()
            .enumerate()
            .map(|(i, (rule_id, dir, after_fp, after_size))| {
                let s = RecordedStep {
                    rule_id,
                    dir,
                    before_fp: prev_fp,
                    before_size: prev_size,
                    after_fp,
                    after_size,
                    budget_spent: i + 1,
                };
                (prev_fp, prev_size) = (after_fp, after_size);
                s
            })
            .collect();
        let r = scratch.intern_query(result);
        RewriteTrace {
            request_id,
            tenant,
            rung: rung.to_string(),
            input: input.clone(),
            active_rules,
            max_steps,
            max_depth,
            max_term_size,
            quarantine_after,
            faults,
            steps,
            stop,
            result_fp: r.fp(),
            result_size: r.size(),
        }
    }

    /// The justification sequence, e.g. `["11", "6-1", "5"]`.
    pub fn justifications(&self) -> Vec<String> {
        self.steps
            .iter()
            .map(|s| match s.dir {
                Direction::Forward => s.rule_id.clone(),
                Direction::Backward => format!("{}-1", s.rule_id),
            })
            .collect()
    }
}

/// Bounded ring buffer of [`RewriteTrace`]s. Pushing past capacity evicts
/// the oldest record and counts it in [`TraceRing::dropped`] — a soak that
/// outruns the ring loses history, never memory. The mutex is held only for
/// the push itself; traces are recorded on the *cold* side of a request
/// (after the rung succeeded), never on the untraced hot path.
///
/// A single ring shared by every worker serializes trace recording on one
/// lock; services give each worker its own ring via [`ShardedTraceRing`]
/// and this type becomes the per-worker shard.
#[derive(Debug)]
pub struct TraceRing {
    capacity: usize,
    inner: Mutex<VecDeque<RewriteTrace>>,
    recorded: AtomicU64,
    dropped: AtomicU64,
}

impl TraceRing {
    /// Ring holding at most `capacity` traces (`0` is treated as `1`).
    pub fn new(capacity: usize) -> TraceRing {
        TraceRing {
            capacity: capacity.max(1),
            inner: Mutex::new(VecDeque::new()),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Append `t`, evicting the oldest record if the ring is full.
    pub fn push(&self, t: RewriteTrace) {
        let mut inner = self.inner.lock().unwrap();
        if inner.len() == self.capacity {
            inner.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        inner.push_back(t);
        self.recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// Traces recorded over the ring's life (including later-evicted ones).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Traces evicted to make room.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// True iff no records are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clone out the current contents, oldest first.
    pub fn snapshot(&self) -> Vec<RewriteTrace> {
        self.inner.lock().unwrap().iter().cloned().collect()
    }

    /// Move out the current contents, oldest first, leaving the ring empty
    /// (counters keep their totals).
    pub fn drain(&self) -> Vec<RewriteTrace> {
        self.inner.lock().unwrap().drain(..).collect()
    }
}

/// Per-worker trace storage: one [`TraceRing`] shard per worker, so
/// recording a trace contends only with drains of that worker's own shard,
/// never with the other workers' pushes. The fleet-wide surfaces —
/// [`ShardedTraceRing::recorded`] / [`ShardedTraceRing::dropped`] odometers,
/// [`ShardedTraceRing::snapshot`] / [`ShardedTraceRing::drain`] — fold the
/// shards; the merged trace list is interleaved by request id, so replay
/// order is deterministic regardless of which worker recorded which trace.
#[derive(Debug)]
pub struct ShardedTraceRing {
    shards: Vec<TraceRing>,
}

impl ShardedTraceRing {
    /// `shards` rings (one per worker; `0` is treated as `1`) each holding
    /// at most `capacity_per_shard` traces.
    pub fn new(shards: usize, capacity_per_shard: usize) -> ShardedTraceRing {
        ShardedTraceRing {
            shards: (0..shards.max(1))
                .map(|_| TraceRing::new(capacity_per_shard))
                .collect(),
        }
    }

    /// Worker `i`'s own shard (wrapped modulo the shard count). Workers
    /// push to this directly; it is an ordinary [`TraceRing`].
    pub fn shard(&self, i: usize) -> &TraceRing {
        &self.shards[i % self.shards.len()]
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Fleet-wide traces recorded (sum over shards, including evicted).
    pub fn recorded(&self) -> u64 {
        self.shards.iter().map(|s| s.recorded()).sum()
    }

    /// Fleet-wide traces evicted to make room (sum over shards).
    pub fn dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.dropped()).sum()
    }

    /// Dropped as a percentage of recorded (`0.0` when nothing recorded).
    pub fn dropped_pct(&self) -> f64 {
        let recorded = self.recorded();
        if recorded == 0 {
            0.0
        } else {
            self.dropped() as f64 * 100.0 / recorded as f64
        }
    }

    /// Records currently held across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// True iff no shard holds a record.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// Clone out the current contents of every shard, merged and sorted by
    /// request id (ids are unique per service, so the order is total).
    pub fn snapshot(&self) -> Vec<RewriteTrace> {
        let mut v: Vec<RewriteTrace> = self.shards.iter().flat_map(|s| s.snapshot()).collect();
        v.sort_by_key(|t| t.request_id);
        v
    }

    /// Move out the current contents of every shard, merged and sorted by
    /// request id, leaving all shards empty (odometers keep their totals).
    pub fn drain(&self) -> Vec<RewriteTrace> {
        let mut v: Vec<RewriteTrace> = self.shards.iter().flat_map(|s| s.drain()).collect();
        v.sort_by_key(|t| t.request_id);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kola_rewrite::engine::Step;
    use std::sync::Arc;

    fn toy_trace(id: u64) -> RewriteTrace {
        let q = Query::Extent(Arc::from("P"));
        RewriteTrace::record(
            id,
            Arc::from("default"),
            "fast",
            &q,
            Arc::new(vec!["11".into()]),
            100,
            64,
            1000,
            3,
            FaultPlan::default(),
            &Trace::new(),
            StopReason::NormalForm,
            &q,
        )
    }

    #[test]
    fn record_chains_before_and_after() {
        let input = Query::App(
            kola::term::Func::Compose(
                Box::new(kola::term::Func::Id),
                Box::new(kola::term::Func::Prim(Arc::from("age"))),
            ),
            Box::new(Query::Extent(Arc::from("P"))),
        );
        let after = Query::App(
            kola::term::Func::Prim(Arc::from("age")),
            Box::new(Query::Extent(Arc::from("P"))),
        );
        let mut t = Trace::new();
        t.steps.push(Step {
            rule_id: "11".into(),
            dir: Direction::Forward,
            after: after.clone(),
        });
        let rec = RewriteTrace::record(
            7,
            Arc::from("default"),
            "fast",
            &input,
            Arc::new(vec!["11".into()]),
            100,
            64,
            1000,
            3,
            FaultPlan::default(),
            &t,
            StopReason::NormalForm,
            &after,
        );
        assert_eq!(rec.steps.len(), 1);
        let s = &rec.steps[0];
        assert_ne!(s.before_fp, s.after_fp);
        assert!(s.before_size > s.after_size);
        assert_eq!(s.budget_spent, 1);
        assert_eq!(rec.result_fp, s.after_fp);
        assert_eq!(rec.justifications(), vec!["11"]);
        // Same run, recorded twice: identical records.
        let rec2 = RewriteTrace::record(
            7,
            Arc::from("default"),
            "fast",
            &input,
            Arc::new(vec!["11".into()]),
            100,
            64,
            1000,
            3,
            FaultPlan::default(),
            &t,
            StopReason::NormalForm,
            &after,
        );
        assert_eq!(rec, rec2);
    }

    #[test]
    fn ring_bounds_and_counts() {
        let ring = TraceRing::new(2);
        assert!(ring.is_empty());
        ring.push(toy_trace(1));
        ring.push(toy_trace(2));
        ring.push(toy_trace(3));
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.recorded(), 3);
        assert_eq!(ring.dropped(), 1);
        let v = ring.snapshot();
        assert_eq!(
            v.iter().map(|t| t.request_id).collect::<Vec<_>>(),
            vec![2, 3]
        );
        let d = ring.drain();
        assert_eq!(d.len(), 2);
        assert!(ring.is_empty());
        assert_eq!(ring.recorded(), 3);
    }

    #[test]
    fn sharded_ring_merges_by_request_id_and_folds_odometers() {
        let ring = ShardedTraceRing::new(3, 2);
        assert_eq!(ring.shard_count(), 3);
        assert!(ring.is_empty());
        // Interleave pushes across shards out of request-id order.
        ring.shard(0).push(toy_trace(5));
        ring.shard(1).push(toy_trace(2));
        ring.shard(2).push(toy_trace(9));
        ring.shard(0).push(toy_trace(1));
        ring.shard(1).push(toy_trace(7));
        // Overflow shard 0: trace 5 is evicted, counted fleet-wide.
        ring.shard(0).push(toy_trace(3));
        assert_eq!(ring.recorded(), 6);
        assert_eq!(ring.dropped(), 1);
        assert!((ring.dropped_pct() - 100.0 / 6.0).abs() < 1e-9);
        assert_eq!(ring.len(), 5);
        let ids = |v: Vec<RewriteTrace>| v.iter().map(|t| t.request_id).collect::<Vec<_>>();
        // snapshot and drain interleave the shards by request id.
        assert_eq!(ids(ring.snapshot()), vec![1, 2, 3, 7, 9]);
        assert_eq!(ids(ring.drain()), vec![1, 2, 3, 7, 9]);
        assert!(ring.is_empty());
        assert_eq!(ring.recorded(), 6);
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn sharded_ring_wraps_shard_index_and_handles_empty() {
        let ring = ShardedTraceRing::new(0, 1);
        assert_eq!(ring.shard_count(), 1);
        assert_eq!(ring.dropped_pct(), 0.0);
        // Shard addressing wraps, so any worker index is valid.
        ring.shard(7).push(toy_trace(4));
        assert_eq!(ring.len(), 1);
    }
}
