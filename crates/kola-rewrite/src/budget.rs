//! Resource governance for the rewrite engine.
//!
//! A production optimizer cannot afford an unbounded search: rule sets may
//! loop (every paper rule is an equivalence, so any forward/backward pair
//! ping-pongs), rules may blow a term up, and planning time is part of query
//! latency. A [`Budget`] makes every bound explicit — total rewrite steps,
//! traversal depth, intermediate term size, and an optional wall-clock
//! deadline — and a [`RewriteReport`] accounts for what actually happened:
//! how many steps ran, which rules fired or failed, which rules were
//! quarantined, and why the engine stopped.
//!
//! The governed drivers in [`crate::engine`] never panic and never return
//! nothing: on any abnormal stop they yield the best (smallest) query seen
//! so far together with the report — the same graceful degradation §4.2
//! claims for gradual rule sets, extended to resource exhaustion.

use kola::term::{Func, Pred, Query};
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::time::{Duration, Instant};

/// Explicit resource bounds for a rewrite run.
#[derive(Debug, Clone)]
pub struct Budget {
    /// Maximum rule applications (derivation length).
    pub max_steps: usize,
    /// Maximum traversal depth when searching for a redex; deeper subterms
    /// are left untouched (and the report's `depth_clipped` flag is set).
    pub max_depth: usize,
    /// Maximum node count for any intermediate term; rule results larger
    /// than this are rejected and counted as failures of the rule.
    pub max_term_size: usize,
    /// Optional wall-clock cutoff.
    pub deadline: Option<Instant>,
    /// Quarantine a rule after this many failures (0 = first failure,
    /// `usize::MAX` = never).
    pub quarantine_after: usize,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            max_steps: crate::engine::DEFAULT_FUEL,
            max_depth: 512,
            max_term_size: 1_000_000,
            deadline: None,
            quarantine_after: 3,
        }
    }
}

impl Budget {
    /// Default bounds with a specific step cap.
    pub fn with_steps(max_steps: usize) -> Self {
        Budget {
            max_steps,
            ..Budget::default()
        }
    }

    /// Set the step cap.
    pub fn steps(mut self, n: usize) -> Self {
        self.max_steps = n;
        self
    }

    /// Set the traversal-depth cap.
    pub fn depth(mut self, n: usize) -> Self {
        self.max_depth = n;
        self
    }

    /// Set the intermediate-term size cap.
    pub fn term_size(mut self, n: usize) -> Self {
        self.max_term_size = n;
        self
    }

    /// Set a wall-clock deadline `d` from now.
    pub fn timeout(mut self, d: Duration) -> Self {
        self.deadline = Some(Instant::now() + d);
        self
    }

    /// Set the per-rule failure tolerance before quarantine.
    pub fn quarantine_after(mut self, n: usize) -> Self {
        self.quarantine_after = n;
        self
    }

    /// True iff the deadline (if any) has passed.
    pub fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// Structured failures of the rewrite machinery. The governed drivers
/// *contain* these (they surface in the [`RewriteReport`]); the `try_*`
/// APIs return them directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewriteError {
    /// The step budget ran out before a normal form was reached.
    BudgetExhausted {
        /// Steps taken when the budget ran out.
        steps: usize,
    },
    /// The same term (by fingerprint) was produced twice — the rule set
    /// loops from here on.
    CycleDetected {
        /// Step index at which the repeat was detected.
        at_step: usize,
    },
    /// A term exceeded the configured size cap.
    TermTooLarge {
        /// Observed size.
        size: usize,
        /// Configured cap.
        limit: usize,
    },
    /// The traversal-depth cap was hit while searching for a redex.
    DepthExceeded {
        /// Configured cap.
        limit: usize,
    },
    /// The wall-clock deadline passed.
    DeadlineExpired,
    /// A rule misbehaved: its body mentioned a variable its head never
    /// bound, or a fault was injected against it.
    RuleFailed {
        /// Id of the failing rule.
        rule_id: String,
        /// Human-readable cause.
        detail: String,
    },
    /// A strategy referenced a rule id the catalog does not contain.
    UnknownRule {
        /// The unresolved reference (e.g. `"99"` or `"99-1"`).
        spec: String,
    },
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::BudgetExhausted { steps } => {
                write!(f, "step budget exhausted after {steps} steps")
            }
            RewriteError::CycleDetected { at_step } => {
                write!(f, "cycle detected at step {at_step}")
            }
            RewriteError::TermTooLarge { size, limit } => {
                write!(f, "term of size {size} exceeds cap {limit}")
            }
            RewriteError::DepthExceeded { limit } => {
                write!(f, "traversal depth cap {limit} exceeded")
            }
            RewriteError::DeadlineExpired => write!(f, "deadline expired"),
            RewriteError::RuleFailed { rule_id, detail } => {
                write!(f, "rule {rule_id} failed: {detail}")
            }
            RewriteError::UnknownRule { spec } => {
                write!(f, "unknown rule reference {spec:?}")
            }
        }
    }
}

impl std::error::Error for RewriteError {}

/// Why a governed rewrite run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StopReason {
    /// No rule applies anywhere: a genuine normal form.
    #[default]
    NormalForm,
    /// The step budget ran out.
    BudgetExhausted,
    /// A term repeated; continuing would loop forever.
    CycleDetected,
    /// The input itself exceeded the size cap.
    TermTooLarge,
    /// The wall-clock deadline passed.
    DeadlineExpired,
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StopReason::NormalForm => "normal form",
            StopReason::BudgetExhausted => "budget exhausted",
            StopReason::CycleDetected => "cycle detected",
            StopReason::TermTooLarge => "term too large",
            StopReason::DeadlineExpired => "deadline expired",
        };
        write!(f, "{s}")
    }
}

/// Per-rule accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuleStats {
    /// Successful applications.
    pub fired: usize,
    /// Failures (unbound body variables, injected faults, oversize
    /// results).
    pub failed: usize,
    /// Derivation step of this rule's first contained failure, if any.
    pub first_failed_step: Option<usize>,
    /// Derivation step of this rule's most recent contained failure.
    pub last_failed_step: Option<usize>,
}

/// What a governed rewrite run did and why it stopped.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RewriteReport {
    /// Rule applications taken (equals the derivation length).
    pub steps: usize,
    /// Why the run stopped.
    pub stop: StopReason,
    /// Fired/failed counts per rule id.
    pub rule_stats: BTreeMap<String, RuleStats>,
    /// Rules quarantined for repeated failures, in quarantine order.
    pub quarantined: Vec<String>,
    /// True iff the traversal-depth cap clipped the redex search anywhere.
    pub depth_clipped: bool,
    /// First few contained failures, as human-readable messages.
    pub failures: Vec<String>,
}

impl RewriteReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a successful application of `rule_id`.
    pub fn record_fire(&mut self, rule_id: &str) {
        self.rule_stats
            .entry(rule_id.to_string())
            .or_default()
            .fired += 1;
    }

    /// Record a contained failure of `rule_id` at derivation step
    /// `at_step`; quarantines the rule once its failure count reaches
    /// `quarantine_after`.
    pub fn record_failure(
        &mut self,
        rule_id: &str,
        err: &RewriteError,
        quarantine_after: usize,
        at_step: usize,
    ) {
        let stats = self.rule_stats.entry(rule_id.to_string()).or_default();
        stats.failed += 1;
        if stats.first_failed_step.is_none() {
            stats.first_failed_step = Some(at_step);
        }
        stats.last_failed_step = Some(at_step);
        if self.failures.len() < 8 {
            self.failures.push(err.to_string());
        }
        if quarantine_after != usize::MAX
            && stats.failed >= quarantine_after.max(1)
            && !self.is_quarantined(rule_id)
        {
            self.quarantined.push(rule_id.to_string());
        }
    }

    /// True iff `rule_id` is quarantined.
    pub fn is_quarantined(&self, rule_id: &str) -> bool {
        self.quarantined.iter().any(|q| q == rule_id)
    }

    /// Breaker/quarantine state observed in this run: one entry per
    /// quarantined rule, in quarantine order, with its trip count and the
    /// derivation steps of its first and last contained failures. Lets
    /// service metrics and tests observe breaker trips directly instead of
    /// inferring them from counters.
    pub fn quarantine_report(&self) -> QuarantineReport {
        QuarantineReport {
            entries: self
                .quarantined
                .iter()
                .map(|id| {
                    let s = self.rule_stats.get(id).copied().unwrap_or_default();
                    QuarantineEntry {
                        rule_id: id.clone(),
                        trips: s.failed,
                        first_failure: s.first_failed_step,
                        last_failure: s.last_failed_step,
                    }
                })
                .collect(),
        }
    }

    /// Total failures across all rules.
    pub fn total_failures(&self) -> usize {
        self.rule_stats.values().map(|s| s.failed).sum()
    }

    /// Fold another report into this one (used when a strategy runs several
    /// governed sub-derivations). Step counts and per-rule stats add up; the
    /// stop reason keeps the first abnormal one seen.
    pub fn merge(&mut self, other: &RewriteReport) {
        self.steps += other.steps;
        if self.stop == StopReason::NormalForm {
            self.stop = other.stop;
        }
        for (id, s) in &other.rule_stats {
            let e = self.rule_stats.entry(id.clone()).or_default();
            e.fired += s.fired;
            e.failed += s.failed;
            // `other`'s step indices are relative to its own sub-run; keep
            // a global ordering by offsetting with the steps already
            // accumulated here (added to self.steps above).
            let offset = self.steps - other.steps;
            if let Some(fs) = s.first_failed_step {
                let fs = fs + offset;
                if e.first_failed_step.is_none() {
                    e.first_failed_step = Some(fs);
                }
            }
            if let Some(ls) = s.last_failed_step {
                e.last_failed_step = Some(ls + offset);
            }
        }
        for q in &other.quarantined {
            if !self.is_quarantined(q) {
                self.quarantined.push(q.clone());
            }
        }
        self.depth_clipped |= other.depth_clipped;
        for m in &other.failures {
            if self.failures.len() < 8 {
                self.failures.push(m.clone());
            }
        }
    }
}

/// One quarantined rule's trip record (see
/// [`RewriteReport::quarantine_report`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineEntry {
    /// Id of the quarantined rule.
    pub rule_id: String,
    /// How many contained failures tripped the breaker.
    pub trips: usize,
    /// Derivation step of the first contained failure.
    pub first_failure: Option<usize>,
    /// Derivation step of the most recent contained failure.
    pub last_failure: Option<usize>,
}

/// Quarantine state extracted from a run: the rules whose circuit breaker
/// tripped, with per-rule trip counts and failure steps.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuarantineReport {
    /// One entry per quarantined rule, in quarantine order.
    pub entries: Vec<QuarantineEntry>,
}

impl QuarantineReport {
    /// True iff no rule is quarantined.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for QuarantineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.entries.is_empty() {
            return write!(f, "no rules quarantined");
        }
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{}×{}", e.rule_id, e.trips)?;
            if let (Some(a), Some(b)) = (e.first_failure, e.last_failure) {
                write!(f, " (steps {a}–{b})")?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for RewriteReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} steps, stopped: {}", self.steps, self.stop)?;
        if self.depth_clipped {
            write!(f, " (depth-clipped)")?;
        }
        if !self.quarantined.is_empty() {
            write!(f, "; quarantined: {}", self.quarantined.join(", "))?;
        }
        let fired: Vec<String> = self
            .rule_stats
            .iter()
            .filter(|(_, s)| s.fired > 0 || s.failed > 0)
            .map(|(id, s)| {
                if s.failed > 0 {
                    format!("{id}×{}({} failed)", s.fired, s.failed)
                } else {
                    format!("{id}×{}", s.fired)
                }
            })
            .collect();
        if !fired.is_empty() {
            write!(f, "; rules: {}", fired.join(" "))?;
        }
        Ok(())
    }
}

enum Node<'a> {
    Q(&'a Query),
    F(&'a Func),
    P(&'a Pred),
}

/// Size and order-sensitive structural fingerprint of a query, computed in
/// one explicit-stack preorder walk — safe on terms of any depth (the
/// derived `Hash`/`size` would recurse). The fingerprint is stable within a
/// process, which is all cycle detection needs.
pub fn measure_query(q: &Query) -> (usize, u64) {
    let mut h = DefaultHasher::new();
    let mut size = 0usize;
    let mut stack = vec![Node::Q(q)];
    while let Some(n) = stack.pop() {
        size += 1;
        match n {
            Node::Q(q) => {
                std::mem::discriminant(q).hash(&mut h);
                match q {
                    Query::Lit(v) => v.hash(&mut h),
                    Query::Extent(n) => n.hash(&mut h),
                    Query::App(f, inner) => {
                        stack.push(Node::Q(inner));
                        stack.push(Node::F(f));
                    }
                    Query::Test(p, inner) => {
                        stack.push(Node::Q(inner));
                        stack.push(Node::P(p));
                    }
                    Query::PairQ(a, b)
                    | Query::Union(a, b)
                    | Query::Intersect(a, b)
                    | Query::Diff(a, b) => {
                        stack.push(Node::Q(b));
                        stack.push(Node::Q(a));
                    }
                }
            }
            Node::F(f) => {
                std::mem::discriminant(f).hash(&mut h);
                match f {
                    Func::Id
                    | Func::Pi1
                    | Func::Pi2
                    | Func::Flat
                    | Func::Bagify
                    | Func::Dedup
                    | Func::BUnion
                    | Func::BFlat
                    | Func::SetUnion
                    | Func::SetIntersect
                    | Func::SetDiff => {}
                    Func::Prim(n) => n.hash(&mut h),
                    Func::Compose(a, b)
                    | Func::PairWith(a, b)
                    | Func::Times(a, b)
                    | Func::Nest(a, b)
                    | Func::Unnest(a, b) => {
                        stack.push(Node::F(b));
                        stack.push(Node::F(a));
                    }
                    Func::ConstF(q) => stack.push(Node::Q(q)),
                    Func::CurryF(g, q) => {
                        stack.push(Node::Q(q));
                        stack.push(Node::F(g));
                    }
                    Func::Cond(p, g, h2) => {
                        stack.push(Node::F(h2));
                        stack.push(Node::F(g));
                        stack.push(Node::P(p));
                    }
                    Func::Iterate(p, g)
                    | Func::Iter(p, g)
                    | Func::Join(p, g)
                    | Func::BIterate(p, g) => {
                        stack.push(Node::F(g));
                        stack.push(Node::P(p));
                    }
                }
            }
            Node::P(p) => {
                std::mem::discriminant(p).hash(&mut h);
                match p {
                    Pred::Eq | Pred::Lt | Pred::Leq | Pred::Gt | Pred::Geq | Pred::In => {}
                    Pred::PrimP(n) => n.hash(&mut h),
                    Pred::ConstP(b) => b.hash(&mut h),
                    Pred::Oplus(q, f) => {
                        stack.push(Node::F(f));
                        stack.push(Node::P(q));
                    }
                    Pred::And(a, b) | Pred::Or(a, b) => {
                        stack.push(Node::P(b));
                        stack.push(Node::P(a));
                    }
                    Pred::Not(q) | Pred::Conv(q) => stack.push(Node::P(q)),
                    Pred::CurryP(q, payload) => {
                        stack.push(Node::Q(payload));
                        stack.push(Node::P(q));
                    }
                }
            }
        }
    }
    (size, h.finish())
}

/// Structural query equality in one explicit-stack walk (the derived
/// `PartialEq` recurses and would overflow on pathological chains).
pub fn queries_equal(a: &Query, b: &Query) -> bool {
    let mut stack = vec![(Node::Q(a), Node::Q(b))];
    while let Some(pair) = stack.pop() {
        match pair {
            (Node::Q(a), Node::Q(b)) => {
                if std::mem::discriminant(a) != std::mem::discriminant(b) {
                    return false;
                }
                match (a, b) {
                    (Query::Lit(x), Query::Lit(y)) => {
                        if x != y {
                            return false;
                        }
                    }
                    (Query::Extent(x), Query::Extent(y)) => {
                        if x != y {
                            return false;
                        }
                    }
                    (Query::App(f, p), Query::App(g, q)) => {
                        stack.push((Node::Q(p), Node::Q(q)));
                        stack.push((Node::F(f), Node::F(g)));
                    }
                    (Query::Test(f, p), Query::Test(g, q)) => {
                        stack.push((Node::Q(p), Node::Q(q)));
                        stack.push((Node::P(f), Node::P(g)));
                    }
                    (Query::PairQ(x, y), Query::PairQ(u, v))
                    | (Query::Union(x, y), Query::Union(u, v))
                    | (Query::Intersect(x, y), Query::Intersect(u, v))
                    | (Query::Diff(x, y), Query::Diff(u, v)) => {
                        stack.push((Node::Q(y), Node::Q(v)));
                        stack.push((Node::Q(x), Node::Q(u)));
                    }
                    _ => unreachable!("same discriminant"),
                }
            }
            (Node::F(a), Node::F(b)) => {
                if std::mem::discriminant(a) != std::mem::discriminant(b) {
                    return false;
                }
                match (a, b) {
                    (Func::Prim(x), Func::Prim(y)) if x != y => {
                        return false;
                    }
                    (Func::Compose(x, y), Func::Compose(u, v))
                    | (Func::PairWith(x, y), Func::PairWith(u, v))
                    | (Func::Times(x, y), Func::Times(u, v))
                    | (Func::Nest(x, y), Func::Nest(u, v))
                    | (Func::Unnest(x, y), Func::Unnest(u, v)) => {
                        stack.push((Node::F(y), Node::F(v)));
                        stack.push((Node::F(x), Node::F(u)));
                    }
                    (Func::ConstF(x), Func::ConstF(y)) => {
                        stack.push((Node::Q(x), Node::Q(y)));
                    }
                    (Func::CurryF(f, x), Func::CurryF(g, y)) => {
                        stack.push((Node::Q(x), Node::Q(y)));
                        stack.push((Node::F(f), Node::F(g)));
                    }
                    (Func::Cond(p, f, g), Func::Cond(q, u, v)) => {
                        stack.push((Node::F(g), Node::F(v)));
                        stack.push((Node::F(f), Node::F(u)));
                        stack.push((Node::P(p), Node::P(q)));
                    }
                    (Func::Iterate(p, f), Func::Iterate(q, g))
                    | (Func::Iter(p, f), Func::Iter(q, g))
                    | (Func::Join(p, f), Func::Join(q, g))
                    | (Func::BIterate(p, f), Func::BIterate(q, g)) => {
                        stack.push((Node::F(f), Node::F(g)));
                        stack.push((Node::P(p), Node::P(q)));
                    }
                    _ => {}
                }
            }
            (Node::P(a), Node::P(b)) => {
                if std::mem::discriminant(a) != std::mem::discriminant(b) {
                    return false;
                }
                match (a, b) {
                    (Pred::PrimP(x), Pred::PrimP(y)) if x != y => {
                        return false;
                    }
                    (Pred::ConstP(x), Pred::ConstP(y)) if x != y => {
                        return false;
                    }
                    (Pred::Oplus(p, f), Pred::Oplus(q, g)) => {
                        stack.push((Node::F(f), Node::F(g)));
                        stack.push((Node::P(p), Node::P(q)));
                    }
                    (Pred::And(x, y), Pred::And(u, v)) | (Pred::Or(x, y), Pred::Or(u, v)) => {
                        stack.push((Node::P(y), Node::P(v)));
                        stack.push((Node::P(x), Node::P(u)));
                    }
                    (Pred::Not(x), Pred::Not(y)) | (Pred::Conv(x), Pred::Conv(y)) => {
                        stack.push((Node::P(x), Node::P(y)));
                    }
                    (Pred::CurryP(p, x), Pred::CurryP(q, y)) => {
                        stack.push((Node::Q(x), Node::Q(y)));
                        stack.push((Node::P(p), Node::P(q)));
                    }
                    _ => {}
                }
            }
            _ => return false,
        }
    }
    true
}

/// Collision-safe cycle detection for the boxed fixpoint driver.
///
/// Terms are bucketed by their 64-bit [`measure_query`] fingerprint, but a
/// fingerprint hit alone never declares a cycle: the candidate is compared
/// *structurally* against every resident of the bucket first, so two distinct
/// terms that happen to collide are kept apart. (The interned engine gets
/// this for free — hash-consing makes pointer identity exact — but the boxed
/// driver stores owned snapshots.)
#[derive(Debug, Default)]
pub struct CycleDetector {
    buckets: std::collections::HashMap<u64, Vec<Query>>,
}

impl CycleDetector {
    /// An empty detector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns true iff a term structurally equal to `q` was already seen;
    /// otherwise records `q` (under the caller-computed fingerprint `fp`)
    /// and returns false.
    pub fn seen(&mut self, fp: u64, q: &Query) -> bool {
        let bucket = self.buckets.entry(fp).or_default();
        if bucket.iter().any(|r| queries_equal(r, q)) {
            return true;
        }
        bucket.push(q.clone());
        false
    }

    /// Number of distinct terms recorded.
    pub fn len(&self) -> usize {
        self.buckets.values().map(Vec::len).sum()
    }

    /// True iff nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kola::parse::parse_query;

    #[test]
    fn measure_agrees_with_recursive_size() {
        for src in [
            "age ! P",
            "iterate(Kp(T), city . addr) ! P",
            "iterate(gt @ (age, Kf(25)), (id, child)) ! (P union Q)",
        ] {
            let q = parse_query(src).unwrap();
            let (size, _) = measure_query(&q);
            assert_eq!(size, q.size(), "{src}");
        }
    }

    #[test]
    fn fingerprint_distinguishes_and_reproduces() {
        let a = parse_query("iterate(Kp(T), city) ! P").unwrap();
        let b = parse_query("iterate(Kp(T), addr) ! P").unwrap();
        assert_ne!(measure_query(&a).1, measure_query(&b).1);
        assert_eq!(measure_query(&a).1, measure_query(&a.clone()).1);
    }

    #[test]
    fn measure_handles_deep_terms() {
        // A compose chain deep enough to break recursive traversals.
        let mut f = kola::term::Func::Prim(std::sync::Arc::from("age"));
        for _ in 0..10_000 {
            f = kola::term::Func::Compose(Box::new(kola::term::Func::Id), Box::new(f));
        }
        let q = Query::App(f, Box::new(Query::Extent(std::sync::Arc::from("P"))));
        let (size, _) = measure_query(&q);
        assert_eq!(size, 20_003);
    }

    #[test]
    fn forced_fingerprint_collision_does_not_conflate() {
        // Two structurally distinct queries filed under the SAME (forced)
        // fingerprint: the detector must keep them apart and only report a
        // cycle when a structurally equal term really repeats.
        let a = parse_query("age ! P").unwrap();
        let b = parse_query("city ! P").unwrap();
        let mut d = CycleDetector::new();
        assert!(!d.seen(42, &a));
        assert!(!d.seen(42, &b), "collision conflated two distinct terms");
        assert_eq!(d.len(), 2);
        assert!(d.seen(42, &a));
        assert!(d.seen(42, &b));
    }

    #[test]
    fn queries_equal_is_structural_and_stack_safe() {
        let mk = |leaf: &str| {
            let mut f = kola::term::Func::Prim(std::sync::Arc::from(leaf));
            for _ in 0..10_000 {
                f = kola::term::Func::Compose(Box::new(kola::term::Func::Id), Box::new(f));
            }
            Query::App(f, Box::new(Query::Extent(std::sync::Arc::from("P"))))
        };
        let (a, a2, b) = (mk("age"), mk("age"), mk("city"));
        assert!(queries_equal(&a, &a2));
        assert!(!queries_equal(&a, &b));
    }

    #[test]
    fn quarantine_after_n_failures() {
        let mut r = RewriteReport::new();
        let err = RewriteError::RuleFailed {
            rule_id: "x".into(),
            detail: "injected".into(),
        };
        r.record_failure("x", &err, 3, 0);
        r.record_failure("x", &err, 3, 4);
        assert!(!r.is_quarantined("x"));
        r.record_failure("x", &err, 3, 9);
        assert!(r.is_quarantined("x"));
        let qr = r.quarantine_report();
        assert_eq!(qr.entries.len(), 1);
        assert_eq!(qr.entries[0].rule_id, "x");
        assert_eq!(qr.entries[0].trips, 3);
        assert_eq!(qr.entries[0].first_failure, Some(0));
        assert_eq!(qr.entries[0].last_failure, Some(9));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = RewriteReport::new();
        a.record_fire("11");
        a.steps = 1;
        let mut b = RewriteReport::new();
        b.record_fire("11");
        b.steps = 2;
        b.stop = StopReason::BudgetExhausted;
        a.merge(&b);
        assert_eq!(a.steps, 3);
        assert_eq!(a.rule_stats["11"].fired, 2);
        assert_eq!(a.stop, StopReason::BudgetExhausted);
    }

    #[test]
    fn budget_builder() {
        let b = Budget::with_steps(5)
            .depth(32)
            .term_size(100)
            .quarantine_after(1);
        assert_eq!(b.max_steps, 5);
        assert_eq!(b.max_depth, 32);
        assert_eq!(b.max_term_size, 100);
        assert_eq!(b.quarantine_after, 1);
        assert!(!b.expired());
        let expired = Budget::default().timeout(Duration::from_secs(0));
        assert!(expired.expired());
    }
}
