//! The rule catalog: the paper's Figures 5 and 8, structural plumbing rules,
//! and an extended pool of verified KOLA laws.
//!
//! Every rule here is pure pattern data — no rule carries code. All rules
//! are checked for soundness by the `kola-verify` crate (randomized,
//! type-directed testing; the paper used the Larch prover instead).
//!
//! ## Numbering
//!
//! Rules `1`–`16` are Figure 5; `17`–`24` are Figure 8. One deliberate
//! deviation: the paper writes rule 7 as `gt⁻¹ ≡ leq`, but its own
//! derivations (rule 13 and Figure 4/6) force `⁻¹` to be the *converse*
//! (argument swap), whose value on `gt` is strict less-than. We therefore
//! state rule 7 as `inv(gt) ≡ lt`; where the paper's figures print
//! `Cp(leq, 25)` our derivations print `Cp(lt, 25)`. See EXPERIMENTS.md.
//!
//! Structural rules have letter ids (`app`, `18a`, …); extended-pool rules
//! are prefixed `e`.

use crate::dtree::IndexStats;
use crate::engine::Oriented;
use crate::matching::{func_head_key, pred_head_key, query_head_key, HeadKey};
use crate::props::{PropKind, PropTerm};
use crate::rule::{Direction, RewritePair, Rule, RuleSource};
use kola::intern::Tag;
use kola::pattern::{PFunc, PPred, PQuery};
use std::collections::{BTreeMap, HashMap};

/// A rule pool with id-based lookup.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    rules: Vec<Rule>,
    index: BTreeMap<String, usize>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a rule. Panics on duplicate ids (catalog is static data).
    pub fn add(&mut self, rule: Rule) {
        assert!(
            !self.index.contains_key(&rule.id),
            "duplicate rule id {}",
            rule.id
        );
        self.index.insert(rule.id.clone(), self.rules.len());
        self.rules.push(rule);
    }

    /// Look up a rule by id.
    pub fn get(&self, id: &str) -> Option<&Rule> {
        self.index.get(id).map(|i| &self.rules[*i])
    }

    /// All rules in insertion order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Resolve a derivation-style rule reference: `"11"` (forward) or
    /// `"12-1"` (backward). Panics on unknown ids — references are static.
    pub fn resolve(&self, spec: &str) -> (&Rule, Direction) {
        self.try_resolve(spec).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`Catalog::resolve`]: unknown references become
    /// [`crate::budget::RewriteError::UnknownRule`] instead of a panic, so
    /// strategies built from untrusted rule references degrade gracefully.
    pub fn try_resolve(
        &self,
        spec: &str,
    ) -> Result<(&Rule, Direction), crate::budget::RewriteError> {
        let (id, dir) = match spec.strip_suffix("-1") {
            Some(base) => (base, Direction::Backward),
            None => (spec, Direction::Forward),
        };
        self.get(id).map(|rule| (rule, dir)).ok_or_else(|| {
            crate::budget::RewriteError::UnknownRule {
                spec: spec.to_string(),
            }
        })
    }

    /// Ids of all rules, in insertion order — the forward-orientation rule
    /// universe a service breaker tracks.
    pub fn forward_ids(&self) -> Vec<String> {
        self.rules.iter().map(|r| r.id.clone()).collect()
    }

    /// Restrict a run's quarantine state to rules this catalog owns: the
    /// catalog-level accessor for breaker observability. Entries for rules
    /// the catalog does not know (e.g. from a merged foreign report) are
    /// dropped.
    pub fn quarantine_report(
        &self,
        report: &crate::budget::RewriteReport,
    ) -> crate::budget::QuarantineReport {
        let mut qr = report.quarantine_report();
        qr.entries.retain(|e| self.get(&e.rule_id).is_some());
        qr
    }

    /// The full paper catalog: Figures 5 + 8, structural rules, extended
    /// pool, the n-family Bool/set/aggregate identities, and the systematic
    /// context closure of all of the above (see [`closures`]). Every rule is
    /// machine-verified by `kola-verify`; the closure takes the pool past the
    /// paper's "500 rules" operating point.
    pub fn paper() -> Catalog {
        let mut c = Catalog::new();
        for r in figure5() {
            c.add(r.from_source(RuleSource::Figure5));
        }
        for r in figure8() {
            c.add(r.from_source(RuleSource::Figure8));
        }
        for r in structural() {
            c.add(r.from_source(RuleSource::Structural));
        }
        for r in extended() {
            c.add(r.from_source(RuleSource::Extended));
        }
        for r in nfamily() {
            c.add(r.from_source(RuleSource::Extended));
        }
        let closed = closures(c.rules());
        for r in closed {
            c.add(r);
        }
        c
    }
}

/// Positions bucketed by head key at one term level, plus the wildcard
/// bucket for metavariable-rooted heads. All position vectors are ascending.
#[derive(Debug, Clone, Default)]
struct LevelIndex {
    buckets: HashMap<HeadKey, Vec<usize>>,
    wildcard: Vec<usize>,
}

impl LevelIndex {
    fn insert(&mut self, key: Option<HeadKey>, pos: usize) {
        let v = match key {
            Some(k) => self.buckets.entry(k).or_default(),
            None => &mut self.wildcard,
        };
        // One rule's alternatives are processed consecutively, so a repeat
        // in the same bucket is always adjacent.
        if v.last() != Some(&pos) {
            v.push(pos);
        }
    }

    fn remove_pos(&mut self, positions: &[usize]) {
        for v in self.buckets.values_mut() {
            v.retain(|p| !positions.contains(p));
        }
        self.wildcard.retain(|p| !positions.contains(p));
    }

    fn contains_pos(&self, positions: &[usize]) -> bool {
        self.buckets
            .values()
            .chain(std::iter::once(&self.wildcard))
            .any(|v| v.iter().any(|p| positions.contains(p)))
    }

    /// Merge the three buckets a term node can hit — exact `(root, child)`,
    /// childless `(root, None)`, and wildcard — preserving ascending rule
    /// position so "first matching rule" is unchanged.
    fn candidates(&self, root: Tag, child: Option<Tag>, out: &mut Vec<usize>) {
        out.clear();
        let empty: &[usize] = &[];
        let a = child
            .and_then(|c| {
                self.buckets.get(&HeadKey {
                    root,
                    child: Some(c),
                })
            })
            .map_or(empty, Vec::as_slice);
        let b = self
            .buckets
            .get(&HeadKey { root, child: None })
            .map_or(empty, Vec::as_slice);
        let w = self.wildcard.as_slice();
        let (mut i, mut j, mut k) = (0, 0, 0);
        loop {
            let next = [a.get(i), b.get(j), w.get(k)]
                .into_iter()
                .flatten()
                .min()
                .copied();
            let Some(p) = next else { break };
            if a.get(i) == Some(&p) {
                i += 1;
            }
            if b.get(j) == Some(&p) {
                j += 1;
            }
            if w.get(k) == Some(&p) {
                k += 1;
            }
            out.push(p);
        }
    }
}

/// Head-symbol discrimination index over an oriented rule list — the
/// depth-1 predecessor of the discrimination tree ([`crate::dtree::RuleIndex`]),
/// kept as a differential oracle and as the `EngineConfig::head_indexed`
/// dispatch mode.
///
/// Built once per engine run from the *oriented* heads (a backward
/// orientation indexes the rule's right-hand side; backward orientations of
/// one-way rules are unreachable and simply never indexed). At each subterm
/// position the engine then consults only the buckets the node's own
/// constructors select, merged in ascending rule position — the same rules,
/// tried in the same order, minus the ones whose head constructor already
/// rules them out.
#[derive(Debug, Clone, Default)]
pub struct HeadIndex {
    func: LevelIndex,
    pred: LevelIndex,
    query: LevelIndex,
    ids: Vec<String>,
}

impl HeadIndex {
    /// Build the index for `rules` (positions refer to this slice).
    pub fn build(rules: &[Oriented]) -> HeadIndex {
        let mut ix = HeadIndex::default();
        for (pos, o) in rules.iter().enumerate() {
            ix.ids.push(o.rule.id.clone());
            if o.dir == Direction::Backward && !o.rule.bidirectional {
                continue;
            }
            for alt in &o.rule.alts {
                match alt {
                    RewritePair::F(l, r) => {
                        let head = if o.dir == Direction::Forward { l } else { r };
                        ix.func.insert(func_head_key(head), pos);
                    }
                    RewritePair::P(l, r) => {
                        let head = if o.dir == Direction::Forward { l } else { r };
                        ix.pred.insert(pred_head_key(head), pos);
                    }
                    RewritePair::Q(l, r) => {
                        let head = if o.dir == Direction::Forward { l } else { r };
                        ix.query.insert(query_head_key(head), pos);
                    }
                }
            }
        }
        ix
    }

    /// Remove every bucket entry for `rule_id` (all orientations). Used when
    /// the engine quarantines a rule mid-run: the quarantine must reach the
    /// index, not just the linear scan.
    pub fn remove(&mut self, rule_id: &str) {
        let positions: Vec<usize> = self
            .ids
            .iter()
            .enumerate()
            .filter(|(_, id)| id.as_str() == rule_id)
            .map(|(p, _)| p)
            .collect();
        self.func.remove_pos(&positions);
        self.pred.remove_pos(&positions);
        self.query.remove_pos(&positions);
    }

    /// True iff any bucket still holds an entry for `rule_id`.
    pub fn contains(&self, rule_id: &str) -> bool {
        let positions: Vec<usize> = self
            .ids
            .iter()
            .enumerate()
            .filter(|(_, id)| id.as_str() == rule_id)
            .map(|(p, _)| p)
            .collect();
        self.func.contains_pos(&positions)
            || self.pred.contains_pos(&positions)
            || self.query.contains_pos(&positions)
    }

    /// Candidate rule positions for a function node with head-segment
    /// constructor `root` and first-child constructor `child`.
    pub fn func_candidates(&self, root: Tag, child: Option<Tag>, out: &mut Vec<usize>) {
        self.func.candidates(root, child, out);
    }

    /// Candidate rule positions for a predicate node.
    pub fn pred_candidates(&self, root: Tag, child: Option<Tag>, out: &mut Vec<usize>) {
        self.pred.candidates(root, child, out);
    }

    /// Candidate rule positions for a query node.
    pub fn query_candidates(&self, root: Tag, child: Option<Tag>, out: &mut Vec<usize>) {
        self.query.candidates(root, child, out);
    }

    /// Shape summary for observability: per level (func/pred/query), the
    /// number of head-key buckets, total bucketed entries, and wildcard
    /// entries. The wildcard count is the index's weak spot — every node at
    /// that level pays for those rules — so it is the number worth watching
    /// when the catalog grows. The `tree_*` fields of [`IndexStats`] belong
    /// to the discrimination tree and stay zero here.
    pub fn describe(&self) -> IndexStats {
        fn level(l: &LevelIndex) -> (usize, usize, usize) {
            (
                l.buckets.len(),
                l.buckets.values().map(Vec::len).sum(),
                l.wildcard.len(),
            )
        }
        let (fb, fe, fw) = level(&self.func);
        let (pb, pe, pw) = level(&self.pred);
        let (qb, qe, qw) = level(&self.query);
        IndexStats {
            func_buckets: fb,
            func_entries: fe,
            func_wildcard: fw,
            pred_buckets: pb,
            pred_entries: pe,
            pred_wildcard: pw,
            query_buckets: qb,
            query_entries: qe,
            query_wildcard: qw,
            ..IndexStats::default()
        }
    }
}

/// Figure 5: the sixteen general-purpose rules.
pub fn figure5() -> Vec<Rule> {
    vec![
        Rule::func("1", "compose-id-right", "$f . id", "$f"),
        Rule::func("2", "compose-id-left", "id . $f", "$f"),
        Rule::pred("3", "oplus-id", "%p @ id", "%p"),
        Rule::func("4", "pair-projections", "(pi1, pi2)", "id"),
        Rule::pred("5", "and-true-left", "Kp(T) & %p", "%p"),
        Rule::pred("6", "const-pred-oplus", "Kp(T) @ $f", "Kp(T)")
            .with_alt_pred("Kp(F) @ $f", "Kp(F)"),
        // Paper prints `gt⁻¹ ≡ leq`; the sound reading of ⁻¹ is converse,
        // so the right-hand side is strict less-than. See module docs.
        Rule::pred("7", "converse-gt", "inv(gt)", "lt"),
        Rule::func("8", "const-absorbs", "Kf(^k) . $f", "Kf(^k)"),
        Rule::func("9", "pi1-pairing", "pi1 . ($f, $g)", "$f"),
        Rule::func("10", "pi2-pairing", "pi2 . ($f, $g)", "$g"),
        Rule::func(
            "11",
            "iterate-fusion",
            "iterate(%p, $f) . iterate(%q, $g)",
            "iterate(%q & %p @ $g, $f . $g)",
        ),
        Rule::func(
            "12",
            "select-map-fusion",
            "iterate(%p, id) . iterate(Kp(T), $f)",
            "iterate(%p @ $f, $f)",
        ),
        Rule::pred(
            "13",
            "constant-curry",
            "%p @ ($f, Kf(^k))",
            "Cp(inv(%p), ^k) @ $f",
        ),
        Rule::pred("14", "oplus-compose", "%p @ ($f . $g)", "(%p @ $f) @ $g"),
        Rule::func(
            "15",
            "iter-env-test",
            "iter(%p @ pi1, pi2)",
            "con(%p @ pi1, pi2, Kf({}))",
        ),
        Rule::func(
            "16",
            "cond-compose",
            "con(%p, $f, $g) . $h",
            "con(%p @ $h, $f . $h, $g . $h)",
        ),
    ]
}

/// Figure 8: the hidden-join untangling rules.
pub fn figure8() -> Vec<Rule> {
    vec![
        // 17 proper, plus the g = id degenerate form the paper's footnote
        // covers ("g could be id, in which case the factor drops out").
        Rule::func(
            "17",
            "break-up-iterate",
            "iterate(Kp(T), ($j, $g . iter(%p, $f) . (id, $h)))",
            "iterate(Kp(T), ($j . pi1, pi2)) . \
             iterate(Kp(T), (pi1, $g . pi2)) . \
             iterate(Kp(T), (pi1, iter(%p, $f))) . \
             iterate(Kp(T), (id, $h))",
        )
        .with_alt_func(
            "iterate(Kp(T), ($j, iter(%p, $f) . (id, $h)))",
            "iterate(Kp(T), ($j . pi1, pi2)) . \
             iterate(Kp(T), (pi1, iter(%p, $f))) . \
             iterate(Kp(T), (id, $h))",
        ),
        Rule::func("18", "iterate-id", "iterate(Kp(T), id)", "id"),
        Rule::query(
            "19",
            "bottom-out",
            "iterate(Kp(T), (id, Kf(^B))) ! ^A",
            "nest(pi1, pi2) . (join(Kp(T), id), pi1) ! [^A, ^B]",
        ),
        Rule::func(
            "20",
            "pull-nest-past-iter",
            "iterate(Kp(T), (pi1, iter(%p, $f))) . nest(pi1, pi2)",
            "nest(pi1, pi2) . (iterate(%p, (pi1, $f)) * id)",
        ),
        Rule::func(
            "21",
            "pull-nest-past-flat",
            "iterate(Kp(T), (pi1, flat . pi2)) . nest(pi1, pi2)",
            "nest(pi1, pi2) . (unnest(pi1, pi2) * id)",
        ),
        Rule::func(
            "22",
            "pull-unnest-past-iterate",
            "(iterate(%p, (pi1, $f)) * id) . (unnest(pi1, pi2) * id)",
            "(unnest(pi1, pi2) * id) . (iterate(Kp(T), (pi1, iter(%p, $f))) * id)",
        ),
        Rule::func(
            "23",
            "pull-unnest-past-unnest",
            "(unnest(pi1, pi2) * id) . (unnest(pi1, pi2) * id)",
            "(unnest(pi1, pi2) * id) . (iterate(Kp(T), (pi1, flat . pi2)) * id)",
        ),
        Rule::func(
            "24",
            "absorb-into-join",
            "(iterate(%p, $f) * id) . (join(%q, $g), pi1)",
            "(join(%q & %p @ $g, $f . $g), pi1)",
        ),
    ]
}

/// Structural plumbing rules (compose/application): not in the paper's
/// figures but implicit in its derivations (compose is applied/fused when
/// moving between the forms of Steps 1–2).
pub fn structural() -> Vec<Rule> {
    vec![
        // Definition of composition at the query level. Forward splits one
        // segment off a pipeline; backward fuses.
        Rule::query("app", "compose-apply", "($f . $g) ! ^x", "$f ! ($g ! ^x)"),
        // ⟨π1, id∘π2⟩-style residue cleanup used by Step 1 (footnote 5).
        Rule::func("4a", "pair-proj-compose", "(pi1 . id, pi2)", "(pi1, pi2)"),
    ]
}

/// The extended pool: generally applicable KOLA laws beyond the paper's 24.
/// Ids are prefixed `e`. Every law is verified by `kola-verify`.
pub fn extended() -> Vec<Rule> {
    let mut v = vec![
        // --- projection / product laws ---
        Rule::func("e1", "pi1-times", "pi1 . ($f * $g)", "$f . pi1"),
        Rule::func("e2", "pi2-times", "pi2 . ($f * $g)", "$g . pi2"),
        Rule::func(
            "e3",
            "times-fusion",
            "($f * $g) . ($h * $j)",
            "($f . $h) * ($g . $j)",
        ),
        Rule::func(
            "e4",
            "pairing-compose",
            "($f, $g) . $h",
            "($f . $h, $g . $h)",
        ),
        Rule::func(
            "e5",
            "times-pairing",
            "($f * $g) . ($h, $j)",
            "($f . $h, $g . $j)",
        ),
        Rule::func("e6", "times-id", "id * id", "id"),
        Rule::func("e7", "times-as-pairing", "$f * $g", "($f . pi1, $g . pi2)"),
        // --- constant / curry laws ---
        Rule::func("e10", "compose-const", "$f . Kf(^k)", "Kf($f ! ^k)"),
        Rule::func("e11", "curry-unfold", "Cf($f, ^k)", "$f . (Kf(^k), id)"),
        Rule::pred(
            "e12",
            "curry-pred-unfold",
            "Cp(%p, ^k)",
            "%p @ (Kf(^k), id)",
        ),
        Rule::func(
            "e13",
            "curry-compose",
            "Cf($f, ^k) . $g",
            "Cf($f . id * $g, ^k)",
        ),
        Rule::pred(
            "e14",
            "curry-pred-compose",
            "Cp(%p, ^k) @ $g",
            "Cp(%p @ id * $g, ^k)",
        ),
        // --- conditional laws ---
        Rule::func(
            "e20",
            "compose-cond",
            "$f . con(%p, $g, $h)",
            "con(%p, $f . $g, $f . $h)",
        ),
        Rule::func("e21", "cond-true", "con(Kp(T), $f, $g)", "$f"),
        Rule::func("e22", "cond-false", "con(Kp(F), $f, $g)", "$g"),
        Rule::func("e23", "cond-same", "con(%p, $f, $f)", "$f"),
        Rule::func("e24", "cond-flip", "con(~%p, $f, $g)", "con(%p, $g, $f)"),
        // --- boolean algebra of predicates ---
        Rule::pred("e30", "and-idem", "%p & %p", "%p"),
        Rule::pred("e31", "or-idem", "%p | %p", "%p"),
        Rule::pred("e32", "and-true-right", "%p & Kp(T)", "%p"),
        Rule::pred("e33", "and-false-left", "Kp(F) & %p", "Kp(F)"),
        Rule::pred("e34", "and-false-right", "%p & Kp(F)", "Kp(F)"),
        Rule::pred("e35", "or-false-left", "Kp(F) | %p", "%p"),
        Rule::pred("e36", "or-false-right", "%p | Kp(F)", "%p"),
        Rule::pred("e37", "or-true-left", "Kp(T) | %p", "Kp(T)"),
        Rule::pred("e38", "or-true-right", "%p | Kp(T)", "Kp(T)"),
        Rule::pred("e39", "de-morgan-and", "~(%p & %q)", "~%p | ~%q"),
        Rule::pred("e40", "de-morgan-or", "~(%p | %q)", "~%p & ~%q"),
        Rule::pred("e41", "double-negation", "~~%p", "%p"),
        Rule::pred("e42", "not-true", "~Kp(T)", "Kp(F)"),
        Rule::pred("e43", "not-false", "~Kp(F)", "Kp(T)"),
        Rule::pred("e44", "and-commute", "%p & %q", "%q & %p"),
        Rule::pred("e45", "or-commute", "%p | %q", "%q | %p"),
        Rule::pred("e46", "and-assoc", "(%p & %q) & %r", "%p & (%q & %r)"),
        Rule::pred("e47", "or-assoc", "(%p | %q) | %r", "%p | (%q | %r)"),
        Rule::pred(
            "e48",
            "and-or-distrib",
            "%p & (%q | %r)",
            "(%p & %q) | (%p & %r)",
        ),
        Rule::pred(
            "e49",
            "or-and-distrib",
            "%p | (%q & %r)",
            "(%p | %q) & (%p | %r)",
        )
        .with_alt_pred("(%q & %r) | %p", "(%q | %p) & (%r | %p)"),
        // --- ⊕ distribution ---
        Rule::pred(
            "e50",
            "oplus-and",
            "(%p & %q) @ $f",
            "(%p @ $f) & (%q @ $f)",
        ),
        Rule::pred("e51", "oplus-or", "(%p | %q) @ $f", "(%p @ $f) | (%q @ $f)"),
        Rule::pred("e52", "oplus-not", "~%p @ $f", "~(%p @ $f)"),
        // --- converse laws ---
        Rule::pred("e60", "converse-involution", "inv(inv(%p))", "%p"),
        Rule::pred("e61", "converse-eq", "inv(eq)", "eq"),
        Rule::pred("e62", "converse-lt", "inv(lt)", "gt"),
        Rule::pred("e63", "converse-leq", "inv(leq)", "geq"),
        Rule::pred("e64", "converse-geq", "inv(geq)", "leq"),
        Rule::pred(
            "e65",
            "converse-times",
            "inv(%p @ ($f * $g))",
            "inv(%p) @ ($g * $f)",
        ),
        Rule::pred("e66", "converse-and", "inv(%p & %q)", "inv(%p) & inv(%q)"),
        Rule::pred("e67", "converse-or", "inv(%p | %q)", "inv(%p) | inv(%q)"),
        Rule::pred("e68", "converse-not", "inv(~%p)", "~inv(%p)"),
        // --- iterate / flat / iter laws ---
        Rule::func(
            "e70",
            "flat-iterate-commute",
            "flat . iterate(Kp(T), iterate(%p, $f))",
            "iterate(%p, $f) . flat",
        ),
        Rule::func("e71", "iterate-false", "iterate(Kp(F), $f)", "Kf({})"),
        Rule::func("e72", "iter-trivial", "iter(Kp(T), pi2)", "pi2"),
        Rule::func(
            "e73",
            "iterate-cond-push",
            "iterate(%p, con(%q, $f, $f))",
            "iterate(%p, $f)",
        ),
        Rule::func(
            "e74",
            "flat-single",
            "flat . iterate(Kp(T), (iterate(Kp(T), $f)))",
            "iterate(Kp(T), $f) . flat",
        ),
        // --- join laws ---
        Rule::func(
            "e80",
            "join-pred-absorb",
            "iterate(%p, id) . join(%q, id)",
            "join(%q & %p, id)",
        ),
        Rule::func(
            "e81",
            "join-map-fuse",
            "iterate(Kp(T), $f) . join(%q, $g)",
            "join(%q, $f . $g)",
        ),
        Rule::func(
            "e82",
            "join-swap",
            "join(%p, $f) . (pi2, pi1)",
            "join(inv(%p), $f . (pi2, pi1))",
        ),
        // --- query-level set laws ---
        Rule::query("e90", "union-idem", "^A union ^A", "^A"),
        Rule::query("e91", "intersect-idem", "^A intersect ^A", "^A"),
        Rule::query("e92", "union-commute", "^A union ^B", "^B union ^A"),
        Rule::query(
            "e93",
            "intersect-commute",
            "^A intersect ^B",
            "^B intersect ^A",
        ),
        Rule::query(
            "e94",
            "union-assoc",
            "(^A union ^B) union ^C",
            "^A union (^B union ^C)",
        ),
        Rule::query("e95", "sunion-bridge", "sunion ! [^A, ^B]", "^A union ^B"),
        Rule::query(
            "e96",
            "sinter-bridge",
            "sinter ! [^A, ^B]",
            "^A intersect ^B",
        ),
        Rule::query("e97", "sdiff-bridge", "sdiff ! [^A, ^B]", "^A diff ^B"),
        Rule::query(
            "e98",
            "iterate-over-union",
            "iterate(%p, $f) ! (^A union ^B)",
            "(iterate(%p, $f) ! ^A) union (iterate(%p, $f) ! ^B)",
        ),
        Rule::query("e99", "diff-self", "^A diff ^A", "{}").one_way(),
        // --- the paper's precondition example (§4.2) ---
        Rule::query(
            "e100",
            "injective-intersect-push",
            "(iterate(Kp(T), $f) ! ^A) intersect (iterate(Kp(T), $f) ! ^B)",
            "iterate(Kp(T), $f) ! (^A intersect ^B)",
        )
        .with_precondition(PropKind::Injective, PropTerm::func("f")),
        Rule::query(
            "e101",
            "injective-diff-push",
            "(iterate(Kp(T), $f) ! ^A) diff (iterate(Kp(T), $f) ! ^B)",
            "iterate(Kp(T), $f) ! (^A diff ^B)",
        )
        .with_precondition(PropKind::Injective, PropTerm::func("f")),
        // --- tidy rules used to reach Figure 3's exact KG2 form ---
        Rule::func("e110", "pair-to-times", "(pi1, $g . pi2)", "id * $g"),
        Rule::func("e111", "pair-to-times-left", "($f . pi1, pi2)", "$f * id"),
        Rule::func(
            "e112",
            "pair-to-times-both",
            "($f . pi1, $g . pi2)",
            "$f * $g",
        ),
        Rule::pred(
            "e113",
            "oplus-pair-to-times",
            "%p @ (pi1, $g . pi2)",
            "%p @ id * $g",
        ),
    ];
    // --- more join / iter / flat laws ---
    v.extend(vec![
        Rule::func("e130", "join-false", "join(Kp(F), $f)", "Kf({})"),
        Rule::func(
            "e131",
            "map-into-join",
            "join(%p, $f) . (iterate(Kp(T), $g) * iterate(Kp(T), $h))",
            "join(%p @ $g * $h, $f . $g * $h)",
        ),
        Rule::func(
            "e135",
            "iter-ignores-env",
            "iter(Kp(T), $f . pi2)",
            "iterate(Kp(T), $f) . pi2",
        ),
        Rule::func(
            "e136",
            "iter-env-free-filter",
            "iter(%p @ pi2, $f . pi2)",
            "iterate(%p, $f) . pi2",
        ),
        Rule::func("e140", "flat-empty", "flat . Kf({})", "Kf({})"),
        // --- conditional decompositions ---
        Rule::func(
            "e151",
            "cond-and-split",
            "con(%p & %q, $f, $g)",
            "con(%p, con(%q, $f, $g), $g)",
        ),
        Rule::func(
            "e152",
            "cond-or-split",
            "con(%p | %q, $f, $g)",
            "con(%p, $f, con(%q, $f, $g))",
        ),
        // --- query-level applications and filters ---
        Rule::query("e154", "const-pred-apply", "(%p @ Kf(^k)) ? ^x", "%p ? ^k").one_way(),
        Rule::query(
            "e162",
            "flat-over-union",
            "flat ! (^A union ^B)",
            "(flat ! ^A) union (flat ! ^B)",
        ),
        Rule::query(
            "e163",
            "filter-fusion-applied",
            "iterate(%p, id) ! iterate(%q, id) ! ^A",
            "iterate(%q & %p, id) ! ^A",
        ),
        Rule::query(
            "e164",
            "filter-intersect-commute",
            "iterate(%p, id) ! (^A intersect ^B)",
            "(iterate(%p, id) ! ^A) intersect ^B",
        ),
        Rule::query(
            "e165",
            "filter-diff-commute",
            "iterate(%p, id) ! (^A diff ^B)",
            "(iterate(%p, id) ! ^A) diff ^B",
        ),
        // --- boolean algebra of sets ---
        Rule::query(
            "e170",
            "diff-over-union",
            "^A diff (^B union ^C)",
            "(^A diff ^B) intersect (^A diff ^C)",
        ),
        Rule::query(
            "e171",
            "diff-over-intersect",
            "^A diff (^B intersect ^C)",
            "(^A diff ^B) union (^A diff ^C)",
        ),
        Rule::query(
            "e172",
            "intersect-over-union",
            "^A intersect (^B union ^C)",
            "(^A intersect ^B) union (^A intersect ^C)",
        ),
        Rule::query(
            "e173",
            "absorption-union",
            "^A union (^A intersect ^B)",
            "^A",
        ),
        Rule::query(
            "e174",
            "absorption-intersect",
            "^A intersect (^A union ^B)",
            "^A",
        ),
        Rule::query(
            "e175",
            "union-then-diff",
            "(^A union ^B) diff ^B",
            "^A diff ^B",
        ),
        Rule::query("e176", "union-empty-left", "{} union ^A", "^A"),
        Rule::query("e177", "union-empty-right", "^A union {}", "^A"),
        Rule::query("e178", "intersect-empty", "{} intersect ^A", "{}").one_way(),
        Rule::query("e179", "diff-empty", "^A diff {}", "^A"),
        // --- comparison algebra (integers) ---
        Rule::pred("e180", "lt-or-eq", "lt | eq", "leq"),
        Rule::pred("e181", "gt-or-eq", "gt | eq", "geq"),
        Rule::pred("e182", "not-lt", "~lt", "geq"),
        Rule::pred("e183", "not-gt", "~gt", "leq"),
        Rule::pred("e184", "not-leq", "~leq", "gt"),
        Rule::pred("e185", "not-geq", "~geq", "lt"),
        Rule::pred("e186", "lt-and-gt", "lt & gt", "Kp(F)"),
        Rule::pred("e187", "leq-and-geq", "leq & geq", "eq"),
    ]);
    // --- swap / symmetry laws ---
    v.extend(vec![
        Rule::func("e200", "swap-involution", "(pi2, pi1) . (pi2, pi1)", "id"),
        Rule::func(
            "e201",
            "swap-product-commute",
            "(pi2, pi1) . ($f * $g)",
            "($g * $f) . (pi2, pi1)",
        ),
        Rule::pred("e202", "eq-symmetric", "eq @ (pi2, pi1)", "eq"),
        Rule::pred("e203", "converse-via-swap", "inv(%p) @ (pi2, pi1)", "%p"),
        Rule::func(
            "e204",
            "map-over-sunion",
            "iterate(%p, $f) . sunion",
            "sunion . (iterate(%p, $f) * iterate(%p, $f))",
        ),
        Rule::func(
            "e205",
            "conjunct-split",
            "iterate(%p & %q, $f)",
            "iterate(%p, $f) . iterate(%q, id)",
        ),
        Rule::func(
            "e208",
            "unnest-of-pairing",
            "unnest(pi1, pi2) . iterate(Kp(T), ($f, $g))",
            "unnest($f, $g)",
        ),
        Rule::query(
            "e210",
            "nest-of-empty",
            "nest(pi1, pi2) ! [{}, ^B]",
            "iterate(Kp(T), (id, Kf({}))) ! ^B",
        ),
        Rule::func(
            "e211",
            "bag-union-roundtrip",
            "dedup . bunion . (bagify * bagify)",
            "sunion",
        ),
        Rule::pred("e212", "geq-and-leq", "geq & leq", "eq"),
        Rule::pred("e213", "lt-or-gt", "lt | gt", "~eq"),
    ]);
    // --- bag laws (§6 extension): deferring duplicate elimination ---
    v.extend(vec![
        Rule::func("b1", "dedup-bagify", "dedup . bagify", "id"),
        Rule::func(
            "b2",
            "bag-roundtrip-iterate",
            "dedup . biterate(%p, $f) . bagify",
            "iterate(%p, $f)",
        ),
        Rule::func(
            "b3",
            "biterate-over-bunion",
            "biterate(%p, $f) . bunion",
            "bunion . (biterate(%p, $f) * biterate(%p, $f))",
        ),
        Rule::func(
            "b4",
            "dedup-over-bunion",
            "dedup . bunion",
            "sunion . (dedup * dedup)",
        ),
        Rule::func("b5", "biterate-id", "biterate(Kp(T), id)", "id"),
        Rule::func(
            "b6",
            "biterate-fusion",
            "biterate(%p, $f) . biterate(%q, $g)",
            "biterate(%q & %p @ $g, $f . $g)",
        ),
        // The paper's §6 example: duplicate elimination deferred past a
        // union — produce bags as intermediate results, dedup once at the
        // end instead of once per input.
        Rule::query(
            "b7",
            "defer-dedup-past-union",
            "iterate(%p, $f) ! (^A union ^B)",
            "dedup ! bunion ! \
             [biterate(%p, $f) ! bagify ! ^A, biterate(%p, $f) ! bagify ! ^B]",
        ),
        Rule::func(
            "b8",
            "bag-flatten-support",
            "dedup . bflat . bagify . iterate(Kp(T), bagify)",
            "flat",
        ),
    ]);
    // Semantics-unfolding bridges (definitions of formers as compositions).
    v.extend(vec![
        Rule::query("e120", "const-apply", "Kf(^k) ! ^x", "^k").one_way(),
        Rule::query("e121", "id-apply", "id ! ^x", "^x"),
        Rule::query(
            "e122",
            "pairing-apply",
            "($f, $g) ! ^x",
            "[$f ! ^x, $g ! ^x]",
        ),
        Rule::query(
            "e123",
            "times-apply",
            "($f * $g) ! [^x, ^y]",
            "[$f ! ^x, $g ! ^y]",
        ),
        Rule::query("e124", "pi1-apply", "pi1 ! [^x, ^y]", "^x"),
        Rule::query("e125", "pi2-apply", "pi2 ! [^x, ^y]", "^y"),
    ]);
    v
}

/// The canonical cleanup rule set used between hidden-join steps:
/// identity/projection elimination and constant-predicate simplification.
pub fn cleanup_ids() -> Vec<&'static str> {
    vec![
        "1", "2", "3", "4", "4a", "5", "6", "8", "9", "10", "e32", "e6", "e3",
    ]
}

/// New identities beyond the paper's figures and the first extended pool:
/// Boolean algebra over predicates (contradiction, excluded middle,
/// absorption, totality of the comparison order), set algebra over queries
/// (associativity, distributivity, difference laws), and aggregate-style
/// function laws over the set combinators (`sunion`/`sinter`/`sdiff` units,
/// empty-source collapse). Ids are prefixed `n`.
pub fn nfamily() -> Vec<Rule> {
    vec![
        // --- Boolean / predicate identities ---
        Rule::pred("n1", "and-contradiction", "%p & ~%p", "Kp(F)"),
        Rule::pred("n2", "or-excluded-middle", "%p | ~%p", "Kp(T)"),
        Rule::pred("n3", "and-absorb-idem", "%p & (%p & %q)", "%p & %q"),
        Rule::pred("n4", "or-absorb-idem", "%p | (%p | %q)", "%p | %q"),
        Rule::pred("n5", "case-split", "(%p & %q) | (%p & ~%q)", "%p"),
        Rule::pred("n6", "conv-const-true", "inv(Kp(T))", "Kp(T)"),
        Rule::pred("n7", "conv-const-false", "inv(Kp(F))", "Kp(F)"),
        Rule::pred("n8", "eq-lt-disjoint", "eq & lt", "Kp(F)"),
        Rule::pred("n9", "eq-gt-disjoint", "eq & gt", "Kp(F)"),
        Rule::pred("n10", "leq-geq-total", "leq | geq", "Kp(T)"),
        Rule::pred("n11", "lt-geq-total", "lt | geq", "Kp(T)"),
        Rule::pred("n12", "gt-leq-total", "gt | leq", "Kp(T)"),
        Rule::pred("n13", "and-absorb-or", "%p & (%p | %q)", "%p"),
        Rule::pred("n14", "or-absorb-and", "%p | (%p & %q)", "%p"),
        // --- set algebra (query level) ---
        Rule::query(
            "n20",
            "intersect-assoc",
            "(^A intersect ^B) intersect ^C",
            "^A intersect (^B intersect ^C)",
        ),
        Rule::query(
            "n21",
            "partition",
            "(^A intersect ^B) union (^A diff ^B)",
            "^A",
        ),
        Rule::query(
            "n22",
            "diff-diff",
            "(^A diff ^B) diff ^C",
            "^A diff (^B union ^C)",
        ),
        Rule::query(
            "n23",
            "diff-roundtrip",
            "^A diff (^A diff ^B)",
            "^A intersect ^B",
        ),
        Rule::query(
            "n24",
            "intersect-diff-assoc",
            "^A intersect (^B diff ^C)",
            "(^A intersect ^B) diff ^C",
        ),
        Rule::query(
            "n25",
            "union-intersect-distrib",
            "^A union (^B intersect ^C)",
            "(^A union ^B) intersect (^A union ^C)",
        ),
        Rule::query(
            "n26",
            "intersect-union-distrib",
            "^A intersect (^B union ^C)",
            "(^A intersect ^B) union (^A intersect ^C)",
        ),
        // --- aggregate-style function laws ---
        Rule::func("n30", "swap-pairing", "(pi2, pi1) . ($f, $g)", "($g, $f)"),
        Rule::func("n31", "sunion-empty-left", "sunion . (Kf({}), id)", "id"),
        Rule::func("n32", "sunion-empty-right", "sunion . (id, Kf({}))", "id"),
        Rule::func("n33", "sdiff-empty-right", "sdiff . (id, Kf({}))", "id"),
        Rule::func("n34", "sunion-self", "sunion . (id, id)", "id"),
        Rule::func("n35", "sinter-self", "sinter . (id, id)", "id"),
        Rule::func("n36", "sdiff-self", "sdiff . (id, id)", "Kf({})"),
        Rule::func(
            "n37",
            "iterate-empty-source",
            "iterate(%p, $f) . Kf({})",
            "Kf({})",
        ),
    ]
}

/// Rules excluded from closure generation because the closed form is
/// ill-typed: `union` forces both operands to be sets, but these rules'
/// sides are pair-valued (`e122`, `e123`) or Boolean-valued (`e154`).
const CLOSURE_SKIP: &[&str] = &["e122", "e123", "e154"];

/// Systematic context closure of a verified pool: embed each equivalence
/// `L == R` into every discriminating one-hole context the algebra offers.
/// If `L == R` holds, so does `C[L] == C[R]` for any context `C` — so every
/// generated rule is sound by congruence, and each is still independently
/// machine-verified by `kola-verify` like any handwritten rule.
///
/// Families (suffix appended to the base id):
///
/// - function rules: `pw` pair-with `(L, $zz) == (R, $zz)`, `ap` application
///   `L ! ^zx == R ! ^zx`, `cd` conditional branch
///   `con(%zp, L, $zz) == con(%zp, R, $zz)`;
/// - predicate rules: `op` precomposition `L @ $zz == R @ $zz`, `nt`
///   negation `~L == ~R`, `ts` test `L ? ^zx == R ? ^zx`;
/// - query rules: `un` union `L union ^zq == R union ^zq`.
///
/// Every family wraps the base pattern under a *concrete* head constructor,
/// so the discrimination tree keeps telling the closure apart from
/// unrelated probes after one or two edges — per-step match cost stays flat
/// as the pool grows (the benchmark gate in `kola-bench`). The one closure
/// family deliberately *not* generated is right-composition
/// `L . $zz == R . $zz`: its first chain segment is identical to the base
/// rule's, so it would shadow the base rule in every index bucket, never
/// fire (the base rule's prefix match wins at a lower position), and double
/// the failed-match work at every composition node.
///
/// Preconditioned rules are skipped (the closure would need to re-prove the
/// precondition about a subterm of the new pattern), as are the ill-typed
/// combinations in [`CLOSURE_SKIP`]. One-way rules produce one-way closures.
pub fn closures(base: &[Rule]) -> Vec<Rule> {
    let fresh_f = || Box::new(PFunc::Var("zz".into()));
    let fresh_p = || Box::new(PPred::Var("zp".into()));
    let fresh_q = || Box::new(PQuery::Var("zq".into()));
    let fresh_x = || Box::new(PQuery::Var("zx".into()));
    let mut out = Vec::new();
    for r in base {
        if !r.preconditions.is_empty() || CLOSURE_SKIP.contains(&r.id.as_str()) {
            continue;
        }
        match &r.alts[0] {
            RewritePair::F(..) => {
                close(&mut out, r, "pw", "pair-with", |a| {
                    let RewritePair::F(l, r) = a else {
                        unreachable!()
                    };
                    RewritePair::F(
                        PFunc::PairWith(Box::new(l.clone()), fresh_f()),
                        PFunc::PairWith(Box::new(r.clone()), fresh_f()),
                    )
                });
                close(&mut out, r, "ap", "applied", |a| {
                    let RewritePair::F(l, r) = a else {
                        unreachable!()
                    };
                    RewritePair::Q(
                        PQuery::App(l.clone(), fresh_x()),
                        PQuery::App(r.clone(), fresh_x()),
                    )
                });
                close(&mut out, r, "cd", "cond-branch", |a| {
                    let RewritePair::F(l, r) = a else {
                        unreachable!()
                    };
                    RewritePair::F(
                        PFunc::Cond(fresh_p(), Box::new(l.clone()), fresh_f()),
                        PFunc::Cond(fresh_p(), Box::new(r.clone()), fresh_f()),
                    )
                });
            }
            RewritePair::P(..) => {
                close(&mut out, r, "op", "oplus", |a| {
                    let RewritePair::P(l, r) = a else {
                        unreachable!()
                    };
                    RewritePair::P(
                        PPred::Oplus(Box::new(l.clone()), fresh_f()),
                        PPred::Oplus(Box::new(r.clone()), fresh_f()),
                    )
                });
                close(&mut out, r, "nt", "negated", |a| {
                    let RewritePair::P(l, r) = a else {
                        unreachable!()
                    };
                    RewritePair::P(
                        PPred::Not(Box::new(l.clone())),
                        PPred::Not(Box::new(r.clone())),
                    )
                });
                close(&mut out, r, "ts", "tested", |a| {
                    let RewritePair::P(l, r) = a else {
                        unreachable!()
                    };
                    RewritePair::Q(
                        PQuery::Test(l.clone(), fresh_x()),
                        PQuery::Test(r.clone(), fresh_x()),
                    )
                });
            }
            RewritePair::Q(..) => {
                close(&mut out, r, "un", "unioned", |a| {
                    let RewritePair::Q(l, r) = a else {
                        unreachable!()
                    };
                    RewritePair::Q(
                        PQuery::Union(Box::new(l.clone()), fresh_q()),
                        PQuery::Union(Box::new(r.clone()), fresh_q()),
                    )
                });
            }
        }
    }
    out
}

/// Build one closure rule by mapping `map` over every alternative of `r`.
fn close(
    out: &mut Vec<Rule>,
    r: &Rule,
    suffix: &str,
    name: &str,
    map: impl Fn(&RewritePair) -> RewritePair,
) {
    out.push(Rule {
        id: format!("{}{}", r.id, suffix),
        name: format!("{}-{}", r.name, name),
        alts: r.alts.iter().map(&map).collect(),
        preconditions: Vec::new(),
        bidirectional: r.bidirectional,
        source: RuleSource::Closure,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_catalog_builds() {
        let c = Catalog::paper();
        assert!(c.len() >= 80, "expected a large pool, got {}", c.len());
        assert!(c.get("11").is_some());
        assert!(c.get("24").is_some());
        assert!(c.get("app").is_some());
        assert!(c.get("e100").is_some());
        assert!(c.get("nope").is_none());
    }

    #[test]
    fn resolve_directions() {
        let c = Catalog::paper();
        let (r, d) = c.resolve("12-1");
        assert_eq!(r.id, "12");
        assert_eq!(d, Direction::Backward);
        let (r, d) = c.resolve("11");
        assert_eq!(r.id, "11");
        assert_eq!(d, Direction::Forward);
    }

    #[test]
    fn sources_tagged() {
        let c = Catalog::paper();
        assert_eq!(c.get("11").unwrap().source, RuleSource::Figure5);
        assert_eq!(c.get("20").unwrap().source, RuleSource::Figure8);
        assert_eq!(c.get("app").unwrap().source, RuleSource::Structural);
        assert_eq!(c.get("e30").unwrap().source, RuleSource::Extended);
    }

    #[test]
    #[should_panic]
    fn duplicate_ids_rejected() {
        let mut c = Catalog::new();
        c.add(Rule::func("x", "a", "id", "id . id"));
        c.add(Rule::func("x", "b", "id", "id . id"));
    }

    #[test]
    fn cleanup_ids_all_exist() {
        let c = Catalog::paper();
        for id in cleanup_ids() {
            assert!(c.get(id).is_some(), "missing cleanup rule {id}");
        }
    }
}
