//! Discrimination-tree (path-indexed) rule dispatch over interned terms.
//!
//! The head-symbol index ([`crate::catalog::HeadIndex`]) discriminates one
//! constructor deep: a node's root tag plus its first child's tag pick a
//! bucket, and everything in the bucket is tried. That is the degenerate
//! depth-1 form of a *discrimination tree* — the classic term-indexing
//! structure (Stickel/McCune) this module implements in full: every oriented
//! rule head is serialized into its **preorder constructor walk** (one
//! [`Edge::Sym`] per concrete constructor, one [`Edge::Star`] per
//! metavariable, which stands for a whole subtree) and inserted into a trie.
//! Candidate selection at a redex is then a single walk of the interned
//! term's own preorder against the trie, following `Sym` edges where tags
//! agree and `Star` edges always (popping the whole subtree), collecting
//! rule positions at accepting nodes.
//!
//! ## Exactness contract
//!
//! The walk returns a **superset** of the rules whose head can match the
//! node, in **ascending rule position** (candidates are sorted, so "first
//! matching rule in list order" is preserved bit-for-bit). Sources of
//! over-approximation, all deliberate:
//!
//! * payloads are not discriminated — `Prim("age")` and `Prim("addr")` share
//!   the `Sym(FPrim)` edge (tag-only edges keep the alphabet small);
//! * walks longer than [`MAX_WALK`] edges are truncated, accepting early
//!   (deep patterns admit a few extra candidates instead of growing the
//!   trie without bound);
//! * at the function level only the **first chain segment** of the pattern
//!   is indexed, mirroring [`crate::matching::match_func_prefix`], which
//!   commits on the first segment before examining the window's tail.
//!
//! Under-approximation is impossible by construction: every edge the walk
//! refuses corresponds to a constructor disagreement that would also make
//! [`crate::imatch`]'s structural matcher fail.
//!
//! ## Quarantine pruning
//!
//! Mid-run quarantine must reach the index, not just the linear scan. The
//! head-symbol index handled this by deleting bucket entries and rebuilding
//! the whole index before the next run. Here removal is **journaled**:
//! [`RuleIndex::remove`] deletes the rule's accept entries (O(pattern
//! depth) — the sites map knows exactly which nodes hold them) and records
//! each deletion; [`RuleIndex::restore`] replays the journal in reverse,
//! putting every entry back at its original offset. A breaker trip therefore
//! costs a handful of `Vec::remove`s instead of an index rebuild, and the
//! next run starts from the full tree with two memmoves per evicted rule.

use crate::egraph::{ClassId, EGraph};
use crate::engine::Oriented;
use crate::matching::{pchain_segments, pfunc_tag, ppred_tag, pquery_tag};
use crate::rule::{Direction, RewritePair};
use kola::intern::{ITerm, Tag};
use kola::pattern::{PFunc, PPred, PQuery};

/// Truncation cap on a pattern's edge walk. Patterns longer than this accept
/// early (superset semantics); the deepest catalog head is well under it.
const MAX_WALK: usize = 32;

/// Node-visit budget for one e-graph trie walk ([`DTree::walk_eg`]). The
/// walk branches over every same-tagged e-node of a class, so pathological
/// graphs could explode; exhausting fuel truncates the walk (candidates
/// already collected stand — bounded completeness, never unsoundness,
/// since every candidate is still e-matched structurally).
const WALK_EG_FUEL: usize = 4_096;

/// Sentinel for "no node".
const NONE: u32 = u32::MAX;

/// One edge label of the trie: a concrete constructor or a metavariable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Edge {
    /// A metavariable: consumes one whole subtree of the term.
    Star,
    /// A concrete constructor: consumes one node, descends into its kids.
    Sym(Tag),
}

/// A trie node. Children are a small sorted-by-insertion linear-scan vec —
/// fanout is bounded by the tag alphabet and in practice tiny.
#[derive(Debug, Clone, Default)]
struct DNode {
    /// The `*` child, if any.
    star: u32,
    /// Concrete-constructor children.
    kids: Vec<(Tag, u32)>,
    /// Rule positions whose pattern walk ends here (ascending — patterns
    /// are inserted in rule-position order).
    accepts: Vec<usize>,
}

impl DNode {
    fn new() -> DNode {
        DNode {
            star: NONE,
            kids: Vec::new(),
            accepts: Vec::new(),
        }
    }

    fn kid(&self, tag: Tag) -> Option<u32> {
        self.kids.iter().find(|(t, _)| *t == tag).map(|(_, n)| *n)
    }
}

/// One level's trie (func, pred, or query), with node 0 the root.
#[derive(Debug, Clone)]
struct DTree {
    nodes: Vec<DNode>,
}

impl Default for DTree {
    fn default() -> Self {
        DTree {
            nodes: vec![DNode::new()],
        }
    }
}

impl DTree {
    /// Walk `edges` from the root, creating nodes as needed; returns the
    /// final node's index.
    fn insert_path(&mut self, edges: &[Edge]) -> u32 {
        let mut at = 0u32;
        for e in edges {
            let next = match e {
                Edge::Star => self.nodes[at as usize].star,
                Edge::Sym(t) => self.nodes[at as usize].kid(*t).unwrap_or(NONE),
            };
            at = if next != NONE {
                next
            } else {
                let fresh = self.nodes.len() as u32;
                self.nodes.push(DNode::new());
                match e {
                    Edge::Star => self.nodes[at as usize].star = fresh,
                    Edge::Sym(t) => self.nodes[at as usize].kids.push((*t, fresh)),
                }
                fresh
            };
        }
        at
    }

    /// Collect accepts along every trie path compatible with the term whose
    /// preorder remainder sits on `stack` (top = next subtree). Arriving at
    /// a node yields its accepts unconditionally: for full patterns the
    /// preorder serialization is prefix-free (arity is tag-determined), so
    /// arrival means the whole skeleton agreed; for truncated patterns
    /// arrival early is exactly the intended superset.
    fn walk(&self, at: u32, stack: &mut Vec<&ITerm>, out: &mut Vec<usize>) {
        let node = &self.nodes[at as usize];
        out.extend_from_slice(&node.accepts);
        let Some(&t) = stack.last() else { return };
        if node.star != NONE {
            stack.pop();
            self.walk(node.star, stack, out);
            stack.push(t);
        }
        if let Some(next) = node.kid(t.tag()) {
            stack.pop();
            let kids = t.kids();
            for k in kids.iter().rev() {
                stack.push(k);
            }
            self.walk(next, stack, out);
            for _ in kids {
                stack.pop();
            }
            stack.push(t);
        }
    }

    /// [`DTree::walk`] lifted to e-graph classes: the stack holds class ids
    /// (top = next subtree), a `Star` edge consumes one class, and a `Sym`
    /// edge tries **every** e-node of the top class with that tag,
    /// descending into its kid classes. This is what makes candidate
    /// selection complete over class *membership* rather than one
    /// representative per class: a cheap `iterate` extraction can hide a
    /// `∘` member (or a `×` hide a pair), and only the class walk sees
    /// both. Each recursive call advances one trie edge, so cyclic classes
    /// terminate — depth is bounded by the trie, not the graph.
    fn walk_eg(
        &self,
        at: u32,
        eg: &EGraph,
        stack: &mut Vec<ClassId>,
        out: &mut Vec<usize>,
        fuel: &mut usize,
    ) {
        if *fuel == 0 {
            return;
        }
        *fuel -= 1;
        let node = &self.nodes[at as usize];
        out.extend_from_slice(&node.accepts);
        let Some(&c) = stack.last() else { return };
        if node.star != NONE {
            stack.pop();
            self.walk_eg(node.star, eg, stack, out, fuel);
            stack.push(c);
        }
        if node.kids.is_empty() {
            return;
        }
        let depth = stack.len();
        for en in eg.nodes(eg.find(c)) {
            if let Some(next) = node.kid(en.tag) {
                stack.pop();
                for &k in en.kids.iter().rev() {
                    stack.push(k);
                }
                self.walk_eg(next, eg, stack, out, fuel);
                stack.truncate(depth - 1);
                stack.push(c);
            }
        }
    }

    /// Nodes reachable from `at`, accept entries among them, and max depth.
    fn subtree_stats(&self, at: u32, depth: usize, acc: &mut (usize, usize, usize)) {
        let node = &self.nodes[at as usize];
        acc.0 += 1;
        acc.1 += node.accepts.len();
        acc.2 = acc.2.max(depth);
        if node.star != NONE {
            self.subtree_stats(node.star, depth + 1, acc);
        }
        for (_, n) in &node.kids {
            self.subtree_stats(*n, depth + 1, acc);
        }
    }
}

/// Which level's tree an accept entry lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LevelTag {
    F,
    P,
    Q,
}

/// A journaled accept removal: enough to reinsert the entry exactly where
/// it was.
#[derive(Debug, Clone)]
struct Removed {
    level: LevelTag,
    node: u32,
    offset: usize,
    pos: usize,
}

/// Discrimination-tree index over an oriented rule list (see module docs).
///
/// This is the engine's default dispatch structure; the depth-1
/// [`crate::catalog::HeadIndex`] it replaces is kept as a differential
/// oracle. The public name `RuleIndex` is preserved so downstream callers
/// ([`crate::fast::Engine`], kola-service snapshots) follow the upgrade
/// without renaming.
#[derive(Debug, Clone, Default)]
pub struct RuleIndex {
    func: DTree,
    pred: DTree,
    query: DTree,
    ids: Vec<String>,
    /// Per rule position: the accept sites `(level, node)` holding it —
    /// what makes [`RuleIndex::remove`] O(pattern depth).
    sites: Vec<Vec<(LevelTag, u32)>>,
    /// Reverse-order journal of removals since the last [`RuleIndex::restore`].
    journal: Vec<Removed>,
}

impl RuleIndex {
    /// Build the index for `rules` (positions refer to this slice).
    /// Backward orientations of one-way rules are unreachable and are not
    /// indexed, exactly as the head-symbol index skips them.
    pub fn build(rules: &[Oriented]) -> RuleIndex {
        let mut ix = RuleIndex::default();
        for (pos, o) in rules.iter().enumerate() {
            ix.ids.push(o.rule.id.clone());
            ix.sites.push(Vec::new());
            if o.dir == Direction::Backward && !o.rule.bidirectional {
                continue;
            }
            for alt in &o.rule.alts {
                let (level, tree, edges) = match alt {
                    RewritePair::F(l, r) => {
                        let head = if o.dir == Direction::Forward { l } else { r };
                        (LevelTag::F, &mut ix.func, func_edges(head))
                    }
                    RewritePair::P(l, r) => {
                        let head = if o.dir == Direction::Forward { l } else { r };
                        (LevelTag::P, &mut ix.pred, pred_edges(head))
                    }
                    RewritePair::Q(l, r) => {
                        let head = if o.dir == Direction::Forward { l } else { r };
                        (LevelTag::Q, &mut ix.query, query_edges(head))
                    }
                };
                let node = tree.insert_path(&edges);
                let accepts = &mut tree.nodes[node as usize].accepts;
                // A rule's alternatives are processed consecutively; two
                // alts with the same skeleton would double-insert.
                if accepts.last() != Some(&pos) {
                    accepts.push(pos);
                    ix.sites[pos].push((level, node));
                }
            }
        }
        ix
    }

    fn tree(&self, level: LevelTag) -> &DTree {
        match level {
            LevelTag::F => &self.func,
            LevelTag::P => &self.pred,
            LevelTag::Q => &self.query,
        }
    }

    fn tree_mut(&mut self, level: LevelTag) -> &mut DTree {
        match level {
            LevelTag::F => &mut self.func,
            LevelTag::P => &mut self.pred,
            LevelTag::Q => &mut self.query,
        }
    }

    /// Remove every accept entry for `rule_id` (all positions carrying that
    /// id), journaling each deletion for [`RuleIndex::restore`]. Cost is
    /// O(accept sites) = O(pattern depth), not O(index).
    pub fn remove(&mut self, rule_id: &str) {
        for pos in 0..self.ids.len() {
            if self.ids[pos] != rule_id {
                continue;
            }
            let sites = std::mem::take(&mut self.sites[pos]);
            for &(level, node) in &sites {
                let accepts = &mut self.tree_mut(level).nodes[node as usize].accepts;
                if let Some(offset) = accepts.iter().position(|&p| p == pos) {
                    accepts.remove(offset);
                    self.journal.push(Removed {
                        level,
                        node,
                        offset,
                        pos,
                    });
                }
            }
            self.sites[pos] = sites;
        }
    }

    /// Undo every removal since the last restore, in reverse order, putting
    /// each accept entry back at its original offset. Quarantine is per-run
    /// state: the engine calls this at the start of the next run instead of
    /// rebuilding the index.
    pub fn restore(&mut self) {
        while let Some(r) = self.journal.pop() {
            let accepts = &mut self.tree_mut(r.level).nodes[r.node as usize].accepts;
            accepts.insert(r.offset, r.pos);
        }
    }

    /// True iff a restore-pending removal journal is nonempty.
    pub fn has_pending_removals(&self) -> bool {
        !self.journal.is_empty()
    }

    /// True iff any accept entry for `rule_id` is still present.
    pub fn contains(&self, rule_id: &str) -> bool {
        (0..self.ids.len())
            .filter(|&pos| self.ids[pos] == rule_id)
            .any(|pos| {
                self.sites[pos].iter().any(|&(level, node)| {
                    self.tree(level).nodes[node as usize].accepts.contains(&pos)
                })
            })
    }

    /// Candidate rule positions for a function node, ascending. The walk
    /// starts at the chain's first segment — what the prefix matcher
    /// commits on — mirroring the pattern side.
    pub fn func_candidates(&self, t: &ITerm, out: &mut Vec<usize>) {
        let mut seg = t;
        while seg.tag() == Tag::FCompose {
            seg = &seg.kids()[0];
        }
        self.candidates(&self.func, seg, out);
    }

    /// Candidate rule positions for a predicate node, ascending.
    pub fn pred_candidates(&self, t: &ITerm, out: &mut Vec<usize>) {
        self.candidates(&self.pred, t, out);
    }

    /// Candidate rule positions for a query node, ascending.
    pub fn query_candidates(&self, t: &ITerm, out: &mut Vec<usize>) {
        self.candidates(&self.query, t, out);
    }

    fn candidates(&self, tree: &DTree, t: &ITerm, out: &mut Vec<usize>) {
        out.clear();
        let mut stack = vec![t];
        tree.walk(0, &mut stack, out);
        out.sort_unstable();
        out.dedup();
    }

    /// Candidate rule positions for a function-level e-class, ascending.
    /// Function patterns index their first chain segment, so the walk runs
    /// once per *segment head*: every class reachable from `c` by following
    /// `∘` e-nodes' left kids (cycle-guarded) that owns at least one
    /// non-`∘` member. This mirrors [`RuleIndex::func_candidates`]'s
    /// leading-compose strip, generalized to all members of the class.
    pub fn func_candidates_class(&self, eg: &EGraph, c: ClassId, out: &mut Vec<usize>) {
        out.clear();
        let mut heads: Vec<ClassId> = Vec::new();
        let mut seen: Vec<ClassId> = Vec::new();
        let mut work = vec![eg.find(c)];
        while let Some(h) = work.pop() {
            if seen.contains(&h) {
                continue;
            }
            seen.push(h);
            let mut plain = false;
            for en in eg.nodes(h) {
                if en.tag == Tag::FCompose {
                    work.push(eg.find(en.kids[0]));
                } else {
                    plain = true;
                }
            }
            if plain {
                heads.push(h);
            }
        }
        heads.sort_unstable();
        let mut fuel = WALK_EG_FUEL;
        for h in heads {
            let mut stack = vec![h];
            self.func.walk_eg(0, eg, &mut stack, out, &mut fuel);
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Candidate rule positions for a predicate-level e-class, ascending.
    pub fn pred_candidates_class(&self, eg: &EGraph, c: ClassId, out: &mut Vec<usize>) {
        self.candidates_class(&self.pred, eg, c, out);
    }

    /// Candidate rule positions for a query-level e-class, ascending.
    pub fn query_candidates_class(&self, eg: &EGraph, c: ClassId, out: &mut Vec<usize>) {
        self.candidates_class(&self.query, eg, c, out);
    }

    fn candidates_class(&self, tree: &DTree, eg: &EGraph, c: ClassId, out: &mut Vec<usize>) {
        out.clear();
        let mut stack = vec![eg.find(c)];
        let mut fuel = WALK_EG_FUEL;
        tree.walk_eg(0, eg, &mut stack, out, &mut fuel);
        out.sort_unstable();
        out.dedup();
    }

    /// Tree-shape summary for observability (see [`IndexStats`]).
    pub fn describe(&self) -> IndexStats {
        fn level(t: &DTree) -> (usize, usize, usize, usize, usize, usize) {
            let mut acc = (0usize, 0usize, 0usize);
            t.subtree_stats(0, 0, &mut acc);
            let (nodes, entries, max_depth) = acc;
            let root = &t.nodes[0];
            let edges: usize = t
                .nodes
                .iter()
                .map(|n| n.kids.len() + usize::from(n.star != NONE))
                .sum();
            let stars: usize = t.nodes.iter().map(|n| usize::from(n.star != NONE)).sum();
            let root_fanout = root.kids.len() + usize::from(root.star != NONE);
            (nodes, entries, max_depth, edges, stars, root_fanout)
        }
        let (fn_, fe, fd, fed, fs, fb) = level(&self.func);
        let (pn, pe, pd, ped, ps, pb) = level(&self.pred);
        let (qn, qe, qd, qed, qs, qb) = level(&self.query);
        let nodes = fn_ + pn + qn;
        let edges = fed + ped + qed;
        let interior = nodes.saturating_sub(
            [&self.func, &self.pred, &self.query]
                .iter()
                .flat_map(|t| t.nodes.iter())
                .filter(|n| n.kids.is_empty() && n.star == NONE)
                .count(),
        );
        IndexStats {
            func_buckets: fb,
            func_entries: fe,
            func_wildcard: wildcard_accepts(&self.func),
            pred_buckets: pb,
            pred_entries: pe,
            pred_wildcard: wildcard_accepts(&self.pred),
            query_buckets: qb,
            query_entries: qe,
            query_wildcard: wildcard_accepts(&self.query),
            tree_nodes: nodes,
            tree_max_depth: fd.max(pd).max(qd),
            tree_edges: edges,
            tree_wildcard_edges: fs + ps + qs,
            tree_mean_fanout_milli: (edges * 1000).checked_div(interior).unwrap_or(0),
        }
    }
}

/// Accept entries sitting in the root's `*` subtree — the rules every node
/// at that level must consider regardless of shape (the tree analogue of
/// the head index's wildcard bucket).
fn wildcard_accepts(t: &DTree) -> usize {
    let root = &t.nodes[0];
    if root.star == NONE {
        return 0;
    }
    let mut acc = (0usize, 0usize, 0usize);
    t.subtree_stats(root.star, 1, &mut acc);
    acc.1
}

/// Shape summary of a rule index (see [`RuleIndex::describe`] and
/// [`crate::catalog::HeadIndex::describe`]). The per-level
/// `{buckets,entries,wildcard}` triples predate the discrimination tree and
/// keep their meaning (for the tree: root fanout, accept entries, accepts
/// under the root `*` edge); the `tree_*` fields are zero for the
/// head-symbol index.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Distinct root-level choices at the function level.
    pub func_buckets: usize,
    /// Total indexed positions at the function level.
    pub func_entries: usize,
    /// Wildcard (metavariable-rooted) positions at the function level.
    pub func_wildcard: usize,
    /// Distinct root-level choices at the predicate level.
    pub pred_buckets: usize,
    /// Total indexed positions at the predicate level.
    pub pred_entries: usize,
    /// Wildcard positions at the predicate level.
    pub pred_wildcard: usize,
    /// Distinct root-level choices at the query level.
    pub query_buckets: usize,
    /// Total indexed positions at the query level.
    pub query_entries: usize,
    /// Wildcard positions at the query level.
    pub query_wildcard: usize,
    /// Total trie nodes across the three levels (0 for the head index).
    pub tree_nodes: usize,
    /// Deepest pattern walk in edges (0 for the head index).
    pub tree_max_depth: usize,
    /// Total trie edges across the three levels (0 for the head index).
    pub tree_edges: usize,
    /// Trie edges labelled `*` (0 for the head index).
    pub tree_wildcard_edges: usize,
    /// Mean fanout of interior nodes, in milli-edges (×1000, 0 for the
    /// head index). Integer so the struct stays `Eq`.
    pub tree_mean_fanout_milli: usize,
}

/// Preorder edge walk of a function head: the first chain segment only
/// (see module docs), truncated at [`MAX_WALK`].
fn func_edges(pat: &PFunc) -> Vec<Edge> {
    let first = pchain_segments(pat)[0];
    let mut out = Vec::new();
    emit_func(first, &mut out);
    out
}

fn pred_edges(pat: &PPred) -> Vec<Edge> {
    let mut out = Vec::new();
    emit_pred(pat, &mut out);
    out
}

fn query_edges(pat: &PQuery) -> Vec<Edge> {
    let mut out = Vec::new();
    emit_query(pat, &mut out);
    out
}

fn emit_func(p: &PFunc, out: &mut Vec<Edge>) {
    if out.len() >= MAX_WALK {
        return;
    }
    let Some(tag) = pfunc_tag(p) else {
        out.push(Edge::Star);
        return;
    };
    out.push(Edge::Sym(tag));
    // Children in the interner's kid order (constructor declaration order).
    match p {
        PFunc::Compose(a, b)
        | PFunc::PairWith(a, b)
        | PFunc::Times(a, b)
        | PFunc::Nest(a, b)
        | PFunc::Unnest(a, b) => {
            emit_func(a, out);
            emit_func(b, out);
        }
        PFunc::ConstF(q) => emit_query(q, out),
        PFunc::CurryF(f, q) => {
            emit_func(f, out);
            emit_query(q, out);
        }
        PFunc::Cond(c, f, g) => {
            emit_pred(c, out);
            emit_func(f, out);
            emit_func(g, out);
        }
        PFunc::Iterate(c, f) | PFunc::Iter(c, f) | PFunc::Join(c, f) | PFunc::BIterate(c, f) => {
            emit_pred(c, out);
            emit_func(f, out);
        }
        _ => {}
    }
}

fn emit_pred(p: &PPred, out: &mut Vec<Edge>) {
    if out.len() >= MAX_WALK {
        return;
    }
    let Some(tag) = ppred_tag(p) else {
        out.push(Edge::Star);
        return;
    };
    out.push(Edge::Sym(tag));
    match p {
        PPred::Oplus(a, f) => {
            emit_pred(a, out);
            emit_func(f, out);
        }
        PPred::And(a, b) | PPred::Or(a, b) => {
            emit_pred(a, out);
            emit_pred(b, out);
        }
        PPred::Not(a) | PPred::Conv(a) => emit_pred(a, out),
        PPred::CurryP(a, q) => {
            emit_pred(a, out);
            emit_query(q, out);
        }
        _ => {}
    }
}

fn emit_query(p: &PQuery, out: &mut Vec<Edge>) {
    if out.len() >= MAX_WALK {
        return;
    }
    let Some(tag) = pquery_tag(p) else {
        out.push(Edge::Star);
        return;
    };
    out.push(Edge::Sym(tag));
    match p {
        PQuery::PairQ(a, b)
        | PQuery::Union(a, b)
        | PQuery::Intersect(a, b)
        | PQuery::Diff(a, b) => {
            emit_query(a, out);
            emit_query(b, out);
        }
        PQuery::App(f, q) => {
            emit_func(f, out);
            emit_query(q, out);
        }
        PQuery::Test(c, q) => {
            emit_pred(c, out);
            emit_query(q, out);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, HeadIndex};
    use kola::intern::Interner;
    use kola::parse::{parse_func, parse_pred, parse_query};

    fn full_forward(c: &Catalog) -> Vec<Oriented<'_>> {
        c.rules().iter().map(Oriented::fwd).collect()
    }

    #[test]
    fn walk_is_superset_of_head_index_matches() {
        // Against every (term, level) probe below, the tree's candidate set
        // must contain every rule whose oriented head actually matches —
        // verified indirectly: each tree candidate set must contain the
        // rules the *head index* would try AND match. (Full behavioral
        // equality is pinned by the engine parity suites.)
        let catalog = Catalog::paper();
        let rules = full_forward(&catalog);
        let tree = RuleIndex::build(&rules);
        let head = HeadIndex::build(&rules);
        let mut it = Interner::new();

        let funcs = [
            "pi1 . (age, addr)",
            "id . age",
            "iterate(Kp(T), city) . iterate(Kp(T), addr)",
            "con(Kp(T), pi1, pi2) . age",
            "dedup . bagify",
            "(pi2, pi1) . (pi2, pi1)",
        ];
        let mut tout = Vec::new();
        let mut hout = Vec::new();
        for src in funcs {
            let t = it.intern_func(&parse_func(src).unwrap());
            tree.func_candidates(&t, &mut tout);
            let mut seg = &t;
            while seg.tag() == Tag::FCompose {
                seg = &seg.kids()[0];
            }
            head.func_candidates(seg.tag(), seg.kids().first().map(|k| k.tag()), &mut hout);
            for pos in &hout {
                let o = &rules[*pos];
                if o.rule
                    .try_apply_func(&parse_func(src).unwrap(), o.dir)
                    .ok()
                    .flatten()
                    .is_some()
                {
                    assert!(
                        tout.contains(pos),
                        "{src}: tree dropped matching rule {}",
                        o.rule.id
                    );
                }
            }
            assert!(tout.windows(2).all(|w| w[0] < w[1]), "{src}: not ascending");
        }

        let preds = ["Kp(T) & Kp(T)", "~~lt", "inv(gt)", "eq @ (pi2, pi1)"];
        for src in preds {
            let t = it.intern_pred(&parse_pred(src).unwrap());
            tree.pred_candidates(&t, &mut tout);
            head.pred_candidates(t.tag(), t.kids().first().map(|k| k.tag()), &mut hout);
            for pos in &hout {
                let o = &rules[*pos];
                if o.rule
                    .try_apply_pred(&parse_pred(src).unwrap(), o.dir)
                    .ok()
                    .flatten()
                    .is_some()
                {
                    assert!(tout.contains(pos), "{src}: tree dropped rule {}", o.rule.id);
                }
            }
        }

        let queries = ["P union P", "id ! P", "{} intersect P"];
        for src in queries {
            let t = it.intern_query(&parse_query(src).unwrap());
            tree.query_candidates(&t, &mut tout);
            head.query_candidates(t.tag(), t.kids().first().map(|k| k.tag()), &mut hout);
            for pos in &hout {
                let o = &rules[*pos];
                if o.rule
                    .try_apply_query(&parse_query(src).unwrap(), o.dir)
                    .ok()
                    .flatten()
                    .is_some()
                {
                    assert!(tout.contains(pos), "{src}: tree dropped rule {}", o.rule.id);
                }
            }
        }
    }

    #[test]
    fn tree_prunes_more_than_head_buckets() {
        // The point of the exercise: at a node whose head bucket is wide,
        // deeper discrimination must cut the candidate list.
        let catalog = Catalog::paper();
        let rules = full_forward(&catalog);
        let tree = RuleIndex::build(&rules);
        let head = HeadIndex::build(&rules);
        let mut it = Interner::new();
        // An iterate-headed chain: the head index lumps every
        // iterate-rooted rule into one bucket keyed (FIterate, PConstP).
        let t = it.intern_func(&parse_func("iterate(Kp(F), age) . flat").unwrap());
        let (mut tout, mut hout) = (Vec::new(), Vec::new());
        tree.func_candidates(&t, &mut tout);
        head.func_candidates(Tag::FIterate, Some(Tag::PConstP), &mut hout);
        assert!(
            tout.len() < hout.len(),
            "tree ({}) should discriminate deeper than head buckets ({})",
            tout.len(),
            hout.len()
        );
        for pos in &tout {
            assert!(hout.contains(pos), "tree invented candidate {pos}");
        }
    }

    #[test]
    fn remove_restore_roundtrip_is_exact() {
        let catalog = Catalog::paper();
        let rules = full_forward(&catalog);
        let mut ix = RuleIndex::build(&rules);
        let baseline = {
            let mut it = Interner::new();
            let t = it.intern_func(&parse_func("pi1 . (age, addr)").unwrap());
            let mut out = Vec::new();
            ix.func_candidates(&t, &mut out);
            out
        };
        assert!(ix.contains("9"));
        ix.remove("9");
        ix.remove("e1");
        assert!(!ix.contains("9"));
        assert!(!ix.contains("e1"));
        assert!(ix.has_pending_removals());
        {
            let mut it = Interner::new();
            let t = it.intern_func(&parse_func("pi1 . (age, addr)").unwrap());
            let mut out = Vec::new();
            ix.func_candidates(&t, &mut out);
            let pos9 = rules.iter().position(|o| o.rule.id == "9").unwrap();
            assert!(!out.contains(&pos9), "removed rule still a candidate");
        }
        ix.restore();
        assert!(!ix.has_pending_removals());
        assert!(ix.contains("9") && ix.contains("e1"));
        let mut it = Interner::new();
        let t = it.intern_func(&parse_func("pi1 . (age, addr)").unwrap());
        let mut out = Vec::new();
        ix.func_candidates(&t, &mut out);
        assert_eq!(out, baseline, "restore must reproduce the exact order");
    }

    #[test]
    fn describe_reports_tree_shape() {
        let catalog = Catalog::paper();
        let rules = full_forward(&catalog);
        let stats = RuleIndex::build(&rules).describe();
        assert!(stats.tree_nodes > 100, "got {} nodes", stats.tree_nodes);
        assert!(stats.tree_max_depth >= 4);
        assert!(stats.tree_edges >= stats.tree_nodes - 3);
        assert!(stats.tree_wildcard_edges > 0);
        assert!(stats.tree_mean_fanout_milli >= 1000);
        assert!(stats.func_entries > 0 && stats.pred_entries > 0 && stats.query_entries > 0);
    }
}
