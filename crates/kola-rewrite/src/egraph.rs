//! E-graph core: e-classes of interned KOLA terms under a union-find, with
//! hashcons-based congruence closure.
//!
//! An [`EGraph`] stores *e-nodes* — one constructor application whose
//! children are e-class ids instead of subterms — grouped into *e-classes*
//! of provably-equal terms. Registering a term ([`EGraph::add_term`]) walks
//! the hash-consed [`ITerm`] DAG bottom-up; asserting an equality
//! ([`EGraph::union`]) merges two classes; [`EGraph::rebuild`] restores the
//! two invariants every operation relies on:
//!
//! * **hashcons**: no two distinct classes contain the same canonical
//!   e-node, so structural lookup ([`EGraph::lookup`]) is exact;
//! * **congruence**: if the children of two e-nodes are pairwise equal and
//!   the constructors match, their classes are equal.
//!
//! Rebuilding is a full-sweep fixpoint (canonicalize + dedup every class,
//! merge congruent shapes, repeat until stable) rather than the
//! parent-worklist repair of large e-graph engines: the saturation budgets
//! in this repo keep graphs in the thousands of nodes, where the sweep's
//! simplicity — and its deterministic, sorted class contents — are worth
//! more than asymptotic finesse. Determinism is load-bearing: the
//! saturation driver ([`crate::saturate`]) iterates classes in id order and
//! nodes in sorted order, so two runs over the same input take identical
//! trajectories (pinned by `tests/egraph_invariants.rs`).
//!
//! Union-find roots are always the *smallest* id in their class, so
//! canonical ids are stable under merge order.

use kola::intern::{ITerm, Payload, Tag};
use std::collections::HashMap;

/// An e-class identifier. Plain index into the union-find.
pub type ClassId = u32;

/// One constructor application over e-classes: the term analogue of an
/// interned node with every child abstracted to its equivalence class.
/// `Ord` (via the derived lexicographic order) gives classes a canonical
/// node order, which the saturation driver's determinism relies on.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ENode {
    /// Constructor tag (same space as interned terms).
    pub tag: Tag,
    /// Non-child payload (`Prim` symbol, literal value, …).
    pub payload: Payload,
    /// Child e-classes, in constructor order.
    pub kids: Vec<ClassId>,
}

impl ENode {
    /// Leaf node helper.
    pub fn leaf(tag: Tag, payload: Payload) -> ENode {
        ENode {
            tag,
            payload,
            kids: Vec::new(),
        }
    }
}

/// One equivalence class: its e-nodes, kept sorted and deduplicated after
/// every [`EGraph::rebuild`].
#[derive(Debug, Default, Clone)]
pub struct EClass {
    /// The e-nodes whose canonical form lives in this class.
    pub nodes: Vec<ENode>,
}

/// The e-graph. See the module docs for the invariants; note that `add` /
/// `union` may leave the graph *dirty* — callers batch mutations and then
/// [`EGraph::rebuild`] once, which is the standard equality-saturation
/// rhythm (match phase → apply phase → rebuild).
#[derive(Debug, Default)]
pub struct EGraph {
    /// Union-find parents; `parent[i] == i` iff `i` is canonical.
    parent: Vec<ClassId>,
    /// Canonical e-node → canonical class. May be stale between a `union`
    /// and the next `rebuild`; reads canonicalize on the way in and out.
    memo: HashMap<ENode, ClassId>,
    /// Class storage, indexed by id; `None` for absorbed (non-root) ids.
    classes: Vec<Option<EClass>>,
    /// Total successful unions over the graph's lifetime.
    unions: u64,
    /// Bumped on every structural change (new class or union). The
    /// saturation driver snapshots this to detect a fixpoint.
    version: u64,
    /// True between a union and the rebuild that repairs it.
    dirty: bool,
}

impl EGraph {
    /// An empty e-graph.
    pub fn new() -> EGraph {
        EGraph::default()
    }

    /// Canonical representative of `c`.
    pub fn find(&self, mut c: ClassId) -> ClassId {
        while self.parent[c as usize] != c {
            c = self.parent[c as usize];
        }
        c
    }

    /// `node` with every child replaced by its canonical class.
    pub fn canonicalize(&self, node: &ENode) -> ENode {
        ENode {
            tag: node.tag,
            payload: node.payload.clone(),
            kids: node.kids.iter().map(|&k| self.find(k)).collect(),
        }
    }

    /// The class currently holding `node`'s shape, if any. Exact (not a
    /// heuristic) whenever the graph is clean.
    pub fn lookup(&self, node: &ENode) -> Option<ClassId> {
        let canon = self.canonicalize(node);
        self.memo.get(&canon).map(|&c| self.find(c))
    }

    /// Insert an e-node, returning its (possibly pre-existing) class.
    pub fn add(&mut self, node: ENode) -> ClassId {
        let canon = self.canonicalize(&node);
        if let Some(&c) = self.memo.get(&canon) {
            return self.find(c);
        }
        let id = self.parent.len() as ClassId;
        self.parent.push(id);
        self.classes.push(Some(EClass {
            nodes: vec![canon.clone()],
        }));
        self.memo.insert(canon, id);
        self.version += 1;
        id
    }

    /// Register a whole interned term bottom-up, sharing the DAG: each
    /// distinct interned node is added once per call.
    pub fn add_term(&mut self, t: &ITerm) -> ClassId {
        let mut seen: HashMap<usize, ClassId> = HashMap::new();
        self.add_term_rec(t, &mut seen)
    }

    fn add_term_rec(&mut self, t: &ITerm, seen: &mut HashMap<usize, ClassId>) -> ClassId {
        if let Some(&c) = seen.get(&t.id()) {
            return self.find(c);
        }
        let kids = t
            .kids()
            .iter()
            .map(|k| self.add_term_rec(k, seen))
            .collect();
        let c = self.add(ENode {
            tag: t.tag(),
            payload: t.payload().clone(),
            kids,
        });
        seen.insert(t.id(), c);
        c
    }

    /// Assert `a = b`. Returns the surviving canonical id; marks the graph
    /// dirty when the classes were distinct. The smaller id always wins, so
    /// canonical ids do not depend on merge order.
    pub fn union(&mut self, a: ClassId, b: ClassId) -> ClassId {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return ra;
        }
        let (keep, lose) = if ra < rb { (ra, rb) } else { (rb, ra) };
        let moved = self.classes[lose as usize]
            .take()
            .expect("absorbed class has storage");
        self.parent[lose as usize] = keep;
        self.classes[keep as usize]
            .as_mut()
            .expect("canonical class has storage")
            .nodes
            .extend(moved.nodes);
        self.unions += 1;
        self.version += 1;
        self.dirty = true;
        keep
    }

    /// Restore the hashcons and congruence invariants after a batch of
    /// `union`s: sweep every class (canonicalize, sort, dedup its nodes),
    /// merge any two classes sharing a canonical shape, and repeat until no
    /// merge fires. Also path-compresses the union-find.
    pub fn rebuild(&mut self) {
        loop {
            // Path-compress so the sweeps below pay O(1) per find.
            for i in 0..self.parent.len() {
                let root = self.find(i as ClassId);
                self.parent[i] = root;
            }
            let mut changed = false;
            let mut memo: HashMap<ENode, ClassId> = HashMap::new();
            for id in 0..self.parent.len() as ClassId {
                if self.parent[id as usize] != id {
                    continue;
                }
                let mut nodes = std::mem::take(
                    &mut self.classes[id as usize]
                        .as_mut()
                        .expect("canonical class has storage")
                        .nodes,
                );
                for n in &mut nodes {
                    *n = self.canonicalize(n);
                }
                nodes.sort();
                nodes.dedup();
                self.classes[id as usize]
                    .as_mut()
                    .expect("canonical class has storage")
                    .nodes = nodes;
            }
            for id in 0..self.parent.len() as ClassId {
                if self.parent[id as usize] != id {
                    continue;
                }
                let nodes = self.classes[id as usize]
                    .as_ref()
                    .expect("canonical class has storage")
                    .nodes
                    .clone();
                for n in nodes {
                    match memo.get(&n) {
                        None => {
                            memo.insert(n, id);
                        }
                        Some(&other) => {
                            let other = self.find(other);
                            let here = self.find(id);
                            if other != here {
                                // Congruent shapes in distinct classes:
                                // their parents made their kids equal.
                                self.union(other, here);
                                changed = true;
                            }
                        }
                    }
                }
            }
            self.memo = memo;
            if !changed {
                break;
            }
        }
        // Canonicalize memo values (unions during the last merge pass may
        // have absorbed some of them).
        let fixed: Vec<(ENode, ClassId)> = self
            .memo
            .iter()
            .map(|(n, &c)| (n.clone(), self.find(c)))
            .collect();
        self.memo = fixed.into_iter().collect();
        self.dirty = false;
    }

    /// Canonical class ids, ascending.
    pub fn class_ids(&self) -> impl Iterator<Item = ClassId> + '_ {
        (0..self.parent.len() as ClassId).filter(move |&id| self.parent[id as usize] == id)
    }

    /// The e-nodes of canonical class `c` (sorted when the graph is clean).
    pub fn nodes(&self, c: ClassId) -> &[ENode] {
        let c = self.find(c);
        self.classes[c as usize]
            .as_ref()
            .map(|cl| cl.nodes.as_slice())
            .unwrap_or(&[])
    }

    /// Number of canonical classes.
    pub fn num_classes(&self) -> usize {
        self.class_ids().count()
    }

    /// Total e-nodes across all canonical classes.
    pub fn num_nodes(&self) -> usize {
        self.class_ids().map(|c| self.nodes(c).len()).sum()
    }

    /// Total ids ever allocated (canonical or absorbed) — the bound array
    /// consumers (e.g. the extractor) index by.
    pub fn id_bound(&self) -> usize {
        self.parent.len()
    }

    /// Lifetime union count.
    pub fn unions(&self) -> u64 {
        self.unions
    }

    /// Structural-change counter (see field docs).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// True between a union and its repairing rebuild.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Check both invariants; returns a description of the first violation.
    /// Test-facing (property suite); O(total nodes).
    pub fn check_congruence(&self) -> Result<(), String> {
        if self.dirty {
            return Err("graph is dirty: rebuild() has not run".into());
        }
        let mut seen: HashMap<ENode, ClassId> = HashMap::new();
        for c in self.class_ids() {
            for n in self.nodes(c) {
                let canon = self.canonicalize(n);
                if let Some(&other) = seen.get(&canon) {
                    if self.find(other) != self.find(c) {
                        return Err(format!(
                            "congruence violation: {canon:?} in classes {} and {}",
                            self.find(other),
                            self.find(c)
                        ));
                    }
                }
                seen.insert(canon.clone(), c);
                match self.memo.get(&canon) {
                    Some(&m) if self.find(m) == self.find(c) => {}
                    Some(&m) => {
                        return Err(format!(
                            "hashcons points {canon:?} at class {} but it lives in {}",
                            self.find(m),
                            self.find(c)
                        ));
                    }
                    None => return Err(format!("hashcons is missing {canon:?}")),
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kola::intern::Interner;
    use kola::parse::parse_func;

    fn reg(eg: &mut EGraph, it: &mut Interner, src: &str) -> ClassId {
        let t = it.intern_func(&parse_func(src).unwrap().normalize());
        eg.add_term(&t)
    }

    #[test]
    fn add_term_is_hashconsed() {
        let mut it = Interner::new();
        let mut eg = EGraph::new();
        let a = reg(&mut eg, &mut it, "iterate(Kp(T), city . addr)");
        let b = reg(&mut eg, &mut it, "iterate(Kp(T), city . addr)");
        assert_eq!(a, b);
        assert_eq!(eg.num_classes(), eg.num_nodes());
    }

    #[test]
    fn union_then_rebuild_closes_congruence() {
        let mut it = Interner::new();
        let mut eg = EGraph::new();
        // f = a . b, g = c . b; assert a = c, so f and g become congruent.
        let a = reg(&mut eg, &mut it, "a");
        let c = reg(&mut eg, &mut it, "c");
        let f = reg(&mut eg, &mut it, "a . b");
        let g = reg(&mut eg, &mut it, "c . b");
        assert_ne!(eg.find(f), eg.find(g));
        eg.union(a, c);
        eg.rebuild();
        assert_eq!(eg.find(f), eg.find(g));
        eg.check_congruence().unwrap();
    }

    #[test]
    fn min_id_root_survives_any_merge_order() {
        let mut it = Interner::new();
        let mut eg = EGraph::new();
        let a = reg(&mut eg, &mut it, "a");
        let b = reg(&mut eg, &mut it, "b");
        let c = reg(&mut eg, &mut it, "c");
        eg.union(c, b);
        eg.union(b, a);
        eg.rebuild();
        assert_eq!(eg.find(c), a);
        assert_eq!(eg.find(b), a);
    }
}
