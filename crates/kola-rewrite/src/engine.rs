//! The rewrite engine: congruence traversal, rule application, tracing.
//!
//! One primitive does the work: [`rewrite_once`] applies the first rule (in
//! the given list, in the given orientations) that matches at the
//! leftmost-outermost position of a query — descending through query nodes,
//! the functions inside applications, the predicates inside formers, and the
//! payload queries inside `Kf`/`Cf`/`Cp`. Everything else (fixpoints,
//! step sequencing, the five-step hidden-join strategy, COKO blocks) is
//! built from it.

use crate::budget::{
    measure_query, Budget, CycleDetector, RewriteError, RewriteReport, StopReason,
};
use crate::fault::{FaultKind, FaultPlan};
use crate::props::PropDb;
use crate::rule::{Direction, Precondition, Rule};
use crate::subst::Subst;
use kola::term::{Func, Pred, Query};
use std::fmt;

/// A rule together with the orientation in which to try it.
#[derive(Clone, Copy)]
pub struct Oriented<'a> {
    /// The rule.
    pub rule: &'a Rule,
    /// Orientation (forward = printed left-to-right).
    pub dir: Direction,
}

impl<'a> Oriented<'a> {
    /// Forward orientation.
    pub fn fwd(rule: &'a Rule) -> Self {
        Oriented {
            rule,
            dir: Direction::Forward,
        }
    }

    /// Backward orientation (`i⁻¹` in the paper).
    pub fn bwd(rule: &'a Rule) -> Self {
        Oriented {
            rule,
            dir: Direction::Backward,
        }
    }
}

/// One derivation step: which rule fired, which way, and the whole-query
/// result (so derivations can be printed exactly like Figures 4 and 6).
#[derive(Debug, Clone)]
pub struct Step {
    /// The id of the rule that fired (e.g. `"11"`).
    pub rule_id: String,
    /// Orientation it fired in.
    pub dir: Direction,
    /// The query after this step.
    pub after: Query,
}

impl Step {
    /// The paper's notation for the justification: `11` or `12-1`.
    pub fn justification(&self) -> String {
        match self.dir {
            Direction::Forward => self.rule_id.clone(),
            Direction::Backward => format!("{}-1", self.rule_id),
        }
    }
}

/// A full derivation: the start query and every step taken.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// The steps, in order.
    pub steps: Vec<Step>,
}

impl Trace {
    /// New empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// The rule-id justifications in order (e.g. `["11", "6", "5"]`).
    pub fn justifications(&self) -> Vec<String> {
        self.steps.iter().map(Step::justification).collect()
    }

    /// Flatten each step to `(rule_id, dir, after-fingerprint, after-size)`
    /// using a scratch interner. Fingerprints depend only on structure, so
    /// any interner yields the same values — which is what lets a recorded
    /// trace be compared against a replay that ran in a different arena.
    pub fn records(
        &self,
        scratch: &mut kola::intern::Interner,
    ) -> Vec<(String, Direction, u64, usize)> {
        self.steps
            .iter()
            .map(|s| {
                let t = scratch.intern_query(&s.after);
                (s.rule_id.clone(), s.dir, t.fp(), t.size())
            })
            .collect()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for step in &self.steps {
            writeln!(f, "  =[{}]=> {}", step.justification(), step.after)?;
        }
        Ok(())
    }
}

fn preconditions_hold(pre: &[Precondition], s: &Subst, props: &PropDb) -> bool {
    pre.iter().all(|p| match &p.subject {
        crate::props::PropTerm::FuncVar(name) => s
            .funcs
            .get(name)
            .map(|f| props.holds(p.prop, f))
            .unwrap_or(false),
    })
}

/// Mutable governance state threaded through a traversal: the depth cap,
/// the fault plan being consulted, the quarantine threshold, the current
/// derivation step (for step-selective faults), and the report that
/// accumulates failures.
pub(crate) struct Gov<'a> {
    pub(crate) max_depth: usize,
    pub(crate) quarantine_after: usize,
    pub(crate) step: usize,
    pub(crate) faults: &'a FaultPlan,
    pub(crate) report: &'a mut RewriteReport,
}

impl<'a> Gov<'a> {
    pub(crate) fn new(
        budget: &Budget,
        faults: &'a FaultPlan,
        report: &'a mut RewriteReport,
        step: usize,
    ) -> Gov<'a> {
        Gov {
            max_depth: budget.max_depth,
            quarantine_after: budget.quarantine_after,
            step,
            faults,
            report,
        }
    }

    /// True (and flags the report) iff depth `d` is out of budget.
    pub(crate) fn clip(&mut self, d: usize) -> bool {
        if d >= self.max_depth {
            self.report.depth_clipped = true;
            true
        } else {
            false
        }
    }

    pub(crate) fn record_failure(&mut self, rule_id: &str, e: &RewriteError) {
        self.report
            .record_failure(rule_id, e, self.quarantine_after, self.step);
    }
}

/// The fault injected against `rule` at the current step, if any, applied
/// to a successful result: `Fail` turns it into an error, `Oversize(n)`
/// wraps the result in `n` inert identity layers.
fn injected<T>(
    o: &Oriented,
    gov: &Gov,
    out: T,
    inflate: fn(T, usize) -> T,
) -> Result<T, RewriteError> {
    match gov.faults.fault_for(&o.rule.id, gov.step) {
        None => Ok(out),
        Some(FaultKind::Oversize(n)) => Ok(inflate(out, *n)),
        Some(FaultKind::Fail) => Err(RewriteError::RuleFailed {
            rule_id: o.rule.id.clone(),
            detail: "injected failure".into(),
        }),
        // A poison rule's bug is not a contained error: it unwinds.
        Some(FaultKind::Panic) => crate::fault::poison_panic(&o.rule.id),
    }
}

fn inflate_func(f: Func, n: usize) -> Func {
    (0..n).fold(f, |acc, _| Func::Compose(Box::new(Func::Id), Box::new(acc)))
}

fn inflate_pred(p: Pred, n: usize) -> Pred {
    (0..n).fold(p, |acc, _| Pred::Oplus(Box::new(acc), Box::new(Func::Id)))
}

fn inflate_query(q: Query, n: usize) -> Query {
    (0..n).fold(q, |acc, _| Query::App(Func::Id, Box::new(acc)))
}

fn try_rule_func(
    o: &Oriented,
    f: &Func,
    props: &PropDb,
    gov: &Gov,
) -> Result<Option<Func>, RewriteError> {
    let Some((out, s)) = o.rule.try_apply_func(f, o.dir)? else {
        return Ok(None);
    };
    if !preconditions_hold(&o.rule.preconditions, &s, props) {
        return Ok(None);
    }
    injected(o, gov, out, inflate_func).map(Some)
}

fn try_rule_pred(
    o: &Oriented,
    p: &Pred,
    props: &PropDb,
    gov: &Gov,
) -> Result<Option<Pred>, RewriteError> {
    let Some((out, s)) = o.rule.try_apply_pred(p, o.dir)? else {
        return Ok(None);
    };
    if !preconditions_hold(&o.rule.preconditions, &s, props) {
        return Ok(None);
    }
    injected(o, gov, out, inflate_pred).map(Some)
}

fn try_rule_query(
    o: &Oriented,
    q: &Query,
    props: &PropDb,
    gov: &Gov,
) -> Result<Option<Query>, RewriteError> {
    let Some((out, s)) = o.rule.try_apply_query(q, o.dir)? else {
        return Ok(None);
    };
    if !preconditions_hold(&o.rule.preconditions, &s, props) {
        return Ok(None);
    }
    injected(o, gov, out, inflate_query).map(Some)
}

/// Scan `rules` at the current node: quarantined rules are skipped, rule
/// failures are contained (recorded in the report) and the scan continues
/// with the next rule.
macro_rules! rules_at {
    ($rules:expr, $t:expr, $props:expr, $gov:expr, $try:ident) => {
        for o in $rules {
            if $gov.report.is_quarantined(&o.rule.id) {
                continue;
            }
            match $try(o, $t, $props, $gov) {
                Ok(Some(result)) => {
                    return Some(Applied {
                        result,
                        rule_id: o.rule.id.clone(),
                        dir: o.dir,
                    });
                }
                Ok(None) => {}
                Err(e) => $gov.record_failure(&o.rule.id, &e),
            }
        }
    };
}

/// Result of a single successful application somewhere in a term.
pub struct Applied<T> {
    /// The rewritten whole term.
    pub result: T,
    /// Which rule fired.
    pub rule_id: String,
    /// Orientation.
    pub dir: Direction,
}

macro_rules! child {
    // Rebuild `$outer` with one rewritten child, keeping rule bookkeeping.
    ($hit:expr, $rebuild:expr) => {
        if let Some(a) = $hit {
            let rule_id = a.rule_id;
            let dir = a.dir;
            #[allow(clippy::redundant_closure_call)]
            let result = ($rebuild)(a.result);
            return Some(Applied {
                result,
                rule_id,
                dir,
            });
        }
    };
}

/// Apply the first matching rule at the leftmost-outermost position of a
/// function term (descending into subfunctions, predicates and payloads).
/// Ungoverned convenience wrapper over [`ro_func`] with default bounds.
pub fn rewrite_once_func(rules: &[Oriented], f: &Func, props: &PropDb) -> Option<Applied<Func>> {
    let faults = FaultPlan::default();
    let mut report = RewriteReport::new();
    let mut gov = Gov::new(&Budget::default(), &faults, &mut report, 0);
    ro_func(rules, f, props, 0, &mut gov)
}

pub(crate) fn ro_func(
    rules: &[Oriented],
    f: &Func,
    props: &PropDb,
    d: usize,
    gov: &mut Gov,
) -> Option<Applied<Func>> {
    // Depth governor: leave subterms beyond the cap untouched rather than
    // risking the native stack.
    if gov.clip(d) {
        return None;
    }
    // Try at root (function-level rules, chain-prefix aware).
    rules_at!(rules, f, props, gov, try_rule_func);
    // Descend.
    match f {
        Func::Id
        | Func::Pi1
        | Func::Pi2
        | Func::Prim(_)
        | Func::Flat
        | Func::Bagify
        | Func::Dedup
        | Func::BUnion
        | Func::BFlat
        | Func::SetUnion
        | Func::SetIntersect
        | Func::SetDiff => None,
        Func::Compose(a, b) => {
            let (a, b) = (a.clone(), b.clone());
            child!(ro_func(rules, &a, props, d + 1, gov), |r| Func::Compose(
                Box::new(r),
                b.clone()
            ));
            child!(ro_func(rules, &b, props, d + 1, gov), |r| Func::Compose(
                a.clone(),
                Box::new(r)
            ));
            None
        }
        Func::PairWith(a, b) => {
            let (a, b) = (a.clone(), b.clone());
            child!(ro_func(rules, &a, props, d + 1, gov), |r| Func::PairWith(
                Box::new(r),
                b.clone()
            ));
            child!(ro_func(rules, &b, props, d + 1, gov), |r| Func::PairWith(
                a.clone(),
                Box::new(r)
            ));
            None
        }
        Func::Times(a, b) => {
            let (a, b) = (a.clone(), b.clone());
            child!(ro_func(rules, &a, props, d + 1, gov), |r| Func::Times(
                Box::new(r),
                b.clone()
            ));
            child!(ro_func(rules, &b, props, d + 1, gov), |r| Func::Times(
                a.clone(),
                Box::new(r)
            ));
            None
        }
        Func::ConstF(q) => {
            let q = q.clone();
            child!(ro_query(rules, &q, props, d + 1, gov), |r| Func::ConstF(
                Box::new(r)
            ));
            None
        }
        Func::CurryF(g, q) => {
            let (g, q) = (g.clone(), q.clone());
            child!(ro_func(rules, &g, props, d + 1, gov), |r| Func::CurryF(
                Box::new(r),
                q.clone()
            ));
            child!(ro_query(rules, &q, props, d + 1, gov), |r| Func::CurryF(
                g.clone(),
                Box::new(r)
            ));
            None
        }
        Func::Cond(p, g, h) => {
            let (p, g, h) = (p.clone(), g.clone(), h.clone());
            child!(ro_pred(rules, &p, props, d + 1, gov), |r| Func::Cond(
                Box::new(r),
                g.clone(),
                h.clone()
            ));
            child!(ro_func(rules, &g, props, d + 1, gov), |r| Func::Cond(
                p.clone(),
                Box::new(r),
                h.clone()
            ));
            child!(ro_func(rules, &h, props, d + 1, gov), |r| Func::Cond(
                p.clone(),
                g.clone(),
                Box::new(r)
            ));
            None
        }
        Func::Iterate(p, g) => {
            let (p, g) = (p.clone(), g.clone());
            child!(ro_pred(rules, &p, props, d + 1, gov), |r| Func::Iterate(
                Box::new(r),
                g.clone()
            ));
            child!(ro_func(rules, &g, props, d + 1, gov), |r| Func::Iterate(
                p.clone(),
                Box::new(r)
            ));
            None
        }
        Func::Iter(p, g) => {
            let (p, g) = (p.clone(), g.clone());
            child!(ro_pred(rules, &p, props, d + 1, gov), |r| Func::Iter(
                Box::new(r),
                g.clone()
            ));
            child!(ro_func(rules, &g, props, d + 1, gov), |r| Func::Iter(
                p.clone(),
                Box::new(r)
            ));
            None
        }
        Func::BIterate(p, g) => {
            let (p, g) = (p.clone(), g.clone());
            child!(ro_pred(rules, &p, props, d + 1, gov), |r| Func::BIterate(
                Box::new(r),
                g.clone()
            ));
            child!(ro_func(rules, &g, props, d + 1, gov), |r| Func::BIterate(
                p.clone(),
                Box::new(r)
            ));
            None
        }
        Func::Join(p, g) => {
            let (p, g) = (p.clone(), g.clone());
            child!(ro_pred(rules, &p, props, d + 1, gov), |r| Func::Join(
                Box::new(r),
                g.clone()
            ));
            child!(ro_func(rules, &g, props, d + 1, gov), |r| Func::Join(
                p.clone(),
                Box::new(r)
            ));
            None
        }
        Func::Nest(g, h) => {
            let (g, h) = (g.clone(), h.clone());
            child!(ro_func(rules, &g, props, d + 1, gov), |r| Func::Nest(
                Box::new(r),
                h.clone()
            ));
            child!(ro_func(rules, &h, props, d + 1, gov), |r| Func::Nest(
                g.clone(),
                Box::new(r)
            ));
            None
        }
        Func::Unnest(g, h) => {
            let (g, h) = (g.clone(), h.clone());
            child!(ro_func(rules, &g, props, d + 1, gov), |r| Func::Unnest(
                Box::new(r),
                h.clone()
            ));
            child!(ro_func(rules, &h, props, d + 1, gov), |r| Func::Unnest(
                g.clone(),
                Box::new(r)
            ));
            None
        }
    }
}

/// Apply the first matching rule at the leftmost-outermost position of a
/// predicate term. Ungoverned wrapper over [`ro_pred`] with default bounds.
pub fn rewrite_once_pred(rules: &[Oriented], p: &Pred, props: &PropDb) -> Option<Applied<Pred>> {
    let faults = FaultPlan::default();
    let mut report = RewriteReport::new();
    let mut gov = Gov::new(&Budget::default(), &faults, &mut report, 0);
    ro_pred(rules, p, props, 0, &mut gov)
}

pub(crate) fn ro_pred(
    rules: &[Oriented],
    p: &Pred,
    props: &PropDb,
    d: usize,
    gov: &mut Gov,
) -> Option<Applied<Pred>> {
    if gov.clip(d) {
        return None;
    }
    rules_at!(rules, p, props, gov, try_rule_pred);
    match p {
        Pred::Eq
        | Pred::Lt
        | Pred::Leq
        | Pred::Gt
        | Pred::Geq
        | Pred::In
        | Pred::PrimP(_)
        | Pred::ConstP(_) => None,
        Pred::Oplus(q, f) => {
            let (q, f) = (q.clone(), f.clone());
            child!(ro_pred(rules, &q, props, d + 1, gov), |r| Pred::Oplus(
                Box::new(r),
                f.clone()
            ));
            child!(ro_func(rules, &f, props, d + 1, gov), |r| Pred::Oplus(
                q.clone(),
                Box::new(r)
            ));
            None
        }
        Pred::And(a, b) => {
            let (a, b) = (a.clone(), b.clone());
            child!(ro_pred(rules, &a, props, d + 1, gov), |r| Pred::And(
                Box::new(r),
                b.clone()
            ));
            child!(ro_pred(rules, &b, props, d + 1, gov), |r| Pred::And(
                a.clone(),
                Box::new(r)
            ));
            None
        }
        Pred::Or(a, b) => {
            let (a, b) = (a.clone(), b.clone());
            child!(ro_pred(rules, &a, props, d + 1, gov), |r| Pred::Or(
                Box::new(r),
                b.clone()
            ));
            child!(ro_pred(rules, &b, props, d + 1, gov), |r| Pred::Or(
                a.clone(),
                Box::new(r)
            ));
            None
        }
        Pred::Not(q) => {
            let q = q.clone();
            child!(ro_pred(rules, &q, props, d + 1, gov), |r| Pred::Not(
                Box::new(r)
            ));
            None
        }
        Pred::Conv(q) => {
            let q = q.clone();
            child!(ro_pred(rules, &q, props, d + 1, gov), |r| Pred::Conv(
                Box::new(r)
            ));
            None
        }
        Pred::CurryP(q, payload) => {
            let (q, payload) = (q.clone(), payload.clone());
            child!(ro_pred(rules, &q, props, d + 1, gov), |r| Pred::CurryP(
                Box::new(r),
                payload.clone()
            ));
            child!(ro_query(rules, &payload, props, d + 1, gov), |r| {
                Pred::CurryP(q.clone(), Box::new(r))
            });
            None
        }
    }
}

/// Apply the first matching rule at the leftmost-outermost position of a
/// query. Ungoverned wrapper over [`ro_query`] with default bounds.
pub fn rewrite_once_query(rules: &[Oriented], q: &Query, props: &PropDb) -> Option<Applied<Query>> {
    let faults = FaultPlan::default();
    let mut report = RewriteReport::new();
    let mut gov = Gov::new(&Budget::default(), &faults, &mut report, 0);
    ro_query(rules, q, props, 0, &mut gov)
}

pub(crate) fn ro_query(
    rules: &[Oriented],
    q: &Query,
    props: &PropDb,
    d: usize,
    gov: &mut Gov,
) -> Option<Applied<Query>> {
    if gov.clip(d) {
        return None;
    }
    rules_at!(rules, q, props, gov, try_rule_query);
    match q {
        Query::Lit(_) | Query::Extent(_) => None,
        Query::App(f, inner) => {
            let (f, inner) = (f.clone(), inner.clone());
            child!(ro_func(rules, &f, props, d + 1, gov), |r| Query::App(
                r,
                inner.clone()
            ));
            child!(ro_query(rules, &inner, props, d + 1, gov), |r| Query::App(
                f.clone(),
                Box::new(r)
            ));
            None
        }
        Query::Test(p, inner) => {
            let (p, inner) = (p.clone(), inner.clone());
            child!(ro_pred(rules, &p, props, d + 1, gov), |r| Query::Test(
                r,
                inner.clone()
            ));
            child!(ro_query(rules, &inner, props, d + 1, gov), |r| Query::Test(
                p.clone(),
                Box::new(r)
            ));
            None
        }
        Query::PairQ(a, b) => {
            let (a, b) = (a.clone(), b.clone());
            child!(ro_query(rules, &a, props, d + 1, gov), |r| Query::PairQ(
                Box::new(r),
                b.clone()
            ));
            child!(ro_query(rules, &b, props, d + 1, gov), |r| Query::PairQ(
                a.clone(),
                Box::new(r)
            ));
            None
        }
        Query::Union(a, b) => {
            let (a, b) = (a.clone(), b.clone());
            child!(ro_query(rules, &a, props, d + 1, gov), |r| Query::Union(
                Box::new(r),
                b.clone()
            ));
            child!(ro_query(rules, &b, props, d + 1, gov), |r| Query::Union(
                a.clone(),
                Box::new(r)
            ));
            None
        }
        Query::Intersect(a, b) => {
            let (a, b) = (a.clone(), b.clone());
            child!(
                ro_query(rules, &a, props, d + 1, gov),
                |r| Query::Intersect(Box::new(r), b.clone())
            );
            child!(
                ro_query(rules, &b, props, d + 1, gov),
                |r| Query::Intersect(a.clone(), Box::new(r))
            );
            None
        }
        Query::Diff(a, b) => {
            let (a, b) = (a.clone(), b.clone());
            child!(ro_query(rules, &a, props, d + 1, gov), |r| Query::Diff(
                Box::new(r),
                b.clone()
            ));
            child!(ro_query(rules, &b, props, d + 1, gov), |r| Query::Diff(
                a.clone(),
                Box::new(r)
            ));
            None
        }
    }
}

/// Rewrite a query *bottom-up in one sweep*: children are normalized
/// first (recursively, to a local fixpoint with `fuel`), then rules are
/// applied at the node itself until none fires. This is the "apply one or
/// more rules in succession, and throughout a tree" firing policy §4.2
/// ascribes to COKO rule blocks (`BU { … }` in the COKO syntax).
///
/// Returns the rewritten query and the number of rule applications.
/// Ungoverned wrapper over [`rewrite_bottom_up_governed`] with default
/// bounds and no faults.
pub fn rewrite_bottom_up(
    rules: &[Oriented],
    q: &Query,
    props: &PropDb,
    fuel: usize,
) -> (Query, usize) {
    let faults = FaultPlan::default();
    let mut report = RewriteReport::new();
    rewrite_bottom_up_governed(
        rules,
        q,
        props,
        fuel,
        &Budget::default(),
        &faults,
        &mut report,
    )
}

/// Bottom-up sweep under governance: quarantined rules are skipped, rule
/// failures are contained into `report`, and subtrees beyond the depth cap
/// are left untouched.
pub fn rewrite_bottom_up_governed(
    rules: &[Oriented],
    q: &Query,
    props: &PropDb,
    fuel: usize,
    budget: &Budget,
    faults: &FaultPlan,
    report: &mut RewriteReport,
) -> (Query, usize) {
    let mut fires = 0;
    let mut gov = Gov::new(budget, faults, report, 0);
    let out = bu_query(rules, q, props, fuel, &mut fires, 0, &mut gov);
    (out, fires)
}

/// Exhaust `rules` at one node. Per-node loop macro shared by the three
/// syntactic levels: applies the first non-quarantined rule that fires,
/// normalizes, and repeats up to `fuel` times; failures are contained.
macro_rules! exhaust_at {
    ($rules:expr, $t:expr, $props:expr, $fuel:expr, $fires:expr, $gov:expr, $try:ident) => {
        for _ in 0..$fuel {
            let mut fired = false;
            for o in $rules {
                if $gov.report.is_quarantined(&o.rule.id) {
                    continue;
                }
                match $try(o, &$t, $props, $gov) {
                    Ok(Some(result)) => {
                        $t = result.normalize();
                        *$fires += 1;
                        fired = true;
                        break;
                    }
                    Ok(None) => {}
                    Err(e) => $gov.record_failure(&o.rule.id, &e),
                }
            }
            if !fired {
                break;
            }
        }
    };
}

fn exhaust_query(
    rules: &[Oriented],
    mut q: Query,
    props: &PropDb,
    fuel: usize,
    fires: &mut usize,
    gov: &mut Gov,
) -> Query {
    exhaust_at!(rules, q, props, fuel, fires, gov, try_rule_query);
    q
}

fn exhaust_func(
    rules: &[Oriented],
    mut f: Func,
    props: &PropDb,
    fuel: usize,
    fires: &mut usize,
    gov: &mut Gov,
) -> Func {
    exhaust_at!(rules, f, props, fuel, fires, gov, try_rule_func);
    f
}

fn exhaust_pred(
    rules: &[Oriented],
    mut p: Pred,
    props: &PropDb,
    fuel: usize,
    fires: &mut usize,
    gov: &mut Gov,
) -> Pred {
    exhaust_at!(rules, p, props, fuel, fires, gov, try_rule_pred);
    p
}

fn bu_query(
    rules: &[Oriented],
    q: &Query,
    props: &PropDb,
    fuel: usize,
    fires: &mut usize,
    d: usize,
    gov: &mut Gov,
) -> Query {
    if gov.clip(d) {
        return q.clone();
    }
    let rebuilt = match q {
        Query::Lit(_) | Query::Extent(_) => q.clone(),
        Query::PairQ(a, b) => Query::PairQ(
            Box::new(bu_query(rules, a, props, fuel, fires, d + 1, gov)),
            Box::new(bu_query(rules, b, props, fuel, fires, d + 1, gov)),
        ),
        Query::App(f, inner) => Query::App(
            bu_func(rules, f, props, fuel, fires, d + 1, gov),
            Box::new(bu_query(rules, inner, props, fuel, fires, d + 1, gov)),
        ),
        Query::Test(p, inner) => Query::Test(
            bu_pred(rules, p, props, fuel, fires, d + 1, gov),
            Box::new(bu_query(rules, inner, props, fuel, fires, d + 1, gov)),
        ),
        Query::Union(a, b) => Query::Union(
            Box::new(bu_query(rules, a, props, fuel, fires, d + 1, gov)),
            Box::new(bu_query(rules, b, props, fuel, fires, d + 1, gov)),
        ),
        Query::Intersect(a, b) => Query::Intersect(
            Box::new(bu_query(rules, a, props, fuel, fires, d + 1, gov)),
            Box::new(bu_query(rules, b, props, fuel, fires, d + 1, gov)),
        ),
        Query::Diff(a, b) => Query::Diff(
            Box::new(bu_query(rules, a, props, fuel, fires, d + 1, gov)),
            Box::new(bu_query(rules, b, props, fuel, fires, d + 1, gov)),
        ),
    };
    exhaust_query(rules, rebuilt.normalize(), props, fuel, fires, gov)
}

fn bu_func(
    rules: &[Oriented],
    f: &Func,
    props: &PropDb,
    fuel: usize,
    fires: &mut usize,
    d: usize,
    gov: &mut Gov,
) -> Func {
    if gov.clip(d) {
        return f.clone();
    }
    macro_rules! f2 {
        ($ctor:path, $a:expr, $b:expr) => {
            $ctor(
                Box::new(bu_func(rules, $a, props, fuel, fires, d + 1, gov)),
                Box::new(bu_func(rules, $b, props, fuel, fires, d + 1, gov)),
            )
        };
    }
    macro_rules! pf {
        ($ctor:path, $p:expr, $g:expr) => {
            $ctor(
                Box::new(bu_pred(rules, $p, props, fuel, fires, d + 1, gov)),
                Box::new(bu_func(rules, $g, props, fuel, fires, d + 1, gov)),
            )
        };
    }
    let rebuilt = match f {
        Func::Compose(a, b) => f2!(Func::Compose, a, b),
        Func::PairWith(a, b) => f2!(Func::PairWith, a, b),
        Func::Times(a, b) => f2!(Func::Times, a, b),
        Func::Nest(a, b) => f2!(Func::Nest, a, b),
        Func::Unnest(a, b) => f2!(Func::Unnest, a, b),
        Func::Iterate(p, g) => pf!(Func::Iterate, p, g),
        Func::Iter(p, g) => pf!(Func::Iter, p, g),
        Func::Join(p, g) => pf!(Func::Join, p, g),
        Func::BIterate(p, g) => pf!(Func::BIterate, p, g),
        Func::Cond(p, a, b) => Func::Cond(
            Box::new(bu_pred(rules, p, props, fuel, fires, d + 1, gov)),
            Box::new(bu_func(rules, a, props, fuel, fires, d + 1, gov)),
            Box::new(bu_func(rules, b, props, fuel, fires, d + 1, gov)),
        ),
        Func::ConstF(q) => {
            Func::ConstF(Box::new(bu_query(rules, q, props, fuel, fires, d + 1, gov)))
        }
        Func::CurryF(g, q) => Func::CurryF(
            Box::new(bu_func(rules, g, props, fuel, fires, d + 1, gov)),
            Box::new(bu_query(rules, q, props, fuel, fires, d + 1, gov)),
        ),
        leaf => leaf.clone(),
    };
    exhaust_func(rules, rebuilt.normalize(), props, fuel, fires, gov)
}

fn bu_pred(
    rules: &[Oriented],
    p: &Pred,
    props: &PropDb,
    fuel: usize,
    fires: &mut usize,
    d: usize,
    gov: &mut Gov,
) -> Pred {
    if gov.clip(d) {
        return p.clone();
    }
    let rebuilt = match p {
        Pred::Oplus(q, f) => Pred::Oplus(
            Box::new(bu_pred(rules, q, props, fuel, fires, d + 1, gov)),
            Box::new(bu_func(rules, f, props, fuel, fires, d + 1, gov)),
        ),
        Pred::And(a, b) => Pred::And(
            Box::new(bu_pred(rules, a, props, fuel, fires, d + 1, gov)),
            Box::new(bu_pred(rules, b, props, fuel, fires, d + 1, gov)),
        ),
        Pred::Or(a, b) => Pred::Or(
            Box::new(bu_pred(rules, a, props, fuel, fires, d + 1, gov)),
            Box::new(bu_pred(rules, b, props, fuel, fires, d + 1, gov)),
        ),
        Pred::Not(q) => Pred::Not(Box::new(bu_pred(rules, q, props, fuel, fires, d + 1, gov))),
        Pred::Conv(q) => Pred::Conv(Box::new(bu_pred(rules, q, props, fuel, fires, d + 1, gov))),
        Pred::CurryP(q, payload) => Pred::CurryP(
            Box::new(bu_pred(rules, q, props, fuel, fires, d + 1, gov)),
            Box::new(bu_query(rules, payload, props, fuel, fires, d + 1, gov)),
        ),
        leaf => leaf.clone(),
    };
    exhaust_pred(rules, rebuilt.normalize(), props, fuel, fires, gov)
}

/// Default bound on fixpoint iterations; generous for any realistic query.
pub const DEFAULT_FUEL: usize = 10_000;

/// One governed leftmost-outermost step, sharing an external report (used
/// by the strategy interpreter so accounting spans a whole strategy run).
pub(crate) fn rewrite_once_governed(
    rules: &[Oriented],
    q: &Query,
    props: &PropDb,
    budget: &Budget,
    faults: &FaultPlan,
    report: &mut RewriteReport,
) -> Option<Applied<Query>> {
    let step = report.steps;
    let mut gov = Gov::new(budget, faults, report, step);
    ro_query(rules, q, props, 0, &mut gov)
}

/// The outcome of a governed rewrite run: the chosen query (the normal form
/// on clean termination, the best — smallest — term seen on an abnormal
/// stop), the derivation trace, and the resource/failure report.
///
/// Invariant: `report.steps == trace.steps.len()`, and both never exceed
/// the budget's `max_steps`.
#[derive(Debug, Clone)]
pub struct Rewritten {
    /// The resulting query.
    pub query: Query,
    /// The derivation that produced it (or led to the best term).
    pub trace: Trace,
    /// Resource accounting and stop reason.
    pub report: RewriteReport,
}

/// [`rewrite_fix_with`] behind a panic boundary: a poison rule that
/// *unwinds* (a [`crate::fault::FaultKind::Panic`] fault, or a genuine rule
/// bug) is caught and classified instead of propagating into the caller.
/// All run state is function-local, so a caught panic leaves nothing
/// inconsistent — the caller can immediately retry with the offending rule
/// removed.
pub fn try_rewrite_fix_with(
    rules: &[Oriented],
    q: &Query,
    props: &PropDb,
    budget: &Budget,
    faults: &FaultPlan,
) -> Result<Rewritten, crate::fault::CaughtPanic> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rewrite_fix_with(rules, q, props, budget, faults)
    }))
    .map_err(crate::fault::CaughtPanic::from_payload)
}

/// [`rewrite_fix_with`] without fault injection.
pub fn rewrite_fix_governed(
    rules: &[Oriented],
    q: &Query,
    props: &PropDb,
    budget: &Budget,
) -> Rewritten {
    rewrite_fix_with(rules, q, props, budget, &FaultPlan::default())
}

/// Apply `rules` to `q` repeatedly (leftmost-outermost, first matching
/// rule) under full governance: step/depth/size/deadline budgets, cycle
/// detection, rule-failure containment with quarantine, and fault
/// injection. Never panics; always returns a term and a report.
///
/// Cycle detection is sound as a stopping rule: the engine is
/// deterministic (given a term and the quarantine state it always picks
/// the same redex), so producing a term with an already-seen fingerprint
/// means the derivation has entered a loop that would never terminate.
/// On any abnormal stop the *best* (smallest) term seen is returned — the
/// derivation so far is a chain of equivalences, so every intermediate
/// term is a correct answer.
pub fn rewrite_fix_with(
    rules: &[Oriented],
    q: &Query,
    props: &PropDb,
    budget: &Budget,
    faults: &FaultPlan,
) -> Rewritten {
    let mut report = RewriteReport::new();
    let mut trace = Trace::new();
    let mut cur = q.normalize();
    let (cur_size, cur_fp) = measure_query(&cur);
    if cur_size > budget.max_term_size {
        let e = RewriteError::TermTooLarge {
            size: cur_size,
            limit: budget.max_term_size,
        };
        report.failures.push(e.to_string());
        report.stop = StopReason::TermTooLarge;
        return Rewritten {
            query: cur,
            trace,
            report,
        };
    }

    let mut seen = CycleDetector::new();
    seen.seen(cur_fp, &cur);
    let mut best = cur.clone();
    let mut best_size = cur_size;

    loop {
        if report.steps >= budget.max_steps {
            report.stop = StopReason::BudgetExhausted;
            return Rewritten {
                query: best,
                trace,
                report,
            };
        }
        if budget.expired() {
            report.stop = StopReason::DeadlineExpired;
            return Rewritten {
                query: best,
                trace,
                report,
            };
        }
        let step = report.steps;
        let mut gov = Gov::new(budget, faults, &mut report, step);
        let Some(applied) = ro_query(rules, &cur, props, 0, &mut gov) else {
            report.stop = StopReason::NormalForm;
            return Rewritten {
                query: cur,
                trace,
                report,
            };
        };
        let next = applied.result.normalize();
        let (next_size, next_fp) = measure_query(&next);
        if next_size > budget.max_term_size {
            // Reject the oversize result and charge the offending rule.
            // If that doesn't quarantine it, the engine would re-derive the
            // same result forever — stop instead.
            let e = RewriteError::TermTooLarge {
                size: next_size,
                limit: budget.max_term_size,
            };
            report.record_failure(&applied.rule_id, &e, budget.quarantine_after, report.steps);
            if !report.is_quarantined(&applied.rule_id) {
                report.stop = StopReason::TermTooLarge;
                return Rewritten {
                    query: best,
                    trace,
                    report,
                };
            }
            continue;
        }
        cur = next;
        report.steps += 1;
        report.record_fire(&applied.rule_id);
        trace.steps.push(Step {
            rule_id: applied.rule_id,
            dir: applied.dir,
            after: cur.clone(),
        });
        if next_size < best_size {
            best = cur.clone();
            best_size = next_size;
        }
        if seen.seen(next_fp, &cur) {
            report.stop = StopReason::CycleDetected;
            return Rewritten {
                query: best,
                trace,
                report,
            };
        }
    }
}

/// Apply `rules` to `q` repeatedly (leftmost-outermost, first matching rule)
/// until no rule applies or `fuel` steps have been taken. Returns the normal
/// form and the full derivation trace.
///
/// Legacy interface over [`rewrite_fix_governed`]: same step bound, default
/// depth/size governance, no deadline. On an abnormal stop (fuel out,
/// cycle) the best term seen so far is returned.
pub fn rewrite_fix(rules: &[Oriented], q: &Query, props: &PropDb, fuel: usize) -> (Query, Trace) {
    let r = rewrite_fix_governed(rules, q, props, &Budget::with_steps(fuel));
    (r.query, r.trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::Rule;
    use kola::parse::parse_query;

    fn props() -> PropDb {
        PropDb::new()
    }

    #[test]
    fn rewrite_inside_query() {
        let r = Rule::func("2", "id-left", "id . $f", "$f");
        let q = parse_query("iterate(Kp(T), id . age) ! P").unwrap();
        let rules = [Oriented::fwd(&r)];
        let a = rewrite_once_query(&rules, &q, &props()).unwrap();
        assert_eq!(a.result, parse_query("iterate(Kp(T), age) ! P").unwrap());
        assert_eq!(a.rule_id, "2");
    }

    #[test]
    fn rewrite_inside_pred_inside_func() {
        let r = Rule::pred("3", "oplus-id", "%p @ id", "%p");
        let q = parse_query("iterate(gt @ id, age) ! P").unwrap();
        let rules = [Oriented::fwd(&r)];
        let a = rewrite_once_query(&rules, &q, &props()).unwrap();
        assert_eq!(a.result, parse_query("iterate(gt, age) ! P").unwrap());
    }

    #[test]
    fn rewrite_inside_const_payload() {
        let r = Rule::query("u", "union-self", "^A union ^A", "^A");
        let q = parse_query("Kf(P union P) ! V").unwrap();
        let rules = [Oriented::fwd(&r)];
        let a = rewrite_once_query(&rules, &q, &props()).unwrap();
        assert_eq!(a.result, parse_query("Kf(P) ! V").unwrap());
    }

    #[test]
    fn fixpoint_terminates_and_traces() {
        let r = Rule::func("2", "id-left", "id . $f", "$f");
        let q = parse_query("id . id . id . age ! P").unwrap();
        let rules = [Oriented::fwd(&r)];
        let (out, trace) = rewrite_fix(&rules, &q, &props(), DEFAULT_FUEL);
        assert_eq!(out, parse_query("age ! P").unwrap());
        assert_eq!(trace.justifications(), vec!["2", "2", "2"]);
    }

    #[test]
    fn backward_direction_recorded() {
        let r = Rule::func("2", "id-left", "id . $f", "$f");
        let q = parse_query("age ! P").unwrap();
        let rules = [Oriented::bwd(&r)];
        let a = rewrite_once_query(&rules, &q, &props()).unwrap();
        assert_eq!(a.result, parse_query("id . age ! P").unwrap());
        assert_eq!(a.dir, Direction::Backward);
        let step = Step {
            rule_id: a.rule_id,
            dir: a.dir,
            after: a.result,
        };
        assert_eq!(step.justification(), "2-1");
    }

    #[test]
    fn precondition_gates_application() {
        use crate::props::{PropKind, PropTerm};
        // injective(f) :: iterate(Kp(T), $f) ! (^A intersect ^B) =>
        //                 (iterate(Kp(T), $f) ! ^A) intersect (... ^B)
        let r = Rule::query(
            "inj",
            "push-intersect",
            "iterate(Kp(T), $f) ! (^A intersect ^B)",
            "(iterate(Kp(T), $f) ! ^A) intersect (iterate(Kp(T), $f) ! ^B)",
        )
        .with_precondition(PropKind::Injective, PropTerm::func("f"));
        let q = parse_query("iterate(Kp(T), name) ! (P intersect Q)").unwrap();
        let rules = [Oriented::fwd(&r)];
        // Without the annotation: blocked.
        assert!(rewrite_once_query(&rules, &q, &PropDb::new()).is_none());
        // With `name` declared a key: fires.
        let mut db = PropDb::new();
        db.declare_injective("name");
        assert!(rewrite_once_query(&rules, &q, &db).is_some());
    }
}
