//! The rewrite engine: congruence traversal, rule application, tracing.
//!
//! One primitive does the work: [`rewrite_once`] applies the first rule (in
//! the given list, in the given orientations) that matches at the
//! leftmost-outermost position of a query — descending through query nodes,
//! the functions inside applications, the predicates inside formers, and the
//! payload queries inside `Kf`/`Cf`/`Cp`. Everything else (fixpoints,
//! step sequencing, the five-step hidden-join strategy, COKO blocks) is
//! built from it.

use crate::props::PropDb;
use crate::rule::{Direction, Precondition, Rule};
use crate::subst::Subst;
use kola::term::{Func, Pred, Query};
use std::fmt;

/// A rule together with the orientation in which to try it.
#[derive(Clone, Copy)]
pub struct Oriented<'a> {
    /// The rule.
    pub rule: &'a Rule,
    /// Orientation (forward = printed left-to-right).
    pub dir: Direction,
}

impl<'a> Oriented<'a> {
    /// Forward orientation.
    pub fn fwd(rule: &'a Rule) -> Self {
        Oriented {
            rule,
            dir: Direction::Forward,
        }
    }

    /// Backward orientation (`i⁻¹` in the paper).
    pub fn bwd(rule: &'a Rule) -> Self {
        Oriented {
            rule,
            dir: Direction::Backward,
        }
    }
}

/// One derivation step: which rule fired, which way, and the whole-query
/// result (so derivations can be printed exactly like Figures 4 and 6).
#[derive(Debug, Clone)]
pub struct Step {
    /// The id of the rule that fired (e.g. `"11"`).
    pub rule_id: String,
    /// Orientation it fired in.
    pub dir: Direction,
    /// The query after this step.
    pub after: Query,
}

impl Step {
    /// The paper's notation for the justification: `11` or `12-1`.
    pub fn justification(&self) -> String {
        match self.dir {
            Direction::Forward => self.rule_id.clone(),
            Direction::Backward => format!("{}-1", self.rule_id),
        }
    }
}

/// A full derivation: the start query and every step taken.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// The steps, in order.
    pub steps: Vec<Step>,
}

impl Trace {
    /// New empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// The rule-id justifications in order (e.g. `["11", "6", "5"]`).
    pub fn justifications(&self) -> Vec<String> {
        self.steps.iter().map(Step::justification).collect()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for step in &self.steps {
            writeln!(f, "  =[{}]=> {}", step.justification(), step.after)?;
        }
        Ok(())
    }
}

fn preconditions_hold(pre: &[Precondition], s: &Subst, props: &PropDb) -> bool {
    pre.iter().all(|p| match &p.subject {
        crate::props::PropTerm::FuncVar(name) => s
            .funcs
            .get(name)
            .map(|f| props.holds(p.prop, f))
            .unwrap_or(false),
    })
}

fn try_rule_func(o: &Oriented, f: &Func, props: &PropDb) -> Option<Func> {
    let (out, s) = o.rule.apply_func(f, o.dir)?;
    preconditions_hold(&o.rule.preconditions, &s, props).then_some(out)
}

fn try_rule_pred(o: &Oriented, p: &Pred, props: &PropDb) -> Option<Pred> {
    let (out, s) = o.rule.apply_pred(p, o.dir)?;
    preconditions_hold(&o.rule.preconditions, &s, props).then_some(out)
}

fn try_rule_query(o: &Oriented, q: &Query, props: &PropDb) -> Option<Query> {
    let (out, s) = o.rule.apply_query(q, o.dir)?;
    preconditions_hold(&o.rule.preconditions, &s, props).then_some(out)
}

/// Result of a single successful application somewhere in a term.
pub struct Applied<T> {
    /// The rewritten whole term.
    pub result: T,
    /// Which rule fired.
    pub rule_id: String,
    /// Orientation.
    pub dir: Direction,
}

macro_rules! child {
    // Rebuild `$outer` with one rewritten child, keeping rule bookkeeping.
    ($hit:expr, $rebuild:expr) => {
        if let Some(a) = $hit {
            let rule_id = a.rule_id;
            let dir = a.dir;
            #[allow(clippy::redundant_closure_call)]
            let result = ($rebuild)(a.result);
            return Some(Applied {
                result,
                rule_id,
                dir,
            });
        }
    };
}

/// Apply the first matching rule at the leftmost-outermost position of a
/// function term (descending into subfunctions, predicates and payloads).
pub fn rewrite_once_func(
    rules: &[Oriented],
    f: &Func,
    props: &PropDb,
) -> Option<Applied<Func>> {
    // Try at root (function-level rules, chain-prefix aware).
    for o in rules {
        if let Some(result) = try_rule_func(o, f, props) {
            return Some(Applied {
                result,
                rule_id: o.rule.id.clone(),
                dir: o.dir,
            });
        }
    }
    // Descend.
    match f {
        Func::Id
        | Func::Pi1
        | Func::Pi2
        | Func::Prim(_)
        | Func::Flat
        | Func::Bagify
        | Func::Dedup
        | Func::BUnion
        | Func::BFlat
        | Func::SetUnion
        | Func::SetIntersect
        | Func::SetDiff => None,
        Func::Compose(a, b) => {
            let (a, b) = (a.clone(), b.clone());
            child!(rewrite_once_func(rules, &a, props), |r| Func::Compose(
                Box::new(r),
                b.clone()
            ));
            child!(rewrite_once_func(rules, &b, props), |r| Func::Compose(
                a.clone(),
                Box::new(r)
            ));
            None
        }
        Func::PairWith(a, b) => {
            let (a, b) = (a.clone(), b.clone());
            child!(rewrite_once_func(rules, &a, props), |r| Func::PairWith(
                Box::new(r),
                b.clone()
            ));
            child!(rewrite_once_func(rules, &b, props), |r| Func::PairWith(
                a.clone(),
                Box::new(r)
            ));
            None
        }
        Func::Times(a, b) => {
            let (a, b) = (a.clone(), b.clone());
            child!(rewrite_once_func(rules, &a, props), |r| Func::Times(
                Box::new(r),
                b.clone()
            ));
            child!(rewrite_once_func(rules, &b, props), |r| Func::Times(
                a.clone(),
                Box::new(r)
            ));
            None
        }
        Func::ConstF(q) => {
            let q = q.clone();
            child!(rewrite_once_query(rules, &q, props), |r| Func::ConstF(
                Box::new(r)
            ));
            None
        }
        Func::CurryF(g, q) => {
            let (g, q) = (g.clone(), q.clone());
            child!(rewrite_once_func(rules, &g, props), |r| Func::CurryF(
                Box::new(r),
                q.clone()
            ));
            child!(rewrite_once_query(rules, &q, props), |r| Func::CurryF(
                g.clone(),
                Box::new(r)
            ));
            None
        }
        Func::Cond(p, g, h) => {
            let (p, g, h) = (p.clone(), g.clone(), h.clone());
            child!(rewrite_once_pred(rules, &p, props), |r| Func::Cond(
                Box::new(r),
                g.clone(),
                h.clone()
            ));
            child!(rewrite_once_func(rules, &g, props), |r| Func::Cond(
                p.clone(),
                Box::new(r),
                h.clone()
            ));
            child!(rewrite_once_func(rules, &h, props), |r| Func::Cond(
                p.clone(),
                g.clone(),
                Box::new(r)
            ));
            None
        }
        Func::Iterate(p, g) => {
            let (p, g) = (p.clone(), g.clone());
            child!(rewrite_once_pred(rules, &p, props), |r| Func::Iterate(
                Box::new(r),
                g.clone()
            ));
            child!(rewrite_once_func(rules, &g, props), |r| Func::Iterate(
                p.clone(),
                Box::new(r)
            ));
            None
        }
        Func::Iter(p, g) => {
            let (p, g) = (p.clone(), g.clone());
            child!(rewrite_once_pred(rules, &p, props), |r| Func::Iter(
                Box::new(r),
                g.clone()
            ));
            child!(rewrite_once_func(rules, &g, props), |r| Func::Iter(
                p.clone(),
                Box::new(r)
            ));
            None
        }
        Func::BIterate(p, g) => {
            let (p, g) = (p.clone(), g.clone());
            child!(rewrite_once_pred(rules, &p, props), |r| Func::BIterate(
                Box::new(r),
                g.clone()
            ));
            child!(rewrite_once_func(rules, &g, props), |r| Func::BIterate(
                p.clone(),
                Box::new(r)
            ));
            None
        }
        Func::Join(p, g) => {
            let (p, g) = (p.clone(), g.clone());
            child!(rewrite_once_pred(rules, &p, props), |r| Func::Join(
                Box::new(r),
                g.clone()
            ));
            child!(rewrite_once_func(rules, &g, props), |r| Func::Join(
                p.clone(),
                Box::new(r)
            ));
            None
        }
        Func::Nest(g, h) => {
            let (g, h) = (g.clone(), h.clone());
            child!(rewrite_once_func(rules, &g, props), |r| Func::Nest(
                Box::new(r),
                h.clone()
            ));
            child!(rewrite_once_func(rules, &h, props), |r| Func::Nest(
                g.clone(),
                Box::new(r)
            ));
            None
        }
        Func::Unnest(g, h) => {
            let (g, h) = (g.clone(), h.clone());
            child!(rewrite_once_func(rules, &g, props), |r| Func::Unnest(
                Box::new(r),
                h.clone()
            ));
            child!(rewrite_once_func(rules, &h, props), |r| Func::Unnest(
                g.clone(),
                Box::new(r)
            ));
            None
        }
    }
}

/// Apply the first matching rule at the leftmost-outermost position of a
/// predicate term.
pub fn rewrite_once_pred(
    rules: &[Oriented],
    p: &Pred,
    props: &PropDb,
) -> Option<Applied<Pred>> {
    for o in rules {
        if let Some(result) = try_rule_pred(o, p, props) {
            return Some(Applied {
                result,
                rule_id: o.rule.id.clone(),
                dir: o.dir,
            });
        }
    }
    match p {
        Pred::Eq
        | Pred::Lt
        | Pred::Leq
        | Pred::Gt
        | Pred::Geq
        | Pred::In
        | Pred::PrimP(_)
        | Pred::ConstP(_) => None,
        Pred::Oplus(q, f) => {
            let (q, f) = (q.clone(), f.clone());
            child!(rewrite_once_pred(rules, &q, props), |r| Pred::Oplus(
                Box::new(r),
                f.clone()
            ));
            child!(rewrite_once_func(rules, &f, props), |r| Pred::Oplus(
                q.clone(),
                Box::new(r)
            ));
            None
        }
        Pred::And(a, b) => {
            let (a, b) = (a.clone(), b.clone());
            child!(rewrite_once_pred(rules, &a, props), |r| Pred::And(
                Box::new(r),
                b.clone()
            ));
            child!(rewrite_once_pred(rules, &b, props), |r| Pred::And(
                a.clone(),
                Box::new(r)
            ));
            None
        }
        Pred::Or(a, b) => {
            let (a, b) = (a.clone(), b.clone());
            child!(rewrite_once_pred(rules, &a, props), |r| Pred::Or(
                Box::new(r),
                b.clone()
            ));
            child!(rewrite_once_pred(rules, &b, props), |r| Pred::Or(
                a.clone(),
                Box::new(r)
            ));
            None
        }
        Pred::Not(q) => {
            let q = q.clone();
            child!(rewrite_once_pred(rules, &q, props), |r| Pred::Not(
                Box::new(r)
            ));
            None
        }
        Pred::Conv(q) => {
            let q = q.clone();
            child!(rewrite_once_pred(rules, &q, props), |r| Pred::Conv(
                Box::new(r)
            ));
            None
        }
        Pred::CurryP(q, payload) => {
            let (q, payload) = (q.clone(), payload.clone());
            child!(rewrite_once_pred(rules, &q, props), |r| Pred::CurryP(
                Box::new(r),
                payload.clone()
            ));
            child!(rewrite_once_query(rules, &payload, props), |r| {
                Pred::CurryP(q.clone(), Box::new(r))
            });
            None
        }
    }
}

/// Apply the first matching rule at the leftmost-outermost position of a
/// query.
pub fn rewrite_once_query(
    rules: &[Oriented],
    q: &Query,
    props: &PropDb,
) -> Option<Applied<Query>> {
    for o in rules {
        if let Some(result) = try_rule_query(o, q, props) {
            return Some(Applied {
                result,
                rule_id: o.rule.id.clone(),
                dir: o.dir,
            });
        }
    }
    match q {
        Query::Lit(_) | Query::Extent(_) => None,
        Query::App(f, inner) => {
            let (f, inner) = (f.clone(), inner.clone());
            child!(rewrite_once_func(rules, &f, props), |r| Query::App(
                r,
                inner.clone()
            ));
            child!(rewrite_once_query(rules, &inner, props), |r| Query::App(
                f.clone(),
                Box::new(r)
            ));
            None
        }
        Query::Test(p, inner) => {
            let (p, inner) = (p.clone(), inner.clone());
            child!(rewrite_once_pred(rules, &p, props), |r| Query::Test(
                r,
                inner.clone()
            ));
            child!(rewrite_once_query(rules, &inner, props), |r| Query::Test(
                p.clone(),
                Box::new(r)
            ));
            None
        }
        Query::PairQ(a, b) => {
            let (a, b) = (a.clone(), b.clone());
            child!(rewrite_once_query(rules, &a, props), |r| Query::PairQ(
                Box::new(r),
                b.clone()
            ));
            child!(rewrite_once_query(rules, &b, props), |r| Query::PairQ(
                a.clone(),
                Box::new(r)
            ));
            None
        }
        Query::Union(a, b) => {
            let (a, b) = (a.clone(), b.clone());
            child!(rewrite_once_query(rules, &a, props), |r| Query::Union(
                Box::new(r),
                b.clone()
            ));
            child!(rewrite_once_query(rules, &b, props), |r| Query::Union(
                a.clone(),
                Box::new(r)
            ));
            None
        }
        Query::Intersect(a, b) => {
            let (a, b) = (a.clone(), b.clone());
            child!(rewrite_once_query(rules, &a, props), |r| Query::Intersect(
                Box::new(r),
                b.clone()
            ));
            child!(rewrite_once_query(rules, &b, props), |r| Query::Intersect(
                a.clone(),
                Box::new(r)
            ));
            None
        }
        Query::Diff(a, b) => {
            let (a, b) = (a.clone(), b.clone());
            child!(rewrite_once_query(rules, &a, props), |r| Query::Diff(
                Box::new(r),
                b.clone()
            ));
            child!(rewrite_once_query(rules, &b, props), |r| Query::Diff(
                a.clone(),
                Box::new(r)
            ));
            None
        }
    }
}

/// Rewrite a query *bottom-up in one sweep*: children are normalized
/// first (recursively, to a local fixpoint with `fuel`), then rules are
/// applied at the node itself until none fires. This is the "apply one or
/// more rules in succession, and throughout a tree" firing policy §4.2
/// ascribes to COKO rule blocks (`BU { … }` in the COKO syntax).
///
/// Returns the rewritten query and the number of rule applications.
pub fn rewrite_bottom_up(
    rules: &[Oriented],
    q: &Query,
    props: &PropDb,
    fuel: usize,
) -> (Query, usize) {
    let mut fires = 0;
    let out = bu_query(rules, q, props, fuel, &mut fires);
    (out, fires)
}

fn exhaust_query(
    rules: &[Oriented],
    mut q: Query,
    props: &PropDb,
    fuel: usize,
    fires: &mut usize,
) -> Query {
    for _ in 0..fuel {
        let mut fired = false;
        for o in rules {
            if let Some(result) = try_rule_query(o, &q, props) {
                q = result.normalize();
                *fires += 1;
                fired = true;
                break;
            }
        }
        if !fired {
            break;
        }
    }
    q
}

fn exhaust_func(
    rules: &[Oriented],
    mut f: Func,
    props: &PropDb,
    fuel: usize,
    fires: &mut usize,
) -> Func {
    for _ in 0..fuel {
        let mut fired = false;
        for o in rules {
            if let Some(result) = try_rule_func(o, &f, props) {
                f = result.normalize();
                *fires += 1;
                fired = true;
                break;
            }
        }
        if !fired {
            break;
        }
    }
    f
}

fn exhaust_pred(
    rules: &[Oriented],
    mut p: Pred,
    props: &PropDb,
    fuel: usize,
    fires: &mut usize,
) -> Pred {
    for _ in 0..fuel {
        let mut fired = false;
        for o in rules {
            if let Some(result) = try_rule_pred(o, &p, props) {
                p = result.normalize();
                *fires += 1;
                fired = true;
                break;
            }
        }
        if !fired {
            break;
        }
    }
    p
}

fn bu_query(
    rules: &[Oriented],
    q: &Query,
    props: &PropDb,
    fuel: usize,
    fires: &mut usize,
) -> Query {
    let rebuilt = match q {
        Query::Lit(_) | Query::Extent(_) => q.clone(),
        Query::PairQ(a, b) => Query::PairQ(
            Box::new(bu_query(rules, a, props, fuel, fires)),
            Box::new(bu_query(rules, b, props, fuel, fires)),
        ),
        Query::App(f, inner) => Query::App(
            bu_func(rules, f, props, fuel, fires),
            Box::new(bu_query(rules, inner, props, fuel, fires)),
        ),
        Query::Test(p, inner) => Query::Test(
            bu_pred(rules, p, props, fuel, fires),
            Box::new(bu_query(rules, inner, props, fuel, fires)),
        ),
        Query::Union(a, b) => Query::Union(
            Box::new(bu_query(rules, a, props, fuel, fires)),
            Box::new(bu_query(rules, b, props, fuel, fires)),
        ),
        Query::Intersect(a, b) => Query::Intersect(
            Box::new(bu_query(rules, a, props, fuel, fires)),
            Box::new(bu_query(rules, b, props, fuel, fires)),
        ),
        Query::Diff(a, b) => Query::Diff(
            Box::new(bu_query(rules, a, props, fuel, fires)),
            Box::new(bu_query(rules, b, props, fuel, fires)),
        ),
    };
    exhaust_query(rules, rebuilt.normalize(), props, fuel, fires)
}

fn bu_func(
    rules: &[Oriented],
    f: &Func,
    props: &PropDb,
    fuel: usize,
    fires: &mut usize,
) -> Func {
    macro_rules! f2 {
        ($ctor:path, $a:expr, $b:expr) => {
            $ctor(
                Box::new(bu_func(rules, $a, props, fuel, fires)),
                Box::new(bu_func(rules, $b, props, fuel, fires)),
            )
        };
    }
    macro_rules! pf {
        ($ctor:path, $p:expr, $g:expr) => {
            $ctor(
                Box::new(bu_pred(rules, $p, props, fuel, fires)),
                Box::new(bu_func(rules, $g, props, fuel, fires)),
            )
        };
    }
    let rebuilt = match f {
        Func::Compose(a, b) => f2!(Func::Compose, a, b),
        Func::PairWith(a, b) => f2!(Func::PairWith, a, b),
        Func::Times(a, b) => f2!(Func::Times, a, b),
        Func::Nest(a, b) => f2!(Func::Nest, a, b),
        Func::Unnest(a, b) => f2!(Func::Unnest, a, b),
        Func::Iterate(p, g) => pf!(Func::Iterate, p, g),
        Func::Iter(p, g) => pf!(Func::Iter, p, g),
        Func::Join(p, g) => pf!(Func::Join, p, g),
        Func::BIterate(p, g) => pf!(Func::BIterate, p, g),
        Func::Cond(p, a, b) => Func::Cond(
            Box::new(bu_pred(rules, p, props, fuel, fires)),
            Box::new(bu_func(rules, a, props, fuel, fires)),
            Box::new(bu_func(rules, b, props, fuel, fires)),
        ),
        Func::ConstF(q) => Func::ConstF(Box::new(bu_query(rules, q, props, fuel, fires))),
        Func::CurryF(g, q) => Func::CurryF(
            Box::new(bu_func(rules, g, props, fuel, fires)),
            Box::new(bu_query(rules, q, props, fuel, fires)),
        ),
        leaf => leaf.clone(),
    };
    exhaust_func(rules, rebuilt.normalize(), props, fuel, fires)
}

fn bu_pred(
    rules: &[Oriented],
    p: &Pred,
    props: &PropDb,
    fuel: usize,
    fires: &mut usize,
) -> Pred {
    let rebuilt = match p {
        Pred::Oplus(q, f) => Pred::Oplus(
            Box::new(bu_pred(rules, q, props, fuel, fires)),
            Box::new(bu_func(rules, f, props, fuel, fires)),
        ),
        Pred::And(a, b) => Pred::And(
            Box::new(bu_pred(rules, a, props, fuel, fires)),
            Box::new(bu_pred(rules, b, props, fuel, fires)),
        ),
        Pred::Or(a, b) => Pred::Or(
            Box::new(bu_pred(rules, a, props, fuel, fires)),
            Box::new(bu_pred(rules, b, props, fuel, fires)),
        ),
        Pred::Not(q) => Pred::Not(Box::new(bu_pred(rules, q, props, fuel, fires))),
        Pred::Conv(q) => Pred::Conv(Box::new(bu_pred(rules, q, props, fuel, fires))),
        Pred::CurryP(q, payload) => Pred::CurryP(
            Box::new(bu_pred(rules, q, props, fuel, fires)),
            Box::new(bu_query(rules, payload, props, fuel, fires)),
        ),
        leaf => leaf.clone(),
    };
    exhaust_pred(rules, rebuilt.normalize(), props, fuel, fires)
}

/// Default bound on fixpoint iterations; generous for any realistic query.
pub const DEFAULT_FUEL: usize = 10_000;

/// Apply `rules` to `q` repeatedly (leftmost-outermost, first matching rule)
/// until no rule applies or `fuel` steps have been taken. Returns the normal
/// form and the full derivation trace.
pub fn rewrite_fix(
    rules: &[Oriented],
    q: &Query,
    props: &PropDb,
    fuel: usize,
) -> (Query, Trace) {
    let mut cur = q.normalize();
    let mut trace = Trace::new();
    for _ in 0..fuel {
        match rewrite_once_query(rules, &cur, props) {
            Some(applied) => {
                cur = applied.result.normalize();
                trace.steps.push(Step {
                    rule_id: applied.rule_id,
                    dir: applied.dir,
                    after: cur.clone(),
                });
            }
            None => break,
        }
    }
    (cur, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::Rule;
    use kola::parse::parse_query;

    fn props() -> PropDb {
        PropDb::new()
    }

    #[test]
    fn rewrite_inside_query() {
        let r = Rule::func("2", "id-left", "id . $f", "$f");
        let q = parse_query("iterate(Kp(T), id . age) ! P").unwrap();
        let rules = [Oriented::fwd(&r)];
        let a = rewrite_once_query(&rules, &q, &props()).unwrap();
        assert_eq!(a.result, parse_query("iterate(Kp(T), age) ! P").unwrap());
        assert_eq!(a.rule_id, "2");
    }

    #[test]
    fn rewrite_inside_pred_inside_func() {
        let r = Rule::pred("3", "oplus-id", "%p @ id", "%p");
        let q = parse_query("iterate(gt @ id, age) ! P").unwrap();
        let rules = [Oriented::fwd(&r)];
        let a = rewrite_once_query(&rules, &q, &props()).unwrap();
        assert_eq!(a.result, parse_query("iterate(gt, age) ! P").unwrap());
    }

    #[test]
    fn rewrite_inside_const_payload() {
        let r = Rule::query("u", "union-self", "^A union ^A", "^A");
        let q = parse_query("Kf(P union P) ! V").unwrap();
        let rules = [Oriented::fwd(&r)];
        let a = rewrite_once_query(&rules, &q, &props()).unwrap();
        assert_eq!(a.result, parse_query("Kf(P) ! V").unwrap());
    }

    #[test]
    fn fixpoint_terminates_and_traces() {
        let r = Rule::func("2", "id-left", "id . $f", "$f");
        let q = parse_query("id . id . id . age ! P").unwrap();
        let rules = [Oriented::fwd(&r)];
        let (out, trace) = rewrite_fix(&rules, &q, &props(), DEFAULT_FUEL);
        assert_eq!(out, parse_query("age ! P").unwrap());
        assert_eq!(trace.justifications(), vec!["2", "2", "2"]);
    }

    #[test]
    fn backward_direction_recorded() {
        let r = Rule::func("2", "id-left", "id . $f", "$f");
        let q = parse_query("age ! P").unwrap();
        let rules = [Oriented::bwd(&r)];
        let a = rewrite_once_query(&rules, &q, &props()).unwrap();
        assert_eq!(a.result, parse_query("id . age ! P").unwrap());
        assert_eq!(a.dir, Direction::Backward);
        let step = Step {
            rule_id: a.rule_id,
            dir: a.dir,
            after: a.result,
        };
        assert_eq!(step.justification(), "2-1");
    }

    #[test]
    fn precondition_gates_application() {
        use crate::props::{PropKind, PropTerm};
        // injective(f) :: iterate(Kp(T), $f) ! (^A intersect ^B) =>
        //                 (iterate(Kp(T), $f) ! ^A) intersect (... ^B)
        let r = Rule::query(
            "inj",
            "push-intersect",
            "iterate(Kp(T), $f) ! (^A intersect ^B)",
            "(iterate(Kp(T), $f) ! ^A) intersect (iterate(Kp(T), $f) ! ^B)",
        )
        .with_precondition(PropKind::Injective, PropTerm::func("f"));
        let q = parse_query("iterate(Kp(T), name) ! (P intersect Q)").unwrap();
        let rules = [Oriented::fwd(&r)];
        // Without the annotation: blocked.
        assert!(rewrite_once_query(&rules, &q, &PropDb::new()).is_none());
        // With `name` declared a key: fires.
        let mut db = PropDb::new();
        db.declare_injective("name");
        assert!(rewrite_once_query(&rules, &q, &db).is_some());
    }
}
