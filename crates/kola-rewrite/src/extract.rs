//! Cost-based extraction from an [`EGraph`]: pick the cheapest term each
//! e-class can denote, under a pluggable [`CostModel`].
//!
//! Extraction is a Bellman-Ford-style relaxation: a class's best cost is
//! the min over its e-nodes of `node_cost(tag, payload, best kid costs)`,
//! iterated to fixpoint. Classes reachable only through cycles (which
//! saturation can create — `f = id . f` is a perfectly good equality) never
//! acquire a finite cost and are simply not extractable; any class that
//! held a concrete term before saturation always is, so the engine's root
//! class always extracts.
//!
//! Materialization ([`Extractor::term`]) follows best nodes back down
//! through the interner. `∘` nodes go through [`crate::imatch::icompose`],
//! so the extracted term is right-normalized even though e-classes carry no
//! associativity discipline — saturation may build `(f ∘ g) ∘ h` shapes,
//! and they flatten here. Cost models must therefore be
//! association-insensitive (all provided ones are: they only sum over
//! constructor occurrences).
//!
//! Determinism: relaxation scans classes in id order and nodes in sorted
//! order, replacing only on *strictly* smaller cost, so ties resolve to the
//! first candidate in canonical order and two runs extract identical terms.

use crate::egraph::{ClassId, EGraph, ENode};
use crate::imatch::icompose;
use kola::intern::{ITerm, Interner, Payload, Tag};
use std::collections::HashMap;

/// A cost model over e-nodes. `kid_costs` are the best costs of the
/// children's classes; implementations combine them with the node's own
/// weight (use saturating arithmetic — saturation graphs can be deep).
///
/// **Contract:** the result must be *strictly greater* than every entry of
/// `kid_costs` (give every constructor weight ≥ 1). Materialization follows
/// best-node edges, and strict monotonicity is what makes that walk acyclic
/// through cyclic e-classes. All provided models satisfy this.
///
/// `Send + Sync` so an engine holding a boxed model stays movable across
/// service worker threads.
pub trait CostModel: Send + Sync {
    /// Cost of a term built from this constructor over the cheapest
    /// realization of each child.
    fn node_cost(&self, tag: Tag, payload: &Payload, kid_costs: &[u64]) -> u64;

    /// Short display name (benches, logs).
    fn name(&self) -> &'static str {
        "cost"
    }
}

/// Term size: every constructor costs 1. Extraction under this model
/// minimizes node count — the same measure the fixpoint engine's
/// best-so-far tracking uses, which is what the differential parity gate
/// (`tests/egraph_parity.rs`) compares.
#[derive(Debug, Clone, Copy, Default)]
pub struct TermSize;

impl CostModel for TermSize {
    fn node_cost(&self, _tag: Tag, _payload: &Payload, kid_costs: &[u64]) -> u64 {
        kid_costs.iter().fold(1u64, |acc, &k| acc.saturating_add(k))
    }

    fn name(&self) -> &'static str {
        "term-size"
    }
}

/// Operator-weighted cost: a coarse physical model that charges
/// iteration-shaped operators (nested-loop scans) heavily, `flat`
/// (materializing nested collections) moderately, and joins — which a
/// backend can hash or sort — lightly. This is the model under which
/// equality saturation rediscovers the paper's Figure 3 hidden-join plan:
/// the KG1 and KG2 forms are size-comparable, but KG2's `join` beats KG1's
/// nested `iter`s by orders of weight. A finer effort model (e.g. one fed
/// by `kola-exec`'s cardinality estimates) slots in through the same trait.
#[derive(Debug, Clone, Copy, Default)]
pub struct OpWeight;

impl CostModel for OpWeight {
    fn node_cost(&self, tag: Tag, _payload: &Payload, kid_costs: &[u64]) -> u64 {
        let own: u64 = match tag {
            Tag::FIterate | Tag::FIter | Tag::FBIterate => 24,
            Tag::FFlat | Tag::FBFlat => 8,
            Tag::FJoin => 4,
            _ => 1,
        };
        kid_costs.iter().fold(own, |acc, &k| acc.saturating_add(k))
    }

    fn name(&self) -> &'static str {
        "op-weight"
    }
}

/// Best cost and witness node per class, computed once per e-graph state.
#[derive(Debug)]
pub struct Extractor {
    /// Indexed by raw class id (consult via `find`); `None` = unextractable.
    best: Vec<Option<(u64, ENode)>>,
}

impl Extractor {
    /// Relax to fixpoint over `eg` (which must be clean — rebuild first).
    pub fn new(eg: &EGraph, cost: &dyn CostModel) -> Extractor {
        let mut best: Vec<Option<(u64, ENode)>> = vec![None; eg.id_bound()];
        loop {
            let mut changed = false;
            for c in eg.class_ids() {
                for node in eg.nodes(c) {
                    let mut kid_costs = Vec::with_capacity(node.kids.len());
                    let mut all = true;
                    for &k in &node.kids {
                        match &best[eg.find(k) as usize] {
                            Some((kc, _)) => kid_costs.push(*kc),
                            None => {
                                all = false;
                                break;
                            }
                        }
                    }
                    if !all {
                        continue;
                    }
                    let total = cost.node_cost(node.tag, &node.payload, &kid_costs);
                    let slot = &mut best[c as usize];
                    if slot.as_ref().is_none_or(|(old, _)| total < *old) {
                        *slot = Some((total, node.clone()));
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        Extractor { best }
    }

    /// Best cost of class `c`, if extractable.
    pub fn cost(&self, eg: &EGraph, c: ClassId) -> Option<u64> {
        self.best[eg.find(c) as usize].as_ref().map(|(k, _)| *k)
    }

    /// Materialize the cheapest term of class `c` into the interner.
    /// Returns `None` iff the class is unextractable.
    pub fn term(&self, eg: &EGraph, c: ClassId, it: &mut Interner) -> Option<ITerm> {
        let mut memo: HashMap<ClassId, ITerm> = HashMap::new();
        self.term_rec(eg, eg.find(c), it, &mut memo)
    }

    fn term_rec(
        &self,
        eg: &EGraph,
        c: ClassId,
        it: &mut Interner,
        memo: &mut HashMap<ClassId, ITerm>,
    ) -> Option<ITerm> {
        let c = eg.find(c);
        if let Some(t) = memo.get(&c) {
            return Some(t.clone());
        }
        let (_, node) = self.best[c as usize].as_ref()?;
        let mut kids = Vec::with_capacity(node.kids.len());
        for &k in &node.kids {
            kids.push(self.term_rec(eg, k, it, memo)?);
        }
        let t = if node.tag == Tag::FCompose {
            // Classes carry no associativity discipline; restore the
            // right-normalized chain invariant on the way out.
            let [a, b]: [ITerm; 2] = kids.try_into().expect("compose has two kids");
            icompose(it, a, b)
        } else {
            it.mk(node.tag, node.payload.clone(), kids)
        };
        memo.insert(c, t.clone());
        Some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::egraph::EGraph;
    use kola::parse::parse_func;

    #[test]
    fn extracts_the_smaller_member_after_union() {
        let mut it = Interner::new();
        let mut eg = EGraph::new();
        let big = it.intern_func(&parse_func("id . id . age").unwrap().normalize());
        let small = it.intern_func(&parse_func("age").unwrap());
        let cb = eg.add_term(&big);
        let cs = eg.add_term(&small);
        eg.union(cb, cs);
        eg.rebuild();
        let ext = Extractor::new(&eg, &TermSize);
        assert_eq!(ext.cost(&eg, cb), Some(1));
        let t = ext.term(&eg, cb, &mut it).unwrap();
        assert!(t.ptr_eq(&small));
    }

    #[test]
    fn cyclic_class_extracts_its_finite_witness() {
        let mut eg = EGraph::new();
        // Build `age` and `id ∘ age`, then assert they are equal: the class
        // now contains a node whose child is the class itself (a cycle),
        // plus the finite leaf witness. Extraction must terminate and pick
        // the witness.
        let age = eg.add(ENode::leaf(Tag::FPrim, Payload::Sym("age".into())));
        let idc = eg.add(ENode::leaf(Tag::FId, Payload::None));
        let comp = eg.add(ENode {
            tag: Tag::FCompose,
            payload: Payload::None,
            kids: vec![idc, age],
        });
        eg.union(comp, age);
        eg.rebuild();
        let ext = Extractor::new(&eg, &TermSize);
        assert_eq!(ext.cost(&eg, comp), Some(1));
        let mut it = Interner::new();
        let t = ext.term(&eg, comp, &mut it).unwrap();
        assert_eq!(t.to_func(), parse_func("age").unwrap());
    }
}
