//! The performance stack over the rewrite engine: hash-consed terms,
//! discrimination-tree rule dispatch, normal-subtree skipping, and a
//! memoized normalization cache — all behind an [`EngineConfig`] so the
//! boxed engine (and the depth-1 head-symbol index the tree replaced)
//! remain available as differential-testing oracles.
//!
//! ## Exactness contract
//!
//! [`Engine::normalize_with`] is a drop-in replacement for
//! [`crate::engine::rewrite_fix_with`]: same redex choice
//! (leftmost-outermost, first matching rule in list order), same budgets,
//! same fault injection, same quarantine behavior, same report and trace
//! (the trace only when [`EngineConfig::trace`] is on — turning it off
//! changes nothing but leaves `Rewritten::trace` empty).
//! Every layer preserves this:
//!
//! * **Interning** maps terms into the hash-cons arena of
//!   [`kola::intern`]; equality and cycle detection become pointer
//!   identity, size/depth checks read cached fields, and rule application
//!   ([`crate::imatch`]) shares every bound subterm. The
//!   [`crate::imatch::icompose`] invariant keeps every constructed term
//!   right-normalized, so no whole-term `normalize()` pass is needed.
//! * **Indexing** walks the interned node through the discrimination tree
//!   ([`RuleIndex`]) — or, under [`EngineConfig::head_indexed`], merges the
//!   head-symbol [`HeadIndex`]'s buckets — returning candidates in
//!   ascending rule position, so the candidate scan tries the same rules in
//!   the same order, minus ones whose pattern skeleton already rules them
//!   out.
//! * **Normal-subtree marking** skips subtrees proven redex-free under the
//!   *full* rule set. Marks are only committed for fully scanned subtrees
//!   (no depth clip inside), in steps with no rule failures and no active
//!   quarantine — normality under the full set implies normality under any
//!   quarantined subset, so a skip can never hide a redex the boxed engine
//!   would have found.
//! * **Memoization** replays a previous *clean* derivation (normal-form
//!   stop, zero failures, no depth clip, no faults, no deadline) when the
//!   same input term recurs and the stored run fits inside the current
//!   budget; otherwise it falls through to a live run.
//!
//! ## Long-lived engines
//!
//! An [`Engine`] is built to be *kept*: a service worker owns one for its
//! whole lifetime and the arena, marks, and memo amortize across requests.
//! Two APIs make that safe. [`Engine::set_epoch`] scopes the caches to a
//! rule-set snapshot (breaker trips/resets swap epochs; marks and memo
//! entries never cross one), masking disabled rules out of the candidate
//! scan without rebuilding the index. [`EngineConfig::arena_capacity`]
//! bounds arena growth: between runs, an over-cap arena is dropped wholesale
//! together with every address-keyed cache ([`Engine::reset_caches`]), so a
//! poison request costs one cold start, not permanent bloat.

use crate::budget::{Budget, RewriteError, RewriteReport, StopReason};
use crate::catalog::HeadIndex;
use crate::dtree::RuleIndex;
use crate::engine::{rewrite_fix_with, Gov, Oriented, Rewritten, Step, Trace};
use crate::extract::{CostModel, TermSize};
use crate::fault::{FaultKind, FaultPlan};
use crate::imatch::{
    icompose, ipreconditions_hold, itry_apply_func, itry_apply_pred, itry_apply_query,
};
use crate::props::PropDb;
use crate::rule::Direction;
use crate::saturate::{saturate_from_trajectory, SaturationParams};
use kola::intern::{ITerm, Interner, Payload, Tag};
use kola::term::Query;
use std::collections::{HashMap, HashSet};

/// Which layers of the performance stack are active. The default is the
/// full stack; [`EngineConfig::naive`] delegates to the boxed engine so
/// differential tests can compare the two.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Rewrite over hash-consed terms (prerequisite for the other layers).
    pub interned: bool,
    /// Dispatch rules through an index instead of a linear scan.
    pub indexed: bool,
    /// Which index: the discrimination tree ([`RuleIndex`], the default) or
    /// the depth-1 head-symbol [`HeadIndex`] it replaced (kept as a
    /// differential oracle; see [`EngineConfig::head_indexed`]). Ignored
    /// when `indexed` is off.
    pub tree_index: bool,
    /// Cache clean normalizations for replay.
    pub memoized: bool,
    /// Bounded LRU capacity of the normalization memo.
    pub memo_capacity: usize,
    /// Arena compaction threshold in live nodes (`0` = unbounded). A
    /// long-lived engine checks this *between* runs: when a finished run
    /// has left more interned nodes than the cap, the memo, the
    /// normal-subtree marks, and the arena are all dropped before the next
    /// run starts, so one adversarially large request cannot bloat a
    /// persistent worker engine forever.
    pub arena_capacity: usize,
    /// Record the per-step derivation [`Trace`] (each step reifies the
    /// whole after-term back into a boxed [`Query`], an O(term) allocation
    /// per step). `true` preserves the historical drop-in contract with
    /// [`rewrite_fix_with`]; a service that does not need provenance turns
    /// it off ([`Engine::set_trace`]) and the hot loop allocates nothing
    /// per step beyond the rewritten term itself. The [`RewriteReport`]
    /// (rule stats, stop reason, failures) is kept either way.
    pub trace: bool,
    /// Equality-saturation mode: after the ordinary destructive fixpoint
    /// run (the *seed wave*), apply the catalog non-destructively over an
    /// e-graph to saturation and return the cheapest equivalent plan under
    /// the engine's [`CostModel`] ([`Engine::set_cost_model`]). Never worse
    /// than the fixpoint output under the extraction model — the wave is
    /// unioned into the root class before saturating. Requires the tree
    /// index ([`EngineConfig::tree_index`]); falls back to plain fixpoint
    /// otherwise, and whenever faults are injected (fault semantics are
    /// defined against the destructive engine).
    pub saturate: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::fast()
    }
}

impl EngineConfig {
    /// The boxed reference engine — no interning, no index, no memo.
    pub fn naive() -> Self {
        EngineConfig {
            interned: false,
            indexed: false,
            tree_index: false,
            memoized: false,
            memo_capacity: 0,
            arena_capacity: 0,
            trace: true,
            saturate: false,
        }
    }

    /// Interned terms only (linear rule scan, no memo).
    pub fn interned_only() -> Self {
        EngineConfig {
            interned: true,
            indexed: false,
            tree_index: false,
            memoized: false,
            memo_capacity: 0,
            arena_capacity: 0,
            trace: true,
            saturate: false,
        }
    }

    /// Interned terms + discrimination-tree rule index, no memo.
    pub fn indexed() -> Self {
        EngineConfig {
            interned: true,
            indexed: true,
            tree_index: true,
            memoized: false,
            memo_capacity: 0,
            arena_capacity: 0,
            trace: true,
            saturate: false,
        }
    }

    /// Interned terms + the depth-1 head-symbol index, no memo — the
    /// pre-tree dispatch, kept for three-way differential testing
    /// (tree ≡ head ≡ naive) and benchmark comparison.
    pub fn head_indexed() -> Self {
        EngineConfig {
            interned: true,
            indexed: true,
            tree_index: false,
            memoized: false,
            memo_capacity: 0,
            arena_capacity: 0,
            trace: true,
            saturate: false,
        }
    }

    /// The full stack: interned + tree-indexed + memoized.
    pub fn fast() -> Self {
        EngineConfig {
            interned: true,
            indexed: true,
            tree_index: true,
            memoized: true,
            memo_capacity: 1024,
            arena_capacity: 1 << 16,
            trace: true,
            saturate: false,
        }
    }

    /// Equality-saturation mode: interned + tree-indexed, destructive wave
    /// then non-destructive saturation + cost-based extraction. No memo —
    /// the output depends on the cost model, not only on the input term,
    /// and the normalization memo stores fixpoint derivations.
    pub fn saturating() -> Self {
        EngineConfig {
            interned: true,
            indexed: true,
            tree_index: true,
            memoized: false,
            memo_capacity: 0,
            arena_capacity: 1 << 16,
            trace: true,
            saturate: true,
        }
    }
}

/// A cached clean derivation: every step (for trace/report replay), the
/// normal form, and the resource high-water marks that decide whether the
/// run fits a later budget.
#[derive(Debug)]
struct MemoEntry {
    result: ITerm,
    steps: usize,
    derivation: Vec<(String, Direction, ITerm)>,
    max_size: usize,
    max_depth: usize,
    stamp: u64,
    /// Rule-set epoch the derivation was recorded under (see
    /// [`Engine::set_epoch`]): a derivation is only replayable under the
    /// exact rule set that produced it.
    epoch: u64,
}

/// Bounded LRU keyed by interned-node identity. Eviction is a linear scan
/// for the oldest stamp — capacities are small and eviction rare, so the
/// simplicity beats a doubly-linked list.
#[derive(Debug, Default)]
struct Memo {
    map: HashMap<usize, MemoEntry>,
    tick: u64,
    hits: u64,
    /// Total lookups (hits + misses + stale evictions) — the denominator
    /// observability needs to turn [`Memo::hits`] into a hit rate.
    lookups: u64,
}

impl Memo {
    /// Look up `key`'s entry *for the given epoch*. An entry recorded under
    /// a different rule-set epoch is stale — its derivation may fire rules
    /// the current set masks (or miss rules a reset readmitted) — so it is
    /// evicted on sight and the lookup misses.
    fn get(&mut self, key: usize, epoch: u64) -> Option<&MemoEntry> {
        self.tick += 1;
        self.lookups += 1;
        let t = self.tick;
        let stale = match self.map.get_mut(&key) {
            None => return None,
            Some(e) if e.epoch != epoch => true,
            Some(e) => {
                e.stamp = t;
                self.hits += 1;
                false
            }
        };
        if stale {
            self.map.remove(&key);
            return None;
        }
        self.map.get(&key)
    }

    fn put(&mut self, key: usize, mut e: MemoEntry, capacity: usize) {
        if capacity == 0 {
            return;
        }
        self.tick += 1;
        e.stamp = self.tick;
        if !self.map.contains_key(&key) && self.map.len() >= capacity {
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k)
            {
                self.map.remove(&victim);
            }
        }
        self.map.insert(key, e);
    }
}

/// The engine's built dispatch structure: the discrimination tree (the
/// default) or the head-symbol index kept as its differential oracle. Both
/// return candidate positions in ascending rule order, so [`Search`] is
/// agnostic to which one it holds.
#[derive(Debug)]
enum BuiltIndex {
    Head(HeadIndex),
    Tree(RuleIndex),
}

impl BuiltIndex {
    fn contains(&self, rule_id: &str) -> bool {
        match self {
            BuiltIndex::Head(ix) => ix.contains(rule_id),
            BuiltIndex::Tree(ix) => ix.contains(rule_id),
        }
    }
}

/// A found redex, already rewritten into the whole-term result.
struct AppliedI {
    result: ITerm,
    rule_id: String,
    dir: Direction,
}

enum Level {
    F,
    P,
    Q,
}

fn level_of(t: Tag) -> Level {
    if t <= Tag::FSetDiff {
        Level::F
    } else if t <= Tag::PCurryP {
        Level::P
    } else {
        Level::Q
    }
}

/// Head key of a term node: for function nodes the chain's first segment
/// (what the prefix matcher commits on), otherwise the node itself; the
/// child component is that segment's first child, if any.
fn term_key(t: &ITerm) -> (Tag, Option<Tag>) {
    let mut seg = t;
    while seg.tag() == Tag::FCompose {
        seg = &seg.kids()[0];
    }
    (seg.tag(), seg.kids().first().map(ITerm::tag))
}

fn iinflate(out: ITerm, n: usize, level: &Level, it: &mut Interner) -> ITerm {
    let mut acc = out;
    for _ in 0..n {
        let id = it.mk(Tag::FId, Payload::None, vec![]);
        acc = match level {
            Level::F => it.mk(Tag::FCompose, Payload::None, vec![id, acc]),
            Level::P => it.mk(Tag::POplus, Payload::None, vec![acc, id]),
            Level::Q => it.mk(Tag::QApp, Payload::None, vec![id, acc]),
        };
    }
    acc
}

/// One redex search: borrows the engine's parts disjointly so the interner
/// can be threaded mutably while rules/index stay shared.
struct Search<'r, 'a> {
    rules: &'r [Oriented<'a>],
    props: &'r PropDb,
    index: Option<&'r BuiltIndex>,
    /// Per-position activity mask from the current epoch's rule snapshot
    /// (`None` = the full set). Skipping inactive positions in the
    /// ascending-position candidate scan visits exactly the rules, in
    /// exactly the order, of an index built over the active subset.
    active: Option<&'r [bool]>,
    normal: &'r HashSet<usize>,
    visits: &'r mut u64,
    consults: &'r mut [u64],
    it: &'r mut Interner,
    to_mark: Vec<usize>,
    cand: Vec<usize>,
}

impl Search<'_, '_> {
    /// Leftmost-outermost redex search, mirroring the boxed `ro_*` family:
    /// clip first, rules at the node, then descend child by child.
    fn search(&mut self, t: &ITerm, d: usize, gov: &mut Gov) -> Option<AppliedI> {
        if gov.clip(d) {
            return None;
        }
        *self.visits += 1;
        if self.normal.contains(&t.id()) {
            return None;
        }
        if let Some(found) = self.rules_at(t, gov) {
            return Some(found);
        }
        let kids = t.kids();
        for (i, kid) in kids.iter().enumerate() {
            if let Some(a) = self.search(kid, d + 1, gov) {
                let result = if t.tag() == Tag::FCompose && i == 0 {
                    // A rewritten head segment may itself be a chain;
                    // icompose re-associates so the invariant holds.
                    icompose(self.it, a.result, kids[1].clone())
                } else {
                    let mut nk = kids.to_vec();
                    nk[i] = a.result;
                    self.it.mk(t.tag(), t.payload().clone(), nk)
                };
                return Some(AppliedI {
                    result,
                    rule_id: a.rule_id,
                    dir: a.dir,
                });
            }
        }
        // Fully scanned, no redex: a candidate "normal" mark, valid only if
        // no descendant was depth-clipped away.
        if d + t.depth() <= gov.max_depth {
            self.to_mark.push(t.id());
        }
        None
    }

    fn rules_at(&mut self, t: &ITerm, gov: &mut Gov) -> Option<AppliedI> {
        let level = level_of(t.tag());
        let mut cand = std::mem::take(&mut self.cand);
        cand.clear();
        match self.index {
            Some(BuiltIndex::Head(ix)) => {
                let (root, child) = term_key(t);
                match level {
                    Level::F => ix.func_candidates(root, child, &mut cand),
                    Level::P => ix.pred_candidates(root, child, &mut cand),
                    Level::Q => ix.query_candidates(root, child, &mut cand),
                }
            }
            Some(BuiltIndex::Tree(ix)) => match level {
                Level::F => ix.func_candidates(t, &mut cand),
                Level::P => ix.pred_candidates(t, &mut cand),
                Level::Q => ix.query_candidates(t, &mut cand),
            },
            None => cand.extend(0..self.rules.len()),
        }
        let mut found = None;
        for &pos in &cand {
            if self.active.is_some_and(|m| !m[pos]) {
                continue;
            }
            let o = &self.rules[pos];
            if gov.report.is_quarantined(&o.rule.id) {
                continue;
            }
            self.consults[pos] += 1;
            let attempt = match level {
                Level::F => itry_apply_func(o.rule, t, o.dir, self.it),
                Level::P => itry_apply_pred(o.rule, t, o.dir, self.it),
                Level::Q => itry_apply_query(o.rule, t, o.dir, self.it),
            };
            match attempt {
                Ok(None) => continue,
                Ok(Some((out, s))) => {
                    if !ipreconditions_hold(&o.rule.preconditions, &s, self.props) {
                        continue;
                    }
                    match gov.faults.fault_for(&o.rule.id, gov.step) {
                        None => {
                            found = Some(AppliedI {
                                result: out,
                                rule_id: o.rule.id.clone(),
                                dir: o.dir,
                            });
                            break;
                        }
                        Some(FaultKind::Oversize(n)) => {
                            let inflated = iinflate(out, *n, &level, self.it);
                            found = Some(AppliedI {
                                result: inflated,
                                rule_id: o.rule.id.clone(),
                                dir: o.dir,
                            });
                            break;
                        }
                        Some(FaultKind::Fail) => {
                            let e = RewriteError::RuleFailed {
                                rule_id: o.rule.id.clone(),
                                detail: "injected failure".into(),
                            };
                            gov.record_failure(&o.rule.id, &e);
                            continue;
                        }
                        // A poison rule's bug is not a contained error: it
                        // unwinds (same as the boxed engine's behavior).
                        Some(FaultKind::Panic) => crate::fault::poison_panic(&o.rule.id),
                    }
                }
                Err(e) => {
                    gov.record_failure(&o.rule.id, &e);
                    continue;
                }
            }
        }
        self.cand = cand;
        found
    }
}

/// The interned + indexed + memoized fixpoint engine. Holds its arena,
/// rule index, normal-subtree marks, and memo across runs, so repeated
/// normalizations (fuzz gates, strategy pipelines, benches) amortize.
///
/// Rules and property database are fixed at construction — the caches are
/// only sound for the rule set they were built against.
pub struct Engine<'a> {
    rules: Vec<Oriented<'a>>,
    props: &'a PropDb,
    config: EngineConfig,
    // Declared before `interner`: entries hold `ITerm`s that must drop
    // while the arena's table is still alive.
    memo: Memo,
    normal: HashSet<usize>,
    index: Option<BuiltIndex>,
    index_dirty: bool,
    /// Current rule-set epoch (see [`Engine::set_epoch`]).
    epoch: u64,
    /// Per-position activity mask for the current epoch; `None` = all.
    active: Option<Vec<bool>>,
    /// Arena compactions performed so far (see
    /// [`EngineConfig::arena_capacity`]).
    compactions: u64,
    visits: u64,
    consults: Vec<u64>,
    /// Extraction objective for saturation mode (unused by fixpoint runs).
    cost_model: Box<dyn CostModel>,
    interner: Interner,
}

impl<'a> Engine<'a> {
    /// Engine over `rules` (tried in slice order) with `props` available to
    /// preconditions.
    pub fn new(rules: Vec<Oriented<'a>>, props: &'a PropDb, config: EngineConfig) -> Engine<'a> {
        let consults = vec![0; rules.len()];
        Engine {
            rules,
            props,
            config,
            memo: Memo::default(),
            normal: HashSet::new(),
            index: None,
            index_dirty: false,
            epoch: 0,
            active: None,
            compactions: 0,
            visits: 0,
            consults,
            cost_model: Box::new(TermSize),
            interner: Interner::new(),
        }
    }

    /// Install the extraction objective for saturation mode (default:
    /// [`TermSize`]). Ignored by fixpoint runs. Swapping models touches no
    /// cache — extraction is recomputed per run.
    pub fn set_cost_model(&mut self, model: Box<dyn CostModel>) {
        self.cost_model = model;
    }

    /// Display name of the current extraction cost model.
    pub fn cost_model_name(&self) -> &'static str {
        self.cost_model.name()
    }

    /// Install the rule-set snapshot for subsequent runs: `epoch` names the
    /// snapshot (a service uses its breaker generation) and `disabled`
    /// lists rule ids excluded from it. The rules stay in place and the
    /// rule index is *not* rebuilt — excluded positions are masked
    /// out of the candidate scan, which visits exactly the rules, in
    /// exactly the order, of an index built over the remaining subset.
    ///
    /// Cheap when the epoch is unchanged (one comparison). On change the
    /// normal-subtree marks are cleared and memo entries from other epochs
    /// become unreplayable (evicted lazily on lookup): both record facts
    /// about one rule set that do not transfer to another — a mark made
    /// under a larger set is still sound under a subset, but a memoized
    /// derivation may fire a now-masked rule, and after a reset the mask
    /// grows back, invalidating subset-era marks. Epochs never repeat, so
    /// clearing is equivalent to tagging.
    pub fn set_epoch(&mut self, epoch: u64, disabled: &[String]) {
        if epoch == self.epoch {
            return;
        }
        self.epoch = epoch;
        self.normal.clear();
        self.active = if disabled.is_empty() {
            None
        } else {
            let off: HashSet<&str> = disabled.iter().map(String::as_str).collect();
            Some(
                self.rules
                    .iter()
                    .map(|o| !off.contains(o.rule.id.as_str()))
                    .collect(),
            )
        };
    }

    /// Enable or disable per-step [`Trace`] recording for subsequent runs
    /// (see [`EngineConfig::trace`]). Only the interned engine is affected:
    /// the `naive` configuration delegates to [`rewrite_fix_with`], which
    /// always traces. Flipping this touches no cache — traces are run-local.
    pub fn set_trace(&mut self, on: bool) {
        self.config.trace = on;
    }

    /// Whether per-step trace recording is currently on.
    pub fn trace_enabled(&self) -> bool {
        self.config.trace
    }

    /// Drop every cross-run cache: memo entries first (they pin interned
    /// nodes), then the normal-subtree marks (raw node addresses a fresh
    /// arena could recycle), then the arena itself. The rule index
    /// survives — it holds rule positions, not terms. Counters
    /// ([`Engine::work`], [`Engine::memo_hits`]) keep accumulating.
    pub fn reset_caches(&mut self) {
        self.memo.map.clear();
        self.normal.clear();
        self.interner.clear();
        self.compactions += 1;
    }

    /// Live nodes currently in the intern arena.
    pub fn arena_len(&self) -> usize {
        self.interner.len()
    }

    /// How many times the bounded-arena compaction has fired.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Normalize under `budget` with no fault injection.
    pub fn normalize(&mut self, q: &Query, budget: &Budget) -> Rewritten {
        self.normalize_with(q, budget, &FaultPlan::default())
    }

    /// [`Engine::normalize_with`] behind a panic boundary: a rule that
    /// unwinds (a [`FaultKind::Panic`] fault or a genuine bug) is caught
    /// and classified instead of propagating. The engine's cross-run state
    /// survives a caught panic intact: the interner is append-only (a
    /// partially built term is just unreferenced garbage in the arena),
    /// normal-subtree marks and the memo are only committed after clean
    /// steps/runs, and the index is rebuilt from the rule list on demand.
    pub fn try_normalize_with(
        &mut self,
        q: &Query,
        budget: &Budget,
        faults: &FaultPlan,
    ) -> Result<Rewritten, crate::fault::CaughtPanic> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.normalize_with(q, budget, faults)
        }))
        .map_err(crate::fault::CaughtPanic::from_payload)
    }

    /// Drop-in replacement for [`rewrite_fix_with`] (same redex choice,
    /// budgets, faults, quarantine, report, and trace), over whichever
    /// layers [`EngineConfig`] enables.
    pub fn normalize_with(&mut self, q: &Query, budget: &Budget, faults: &FaultPlan) -> Rewritten {
        if !self.config.interned {
            return rewrite_fix_with(&self.rules, q, self.props, budget, faults);
        }
        // Bounded arena growth: compact between runs, when no run-local
        // handles exist, so `Interner::clear`'s largest-first release is
        // safe and no address-keyed cache can alias a recycled node.
        if self.config.arena_capacity != 0 && self.interner.len() > self.config.arena_capacity {
            self.reset_caches();
        }
        if self.config.indexed {
            let want_tree = self.config.tree_index;
            let rebuild = self.index_dirty
                || !matches!(
                    (&self.index, want_tree),
                    (Some(BuiltIndex::Tree(_)), true) | (Some(BuiltIndex::Head(_)), false)
                );
            if rebuild {
                self.index = Some(if want_tree {
                    BuiltIndex::Tree(RuleIndex::build(&self.rules))
                } else {
                    BuiltIndex::Head(HeadIndex::build(&self.rules))
                });
                self.index_dirty = false;
            } else if let Some(BuiltIndex::Tree(ix)) = &mut self.index {
                // Quarantine is per-run state: un-journal last run's
                // evictions (O(evicted rules), not an index rebuild).
                ix.restore();
            }
        } else {
            self.index = None;
        }

        // Saturation mode: seed wave + e-graph saturation + extraction.
        // Fault plans stay on the destructive path — fault semantics are
        // defined step-by-step against it — as does a non-tree index.
        if self.config.saturate && faults.is_empty() {
            if let Some(r) = self.saturate_run(q, budget, faults) {
                return r;
            }
        }
        self.fixpoint_run(q, budget, faults)
    }

    /// The destructive leftmost-outermost fixpoint loop (the historical
    /// body of [`Engine::normalize_with`]; that entry now also hosts the
    /// cache maintenance and the saturation-mode branch). Assumes caches
    /// and index are already prepared for this run.
    fn fixpoint_run(&mut self, q: &Query, budget: &Budget, faults: &FaultPlan) -> Rewritten {
        let mut report = RewriteReport::new();
        let mut trace = Trace::new();
        let mut cur = self.interner.intern_query(&q.normalize());
        if cur.size() > budget.max_term_size {
            let e = RewriteError::TermTooLarge {
                size: cur.size(),
                limit: budget.max_term_size,
            };
            report.failures.push(e.to_string());
            report.stop = StopReason::TermTooLarge;
            return Rewritten {
                query: cur.to_query(),
                trace,
                report,
            };
        }

        let memo_eligible = self.config.memoized && faults.is_empty() && budget.deadline.is_none();
        if memo_eligible {
            if let Some(e) = self.memo.get(cur.id(), self.epoch) {
                if e.steps < budget.max_steps
                    && e.max_depth <= budget.max_depth
                    && e.max_size <= budget.max_term_size
                {
                    for (rule_id, dir, after) in &e.derivation {
                        report.record_fire(rule_id);
                        if self.config.trace {
                            trace.steps.push(Step {
                                rule_id: rule_id.clone(),
                                dir: *dir,
                                after: after.to_query(),
                            });
                        }
                    }
                    report.steps = e.steps;
                    report.stop = StopReason::NormalForm;
                    return Rewritten {
                        query: e.result.to_query(),
                        trace,
                        report,
                    };
                }
            }
        }

        let input = cur.clone();
        let mut seen: HashSet<usize> = HashSet::new();
        seen.insert(cur.id());
        let mut best = cur.clone();
        let mut best_size = cur.size();
        let mut derivation: Vec<(String, Direction, ITerm)> = Vec::new();
        let mut max_size = cur.size();
        let mut max_depth = cur.depth();
        let mut pruned = 0usize;

        loop {
            if report.steps >= budget.max_steps {
                report.stop = StopReason::BudgetExhausted;
                return Rewritten {
                    query: best.to_query(),
                    trace,
                    report,
                };
            }
            if budget.expired() {
                report.stop = StopReason::DeadlineExpired;
                return Rewritten {
                    query: best.to_query(),
                    trace,
                    report,
                };
            }
            // Quarantine must reach the index, not just the linear scan.
            while pruned < report.quarantined.len() {
                let id = report.quarantined[pruned].clone();
                match &mut self.index {
                    Some(BuiltIndex::Tree(ix)) => {
                        // Journaled leaf pruning: O(pattern depth) now,
                        // exact restore at the start of the next run.
                        ix.remove(&id);
                    }
                    Some(BuiltIndex::Head(ix)) => {
                        ix.remove(&id);
                        // The head index has no journal: rebuild next run.
                        self.index_dirty = true;
                    }
                    None => {}
                }
                pruned += 1;
            }
            let step = report.steps;
            let fails_before = report.total_failures();
            let (found, marks) = {
                let mut gov = Gov::new(budget, faults, &mut report, step);
                let mut s = Search {
                    rules: &self.rules,
                    props: self.props,
                    index: self.index.as_ref(),
                    active: self.active.as_deref(),
                    normal: &self.normal,
                    visits: &mut self.visits,
                    consults: &mut self.consults,
                    it: &mut self.interner,
                    to_mark: Vec::new(),
                    cand: Vec::new(),
                };
                let found = s.search(&cur, 0, &mut gov);
                (found, s.to_mark)
            };
            // Marks are sound only when the scan saw the full, failure-free
            // rule set: the marks persist across runs, while failures and
            // quarantines are transient.
            if report.total_failures() == fails_before && report.quarantined.is_empty() {
                self.normal.extend(marks);
            }
            let Some(applied) = found else {
                report.stop = StopReason::NormalForm;
                if memo_eligible
                    && !report.depth_clipped
                    && report.quarantined.is_empty()
                    && report.total_failures() == 0
                {
                    self.memo.put(
                        input.id(),
                        MemoEntry {
                            result: cur.clone(),
                            steps: report.steps,
                            derivation,
                            max_size,
                            max_depth,
                            stamp: 0,
                            epoch: self.epoch,
                        },
                        self.config.memo_capacity,
                    );
                }
                return Rewritten {
                    query: cur.to_query(),
                    trace,
                    report,
                };
            };
            let next = applied.result;
            let next_size = next.size();
            if next_size > budget.max_term_size {
                let e = RewriteError::TermTooLarge {
                    size: next_size,
                    limit: budget.max_term_size,
                };
                report.record_failure(&applied.rule_id, &e, budget.quarantine_after, report.steps);
                if !report.is_quarantined(&applied.rule_id) {
                    report.stop = StopReason::TermTooLarge;
                    return Rewritten {
                        query: best.to_query(),
                        trace,
                        report,
                    };
                }
                continue;
            }
            cur = next;
            report.steps += 1;
            report.record_fire(&applied.rule_id);
            if self.config.trace {
                trace.steps.push(Step {
                    rule_id: applied.rule_id.clone(),
                    dir: applied.dir,
                    after: cur.to_query(),
                });
            }
            derivation.push((applied.rule_id, applied.dir, cur.clone()));
            max_size = max_size.max(next_size);
            max_depth = max_depth.max(cur.depth());
            if next_size < best_size {
                best = cur.clone();
                best_size = next_size;
            }
            if !seen.insert(cur.id()) {
                report.stop = StopReason::CycleDetected;
                return Rewritten {
                    query: best.to_query(),
                    trace,
                    report,
                };
            }
        }
    }

    /// Saturation mode: run the destructive engine once (trace forced on so
    /// the full trajectory is captured), seed an e-graph with that wave,
    /// saturate under the remaining budget, and extract the cheapest
    /// equivalent plan under the engine's cost model. Returns `None` when
    /// the built index is not the discrimination tree (saturation matches
    /// through it) — the caller then falls back to plain fixpoint.
    fn saturate_run(
        &mut self,
        q: &Query,
        budget: &Budget,
        faults: &FaultPlan,
    ) -> Option<Rewritten> {
        if !matches!(self.index, Some(BuiltIndex::Tree(_))) {
            return None;
        }
        let trace_was = self.config.trace;
        self.config.trace = true;
        let fix = self.fixpoint_run(q, budget, faults);
        self.config.trace = trace_was;
        if fix.report.stop == StopReason::TermTooLarge && fix.trace.steps.is_empty() {
            // The input itself blew the size budget — nothing to saturate.
            return Some(fix);
        }
        let mut trajectory: Vec<Query> = fix.trace.steps.iter().map(|s| s.after.clone()).collect();
        trajectory.push(fix.query.clone());
        // Saturation extends the wave's report: steps already spent count
        // against the same budget, quarantines keep suppressing rules.
        let mut report = fix.report.clone();
        let Engine {
            ref rules,
            props,
            ref index,
            ref active,
            ref cost_model,
            ref mut interner,
            ..
        } = *self;
        let Some(BuiltIndex::Tree(ix)) = index.as_ref() else {
            return None;
        };
        let params = SaturationParams {
            rules,
            props,
            index: ix,
            active: active.as_deref(),
            match_cap: 24,
        };
        let sat = saturate_from_trajectory(
            q,
            &trajectory,
            &params,
            budget,
            cost_model.as_ref(),
            &mut report,
            interner,
        );
        Some(Rewritten {
            query: sat.query,
            trace: if trace_was { fix.trace } else { Trace::new() },
            report,
        })
    }

    /// Total search work so far: node visits plus interner constructions
    /// (cache misses). Used by regression tests to assert step cost is
    /// O(changed subtree), not O(term).
    pub fn work(&self) -> u64 {
        self.visits + self.interner.constructed()
    }

    /// Memo replays so far.
    pub fn memo_hits(&self) -> u64 {
        self.memo.hits
    }

    /// Raw per-position consult counters (positions follow the rule list
    /// given at construction). The allocation-free lane for callers that
    /// delta-flush attempts into per-rule metrics after each run.
    pub fn consults(&self) -> &[u64] {
        &self.consults
    }

    /// How many times `rule_id` was actually consulted (application
    /// attempted) at a node, across all runs.
    pub fn consult_count(&self, rule_id: &str) -> u64 {
        self.rules
            .iter()
            .zip(&self.consults)
            .filter(|(o, _)| o.rule.id == rule_id)
            .map(|(_, n)| *n)
            .sum()
    }

    /// True iff the rule index (tree or head-symbol) currently holds any
    /// entry for `rule_id`. False when indexing is off.
    pub fn index_contains(&self, rule_id: &str) -> bool {
        self.index.as_ref().is_some_and(|ix| ix.contains(rule_id))
    }

    /// Shape of the currently built index ([`crate::dtree::IndexStats`]),
    /// or `None` when indexing is off or no run has built one yet.
    pub fn index_stats(&self) -> Option<crate::dtree::IndexStats> {
        self.index.as_ref().map(|ix| match ix {
            BuiltIndex::Head(h) => h.describe(),
            BuiltIndex::Tree(t) => t.describe(),
        })
    }

    /// Lifetime counters for observability (all monotone except the live
    /// arena length). Cheap to read — every field is already maintained by
    /// the hot path; this just snapshots them.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            visits: self.visits,
            constructed: self.interner.constructed(),
            memo_hits: self.memo.hits,
            memo_lookups: self.memo.lookups,
            compactions: self.compactions,
            arena_len: self.interner.len(),
            arena_peak: self.interner.peak_len(),
        }
    }

    /// Per-rule consult counts across all runs, as `(rule_id, consults)` in
    /// rule-list order. A consult is an actual application attempt at a
    /// node — the number the head-symbol index exists to minimize — so this
    /// is the "rules attempted per head-key" surface for metrics.
    pub fn consult_profile(&self) -> Vec<(String, u64)> {
        self.rules
            .iter()
            .zip(&self.consults)
            .map(|(o, n)| (o.rule.id.clone(), *n))
            .collect()
    }
}

/// A snapshot of an [`Engine`]'s lifetime counters (see [`Engine::stats`]).
/// Subtracting two snapshots taken around a run gives that run's cost, which
/// is how the service attributes engine work to individual requests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Node visits during redex search.
    pub visits: u64,
    /// Interner cache misses (nodes constructed).
    pub constructed: u64,
    /// Memo lookups that replayed a cached derivation.
    pub memo_hits: u64,
    /// Total memo lookups (hits + misses + stale evictions).
    pub memo_lookups: u64,
    /// Bounded-arena compactions fired.
    pub compactions: u64,
    /// Live nodes currently in the arena.
    pub arena_len: usize,
    /// High-water mark of live arena nodes over the engine's life.
    pub arena_peak: usize,
}
