//! Deterministic fault injection for the rewrite engine.
//!
//! Robustness claims are only as good as their tests. A [`FaultPlan`] lets
//! a harness make specific rules misbehave at specific derivation steps —
//! fail outright, or return a pathologically inflated result — and then
//! assert that the governed engine *contains* the damage: the derivation
//! continues (or stops gracefully), the failure is accounted in the
//! [`crate::budget::RewriteReport`], and repeat offenders are quarantined.
//!
//! Plans are plain data and the engine consults them deterministically, so
//! every injected failure reproduces exactly.

/// What the injected fault does when it triggers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// The rule application errors out (as if its body mentioned an
    /// unbound variable).
    Fail,
    /// The rule "succeeds" but wraps its result in `n` extra identity
    /// layers, inflating the term — exercises the size governor.
    Oversize(usize),
}

/// Which derivation steps the fault triggers on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepSelector {
    /// Every application attempt.
    Always,
    /// Only the listed step indices (0-based, counted in completed rewrite
    /// steps at the moment the rule is attempted).
    Steps(Vec<usize>),
    /// Steps `0, n, 2n, …`.
    EveryNth(usize),
}

impl StepSelector {
    /// Does this selector cover `step`?
    pub fn covers(&self, step: usize) -> bool {
        match self {
            StepSelector::Always => true,
            StepSelector::Steps(v) => v.contains(&step),
            StepSelector::EveryNth(n) => *n != 0 && step.is_multiple_of(*n),
        }
    }
}

/// One injected fault: a rule, a step selector, and an effect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// Id of the rule to sabotage.
    pub rule_id: String,
    /// When it triggers.
    pub at: StepSelector,
    /// What happens.
    pub kind: FaultKind,
}

/// A set of injected faults. The empty plan (the default) injects nothing
/// and costs one slice scan per rule application.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// True iff no faults are registered.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Add a fault (builder style).
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Add a fault.
    pub fn add(&mut self, spec: FaultSpec) {
        self.specs.push(spec);
    }

    /// Convenience: `rule_id` always fails.
    pub fn failing(rule_id: &str) -> Self {
        FaultPlan::new().with(FaultSpec {
            rule_id: rule_id.to_string(),
            at: StepSelector::Always,
            kind: FaultKind::Fail,
        })
    }

    /// The fault (if any) active for `rule_id` at derivation step `step`.
    /// The first matching spec wins.
    pub fn fault_for(&self, rule_id: &str, step: usize) -> Option<&FaultKind> {
        self.specs
            .iter()
            .find(|s| s.rule_id == rule_id && s.at.covers(step))
            .map(|s| &s.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let p = FaultPlan::new();
        assert!(p.is_empty());
        assert_eq!(p.fault_for("11", 0), None);
    }

    #[test]
    fn selectors() {
        assert!(StepSelector::Always.covers(17));
        assert!(StepSelector::Steps(vec![1, 3]).covers(3));
        assert!(!StepSelector::Steps(vec![1, 3]).covers(2));
        assert!(StepSelector::EveryNth(4).covers(8));
        assert!(!StepSelector::EveryNth(4).covers(9));
        assert!(!StepSelector::EveryNth(0).covers(0), "n=0 never fires");
    }

    #[test]
    fn first_matching_spec_wins() {
        let p = FaultPlan::new()
            .with(FaultSpec {
                rule_id: "11".into(),
                at: StepSelector::Steps(vec![2]),
                kind: FaultKind::Oversize(10),
            })
            .with(FaultSpec {
                rule_id: "11".into(),
                at: StepSelector::Always,
                kind: FaultKind::Fail,
            });
        assert_eq!(p.fault_for("11", 2), Some(&FaultKind::Oversize(10)));
        assert_eq!(p.fault_for("11", 1), Some(&FaultKind::Fail));
        assert_eq!(p.fault_for("12", 1), None);
    }
}
