//! Deterministic fault injection for the rewrite engine.
//!
//! Robustness claims are only as good as their tests. A [`FaultPlan`] lets
//! a harness make specific rules misbehave at specific derivation steps —
//! fail outright, or return a pathologically inflated result — and then
//! assert that the governed engine *contains* the damage: the derivation
//! continues (or stops gracefully), the failure is accounted in the
//! [`crate::budget::RewriteReport`], and repeat offenders are quarantined.
//!
//! Plans are plain data and the engine consults them deterministically, so
//! every injected failure reproduces exactly.

/// What the injected fault does when it triggers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// The rule application errors out (as if its body mentioned an
    /// unbound variable).
    Fail,
    /// The rule "succeeds" but wraps its result in `n` extra identity
    /// layers, inflating the term — exercises the size governor.
    Oversize(usize),
    /// The rule *panics* mid-application, simulating a poison rule whose
    /// implementation has a genuine bug. Unlike [`FaultKind::Fail`] this is
    /// not a contained error: it unwinds out of the engine and must be
    /// caught by the caller (see `try_*` entry points and the service's
    /// `catch_unwind` worker isolation). The panic message is
    /// [`POISON_PANIC_PREFIX`] followed by the rule id, so the catcher can
    /// attribute the failure to its rule; it is staged in a reusable
    /// thread-local buffer and the payload itself is a zero-sized marker,
    /// so panicking allocates nothing per failure (see [`poison_panic`]).
    Panic,
}

/// Prefix of the panic message produced by [`FaultKind::Panic`]; the rule
/// id follows. [`poison_rule_id`] parses it back out.
pub const POISON_PANIC_PREFIX: &str = "poison rule panic: ";

/// Zero-sized payload of a [`poison_panic`]. The message lives in
/// [`POISON_PAYLOAD`] on the panicking thread; boxing a ZST for
/// `panic_any` does not allocate, so a service worker absorbing a stream
/// of poison panics formats no fresh `String` per failure.
struct PoisonPayload;

std::thread_local! {
    /// Reusable per-thread (per service worker) panic-message buffer for
    /// [`poison_panic`]. Cleared and refilled in place on every poison
    /// panic, read back by [`poison_rule_id`] / [`CaughtPanic::from_payload`]
    /// — which therefore must run on the thread that panicked, as every
    /// `try_*` boundary and the panic hook do (`catch_unwind` runs on the
    /// unwinding thread).
    static POISON_PAYLOAD: std::cell::RefCell<String> =
        const { std::cell::RefCell::new(String::new()) };
}

/// Panic, attributing the failure to `rule_id`. Called by both engines
/// when a [`FaultKind::Panic`] fault triggers. Allocation-free after the
/// first poison panic on a thread: the message is rebuilt in place in
/// [`POISON_PAYLOAD`] and the unwind payload is the zero-sized
/// [`PoisonPayload`] marker.
pub fn poison_panic(rule_id: &str) -> ! {
    POISON_PAYLOAD.with(|buf| {
        let mut buf = buf.borrow_mut();
        buf.clear();
        buf.push_str(POISON_PANIC_PREFIX);
        buf.push_str(rule_id);
    });
    std::panic::panic_any(PoisonPayload)
}

/// Extract the poisoned rule id from a caught panic payload, if the panic
/// came from [`FaultKind::Panic`]. Also recognizes plain `String` /
/// `&'static str` payloads carrying [`POISON_PANIC_PREFIX`], so callers
/// simulating poison rules with ordinary `panic!` messages classify the
/// same way.
pub fn poison_rule_id(payload: &(dyn std::any::Any + Send)) -> Option<String> {
    if payload.downcast_ref::<PoisonPayload>().is_some() {
        return POISON_PAYLOAD.with(|buf| {
            buf.borrow()
                .strip_prefix(POISON_PANIC_PREFIX)
                .map(str::to_string)
        });
    }
    let msg = payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&'static str>().copied())?;
    msg.strip_prefix(POISON_PANIC_PREFIX).map(str::to_string)
}

/// A panic caught at a `try_*` engine boundary (see
/// [`crate::engine::try_rewrite_fix_with`]): the best-effort message plus,
/// when the panic came from a [`FaultKind::Panic`] fault, the rule it is
/// attributed to — which is what a circuit breaker charges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaughtPanic {
    /// The rule the panic is attributed to, when identifiable.
    pub rule_id: Option<String>,
    /// The panic message (or a placeholder for opaque payloads).
    pub message: String,
}

impl CaughtPanic {
    /// Classify a payload returned by `std::panic::catch_unwind`. Must run
    /// on the thread that panicked (true at every `try_*` boundary): a
    /// poison payload is a marker whose message lives in the thread-local
    /// [`POISON_PAYLOAD`] buffer.
    pub fn from_payload(payload: Box<dyn std::any::Any + Send>) -> Self {
        if payload.downcast_ref::<PoisonPayload>().is_some() {
            return POISON_PAYLOAD.with(|buf| {
                let buf = buf.borrow();
                CaughtPanic {
                    rule_id: buf.strip_prefix(POISON_PANIC_PREFIX).map(str::to_string),
                    message: buf.clone(),
                }
            });
        }
        let rule_id = poison_rule_id(payload.as_ref());
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| {
                payload
                    .downcast_ref::<&'static str>()
                    .map(|s| s.to_string())
            })
            .unwrap_or_else(|| "opaque panic payload".to_string());
        CaughtPanic { rule_id, message }
    }
}

impl std::fmt::Display for CaughtPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.rule_id {
            Some(id) => write!(f, "panic in rule {id}: {}", self.message),
            None => write!(f, "panic: {}", self.message),
        }
    }
}

/// Install (once, process-wide) a panic-hook filter that silences the
/// default backtrace spam for [`FaultKind::Panic`] payloads — they are
/// *expected* panics, caught and classified at the `try_*` boundaries —
/// while delegating every other panic to the previously installed hook.
pub fn silence_poison_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if poison_rule_id(info.payload()).is_none() {
                prev(info);
            }
        }));
    });
}

/// Which derivation steps the fault triggers on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepSelector {
    /// Every application attempt.
    Always,
    /// Only the listed step indices (0-based, counted in completed rewrite
    /// steps at the moment the rule is attempted).
    Steps(Vec<usize>),
    /// Steps `0, n, 2n, …`.
    EveryNth(usize),
}

impl StepSelector {
    /// Does this selector cover `step`?
    pub fn covers(&self, step: usize) -> bool {
        match self {
            StepSelector::Always => true,
            StepSelector::Steps(v) => v.contains(&step),
            StepSelector::EveryNth(n) => *n != 0 && step.is_multiple_of(*n),
        }
    }
}

/// One injected fault: a rule, a step selector, and an effect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// Id of the rule to sabotage.
    pub rule_id: String,
    /// When it triggers.
    pub at: StepSelector,
    /// What happens.
    pub kind: FaultKind,
}

/// A set of injected faults. The empty plan (the default) injects nothing
/// and costs one slice scan per rule application.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// True iff no faults are registered.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Add a fault (builder style).
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Add a fault.
    pub fn add(&mut self, spec: FaultSpec) {
        self.specs.push(spec);
    }

    /// Convenience: `rule_id` always fails.
    pub fn failing(rule_id: &str) -> Self {
        FaultPlan::new().with(FaultSpec {
            rule_id: rule_id.to_string(),
            at: StepSelector::Always,
            kind: FaultKind::Fail,
        })
    }

    /// The fault (if any) active for `rule_id` at derivation step `step`.
    /// The first matching spec wins.
    pub fn fault_for(&self, rule_id: &str, step: usize) -> Option<&FaultKind> {
        self.specs
            .iter()
            .find(|s| s.rule_id == rule_id && s.at.covers(step))
            .map(|s| &s.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poison_panic_payload_classifies_and_buffer_is_reused() {
        silence_poison_panics();
        // First poison panic: marker payload, message from the thread-local
        // buffer, rule id parsed back out.
        let err = std::panic::catch_unwind(|| poison_panic("app")).unwrap_err();
        assert_eq!(poison_rule_id(err.as_ref()), Some("app".to_string()));
        let caught = CaughtPanic::from_payload(err);
        assert_eq!(caught.rule_id.as_deref(), Some("app"));
        assert_eq!(caught.message, format!("{POISON_PANIC_PREFIX}app"));
        // Second panic on the same thread reuses the buffer in place.
        let err = std::panic::catch_unwind(|| poison_panic("e121")).unwrap_err();
        let caught = CaughtPanic::from_payload(err);
        assert_eq!(caught.rule_id.as_deref(), Some("e121"));
        // Plain string payloads with the prefix still classify (callers
        // simulating poison rules with ordinary panic! messages).
        let err = std::panic::catch_unwind(|| panic!("{POISON_PANIC_PREFIX}9")).unwrap_err();
        assert_eq!(poison_rule_id(err.as_ref()), Some("9".to_string()));
        // Unrelated panics stay unattributed.
        let err = std::panic::catch_unwind(|| panic!("boom")).unwrap_err();
        assert_eq!(poison_rule_id(err.as_ref()), None);
        assert_eq!(CaughtPanic::from_payload(err).rule_id, None);
    }

    #[test]
    fn empty_plan_injects_nothing() {
        let p = FaultPlan::new();
        assert!(p.is_empty());
        assert_eq!(p.fault_for("11", 0), None);
    }

    #[test]
    fn selectors() {
        assert!(StepSelector::Always.covers(17));
        assert!(StepSelector::Steps(vec![1, 3]).covers(3));
        assert!(!StepSelector::Steps(vec![1, 3]).covers(2));
        assert!(StepSelector::EveryNth(4).covers(8));
        assert!(!StepSelector::EveryNth(4).covers(9));
        assert!(!StepSelector::EveryNth(0).covers(0), "n=0 never fires");
    }

    #[test]
    fn first_matching_spec_wins() {
        let p = FaultPlan::new()
            .with(FaultSpec {
                rule_id: "11".into(),
                at: StepSelector::Steps(vec![2]),
                kind: FaultKind::Oversize(10),
            })
            .with(FaultSpec {
                rule_id: "11".into(),
                at: StepSelector::Always,
                kind: FaultKind::Fail,
            });
        assert_eq!(p.fault_for("11", 2), Some(&FaultKind::Oversize(10)));
        assert_eq!(p.fault_for("11", 1), Some(&FaultKind::Fail));
        assert_eq!(p.fault_for("12", 1), None);
    }
}
