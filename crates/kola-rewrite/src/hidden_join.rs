//! The five-step hidden-join untangling strategy of §4.1.
//!
//! Hidden joins are nested queries of the Figure 7 shape:
//!
//! ```text
//! iterate(Kp(T), (j, h1 ∘ g1 ∘ (id, h2 ∘ g2 ∘ … (id, hn ∘ gn ∘ (id, Kf(B))) …))) ! A
//! ```
//!
//! with each `hᵢ` either `flat` or absent and each `gᵢ` an `iter`. The
//! strategy converts them into explicit nest-of-join queries in five
//! gradual steps, each a small rule set (Figures 5 and 8):
//!
//! 1. **Break up** the monolithic `iterate` into a composition chain
//!    (rules 17, 18 + cleanup).
//! 2. **Bottom out** the `(id, Kf(B))` tail into a nest of a join
//!    (rule 19, plus the structural `app` rule to reach the bottom).
//! 3. **Pull up `nest`** to the top of the chain (rules 20, 21).
//! 4. **Pull up `unnest`s** below it (rules 22, 23).
//! 5. **Absorb** the remaining `iterate`s into the join (rule 24).
//!
//! A final *tidy* pass rewrites `⟨π1, g∘π2⟩` to `id × g` so the result is
//! literally Figure 3's KG2.

use crate::budget::{Budget, RewriteReport};
use crate::catalog::Catalog;
use crate::engine::Trace;
use crate::fast::EngineConfig;
use crate::props::PropDb;
use crate::strategy::{apply, fix, repeat, seq, Runner, Strategy};
use kola::term::Query;

/// Names and strategies of the five steps (plus tidy).
pub fn steps() -> Vec<(&'static str, Strategy)> {
    vec![
        ("break-up", step1_break_up()),
        ("bottom-out", step2_bottom_out()),
        ("pull-up-nest", step3_pull_up_nest()),
        ("pull-up-unnest", step4_pull_up_unnest()),
        ("absorb-into-join", step5_absorb()),
        ("tidy", tidy()),
    ]
}

/// Step 1: break up the complex `iterate` (rules 17, 18, cleanup).
pub fn step1_break_up() -> Strategy {
    fix(&["17", "18", "2", "1", "3", "4", "4a", "9", "10", "5", "6"])
}

/// Step 2: bottom out with a nest of a join (rule 19, with `app` plumbing
/// to expose and re-fuse the bottom of the chain).
pub fn step2_bottom_out() -> Strategy {
    seq(vec![
        repeat(apply("app")),
        apply("19"),
        repeat(apply("app-1")),
    ])
}

/// Step 3: pull `nest` to the top of the chain (rules 20, 21, cleanup).
pub fn step3_pull_up_nest() -> Strategy {
    fix(&["20", "21", "4", "2", "1"])
}

/// Step 4: pull `unnest`s up below the `nest` (rules 22, 23).
pub fn step4_pull_up_unnest() -> Strategy {
    fix(&["22", "23"])
}

/// Step 5: absorb `iterate`s into the join (rule 24, cleanup).
pub fn step5_absorb() -> Strategy {
    fix(&["24", "3", "5", "e32", "1", "2", "e6"])
}

/// Tidy: rewrite `⟨π1, g∘π2⟩` forms into `id × g` to reach the paper's
/// exact KG2 notation.
pub fn tidy() -> Strategy {
    fix(&["e110", "e111", "e112", "e6"])
}

/// Result of the full pipeline: per-step snapshots plus the merged trace
/// and resource report.
#[derive(Debug, Clone)]
pub struct Untangled {
    /// The final query.
    pub query: Query,
    /// Query snapshot after each named step.
    pub snapshots: Vec<(&'static str, Query)>,
    /// Every rule application, in order.
    pub trace: Trace,
    /// Accumulated resource accounting across all six steps.
    pub report: RewriteReport,
}

/// Run the five-step strategy (plus tidy) on a query.
///
/// ```
/// use kola_rewrite::{Catalog, PropDb};
/// use kola_rewrite::hidden_join::{garage_query_kg1, garage_query_kg2, untangle};
/// let out = untangle(&Catalog::paper(), &PropDb::new(), &garage_query_kg1());
/// assert_eq!(out.query, garage_query_kg2()); // literally Figure 3's KG2
/// ```
///
/// The steps are each `Try`-wrapped: on queries that are not hidden joins
/// the pipeline still performs whatever simplifications apply and leaves
/// the rest alone — the paper's §4.2 argues this graceful degradation is a
/// key advantage over a monolithic rule.
pub fn untangle(catalog: &Catalog, props: &PropDb, q: &Query) -> Untangled {
    untangle_with_budget(catalog, props, q, &Budget::default())
}

/// [`untangle`] under an explicit [`Budget`] (shared across all six steps)
/// and with full resource accounting in the returned report. Never panics:
/// on budget exhaustion the pipeline returns whatever the completed steps
/// produced, with the stop reason recorded.
pub fn untangle_with_budget(
    catalog: &Catalog,
    props: &PropDb,
    q: &Query,
    budget: &Budget,
) -> Untangled {
    untangle_configured(catalog, props, q, budget, None)
}

/// [`untangle_with_budget`] with the fixpoint phases running on the fast
/// engine when an [`EngineConfig`] is supplied. `None` keeps the boxed
/// reference engine; both paths are differentially tested to agree.
pub fn untangle_configured(
    catalog: &Catalog,
    props: &PropDb,
    q: &Query,
    budget: &Budget,
    engine: Option<EngineConfig>,
) -> Untangled {
    let mut trace = Trace::new();
    let mut report = RewriteReport::new();
    let mut cur = q.clone();
    let mut snapshots = Vec::new();
    for (name, strategy) in steps() {
        // Each step sees only the budget the previous steps left over.
        let mut step_runner = Runner::new(catalog, props).with_budget(Budget {
            max_steps: budget.max_steps.saturating_sub(report.steps),
            ..budget.clone()
        });
        step_runner.engine = engine.clone();
        let (next, _, step_report) =
            step_runner.run_governed(&Strategy::Try(Box::new(strategy)), cur, &mut trace);
        report.merge(&step_report);
        cur = next;
        snapshots.push((name, cur.clone()));
    }
    Untangled {
        query: cur,
        snapshots,
        trace,
        report,
    }
}

/// Build the Figure 3 "garage query" KG1 (the hidden-join form).
pub fn garage_query_kg1() -> Query {
    kola::parse::parse_query(
        "iterate(Kp(T), (id, \
            flat . \
            iter(Kp(T), grgs . pi2) . \
            (id, iter(in @ (pi1, cars . pi2), pi2) . \
            (id, Kf(P))))) ! V",
    )
    .expect("KG1 is well-formed")
}

/// Build the Figure 3 "garage query" KG2 (the explicit nest-of-join form).
pub fn garage_query_kg2() -> Query {
    kola::parse::parse_query(
        "nest(pi1, pi2) . \
         unnest(pi1, pi2) * id . \
         (join(in @ id * cars, id * grgs), pi1) ! [V, P]",
    )
    .expect("KG2 is well-formed")
}

/// Build a synthetic hidden-join query of nesting depth `n` over extents
/// `A` and `B` (both sets of Persons): each layer flattens a `grgs`-style
/// inner query. Used by the depth-sweep experiment (E9).
pub fn synthetic_hidden_join(n: usize) -> Query {
    assert!(n >= 1, "depth must be at least 1");
    // Each layer maps a Person to a set of Persons by flattening the inner
    // layer's per-child result; the innermost layer ranges over Kf(B).
    let mut body = String::from("Kf(B)");
    for _ in 0..n {
        body = format!("flat . iter(Kp(T), child . pi2) . (id, {body})");
    }
    let src = format!("iterate(Kp(T), (id, {body})) ! A");
    kola::parse::parse_query(&src).expect("synthetic hidden join is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Catalog, PropDb) {
        (Catalog::paper(), PropDb::new())
    }

    #[test]
    fn garage_query_untangles_to_kg2() {
        let (c, p) = setup();
        let out = untangle(&c, &p, &garage_query_kg1());
        assert_eq!(
            out.query,
            garage_query_kg2(),
            "\nfinal: {}\nwant : {}\ntrace:\n{}",
            out.query,
            garage_query_kg2(),
            out.trace
        );
    }

    #[test]
    fn step_snapshots_match_paper_forms() {
        let (c, p) = setup();
        let out = untangle(&c, &p, &garage_query_kg1());
        let get = |name: &str| {
            out.snapshots
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, q)| q.to_string())
                .unwrap()
        };
        // KG1a (after Step 1): a chain of iterates ending in (id, Kf(P)).
        let kg1a = get("break-up");
        assert!(kg1a.contains("iterate(Kp(T), (pi1, flat . pi2))"), "{kg1a}");
        assert!(kg1a.contains("iterate(Kp(T), (id, Kf(P)))"), "{kg1a}");
        // KG1b (after Step 2): bottomed out with nest/join over [V, P].
        let kg1b = get("bottom-out");
        assert!(kg1b.contains("nest(pi1, pi2)"), "{kg1b}");
        assert!(kg1b.contains("join(Kp(T), id)"), "{kg1b}");
        assert!(kg1b.ends_with("! [V, P]"), "{kg1b}");
        // KG1c (after Step 3): nest at top, unnest right below.
        let kg1c = get("pull-up-nest");
        assert!(
            kg1c.starts_with("nest(pi1, pi2) . unnest(pi1, pi2) * id"),
            "{kg1c}"
        );
        // Step 4 is a no-op on the garage query (single unnest).
        assert_eq!(get("pull-up-nest"), get("pull-up-unnest"));
    }

    #[test]
    fn fast_engine_untangles_garage_query_identically() {
        let (c, p) = setup();
        let slow = untangle(&c, &p, &garage_query_kg1());
        let fast = untangle_configured(
            &c,
            &p,
            &garage_query_kg1(),
            &Budget::default(),
            Some(EngineConfig::fast()),
        );
        assert_eq!(fast.query, slow.query);
        assert_eq!(fast.query, garage_query_kg2());
        assert_eq!(
            fast.trace.justifications(),
            slow.trace.justifications(),
            "fast and reference engines must take the same derivation"
        );
        assert_eq!(fast.report.steps, slow.report.steps);
    }

    #[test]
    fn non_hidden_join_queries_still_simplified_not_broken() {
        let (c, p) = setup();
        let q = kola::parse::parse_query("iterate(Kp(T), id . age) ! P").unwrap();
        let out = untangle(&c, &p, &q);
        // Not a hidden join: no nest/join introduced, but id∘ cleaned up.
        assert_eq!(
            out.query,
            kola::parse::parse_query("iterate(Kp(T), age) ! P").unwrap()
        );
    }

    #[test]
    fn synthetic_depth_1_untangles() {
        let (c, p) = setup();
        let q = synthetic_hidden_join(1);
        let out = untangle(&c, &p, &q);
        let s = out.query.to_string();
        assert!(s.contains("join("), "depth 1 should produce a join: {s}");
        assert!(s.starts_with("nest(pi1, pi2)"), "{s}");
    }

    #[test]
    fn synthetic_depth_3_untangles() {
        let (c, p) = setup();
        let q = synthetic_hidden_join(3);
        let out = untangle(&c, &p, &q);
        let s = out.query.to_string();
        assert!(s.contains("join("), "{s}");
        assert!(s.starts_with("nest(pi1, pi2)"), "{s}");
        // Per the paper's Step 4 target form, at most one unnest survives at
        // the top; deeper layers become iter forms inside the join function.
        assert_eq!(s.matches("unnest(").count(), 1, "{s}");
        assert!(s.ends_with("! [A, B]"), "{s}");
    }
}
