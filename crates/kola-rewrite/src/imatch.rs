//! Matching, instantiation and rule application over *interned* terms.
//!
//! Mirrors [`crate::matching`] / [`crate::subst`] / the `Rule::try_apply_*`
//! family exactly, but works on [`ITerm`] handles so that
//!
//! * metavariable binding consistency is an O(1) pointer comparison instead
//!   of a structural walk,
//! * instantiation shares every bound subterm instead of cloning it, and
//! * every term the fast engine constructs is hash-consed, so equal results
//!   are the same allocation.
//!
//! ## Normalization invariant
//!
//! The boxed engine re-normalizes the whole term after every rule
//! application (`applied.result.normalize()`). The interned path instead
//! maintains the invariant *incrementally*: [`icompose`] is the only way a
//! `∘` node is ever built here, and it re-associates on the fly, so any term
//! assembled from right-normalized parts is right-normalized. Differential
//! parity with the boxed engine (which this module is tested against on
//! thousands of fuzzed terms) depends on this invariant.

use crate::budget::RewriteError;
use crate::props::{PropDb, PropTerm};
use crate::rule::{Direction, Precondition, RewritePair, Rule};
use crate::subst::UnboundVar;
use kola::intern::{ITerm, Interner, Payload, Tag};
use kola::pattern::{PFunc, PPred, PQuery};
use kola::value::Sym;
use std::collections::BTreeMap;

/// Metavariable bindings over interned terms (the [`crate::subst::Subst`]
/// analogue). Consistency checks are pointer comparisons.
#[derive(Debug, Clone, Default)]
pub struct ISubst {
    /// Function variable bindings (`$f`).
    pub funcs: BTreeMap<Sym, ITerm>,
    /// Predicate variable bindings (`%p`).
    pub preds: BTreeMap<Sym, ITerm>,
    /// Object variable bindings (`^x`).
    pub objs: BTreeMap<Sym, ITerm>,
}

impl ISubst {
    /// An empty substitution.
    pub fn new() -> Self {
        Self::default()
    }

    fn bind(map: &mut BTreeMap<Sym, ITerm>, v: &Sym, t: &ITerm) -> bool {
        match map.get(v) {
            Some(existing) => existing.ptr_eq(t),
            None => {
                map.insert(v.clone(), t.clone());
                true
            }
        }
    }
}

/// Flatten an interned composition chain into its segments, left to right
/// (the [`crate::matching::chain_segments`] analogue; iterative).
pub fn ichain_segments(t: &ITerm) -> Vec<ITerm> {
    let mut out = Vec::new();
    let mut work = vec![t.clone()];
    while let Some(f) = work.pop() {
        if f.tag() == Tag::FCompose {
            let kids = f.kids();
            work.push(kids[1].clone());
            work.push(kids[0].clone());
        } else {
            out.push(f);
        }
    }
    out
}

/// Smart `∘` constructor: builds `a ∘ b` right-normalized. If `a` is itself
/// a chain, its segments are re-associated onto `b`, so the result never has
/// a `∘` as a left child (given `a` and `b` internally normalized).
pub fn icompose(it: &mut Interner, a: ITerm, b: ITerm) -> ITerm {
    if a.tag() != Tag::FCompose {
        return it.mk(Tag::FCompose, Payload::None, vec![a, b]);
    }
    let mut acc = b;
    for seg in ichain_segments(&a).into_iter().rev() {
        acc = it.mk(Tag::FCompose, Payload::None, vec![seg, acc]);
    }
    acc
}

/// Rebuild a right-associated chain from owned segments; empty chain is
/// `id` (the [`crate::matching::compose_chain`] analogue).
pub fn icompose_chain(it: &mut Interner, mut segs: Vec<ITerm>) -> ITerm {
    let Some(last) = segs.pop() else {
        return it.mk(Tag::FId, Payload::None, vec![]);
    };
    segs.into_iter()
        .rev()
        .fold(last, |acc, f| icompose(it, f, acc))
}

/// Match a function pattern against an interned function exactly (the
/// [`crate::matching::match_func`] analogue).
pub fn imatch_func(pat: &PFunc, t: &ITerm, s: &mut ISubst) -> bool {
    if let PFunc::Var(v) = pat {
        return ISubst::bind(&mut s.funcs, v, t);
    }
    let k = t.kids();
    match (pat, t.tag()) {
        (PFunc::Id, Tag::FId)
        | (PFunc::Pi1, Tag::FPi1)
        | (PFunc::Pi2, Tag::FPi2)
        | (PFunc::Flat, Tag::FFlat)
        | (PFunc::Bagify, Tag::FBagify)
        | (PFunc::Dedup, Tag::FDedup)
        | (PFunc::BUnion, Tag::FBUnion)
        | (PFunc::BFlat, Tag::FBFlat)
        | (PFunc::SetUnion, Tag::FSetUnion)
        | (PFunc::SetIntersect, Tag::FSetIntersect)
        | (PFunc::SetDiff, Tag::FSetDiff) => true,
        (PFunc::Prim(a), Tag::FPrim) => matches!(t.payload(), Payload::Sym(b) if a == b),
        (PFunc::Compose(p1, p2), Tag::FCompose)
        | (PFunc::PairWith(p1, p2), Tag::FPairWith)
        | (PFunc::Times(p1, p2), Tag::FTimes)
        | (PFunc::Nest(p1, p2), Tag::FNest)
        | (PFunc::Unnest(p1, p2), Tag::FUnnest) => {
            matches_same_pf(pat, t.tag()) && imatch_func(p1, &k[0], s) && imatch_func(p2, &k[1], s)
        }
        (PFunc::ConstF(pq), Tag::FConstF) => imatch_query(pq, &k[0], s),
        (PFunc::CurryF(pf, pq), Tag::FCurryF) => {
            imatch_func(pf, &k[0], s) && imatch_query(pq, &k[1], s)
        }
        (PFunc::Cond(pp, pf, pg), Tag::FCond) => {
            imatch_pred(pp, &k[0], s) && imatch_func(pf, &k[1], s) && imatch_func(pg, &k[2], s)
        }
        (PFunc::Iterate(pp, pf), Tag::FIterate)
        | (PFunc::Iter(pp, pf), Tag::FIter)
        | (PFunc::Join(pp, pf), Tag::FJoin)
        | (PFunc::BIterate(pp, pf), Tag::FBIterate) => {
            matches_same_pf(pat, t.tag()) && imatch_pred(pp, &k[0], s) && imatch_func(pf, &k[1], s)
        }
        _ => false,
    }
}

/// Guard for the or-pattern arms of [`imatch_func`]: pattern and term must
/// use the *same* constructor.
fn matches_same_pf(pat: &PFunc, tag: Tag) -> bool {
    matches!(
        (pat, tag),
        (PFunc::Compose(..), Tag::FCompose)
            | (PFunc::PairWith(..), Tag::FPairWith)
            | (PFunc::Times(..), Tag::FTimes)
            | (PFunc::Nest(..), Tag::FNest)
            | (PFunc::Unnest(..), Tag::FUnnest)
            | (PFunc::Iterate(..), Tag::FIterate)
            | (PFunc::Iter(..), Tag::FIter)
            | (PFunc::Join(..), Tag::FJoin)
            | (PFunc::BIterate(..), Tag::FBIterate)
    )
}

/// Match a predicate pattern against an interned predicate (the
/// [`crate::matching::match_pred`] analogue).
pub fn imatch_pred(pat: &PPred, t: &ITerm, s: &mut ISubst) -> bool {
    if let PPred::Var(v) = pat {
        return ISubst::bind(&mut s.preds, v, t);
    }
    let k = t.kids();
    match (pat, t.tag()) {
        (PPred::Eq, Tag::PEq)
        | (PPred::Lt, Tag::PLt)
        | (PPred::Leq, Tag::PLeq)
        | (PPred::Gt, Tag::PGt)
        | (PPred::Geq, Tag::PGeq)
        | (PPred::In, Tag::PIn) => true,
        (PPred::PrimP(a), Tag::PPrimP) => matches!(t.payload(), Payload::Sym(b) if a == b),
        (PPred::ConstP(a), Tag::PConstP) => matches!(t.payload(), Payload::Bool(b) if a == b),
        (PPred::Oplus(pp, pf), Tag::POplus) => {
            imatch_pred(pp, &k[0], s) && imatch_func(pf, &k[1], s)
        }
        (PPred::And(p1, p2), Tag::PAnd) | (PPred::Or(p1, p2), Tag::POr) => {
            matches!(
                (pat, t.tag()),
                (PPred::And(..), Tag::PAnd) | (PPred::Or(..), Tag::POr)
            ) && imatch_pred(p1, &k[0], s)
                && imatch_pred(p2, &k[1], s)
        }
        (PPred::Not(p), Tag::PNot) | (PPred::Conv(p), Tag::PConv) => {
            matches!(
                (pat, t.tag()),
                (PPred::Not(..), Tag::PNot) | (PPred::Conv(..), Tag::PConv)
            ) && imatch_pred(p, &k[0], s)
        }
        (PPred::CurryP(pp, pq), Tag::PCurryP) => {
            imatch_pred(pp, &k[0], s) && imatch_query(pq, &k[1], s)
        }
        _ => false,
    }
}

/// Match a query pattern against an interned query (the
/// [`crate::matching::match_query`] analogue).
pub fn imatch_query(pat: &PQuery, t: &ITerm, s: &mut ISubst) -> bool {
    if let PQuery::Var(v) = pat {
        return ISubst::bind(&mut s.objs, v, t);
    }
    let k = t.kids();
    match (pat, t.tag()) {
        (PQuery::Lit(a), Tag::QLit) => {
            matches!(t.payload(), Payload::Value(b) if b.as_ref() == a)
        }
        (PQuery::Extent(a), Tag::QExtent) => matches!(t.payload(), Payload::Sym(b) if a == b),
        (PQuery::PairQ(p1, p2), Tag::QPairQ)
        | (PQuery::Union(p1, p2), Tag::QUnion)
        | (PQuery::Intersect(p1, p2), Tag::QIntersect)
        | (PQuery::Diff(p1, p2), Tag::QDiff) => {
            matches!(
                (pat, t.tag()),
                (PQuery::PairQ(..), Tag::QPairQ)
                    | (PQuery::Union(..), Tag::QUnion)
                    | (PQuery::Intersect(..), Tag::QIntersect)
                    | (PQuery::Diff(..), Tag::QDiff)
            ) && imatch_query(p1, &k[0], s)
                && imatch_query(p2, &k[1], s)
        }
        (PQuery::App(pf, pq), Tag::QApp) => imatch_func(pf, &k[0], s) && imatch_query(pq, &k[1], s),
        (PQuery::Test(pp, pq), Tag::QTest) => {
            imatch_pred(pp, &k[0], s) && imatch_query(pq, &k[1], s)
        }
        _ => false,
    }
}

/// Match a function pattern against a *prefix* of the interned term's
/// composition chain (the [`crate::matching::match_func_prefix`] analogue).
/// Returns the number of term segments consumed.
pub fn imatch_func_prefix(
    pat: &PFunc,
    tsegs: &[ITerm],
    s: &mut ISubst,
    it: &mut Interner,
) -> Option<usize> {
    let psegs = crate::matching::pchain_segments(pat);
    let m = psegs.len();
    let n = tsegs.len();
    if m == 0 || n == 0 || m - 1 > n {
        return None;
    }
    for (p, t) in psegs[..m - 1].iter().zip(tsegs) {
        if !imatch_func(p, t, s) {
            return None;
        }
    }
    let last = psegs[m - 1];
    match last {
        PFunc::Var(v) => {
            if n < m {
                return None;
            }
            let rest = icompose_chain(it, tsegs[m - 1..].to_vec());
            if ISubst::bind(&mut s.funcs, v, &rest) {
                Some(n)
            } else {
                None
            }
        }
        _ => {
            if n < m {
                return None;
            }
            if imatch_func(last, &tsegs[m - 1], s) {
                Some(m)
            } else {
                None
            }
        }
    }
}

/// Instantiate a function pattern as an interned term (the
/// [`crate::subst::instantiate_func`] analogue). Every `∘` in the body goes
/// through [`icompose`], so the result is right-normalized by construction.
pub fn iinstantiate_func(pat: &PFunc, s: &ISubst, it: &mut Interner) -> Result<ITerm, UnboundVar> {
    macro_rules! leaf {
        ($tag:expr) => {
            it.mk($tag, Payload::None, vec![])
        };
    }
    Ok(match pat {
        PFunc::Var(v) => s
            .funcs
            .get(v)
            .cloned()
            .ok_or_else(|| UnboundVar(v.clone()))?,
        PFunc::Id => leaf!(Tag::FId),
        PFunc::Pi1 => leaf!(Tag::FPi1),
        PFunc::Pi2 => leaf!(Tag::FPi2),
        PFunc::Prim(n) => it.mk(Tag::FPrim, Payload::Sym(n.clone()), vec![]),
        PFunc::Compose(a, b) => {
            let ia = iinstantiate_func(a, s, it)?;
            let ib = iinstantiate_func(b, s, it)?;
            icompose(it, ia, ib)
        }
        PFunc::PairWith(a, b) => {
            let kids = vec![iinstantiate_func(a, s, it)?, iinstantiate_func(b, s, it)?];
            it.mk(Tag::FPairWith, Payload::None, kids)
        }
        PFunc::Times(a, b) => {
            let kids = vec![iinstantiate_func(a, s, it)?, iinstantiate_func(b, s, it)?];
            it.mk(Tag::FTimes, Payload::None, kids)
        }
        PFunc::ConstF(q) => {
            let kids = vec![iinstantiate_query(q, s, it)?];
            it.mk(Tag::FConstF, Payload::None, kids)
        }
        PFunc::CurryF(f, q) => {
            let kids = vec![iinstantiate_func(f, s, it)?, iinstantiate_query(q, s, it)?];
            it.mk(Tag::FCurryF, Payload::None, kids)
        }
        PFunc::Cond(p, f, g) => {
            let kids = vec![
                iinstantiate_pred(p, s, it)?,
                iinstantiate_func(f, s, it)?,
                iinstantiate_func(g, s, it)?,
            ];
            it.mk(Tag::FCond, Payload::None, kids)
        }
        PFunc::Flat => leaf!(Tag::FFlat),
        PFunc::Iterate(p, f) => {
            let kids = vec![iinstantiate_pred(p, s, it)?, iinstantiate_func(f, s, it)?];
            it.mk(Tag::FIterate, Payload::None, kids)
        }
        PFunc::Iter(p, f) => {
            let kids = vec![iinstantiate_pred(p, s, it)?, iinstantiate_func(f, s, it)?];
            it.mk(Tag::FIter, Payload::None, kids)
        }
        PFunc::Join(p, f) => {
            let kids = vec![iinstantiate_pred(p, s, it)?, iinstantiate_func(f, s, it)?];
            it.mk(Tag::FJoin, Payload::None, kids)
        }
        PFunc::Nest(f, g) => {
            let kids = vec![iinstantiate_func(f, s, it)?, iinstantiate_func(g, s, it)?];
            it.mk(Tag::FNest, Payload::None, kids)
        }
        PFunc::Unnest(f, g) => {
            let kids = vec![iinstantiate_func(f, s, it)?, iinstantiate_func(g, s, it)?];
            it.mk(Tag::FUnnest, Payload::None, kids)
        }
        PFunc::Bagify => leaf!(Tag::FBagify),
        PFunc::Dedup => leaf!(Tag::FDedup),
        PFunc::BUnion => leaf!(Tag::FBUnion),
        PFunc::BFlat => leaf!(Tag::FBFlat),
        PFunc::BIterate(p, f) => {
            let kids = vec![iinstantiate_pred(p, s, it)?, iinstantiate_func(f, s, it)?];
            it.mk(Tag::FBIterate, Payload::None, kids)
        }
        PFunc::SetUnion => leaf!(Tag::FSetUnion),
        PFunc::SetIntersect => leaf!(Tag::FSetIntersect),
        PFunc::SetDiff => leaf!(Tag::FSetDiff),
    })
}

/// Instantiate a predicate pattern as an interned term.
pub fn iinstantiate_pred(pat: &PPred, s: &ISubst, it: &mut Interner) -> Result<ITerm, UnboundVar> {
    macro_rules! leaf {
        ($tag:expr) => {
            it.mk($tag, Payload::None, vec![])
        };
    }
    Ok(match pat {
        PPred::Var(v) => s
            .preds
            .get(v)
            .cloned()
            .ok_or_else(|| UnboundVar(v.clone()))?,
        PPred::Eq => leaf!(Tag::PEq),
        PPred::Lt => leaf!(Tag::PLt),
        PPred::Leq => leaf!(Tag::PLeq),
        PPred::Gt => leaf!(Tag::PGt),
        PPred::Geq => leaf!(Tag::PGeq),
        PPred::In => leaf!(Tag::PIn),
        PPred::PrimP(n) => it.mk(Tag::PPrimP, Payload::Sym(n.clone()), vec![]),
        PPred::Oplus(p, f) => {
            let kids = vec![iinstantiate_pred(p, s, it)?, iinstantiate_func(f, s, it)?];
            it.mk(Tag::POplus, Payload::None, kids)
        }
        PPred::And(a, b) => {
            let kids = vec![iinstantiate_pred(a, s, it)?, iinstantiate_pred(b, s, it)?];
            it.mk(Tag::PAnd, Payload::None, kids)
        }
        PPred::Or(a, b) => {
            let kids = vec![iinstantiate_pred(a, s, it)?, iinstantiate_pred(b, s, it)?];
            it.mk(Tag::POr, Payload::None, kids)
        }
        PPred::Not(p) => {
            let kids = vec![iinstantiate_pred(p, s, it)?];
            it.mk(Tag::PNot, Payload::None, kids)
        }
        PPred::Conv(p) => {
            let kids = vec![iinstantiate_pred(p, s, it)?];
            it.mk(Tag::PConv, Payload::None, kids)
        }
        PPred::ConstP(b) => it.mk(Tag::PConstP, Payload::Bool(*b), vec![]),
        PPred::CurryP(p, q) => {
            let kids = vec![iinstantiate_pred(p, s, it)?, iinstantiate_query(q, s, it)?];
            it.mk(Tag::PCurryP, Payload::None, kids)
        }
    })
}

/// Instantiate a query pattern as an interned term.
pub fn iinstantiate_query(
    pat: &PQuery,
    s: &ISubst,
    it: &mut Interner,
) -> Result<ITerm, UnboundVar> {
    Ok(match pat {
        PQuery::Var(v) => s
            .objs
            .get(v)
            .cloned()
            .ok_or_else(|| UnboundVar(v.clone()))?,
        PQuery::Lit(v) => it.mk(
            Tag::QLit,
            Payload::Value(std::sync::Arc::new(v.clone())),
            vec![],
        ),
        PQuery::Extent(n) => it.mk(Tag::QExtent, Payload::Sym(n.clone()), vec![]),
        PQuery::PairQ(a, b) => {
            let kids = vec![iinstantiate_query(a, s, it)?, iinstantiate_query(b, s, it)?];
            it.mk(Tag::QPairQ, Payload::None, kids)
        }
        PQuery::App(f, q) => {
            let kids = vec![iinstantiate_func(f, s, it)?, iinstantiate_query(q, s, it)?];
            it.mk(Tag::QApp, Payload::None, kids)
        }
        PQuery::Test(p, q) => {
            let kids = vec![iinstantiate_pred(p, s, it)?, iinstantiate_query(q, s, it)?];
            it.mk(Tag::QTest, Payload::None, kids)
        }
        PQuery::Union(a, b) => {
            let kids = vec![iinstantiate_query(a, s, it)?, iinstantiate_query(b, s, it)?];
            it.mk(Tag::QUnion, Payload::None, kids)
        }
        PQuery::Intersect(a, b) => {
            let kids = vec![iinstantiate_query(a, s, it)?, iinstantiate_query(b, s, it)?];
            it.mk(Tag::QIntersect, Payload::None, kids)
        }
        PQuery::Diff(a, b) => {
            let kids = vec![iinstantiate_query(a, s, it)?, iinstantiate_query(b, s, it)?];
            it.mk(Tag::QDiff, Payload::None, kids)
        }
    })
}

/// Check a rule's declarative preconditions against interned bindings.
/// Only the one bound function a precondition actually inspects is reified.
pub fn ipreconditions_hold(pre: &[Precondition], s: &ISubst, props: &PropDb) -> bool {
    pre.iter().all(|p| match &p.subject {
        PropTerm::FuncVar(name) => s
            .funcs
            .get(name)
            .map(|f| props.holds(p.prop, &f.to_func()))
            .unwrap_or(false),
    })
}

fn rule_failed(rule: &Rule, e: UnboundVar) -> RewriteError {
    RewriteError::RuleFailed {
        rule_id: rule.id.clone(),
        detail: e.to_string(),
    }
}

/// Try the rule at the root of an interned function term (the
/// [`Rule::try_apply_func`] analogue, chain-prefix aware).
pub fn itry_apply_func(
    rule: &Rule,
    t: &ITerm,
    dir: Direction,
    it: &mut Interner,
) -> Result<Option<(ITerm, ISubst)>, RewriteError> {
    if dir == Direction::Backward && !rule.bidirectional {
        return Ok(None);
    }
    let tsegs = ichain_segments(t);
    let n = tsegs.len();
    for alt in &rule.alts {
        let RewritePair::F(l, r) = alt else { continue };
        let (head, body) = match dir {
            Direction::Forward => (l, r),
            Direction::Backward => (r, l),
        };
        let mut s = ISubst::new();
        if let Some(consumed) = imatch_func_prefix(head, &tsegs, &mut s, it) {
            let rewritten = iinstantiate_func(body, &s, it).map_err(|e| rule_failed(rule, e))?;
            if consumed == n {
                return Ok(Some((rewritten, s)));
            }
            let tail = icompose_chain(it, tsegs[consumed..].to_vec());
            return Ok(Some((icompose(it, rewritten, tail), s)));
        }
    }
    Ok(None)
}

/// Try the rule at the root of an interned predicate term.
pub fn itry_apply_pred(
    rule: &Rule,
    t: &ITerm,
    dir: Direction,
    it: &mut Interner,
) -> Result<Option<(ITerm, ISubst)>, RewriteError> {
    if dir == Direction::Backward && !rule.bidirectional {
        return Ok(None);
    }
    for alt in &rule.alts {
        let RewritePair::P(l, r) = alt else { continue };
        let (head, body) = match dir {
            Direction::Forward => (l, r),
            Direction::Backward => (r, l),
        };
        let mut s = ISubst::new();
        if imatch_pred(head, t, &mut s) {
            let out = iinstantiate_pred(body, &s, it).map_err(|e| rule_failed(rule, e))?;
            return Ok(Some((out, s)));
        }
    }
    Ok(None)
}

/// Try the rule at the root of an interned query term.
pub fn itry_apply_query(
    rule: &Rule,
    t: &ITerm,
    dir: Direction,
    it: &mut Interner,
) -> Result<Option<(ITerm, ISubst)>, RewriteError> {
    if dir == Direction::Backward && !rule.bidirectional {
        return Ok(None);
    }
    for alt in &rule.alts {
        let RewritePair::Q(l, r) = alt else { continue };
        let (head, body) = match dir {
            Direction::Forward => (l, r),
            Direction::Backward => (r, l),
        };
        let mut s = ISubst::new();
        if imatch_query(head, t, &mut s) {
            let out = iinstantiate_query(body, &s, it).map_err(|e| rule_failed(rule, e))?;
            return Ok(Some((out, s)));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kola::parse::{parse_func, parse_query};

    #[test]
    fn interned_rule_application_matches_boxed() {
        let mut it = Interner::new();
        let r = Rule::func(
            "11",
            "iterate-fuse",
            "iterate(%p, $f) . iterate(%q, $g)",
            "iterate(%q & %p @ $g, $f . $g)",
        );
        let t = parse_func("iterate(Kp(T), city) . iterate(Kp(T), addr) . flat")
            .unwrap()
            .normalize();
        let boxed = r
            .try_apply_func(&t, Direction::Forward)
            .unwrap()
            .unwrap()
            .0
            .normalize();
        let interned = itry_apply_func(&r, &it.intern_func(&t), Direction::Forward, &mut it)
            .unwrap()
            .unwrap()
            .0;
        assert_eq!(interned.to_func(), boxed);
        // And it is the same node the boxed result interns to.
        assert!(interned.ptr_eq(&it.intern_func(&boxed)));
    }

    #[test]
    fn icompose_keeps_chains_right_normalized() {
        let mut it = Interner::new();
        let left = it.intern_func(&parse_func("(a . b) . c").unwrap());
        // `left` as interned is still left-nested; icompose onto another
        // segment must flatten it.
        let d = it.intern_func(&parse_func("d").unwrap());
        let out = icompose(&mut it, left, d);
        let want = it.intern_func(&parse_func("a . b . c . d").unwrap().normalize());
        assert!(out.ptr_eq(&want));
    }

    #[test]
    fn query_level_application() {
        let mut it = Interner::new();
        let r = Rule::query("app", "apply", "($f . $g) ! ^x", "$f ! ($g ! ^x)");
        let q = parse_query("(a . b) ! P").unwrap().normalize();
        let iq = it.intern_query(&q);
        let got = itry_apply_query(&r, &iq, Direction::Forward, &mut it)
            .unwrap()
            .unwrap()
            .0;
        assert_eq!(got.to_query(), parse_query("a ! (b ! P)").unwrap());
    }

    #[test]
    fn one_way_refuses_backward() {
        let mut it = Interner::new();
        let r = Rule::func("x", "oneway", "id . $f", "$f").one_way();
        let t = it.intern_func(&parse_func("age").unwrap());
        assert!(itry_apply_func(&r, &t, Direction::Backward, &mut it)
            .unwrap()
            .is_none());
    }
}
