#![warn(missing_docs)]
//! # kola-rewrite — the KOLA rule language and rewrite engine
//!
//! Everything a rule-based optimizer needs over the KOLA algebra, with the
//! paper's central property made structural: **rules are data** (pattern
//! pairs plus declarative preconditions), never code.
//!
//! - [`subst`], [`matching`] — the only machinery rules need: bind
//!   metavariables by structural matching, splice them into the body.
//! - [`rule`] — declarative rules with direction, alternatives, provenance.
//! - [`engine`] — leftmost-outermost congruence rewriting with derivation
//!   traces (reproduces Figures 4 and 6 literally).
//! - [`catalog`] — Figures 5 & 8 plus an extended verified pool.
//! - [`props`] — declarative preconditions (`injective`, …) and their
//!   inference rules.
//! - [`strategy`] — firing strategies (the substrate for COKO rule blocks).
//! - [`hidden_join`] — the five-step untangling pipeline of §4.1.
//! - [`monolithic`] — the instrumented monolithic-rule baseline of §4.2.
//! - [`budget`] — resource governance: explicit step/depth/size/deadline
//!   budgets, structured errors, and per-run reports.
//! - [`fault`] — deterministic fault injection for robustness testing.
//! - [`imatch`] — matching/instantiation over hash-consed terms.
//! - [`dtree`] — the discrimination-tree rule index: flat per-step match
//!   cost as the catalog grows past the paper's 500-rule pool.
//! - [`fast`] — the interned + tree-indexed + memoized engine behind
//!   [`EngineConfig`], differentially tested against the boxed engine.
//! - [`egraph`], [`saturate`], [`extract`] — the equality-saturation
//!   engine: e-classes with union-find and congruence closure over the
//!   hash-consed arena, non-destructive rule application to saturation,
//!   and cost-based extraction under a pluggable [`CostModel`].
pub mod budget;
pub mod catalog;
pub mod dtree;
pub mod egraph;
pub mod engine;
pub mod extract;
pub mod fast;
pub mod fault;
pub mod hidden_join;
pub mod imatch;
pub mod matching;
pub mod monolithic;
pub mod props;
pub mod rule;
pub mod saturate;
pub mod strategy;
pub mod subst;

pub use budget::{
    Budget, CycleDetector, QuarantineEntry, QuarantineReport, RewriteError, RewriteReport,
    RuleStats, StopReason,
};
pub use catalog::{Catalog, HeadIndex};
pub use dtree::{IndexStats, RuleIndex};
pub use egraph::{ClassId, EClass, EGraph, ENode};
pub use engine::{
    rewrite_fix, rewrite_fix_governed, rewrite_fix_with, rewrite_once_query, try_rewrite_fix_with,
    Oriented, Rewritten, Step, Trace,
};
pub use extract::{CostModel, Extractor, OpWeight, TermSize};
pub use fast::{Engine, EngineConfig, EngineStats};
pub use fault::{CaughtPanic, FaultKind, FaultPlan, FaultSpec, StepSelector};
pub use props::{PropDb, PropKind, PropTerm};
pub use rule::{Direction, Rule, RuleSource};
pub use saturate::{SaturationParams, SaturationResult};
pub use strategy::{Runner, Strategy};
pub use subst::Subst;
