//! First-order matching of patterns against concrete terms.
//!
//! This is the "unification" the paper's §2.3 describes: a rule fires iff
//! its head pattern matches a (sub)term structurally, binding metavariables.
//! Because KOLA terms are variable-free, matching *is* sufficient — no
//! environment analysis or renaming is ever needed.
//!
//! ## Composition chains
//!
//! `∘` is associative (rule 1 of Figure 5), and the paper's rules are meant
//! to apply to any *window* of a composition chain (e.g. rule 11 fuses any
//! two adjacent `iterate`s in a longer pipeline). We therefore treat chains
//! specially at rule-application roots: [`match_func_prefix`] flattens both
//! pattern and term chains (right-normalized) and matches the pattern's
//! segments against a **prefix** of the term's segments, returning the
//! unconsumed suffix. A trailing function variable in the pattern absorbs
//! the whole remainder (so `con(p,f,g) ∘ $h` matches a `con` followed by any
//! pipeline). Interior windows are reached by the engine's traversal, which
//! recurses into chain tails.

use crate::subst::Subst;
use kola::intern::Tag;
use kola::pattern::{PFunc, PPred, PQuery};
use kola::term::{Func, Pred, Query};

/// Match a function pattern against a concrete function (exactly — the whole
/// term must be consumed).
pub fn match_func(pat: &PFunc, t: &Func, s: &mut Subst) -> bool {
    match (pat, t) {
        (PFunc::Var(v), _) => s.bind_func(v, t),
        (PFunc::Id, Func::Id)
        | (PFunc::Pi1, Func::Pi1)
        | (PFunc::Pi2, Func::Pi2)
        | (PFunc::Flat, Func::Flat)
        | (PFunc::Bagify, Func::Bagify)
        | (PFunc::Dedup, Func::Dedup)
        | (PFunc::BUnion, Func::BUnion)
        | (PFunc::BFlat, Func::BFlat)
        | (PFunc::SetUnion, Func::SetUnion)
        | (PFunc::SetIntersect, Func::SetIntersect)
        | (PFunc::SetDiff, Func::SetDiff) => true,
        (PFunc::Prim(a), Func::Prim(b)) => a == b,
        (PFunc::Compose(p1, p2), Func::Compose(t1, t2)) => {
            match_func(p1, t1, s) && match_func(p2, t2, s)
        }
        (PFunc::PairWith(p1, p2), Func::PairWith(t1, t2)) => {
            match_func(p1, t1, s) && match_func(p2, t2, s)
        }
        (PFunc::Times(p1, p2), Func::Times(t1, t2)) => {
            match_func(p1, t1, s) && match_func(p2, t2, s)
        }
        (PFunc::ConstF(pq), Func::ConstF(tq)) => match_query(pq, tq, s),
        (PFunc::CurryF(pf, pq), Func::CurryF(tf, tq)) => {
            match_func(pf, tf, s) && match_query(pq, tq, s)
        }
        (PFunc::Cond(pp, pf, pg), Func::Cond(tp, tf, tg)) => {
            match_pred(pp, tp, s) && match_func(pf, tf, s) && match_func(pg, tg, s)
        }
        (PFunc::Iterate(pp, pf), Func::Iterate(tp, tf))
        | (PFunc::Iter(pp, pf), Func::Iter(tp, tf))
        | (PFunc::Join(pp, pf), Func::Join(tp, tf))
        | (PFunc::BIterate(pp, pf), Func::BIterate(tp, tf)) => {
            // Note the pattern/term constructors must agree; the tuple match
            // above only pairs like with like because of the | arms' shape.
            matches_same_pf(pat, t) && match_pred(pp, tp, s) && match_func(pf, tf, s)
        }
        (PFunc::Nest(pf, pg), Func::Nest(tf, tg))
        | (PFunc::Unnest(pf, pg), Func::Unnest(tf, tg)) => {
            matches_same_pf(pat, t) && match_func(pf, tf, s) && match_func(pg, tg, s)
        }
        _ => false,
    }
}

/// Guard used by the or-patterns in [`match_func`]: confirms pattern and
/// term use the *same* constructor (`iterate` vs `iter` vs `join`, `nest` vs
/// `unnest`).
fn matches_same_pf(pat: &PFunc, t: &Func) -> bool {
    matches!(
        (pat, t),
        (PFunc::Iterate(..), Func::Iterate(..))
            | (PFunc::Iter(..), Func::Iter(..))
            | (PFunc::Join(..), Func::Join(..))
            | (PFunc::BIterate(..), Func::BIterate(..))
            | (PFunc::Nest(..), Func::Nest(..))
            | (PFunc::Unnest(..), Func::Unnest(..))
    )
}

/// Match a predicate pattern against a concrete predicate.
pub fn match_pred(pat: &PPred, t: &Pred, s: &mut Subst) -> bool {
    match (pat, t) {
        (PPred::Var(v), _) => s.bind_pred(v, t),
        (PPred::Eq, Pred::Eq)
        | (PPred::Lt, Pred::Lt)
        | (PPred::Leq, Pred::Leq)
        | (PPred::Gt, Pred::Gt)
        | (PPred::Geq, Pred::Geq)
        | (PPred::In, Pred::In) => true,
        (PPred::PrimP(a), Pred::PrimP(b)) => a == b,
        (PPred::ConstP(a), Pred::ConstP(b)) => a == b,
        (PPred::Oplus(pp, pf), Pred::Oplus(tp, tf)) => {
            match_pred(pp, tp, s) && match_func(pf, tf, s)
        }
        (PPred::And(p1, p2), Pred::And(t1, t2)) | (PPred::Or(p1, p2), Pred::Or(t1, t2)) => {
            matches!(
                (pat, t),
                (PPred::And(..), Pred::And(..)) | (PPred::Or(..), Pred::Or(..))
            ) && match_pred(p1, t1, s)
                && match_pred(p2, t2, s)
        }
        (PPred::Not(p), Pred::Not(t)) => match_pred(p, t, s),
        (PPred::Conv(p), Pred::Conv(t)) => match_pred(p, t, s),
        (PPred::CurryP(pp, pq), Pred::CurryP(tp, tq)) => {
            match_pred(pp, tp, s) && match_query(pq, tq, s)
        }
        _ => false,
    }
}

/// Match a query pattern against a concrete query.
pub fn match_query(pat: &PQuery, t: &Query, s: &mut Subst) -> bool {
    match (pat, t) {
        (PQuery::Var(v), _) => s.bind_obj(v, t),
        (PQuery::Lit(a), Query::Lit(b)) => a == b,
        (PQuery::Extent(a), Query::Extent(b)) => a == b,
        (PQuery::PairQ(p1, p2), Query::PairQ(t1, t2)) => {
            match_query(p1, t1, s) && match_query(p2, t2, s)
        }
        (PQuery::App(pf, pq), Query::App(tf, tq)) => {
            match_func(pf, tf, s) && match_query(pq, tq, s)
        }
        (PQuery::Test(pp, pq), Query::Test(tp, tq)) => {
            match_pred(pp, tp, s) && match_query(pq, tq, s)
        }
        (PQuery::Union(p1, p2), Query::Union(t1, t2))
        | (PQuery::Intersect(p1, p2), Query::Intersect(t1, t2))
        | (PQuery::Diff(p1, p2), Query::Diff(t1, t2)) => {
            matches!(
                (pat, t),
                (PQuery::Union(..), Query::Union(..))
                    | (PQuery::Intersect(..), Query::Intersect(..))
                    | (PQuery::Diff(..), Query::Diff(..))
            ) && match_query(p1, t1, s)
                && match_query(p2, t2, s)
        }
        _ => false,
    }
}

/// Flatten a composition chain into its segments, left to right.
/// `a ∘ (b ∘ c)` and `(a ∘ b) ∘ c` both yield `[a, b, c]`.
///
/// Iterative (explicit work stack): chains can be arbitrarily deep in
/// either association, and this runs inside the engine's hot path where a
/// recursive walk would overflow the native stack on adversarial input.
pub fn chain_segments(f: &Func) -> Vec<&Func> {
    let mut out = Vec::new();
    let mut work = vec![f];
    while let Some(f) = work.pop() {
        match f {
            Func::Compose(a, b) => {
                // Pop order: `a` must be emitted before `b`.
                work.push(b);
                work.push(a);
            }
            leaf => out.push(leaf),
        }
    }
    out
}

/// Flatten a pattern composition chain into its segments (iterative, see
/// [`chain_segments`]).
pub fn pchain_segments(f: &PFunc) -> Vec<&PFunc> {
    let mut out = Vec::new();
    let mut work = vec![f];
    while let Some(f) = work.pop() {
        match f {
            PFunc::Compose(a, b) => {
                work.push(b);
                work.push(a);
            }
            leaf => out.push(leaf),
        }
    }
    out
}

/// Rebuild a right-associated composition chain from owned segments.
/// The empty chain is the unit of `∘`: [`Func::Id`].
pub fn compose_chain(mut segs: Vec<Func>) -> Func {
    let Some(last) = segs.pop() else {
        return Func::Id;
    };
    segs.into_iter()
        .rev()
        .fold(last, |acc, f| Func::Compose(Box::new(f), Box::new(acc)))
}

/// Match a (possibly composite) function pattern against a *prefix* of the
/// term's composition chain.
///
/// Returns the number of term segments consumed. A trailing `$var` segment
/// in the pattern absorbs the entire remaining chain. Non-`Compose` patterns
/// must match exactly one leading segment.
pub fn match_func_prefix(pat: &PFunc, t: &Func, s: &mut Subst) -> Option<usize> {
    let psegs = pchain_segments(pat);
    let tsegs = chain_segments(t);
    let m = psegs.len();
    let n = tsegs.len();
    if m == 0 || n == 0 {
        return None;
    }
    // All but the last pattern segment match one term segment each.
    if m - 1 > n {
        return None;
    }
    for (p, t) in psegs[..m - 1].iter().zip(&tsegs) {
        if !match_func(p, t, s) {
            return None;
        }
    }
    let last = psegs[m - 1];
    match last {
        PFunc::Var(v) => {
            // Absorb the remainder (at least one segment).
            if n < m {
                return None;
            }
            let rest: Vec<Func> = tsegs[m - 1..].iter().map(|f| (*f).clone()).collect();
            if s.bind_func(v, &compose_chain(rest)) {
                Some(n)
            } else {
                None
            }
        }
        _ => {
            if n < m {
                return None;
            }
            if match_func(last, tsegs[m - 1], s) {
                Some(m)
            } else {
                None
            }
        }
    }
}

/// Discrimination key of a rule head: the constructor at the pattern's root
/// plus (when the first child of that constructor is itself concrete) one
/// level of child constructor. `None` for either component means "no
/// constraint" at that position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HeadKey {
    /// Root constructor the head demands.
    pub root: Tag,
    /// Constructor the head demands of the root's first child, if concrete.
    pub child: Option<Tag>,
}

/// Constructor tag of a function pattern's root (`None` = metavariable).
/// Shared with the discrimination tree ([`crate::dtree`]), whose edge
/// alphabet is exactly these tags.
pub(crate) fn pfunc_tag(p: &PFunc) -> Option<Tag> {
    Some(match p {
        PFunc::Var(_) => return None,
        PFunc::Id => Tag::FId,
        PFunc::Pi1 => Tag::FPi1,
        PFunc::Pi2 => Tag::FPi2,
        PFunc::Prim(_) => Tag::FPrim,
        PFunc::Compose(..) => Tag::FCompose,
        PFunc::PairWith(..) => Tag::FPairWith,
        PFunc::Times(..) => Tag::FTimes,
        PFunc::ConstF(_) => Tag::FConstF,
        PFunc::CurryF(..) => Tag::FCurryF,
        PFunc::Cond(..) => Tag::FCond,
        PFunc::Flat => Tag::FFlat,
        PFunc::Iterate(..) => Tag::FIterate,
        PFunc::Iter(..) => Tag::FIter,
        PFunc::Join(..) => Tag::FJoin,
        PFunc::Nest(..) => Tag::FNest,
        PFunc::Unnest(..) => Tag::FUnnest,
        PFunc::Bagify => Tag::FBagify,
        PFunc::Dedup => Tag::FDedup,
        PFunc::BIterate(..) => Tag::FBIterate,
        PFunc::BUnion => Tag::FBUnion,
        PFunc::BFlat => Tag::FBFlat,
        PFunc::SetUnion => Tag::FSetUnion,
        PFunc::SetIntersect => Tag::FSetIntersect,
        PFunc::SetDiff => Tag::FSetDiff,
    })
}

/// Constructor tag of a predicate pattern's root (`None` = metavariable).
pub(crate) fn ppred_tag(p: &PPred) -> Option<Tag> {
    Some(match p {
        PPred::Var(_) => return None,
        PPred::Eq => Tag::PEq,
        PPred::Lt => Tag::PLt,
        PPred::Leq => Tag::PLeq,
        PPred::Gt => Tag::PGt,
        PPred::Geq => Tag::PGeq,
        PPred::In => Tag::PIn,
        PPred::PrimP(_) => Tag::PPrimP,
        PPred::Oplus(..) => Tag::POplus,
        PPred::And(..) => Tag::PAnd,
        PPred::Or(..) => Tag::POr,
        PPred::Not(_) => Tag::PNot,
        PPred::Conv(_) => Tag::PConv,
        PPred::ConstP(_) => Tag::PConstP,
        PPred::CurryP(..) => Tag::PCurryP,
    })
}

/// Constructor tag of a query pattern's root (`None` = metavariable).
pub(crate) fn pquery_tag(p: &PQuery) -> Option<Tag> {
    Some(match p {
        PQuery::Var(_) => return None,
        PQuery::Lit(_) => Tag::QLit,
        PQuery::Extent(_) => Tag::QExtent,
        PQuery::PairQ(..) => Tag::QPairQ,
        PQuery::App(..) => Tag::QApp,
        PQuery::Test(..) => Tag::QTest,
        PQuery::Union(..) => Tag::QUnion,
        PQuery::Intersect(..) => Tag::QIntersect,
        PQuery::Diff(..) => Tag::QDiff,
    })
}

/// Constructor of a function pattern's first child, in the same child order
/// the interner uses. `None` when the pattern has no children or the first
/// child is a metavariable.
fn pfunc_kid0_tag(p: &PFunc) -> Option<Tag> {
    match p {
        PFunc::Compose(a, _)
        | PFunc::PairWith(a, _)
        | PFunc::Times(a, _)
        | PFunc::Nest(a, _)
        | PFunc::Unnest(a, _)
        | PFunc::CurryF(a, _) => pfunc_tag(a),
        PFunc::ConstF(q) => pquery_tag(q),
        PFunc::Cond(p, _, _)
        | PFunc::Iterate(p, _)
        | PFunc::Iter(p, _)
        | PFunc::Join(p, _)
        | PFunc::BIterate(p, _) => ppred_tag(p),
        _ => None,
    }
}

fn ppred_kid0_tag(p: &PPred) -> Option<Tag> {
    match p {
        PPred::Oplus(a, _)
        | PPred::And(a, _)
        | PPred::Or(a, _)
        | PPred::Not(a)
        | PPred::Conv(a)
        | PPred::CurryP(a, _) => ppred_tag(a),
        _ => None,
    }
}

fn pquery_kid0_tag(p: &PQuery) -> Option<Tag> {
    match p {
        PQuery::PairQ(a, _)
        | PQuery::Union(a, _)
        | PQuery::Intersect(a, _)
        | PQuery::Diff(a, _) => pquery_tag(a),
        PQuery::App(f, _) => pfunc_tag(f),
        PQuery::Test(p, _) => ppred_tag(p),
        _ => None,
    }
}

/// Head key of a function-level rule head. Chains are keyed by their *first
/// segment* (the prefix matcher only ever inspects that segment before
/// committing to a window); a metavariable-rooted head returns `None` and
/// lands in the wildcard bucket.
pub fn func_head_key(pat: &PFunc) -> Option<HeadKey> {
    let first = *pchain_segments(pat).first()?;
    let root = pfunc_tag(first)?;
    Some(HeadKey {
        root,
        child: pfunc_kid0_tag(first),
    })
}

/// Head key of a predicate-level rule head (`None` = wildcard).
pub fn pred_head_key(pat: &PPred) -> Option<HeadKey> {
    let root = ppred_tag(pat)?;
    Some(HeadKey {
        root,
        child: ppred_kid0_tag(pat),
    })
}

/// Head key of a query-level rule head (`None` = wildcard).
pub fn query_head_key(pat: &PQuery) -> Option<HeadKey> {
    let root = pquery_tag(pat)?;
    Some(HeadKey {
        root,
        child: pquery_kid0_tag(pat),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kola::builder::*;
    use kola::parse::{parse_func, parse_pfunc, parse_ppred, parse_pquery, parse_query};

    fn fmatch(p: &str, t: &str) -> Option<Subst> {
        let pat = parse_pfunc(p).unwrap();
        let term = parse_func(t).unwrap();
        let mut s = Subst::new();
        match_func(&pat, &term, &mut s).then_some(s)
    }

    #[test]
    fn exact_leaf_matching() {
        assert!(fmatch("id", "id").is_some());
        assert!(fmatch("id", "pi1").is_none());
        assert!(fmatch("age", "age").is_some());
        assert!(fmatch("age", "addr").is_none());
    }

    #[test]
    fn var_binds_anything() {
        let s = fmatch("$f", "iterate(Kp(T), age)").unwrap();
        assert_eq!(
            s.funcs.get("f").unwrap(),
            &parse_func("iterate(Kp(T), age)").unwrap()
        );
    }

    #[test]
    fn consistency_across_occurrences() {
        assert!(fmatch("($f, $f)", "(age, age)").is_some());
        assert!(fmatch("($f, $f)", "(age, addr)").is_none());
    }

    #[test]
    fn structural_matching_descends() {
        let s = fmatch("iterate(%p, $f . $g)", "iterate(Kp(T), city . addr)").unwrap();
        assert_eq!(s.funcs.get("f").unwrap(), &prim("city"));
        assert_eq!(s.funcs.get("g").unwrap(), &prim("addr"));
        assert_eq!(s.preds.get("p").unwrap(), &kp(true));
    }

    #[test]
    fn iterate_iter_join_not_confused() {
        assert!(fmatch("iterate(%p, $f)", "iter(Kp(T), id)").is_none());
        assert!(fmatch("iter(%p, $f)", "iter(Kp(T), id)").is_some());
        assert!(fmatch("join(%p, $f)", "iterate(Kp(T), id)").is_none());
        assert!(fmatch("nest($f, $g)", "unnest(pi1, pi2)").is_none());
        assert!(fmatch("unnest($f, $g)", "unnest(pi1, pi2)").is_some());
    }

    #[test]
    fn pred_matching() {
        let pat = parse_ppred("%p @ ($f, Kf(^k))").unwrap();
        let t = kola::parse::parse_pred("gt @ (age, Kf(25))").unwrap();
        let mut s = Subst::new();
        assert!(match_pred(&pat, &t, &mut s));
        assert_eq!(s.preds.get("p").unwrap(), &gt());
        assert_eq!(s.funcs.get("f").unwrap(), &prim("age"));
        assert_eq!(s.objs.get("k").unwrap(), &int(25));
    }

    #[test]
    fn query_matching() {
        let pat = parse_pquery("iterate(Kp(T), (id, Kf(^B))) ! ^A").unwrap();
        let t = parse_query("iterate(Kp(T), (id, Kf(P))) ! V").unwrap();
        let mut s = Subst::new();
        assert!(match_query(&pat, &t, &mut s));
        assert_eq!(s.objs.get("B").unwrap(), &ext("P"));
        assert_eq!(s.objs.get("A").unwrap(), &ext("V"));
    }

    #[test]
    fn chain_segments_flatten_both_associations() {
        let t1 = parse_func("a . b . c").unwrap();
        let t2 = parse_func("(a . b) . c").unwrap();
        assert_eq!(chain_segments(&t1).len(), 3);
        assert_eq!(chain_segments(&t2).len(), 3);
        assert_eq!(
            compose_chain(chain_segments(&t2).into_iter().cloned().collect()),
            t1
        );
    }

    #[test]
    fn prefix_match_consumes_window() {
        // rule 11's head against a 3-chain: consumes the first two segments.
        let pat = parse_pfunc("iterate(%p, $f) . iterate(%q, $g)").unwrap();
        let t =
            parse_func("iterate(Kp(T), city) . iterate(Kp(T), addr) . iterate(Kp(T), id)").unwrap();
        let mut s = Subst::new();
        assert_eq!(match_func_prefix(&pat, &t, &mut s), Some(2));
        assert_eq!(s.funcs.get("f").unwrap(), &prim("city"));
        assert_eq!(s.funcs.get("g").unwrap(), &prim("addr"));
    }

    #[test]
    fn prefix_match_trailing_var_absorbs_rest() {
        // con(p,f,g) ∘ $h with a long tail.
        let pat = parse_pfunc("con(%p, $f, $g) . $h").unwrap();
        let t = parse_func("con(Kp(T), pi1, pi2) . a . b . c").unwrap();
        let mut s = Subst::new();
        assert_eq!(match_func_prefix(&pat, &t, &mut s), Some(4));
        assert_eq!(s.funcs.get("h").unwrap(), &parse_func("a . b . c").unwrap());
    }

    #[test]
    fn prefix_match_single_segment_rule() {
        // A non-compose head (rule 18) matches just the first segment.
        let pat = parse_pfunc("iterate(Kp(T), id)").unwrap();
        let t = parse_func("iterate(Kp(T), id) . age").unwrap();
        let mut s = Subst::new();
        assert_eq!(match_func_prefix(&pat, &t, &mut s), Some(1));
    }

    #[test]
    fn prefix_match_requires_all_pattern_segments() {
        let pat = parse_pfunc("iterate(%p, $f) . iterate(%q, $g)").unwrap();
        let t = parse_func("iterate(Kp(T), city)").unwrap();
        let mut s = Subst::new();
        assert_eq!(match_func_prefix(&pat, &t, &mut s), None);
    }

    #[test]
    fn compose_chain_of_nothing_is_id() {
        assert_eq!(compose_chain(Vec::new()), Func::Id);
    }

    #[test]
    fn chain_segments_survive_deep_chains() {
        // Deep in both associations; a recursive flatten would overflow.
        let mut left = prim("a");
        let mut right = prim("a");
        for _ in 0..100_000 {
            left = Func::Compose(Box::new(left), Box::new(Func::Id));
            right = Func::Compose(Box::new(Func::Id), Box::new(right));
        }
        assert_eq!(chain_segments(&left).len(), 100_001);
        assert_eq!(chain_segments(&right).len(), 100_001);
        // Plain drop is fine: `Func` tears down with an explicit worklist.
        drop(left);
        drop(right);
    }

    #[test]
    fn id_elimination_window() {
        // $f . id against a . id . c : f->a, id matches segment 2, rest left.
        let pat = parse_pfunc("$f . id").unwrap();
        let t = parse_func("a . id . c").unwrap();
        let mut s = Subst::new();
        assert_eq!(match_func_prefix(&pat, &t, &mut s), Some(2));
        assert_eq!(s.funcs.get("f").unwrap(), &prim("a"));
    }
}
