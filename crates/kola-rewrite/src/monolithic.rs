//! A *monolithic* hidden-join rule, for comparison (experiment E13).
//!
//! §4.2 discusses expressing the hidden-join optimization "in terms of a
//! single complex monolithic rule" (the approach of Cluet & Moerkotte [12])
//! and identifies two problems:
//!
//! 1. **Complex rules need complex head routines** — because the reference
//!    to the inner set `B` "can be arbitrarily deeply nested", unification
//!    cannot decide applicability; "a head routine is necessary to perform
//!    the 'dive' into the query tree".
//! 2. **Complex rules do not simplify queries** — a failed monolithic match
//!    leaves the query untouched, whereas the gradual strategy's early
//!    steps still simplify it.
//!
//! This module *is* that head routine, instrumented: [`recognize`] dives to
//! unbounded depth counting the nodes it inspects. Contrast with the
//! gradual pipeline in [`crate::hidden_join`], whose every step is a
//! finite-pattern match.

use crate::budget::{Budget, RewriteError, RewriteReport};
use crate::catalog::Catalog;
use crate::fast::EngineConfig;
use crate::hidden_join;
use crate::props::PropDb;
use kola::term::{Func, Pred, Query};

/// One recognized nesting layer of a Figure 7 hidden join.
#[derive(Debug, Clone)]
pub struct Layer {
    /// Whether the layer's result is flattened (`hᵢ = flat`).
    pub flattened: bool,
    /// The layer's `iter` predicate.
    pub pred: Pred,
    /// The layer's `iter` body function.
    pub func: Func,
}

/// What the head routine found.
#[derive(Debug, Clone)]
pub struct Recognized {
    /// The outer pairing function `j`.
    pub j: Func,
    /// The nesting layers, outermost first.
    pub layers: Vec<Layer>,
    /// The inner constant set `B`.
    pub inner: Query,
    /// The outer argument `A`.
    pub outer: Query,
}

/// Instrumentation: how much work the head routine did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeadStats {
    /// AST nodes inspected during the dive.
    pub nodes_visited: usize,
    /// Nesting depth reached before deciding.
    pub dive_depth: usize,
}

/// The monolithic head routine: decide whether `q` is a hidden join of the
/// Figure 7 shape, diving to arbitrary depth.
pub fn recognize(q: &Query) -> (Option<Recognized>, HeadStats) {
    let mut stats = HeadStats::default();
    let out = recognize_inner(q, usize::MAX, &mut stats).unwrap_or(None);
    (out, stats)
}

/// [`recognize`] with the dive capped at `budget.max_depth`.
///
/// The unbounded dive is exactly the §4.2 pathology this crate's governance
/// layer exists to contain: an adversarial (or just very deep) query can
/// make the head routine do unbounded work *before the rule even fires*.
/// With a budget, the dive gives up at the depth limit and reports
/// [`RewriteError::DepthExceeded`] instead of deciding.
pub fn recognize_with_budget(
    q: &Query,
    budget: &Budget,
) -> (Result<Option<Recognized>, RewriteError>, HeadStats) {
    let mut stats = HeadStats::default();
    let out = recognize_inner(q, budget.max_depth, &mut stats);
    (out, stats)
}

fn recognize_inner(
    q: &Query,
    max_depth: usize,
    stats: &mut HeadStats,
) -> Result<Option<Recognized>, RewriteError> {
    stats.nodes_visited += 1;
    // iterate(Kp(T), (j, body)) ! A
    let Query::App(f, outer) = q else {
        return Ok(None);
    };
    stats.nodes_visited += 1;
    let Func::Iterate(p, pair) = f else {
        return Ok(None);
    };
    stats.nodes_visited += 2;
    if **p != Pred::ConstP(true) {
        return Ok(None);
    }
    let Func::PairWith(j, body) = &**pair else {
        return Ok(None);
    };
    let mut layers = Vec::new();
    let mut cur: &Func = body;
    loop {
        if stats.dive_depth >= max_depth {
            return Err(RewriteError::DepthExceeded { limit: max_depth });
        }
        stats.dive_depth += 1;
        stats.nodes_visited += 1;
        // Kf(B): done.
        if let Func::ConstF(b) = cur {
            if layers.is_empty() {
                return Ok(None); // no iter layer at all: not a hidden join
            }
            return Ok(Some(Recognized {
                j: (**j).clone(),
                layers,
                inner: (**b).clone(),
                outer: (**outer).clone(),
            }));
        }
        // [flat ∘] iter(p, f) ∘ (id, rest)
        let segs = crate::matching::chain_segments(cur);
        stats.nodes_visited += segs.len();
        let (flattened, rest_segs) = match segs.split_first() {
            Some((Func::Flat, rest)) => (true, rest),
            _ => (false, &segs[..]),
        };
        let Some((Func::Iter(p, f), tail)) = rest_segs.split_first() else {
            return Ok(None);
        };
        let Some((Func::PairWith(idf, next), tail_rest)) = tail.split_first() else {
            return Ok(None);
        };
        if !tail_rest.is_empty() || **idf != Func::Id {
            return Ok(None);
        }
        layers.push(Layer {
            flattened,
            pred: (**p).clone(),
            func: (**f).clone(),
        });
        cur = next;
    }
}

/// The monolithic rule: head routine + body routine.
///
/// The body routine here delegates to the same rewrite pipeline the gradual
/// strategy uses — the paper's criticism targets the *head* (unbounded
/// dive, all-or-nothing applicability), which this faithfully reproduces:
/// when [`recognize`] fails, the query is returned **unchanged**, with the
/// stats showing how much analysis was wasted.
pub fn try_monolithic(catalog: &Catalog, props: &PropDb, q: &Query) -> (Option<Query>, HeadStats) {
    let (hit, stats) = recognize(q);
    match hit {
        Some(_) => {
            let out = hidden_join::untangle(catalog, props, q);
            (Some(out.query), stats)
        }
        None => (None, stats),
    }
}

/// [`try_monolithic`] under an explicit [`Budget`]: the head routine's dive
/// is depth-capped and the body routine's rewriting is step-capped, with
/// the accounting returned alongside. A dive that hits the depth cap is an
/// all-or-nothing *failure* — the query comes back unchanged, exactly as a
/// monolithic rule behaves on any input it cannot fully analyze.
pub fn try_monolithic_governed(
    catalog: &Catalog,
    props: &PropDb,
    q: &Query,
    budget: &Budget,
) -> (Option<Query>, HeadStats, RewriteReport) {
    try_monolithic_configured(catalog, props, q, budget, None)
}

/// [`try_monolithic_governed`] with the body routine's fixpoints running on
/// the fast engine when an [`EngineConfig`] is supplied. The head routine is
/// unaffected — its unbounded dive is the pathology under study, and no
/// amount of indexing in the body can recover the analysis it wastes.
pub fn try_monolithic_configured(
    catalog: &Catalog,
    props: &PropDb,
    q: &Query,
    budget: &Budget,
    engine: Option<EngineConfig>,
) -> (Option<Query>, HeadStats, RewriteReport) {
    let (hit, stats) = recognize_with_budget(q, budget);
    match hit {
        Ok(Some(_)) => {
            let out = hidden_join::untangle_configured(catalog, props, q, budget, engine);
            (Some(out.query), stats, out.report)
        }
        Ok(None) => (None, stats, RewriteReport::new()),
        Err(e) => {
            let mut report = RewriteReport::new();
            report.failures.push(e.to_string());
            (None, stats, report)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hidden_join::{garage_query_kg1, synthetic_hidden_join};

    #[test]
    fn recognizes_garage_query() {
        let (hit, stats) = recognize(&garage_query_kg1());
        let r = hit.expect("KG1 is a hidden join");
        assert_eq!(r.layers.len(), 2);
        assert!(r.layers[0].flattened);
        assert!(!r.layers[1].flattened);
        assert_eq!(r.inner.to_string(), "P");
        assert_eq!(r.outer.to_string(), "V");
        assert!(stats.dive_depth >= 3);
    }

    #[test]
    fn recognizes_synthetic_depths() {
        for n in 1..=6 {
            let (hit, stats) = recognize(&synthetic_hidden_join(n));
            let r = hit.unwrap_or_else(|| panic!("depth {n} should be recognized"));
            assert_eq!(r.layers.len(), n);
            assert_eq!(stats.dive_depth, n + 1);
        }
    }

    #[test]
    fn dive_cost_grows_with_depth() {
        let (_, shallow) = recognize(&synthetic_hidden_join(1));
        let (_, deep) = recognize(&synthetic_hidden_join(8));
        assert!(deep.nodes_visited > shallow.nodes_visited);
    }

    #[test]
    fn rejects_non_hidden_joins_after_diving() {
        // Almost a hidden join, but the innermost constant is missing —
        // the head routine dives the whole way before discovering this.
        let q = kola::parse::parse_query(
            "iterate(Kp(T), (id, flat . iter(Kp(T), child . pi2) . (id, child))) ! A",
        )
        .unwrap();
        let (hit, stats) = recognize(&q);
        assert!(hit.is_none());
        assert!(stats.dive_depth >= 2, "must dive before rejecting");
    }

    #[test]
    fn governed_dive_gives_up_at_depth_cap() {
        let q = synthetic_hidden_join(8);
        let budget = Budget::default().depth(3);
        let (hit, stats) = recognize_with_budget(&q, &budget);
        assert!(matches!(hit, Err(RewriteError::DepthExceeded { limit: 3 })));
        assert!(stats.dive_depth <= 3, "dive stopped at the cap");
        // The monolithic rule's all-or-nothing failure mode: unchanged
        // query, with the giving-up recorded in the report.
        let (c, p) = (Catalog::paper(), PropDb::new());
        let (out, _, report) = try_monolithic_governed(&c, &p, &q, &budget);
        assert!(out.is_none());
        assert_eq!(report.failures.len(), 1);
        // A generous budget recognizes and rewrites the same query.
        let (out, _, _) = try_monolithic_governed(&c, &p, &q, &Budget::default());
        assert!(out.is_some());
    }

    #[test]
    fn fast_body_routine_matches_reference() {
        let (c, p) = (Catalog::paper(), PropDb::new());
        let q = synthetic_hidden_join(3);
        let budget = Budget::default();
        let (slow, _, slow_rep) = try_monolithic_governed(&c, &p, &q, &budget);
        let (fast, _, fast_rep) =
            try_monolithic_configured(&c, &p, &q, &budget, Some(EngineConfig::fast()));
        assert_eq!(fast, slow);
        assert!(fast.is_some());
        assert_eq!(fast_rep.steps, slow_rep.steps);
    }

    #[test]
    fn monolithic_failure_leaves_query_unchanged() {
        let (c, p) = (Catalog::paper(), PropDb::new());
        let q = kola::parse::parse_query("iterate(Kp(T), id . age) ! P").unwrap();
        let (out, _) = try_monolithic(&c, &p, &q);
        // The paper's point: the monolithic rule does nothing here, while
        // the gradual pipeline would at least simplify id ∘ age.
        assert!(out.is_none());
    }
}
