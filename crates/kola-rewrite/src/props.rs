//! Declarative preconditions: semantic properties and their inference.
//!
//! §4.2 of the paper: "Some transformations are only valid provided certain
//! conditions hold. We permit preconditions within the KOLA rule language …
//! expressed as attributes whose values are determined not with code, but
//! with annotations and additional rules." The example given is
//! `injective(f)`, with the inference rule
//! `injective(f) ∧ injective(g) ⇒ injective(f ∘ g)`.
//!
//! [`PropDb`] holds the *annotations* (facts about schema primitives, e.g.
//! "`name` is a key"); [`PropDb::holds`] is the rule-driven inference over
//! term structure. There are no callbacks: adding knowledge means adding a
//! fact or an inference case, not writing a head routine.

use kola::term::Func;
use kola::value::Sym;
use std::collections::BTreeSet;
use std::sync::Arc;

/// A semantic property a precondition can demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PropKind {
    /// `injective(f)`: `f!x = f!y` implies `x = y` (the paper's example —
    /// keys are injective).
    Injective,
    /// `total(f)`: `f` never gets stuck on inputs of its domain type. All
    /// KOLA formers preserve totality; only schema primitives can fail (on
    /// dangling references), so this is a fact database over primitives.
    Total,
}

/// What a precondition talks about: the binding of a rule metavariable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropTerm {
    /// The function bound to `$name` by the rule head.
    FuncVar(Sym),
}

impl PropTerm {
    /// Convenience constructor.
    pub fn func(name: &str) -> PropTerm {
        PropTerm::FuncVar(Arc::from(name))
    }
}

/// The annotation database: per-primitive facts.
#[derive(Debug, Clone, Default)]
pub struct PropDb {
    injective_prims: BTreeSet<Sym>,
    partial_prims: BTreeSet<Sym>,
}

impl PropDb {
    /// An empty database (no primitive is known injective).
    pub fn new() -> Self {
        Self::default()
    }

    /// Annotate a schema primitive as injective (a key).
    pub fn declare_injective(&mut self, prim: &str) {
        self.injective_prims.insert(Arc::from(prim));
    }

    /// Annotate a schema primitive as partial (may fail at runtime).
    pub fn declare_partial(&mut self, prim: &str) {
        self.partial_prims.insert(Arc::from(prim));
    }

    /// Decide whether `prop` is *provable* of `f` from the annotations and
    /// the structural inference rules. Sound but incomplete (like the
    /// paper's: a property that cannot be derived is treated as absent).
    pub fn holds(&self, prop: PropKind, f: &Func) -> bool {
        match prop {
            PropKind::Injective => self.injective(f),
            PropKind::Total => self.total(f),
        }
    }

    /// `injective(f)`: structural inference.
    ///
    /// - `injective(id)`
    /// - `injective(prim)` iff annotated
    /// - `injective(f) ∧ injective(g) ⇒ injective(f ∘ g)` (the paper's rule)
    /// - `injective(f) ∨ injective(g) ⇒ injective(⟨f, g⟩)`
    /// - `injective(f) ∧ injective(g) ⇒ injective(f × g)`
    fn injective(&self, f: &Func) -> bool {
        match f {
            Func::Id => true,
            Func::Prim(name) => self.injective_prims.contains(name),
            Func::Compose(f, g) => self.injective(f) && self.injective(g),
            Func::PairWith(f, g) => self.injective(f) || self.injective(g),
            Func::Times(f, g) => self.injective(f) && self.injective(g),
            _ => false,
        }
    }

    /// `total(f)`: every former preserves totality; only annotated-partial
    /// primitives break it.
    fn total(&self, f: &Func) -> bool {
        match f {
            Func::Prim(name) => !self.partial_prims.contains(name),
            Func::Compose(f, g)
            | Func::PairWith(f, g)
            | Func::Times(f, g)
            | Func::Nest(f, g)
            | Func::Unnest(f, g) => self.total(f) && self.total(g),
            Func::CurryF(f, _) => self.total(f),
            Func::Cond(_, f, g) => self.total(f) && self.total(g),
            Func::Iterate(_, f) | Func::Iter(_, f) | Func::Join(_, f) => self.total(f),
            _ => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kola::builder::*;

    fn db() -> PropDb {
        let mut db = PropDb::new();
        db.declare_injective("name");
        db
    }

    #[test]
    fn annotated_prim_is_injective() {
        assert!(db().holds(PropKind::Injective, &prim("name")));
        assert!(!db().holds(PropKind::Injective, &prim("age")));
    }

    #[test]
    fn composition_inference() {
        // injective(f) ∧ injective(g) ⇒ injective(f ∘ g) — the paper's rule.
        assert!(db().holds(PropKind::Injective, &o(id(), prim("name"))));
        assert!(!db().holds(PropKind::Injective, &o(prim("age"), prim("name"))));
    }

    #[test]
    fn pairing_needs_one_side() {
        assert!(db().holds(PropKind::Injective, &pairf(prim("age"), prim("name"))));
        assert!(!db().holds(PropKind::Injective, &pairf(prim("age"), prim("age"))));
    }

    #[test]
    fn times_needs_both_sides() {
        assert!(db().holds(PropKind::Injective, &times(id(), prim("name"))));
        assert!(!db().holds(PropKind::Injective, &times(id(), prim("age"))));
    }

    #[test]
    fn id_is_injective_constants_are_not() {
        assert!(db().holds(PropKind::Injective, &id()));
        assert!(!db().holds(PropKind::Injective, &kf(1)));
        assert!(!db().holds(PropKind::Injective, &pi1()));
    }

    #[test]
    fn totality() {
        let mut db = PropDb::new();
        db.declare_partial("addr");
        assert!(!db.holds(PropKind::Total, &o(prim("city"), prim("addr"))));
        assert!(db.holds(PropKind::Total, &prim("city")));
        assert!(db.holds(PropKind::Total, &iterate(kp(true), prim("city"))));
    }
}
