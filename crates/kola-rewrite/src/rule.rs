//! Declarative rewrite rules.
//!
//! A [`Rule`] is nothing but patterns: a head, a body, optional declarative
//! preconditions, and bookkeeping (id, name, provenance). There is *no* code
//! slot — that is the paper's thesis made structural. Head routines are
//! replaced by matching ([`crate::matching`]); body routines by
//! instantiation ([`crate::subst`]).

use crate::budget::RewriteError;
use crate::matching::{self, match_func_prefix};
use crate::props::{PropKind, PropTerm};
use crate::subst::{instantiate_func, instantiate_pred, instantiate_query, Subst};
use kola::parse::{parse_pfunc, parse_ppred, parse_pquery, ParseError};
use kola::pattern::{PFunc, PPred, PQuery};
use kola::term::{Func, Pred, Query};
use std::fmt;

/// Which way a (bidirectional) rule is applied. The paper uses rules 2, 12
/// and 14 right-to-left ("rule references of the form i⁻¹").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Direction {
    /// Left-to-right (the printed orientation).
    #[default]
    Forward,
    /// Right-to-left (`i⁻¹` in the paper's derivations).
    Backward,
}

impl Direction {
    /// The opposite direction.
    pub fn flip(self) -> Direction {
        match self {
            Direction::Forward => Direction::Backward,
            Direction::Backward => Direction::Forward,
        }
    }
}

/// A single `lhs ≡ rhs` pair at one syntactic level.
#[derive(Debug, Clone)]
pub enum RewritePair {
    /// A function-level equivalence.
    F(PFunc, PFunc),
    /// A predicate-level equivalence.
    P(PPred, PPred),
    /// A query-level equivalence.
    Q(PQuery, PQuery),
}

/// A declarative precondition on a rule: a property that must be *provable*
/// of the matched subterms (see [`crate::props`]). Example: the paper's
/// `injective(f)` guard on the intersection-pushing rule.
#[derive(Debug, Clone)]
pub struct Precondition {
    /// The property required.
    pub prop: PropKind,
    /// The pattern (usually a bare metavariable) whose binding must have it.
    pub subject: PropTerm,
}

/// Where a rule comes from (used for catalog statistics, experiment E11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RuleSource {
    /// One of the paper's Figure 5 rules (1–16).
    Figure5,
    /// One of the paper's Figure 8 hidden-join rules (17–24).
    Figure8,
    /// A structural rule (compose/apply plumbing).
    Structural,
    /// Part of the extended verified pool.
    #[default]
    Extended,
    /// Systematically generated context closure of another verified rule
    /// (see [`crate::catalog::closures`]).
    Closure,
}

/// A named, declarative rewrite rule.
///
/// A rule may carry several `alts` (alternative `lhs ≡ rhs` pairs) under one
/// id — used for rules the paper states with a boolean schema variable, such
/// as rule 6 (`Kp(b) ⊕ f ≡ Kp(b)`), which we expand into the `b = T` and
/// `b = F` instances.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Identifier used in derivations, e.g. `"11"` or `"19"`.
    pub id: String,
    /// Human-readable name.
    pub name: String,
    /// Alternative rewrite pairs (all at the same syntactic level).
    pub alts: Vec<RewritePair>,
    /// Declarative preconditions (empty for unconditional rules).
    pub preconditions: Vec<Precondition>,
    /// Whether the rule is sound right-to-left as well (all paper rules are
    /// equivalences, so this defaults to true).
    pub bidirectional: bool,
    /// Provenance (figure 5 / figure 8 / structural / extended pool).
    pub source: RuleSource,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: ", self.id, self.name)?;
        for (i, alt) in self.alts.iter().enumerate() {
            if i > 0 {
                write!(f, " ; ")?;
            }
            match alt {
                RewritePair::F(l, r) => write!(f, "{l} == {r}")?,
                RewritePair::P(l, r) => write!(f, "{l} == {r}")?,
                RewritePair::Q(l, r) => write!(f, "{l} == {r}")?,
            }
        }
        Ok(())
    }
}

impl Rule {
    /// Build a function-level rule from concrete pattern syntax.
    ///
    /// ```
    /// use kola_rewrite::{Direction, Rule};
    /// let r = Rule::func("9", "pi1-pairing", "pi1 . ($f, $g)", "$f");
    /// let t = kola::parse::parse_func("pi1 . (age, addr)").unwrap();
    /// let (out, _) = r.apply_func(&t, Direction::Forward).unwrap();
    /// assert_eq!(out.to_string(), "age");
    /// ```
    ///
    /// # Panics
    /// Panics on malformed pattern text — rules are static program data, so
    /// a bad rule is a bug, not an input error.
    pub fn func(id: &str, name: &str, lhs: &str, rhs: &str) -> Rule {
        Rule {
            id: id.to_string(),
            name: name.to_string(),
            alts: vec![RewritePair::F(
                must(parse_pfunc(lhs), id, lhs),
                must(parse_pfunc(rhs), id, rhs),
            )],
            preconditions: Vec::new(),
            bidirectional: true,
            source: RuleSource::default(),
        }
    }

    /// Build a predicate-level rule from pattern syntax. Panics like
    /// [`Rule::func`].
    pub fn pred(id: &str, name: &str, lhs: &str, rhs: &str) -> Rule {
        Rule {
            id: id.to_string(),
            name: name.to_string(),
            alts: vec![RewritePair::P(
                must(parse_ppred(lhs), id, lhs),
                must(parse_ppred(rhs), id, rhs),
            )],
            preconditions: Vec::new(),
            bidirectional: true,
            source: RuleSource::default(),
        }
    }

    /// Build a query-level rule from pattern syntax. Panics like
    /// [`Rule::func`].
    pub fn query(id: &str, name: &str, lhs: &str, rhs: &str) -> Rule {
        Rule {
            id: id.to_string(),
            name: name.to_string(),
            alts: vec![RewritePair::Q(
                must(parse_pquery(lhs), id, lhs),
                must(parse_pquery(rhs), id, rhs),
            )],
            preconditions: Vec::new(),
            bidirectional: true,
            source: RuleSource::default(),
        }
    }

    /// Add another alternative pair (must be same level as the first).
    pub fn with_alt_func(mut self, lhs: &str, rhs: &str) -> Rule {
        self.alts.push(RewritePair::F(
            must(parse_pfunc(lhs), &self.id, lhs),
            must(parse_pfunc(rhs), &self.id, rhs),
        ));
        self
    }

    /// Add another predicate-level alternative pair.
    pub fn with_alt_pred(mut self, lhs: &str, rhs: &str) -> Rule {
        self.alts.push(RewritePair::P(
            must(parse_ppred(lhs), &self.id, lhs),
            must(parse_ppred(rhs), &self.id, rhs),
        ));
        self
    }

    /// Attach a precondition.
    pub fn with_precondition(mut self, prop: PropKind, subject: PropTerm) -> Rule {
        self.preconditions.push(Precondition { prop, subject });
        self
    }

    /// Mark the rule as only sound left-to-right.
    pub fn one_way(mut self) -> Rule {
        self.bidirectional = false;
        self
    }

    /// Set the rule's provenance.
    pub fn from_source(mut self, source: RuleSource) -> Rule {
        self.source = source;
        self
    }

    /// The head/body of an alternative, oriented by `dir`.
    fn oriented<'a, L>(&self, pair: (&'a L, &'a L), dir: Direction) -> (&'a L, &'a L) {
        match dir {
            Direction::Forward => pair,
            Direction::Backward => (pair.1, pair.0),
        }
    }

    /// Promote an instantiation failure (a body variable the head never
    /// bound) into a structured [`RewriteError`]. Such a rule is *malformed*
    /// — the governed engine records the failure and quarantines repeat
    /// offenders instead of silently skipping or panicking.
    fn rule_failed(&self, e: crate::subst::UnboundVar) -> RewriteError {
        RewriteError::RuleFailed {
            rule_id: self.id.clone(),
            detail: e.to_string(),
        }
    }

    /// Try to apply the rule at the root of a function term.
    ///
    /// For composite (chain) heads, matches a *prefix window* of the term's
    /// composition chain; the remainder is re-appended to the rewritten
    /// result (see [`crate::matching::match_func_prefix`]).
    ///
    /// `Ok(None)` means "no alternative matched"; `Err` means an alternative
    /// matched but its body could not be instantiated — the rule itself is
    /// broken.
    pub fn try_apply_func(
        &self,
        t: &Func,
        dir: Direction,
    ) -> Result<Option<(Func, Subst)>, RewriteError> {
        if dir == Direction::Backward && !self.bidirectional {
            return Ok(None);
        }
        for alt in &self.alts {
            let RewritePair::F(l, r) = alt else { continue };
            let (head, body) = self.oriented((l, r), dir);
            let mut s = Subst::new();
            let segs = matching::chain_segments(t);
            let n = segs.len();
            if let Some(consumed) = match_func_prefix(head, t, &mut s) {
                let rewritten = instantiate_func(body, &s).map_err(|e| self.rule_failed(e))?;
                if consumed == n {
                    return Ok(Some((rewritten, s)));
                }
                let mut out = vec![rewritten];
                out.extend(segs[consumed..].iter().map(|f| (*f).clone()));
                return Ok(Some((matching::compose_chain(out), s)));
            }
        }
        Ok(None)
    }

    /// Try to apply the rule at the root of a predicate term (`Ok(None)` =
    /// no match, `Err` = matched but malformed; see [`Rule::try_apply_func`]).
    pub fn try_apply_pred(
        &self,
        t: &Pred,
        dir: Direction,
    ) -> Result<Option<(Pred, Subst)>, RewriteError> {
        if dir == Direction::Backward && !self.bidirectional {
            return Ok(None);
        }
        for alt in &self.alts {
            let RewritePair::P(l, r) = alt else { continue };
            let (head, body) = self.oriented((l, r), dir);
            let mut s = Subst::new();
            if matching::match_pred(head, t, &mut s) {
                let out = instantiate_pred(body, &s).map_err(|e| self.rule_failed(e))?;
                return Ok(Some((out, s)));
            }
        }
        Ok(None)
    }

    /// Try to apply the rule at the root of a query term (`Ok(None)` = no
    /// match, `Err` = matched but malformed; see [`Rule::try_apply_func`]).
    pub fn try_apply_query(
        &self,
        t: &Query,
        dir: Direction,
    ) -> Result<Option<(Query, Subst)>, RewriteError> {
        if dir == Direction::Backward && !self.bidirectional {
            return Ok(None);
        }
        for alt in &self.alts {
            let RewritePair::Q(l, r) = alt else { continue };
            let (head, body) = self.oriented((l, r), dir);
            let mut s = Subst::new();
            if matching::match_query(head, t, &mut s) {
                let out = instantiate_query(body, &s).map_err(|e| self.rule_failed(e))?;
                return Ok(Some((out, s)));
            }
        }
        Ok(None)
    }

    /// [`Rule::try_apply_func`] with failures flattened to `None`.
    pub fn apply_func(&self, t: &Func, dir: Direction) -> Option<(Func, Subst)> {
        self.try_apply_func(t, dir).ok().flatten()
    }

    /// [`Rule::try_apply_pred`] with failures flattened to `None`.
    pub fn apply_pred(&self, t: &Pred, dir: Direction) -> Option<(Pred, Subst)> {
        self.try_apply_pred(t, dir).ok().flatten()
    }

    /// [`Rule::try_apply_query`] with failures flattened to `None`.
    pub fn apply_query(&self, t: &Query, dir: Direction) -> Option<(Query, Subst)> {
        self.try_apply_query(t, dir).ok().flatten()
    }

    /// True iff the rule has any function-level alternative.
    pub fn is_func_level(&self) -> bool {
        self.alts.iter().any(|a| matches!(a, RewritePair::F(..)))
    }

    /// True iff the rule has any predicate-level alternative.
    pub fn is_pred_level(&self) -> bool {
        self.alts.iter().any(|a| matches!(a, RewritePair::P(..)))
    }

    /// True iff the rule has any query-level alternative.
    pub fn is_query_level(&self) -> bool {
        self.alts.iter().any(|a| matches!(a, RewritePair::Q(..)))
    }
}

fn must<T>(r: Result<T, ParseError>, id: &str, src: &str) -> T {
    match r {
        Ok(t) => t,
        Err(e) => panic!("rule {id}: bad pattern {src:?}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kola::parse::{parse_func, parse_pred};

    #[test]
    fn rule_applies_forward() {
        let r = Rule::func("9", "pi1-pair", "pi1 . ($f, $g)", "$f");
        let t = parse_func("pi1 . (age, addr)").unwrap();
        let (out, _) = r.apply_func(&t, Direction::Forward).unwrap();
        assert_eq!(out, parse_func("age").unwrap());
    }

    #[test]
    fn rule_applies_backward() {
        let r = Rule::func("2", "id-left", "id . $f", "$f");
        let t = parse_func("age").unwrap();
        let (out, _) = r.apply_func(&t, Direction::Backward).unwrap();
        assert_eq!(out, parse_func("id . age").unwrap());
    }

    #[test]
    fn one_way_rule_refuses_backward() {
        let r = Rule::func("x", "oneway", "id . $f", "$f").one_way();
        let t = parse_func("age").unwrap();
        assert!(r.apply_func(&t, Direction::Backward).is_none());
    }

    #[test]
    fn chain_window_application() {
        // rule 11 over a 3-chain rewrites the first window, keeps the tail.
        let r = Rule::func(
            "11",
            "iterate-fuse",
            "iterate(%p, $f) . iterate(%q, $g)",
            "iterate(%q & %p @ $g, $f . $g)",
        );
        let t = parse_func("iterate(Kp(T), city) . iterate(Kp(T), addr) . flat").unwrap();
        let (out, _) = r.apply_func(&t, Direction::Forward).unwrap();
        assert_eq!(
            out,
            parse_func("iterate(Kp(T) & Kp(T) @ addr, city . addr) . flat").unwrap()
        );
    }

    #[test]
    fn alternatives_share_an_id() {
        let r = Rule::pred("6", "const-oplus", "Kp(T) @ $f", "Kp(T)")
            .with_alt_pred("Kp(F) @ $f", "Kp(F)");
        let t = parse_pred("Kp(F) @ age").unwrap();
        let (out, _) = r.apply_pred(&t, Direction::Forward).unwrap();
        assert_eq!(out, parse_pred("Kp(F)").unwrap());
    }

    #[test]
    fn no_match_returns_none() {
        let r = Rule::func("9", "pi1-pair", "pi1 . ($f, $g)", "$f");
        let t = parse_func("pi2 . (age, addr)").unwrap();
        assert!(r.apply_func(&t, Direction::Forward).is_none());
    }

    #[test]
    fn query_rule() {
        let r = Rule::query(
            "19",
            "bottom-out",
            "iterate(Kp(T), (id, Kf(^B))) ! ^A",
            "nest(pi1, pi2) . (join(Kp(T), id), pi1) ! [^A, ^B]",
        );
        let t = kola::parse::parse_query("iterate(Kp(T), (id, Kf(P))) ! V").unwrap();
        let (out, _) = r.apply_query(&t, Direction::Forward).unwrap();
        assert_eq!(
            out,
            kola::parse::parse_query("nest(pi1, pi2) . (join(Kp(T), id), pi1) ! [V, P]").unwrap()
        );
    }
}
