//! Equality saturation over the [`EGraph`]: non-destructive application of
//! the rule catalog to a fixpoint, then cost-based extraction.
//!
//! ## Two phases
//!
//! **Seed wave.** The caller first runs the ordinary destructive fixpoint
//! engine and hands its whole trajectory here: the input, every
//! intermediate, and the output are registered in the e-graph and unioned
//! into one root class ([`seed_trajectory`]). Each wave step is a rule
//! application — a semantic equality — so the unions are sound, and they
//! make the differential gate *structural*: the fixpoint result is a member
//! of the root class, hence extraction can never return a costlier term
//! than the fixpoint engine under the extraction cost model
//! (`tests/egraph_parity.rs` pins this on 1000 seeds).
//!
//! **Saturation loop.** Classic match-apply-rebuild rounds:
//!
//! 1. *Refresh*: extract a representative term for every class (cheapest
//!    under the engine's cost model). Representatives drive index lookup
//!    and precondition checks.
//! 2. *Match*: for every class (ascending id), the discrimination tree
//!    ([`RuleIndex`]) is walked against the class itself
//!    ([`RuleIndex::query_candidates_class`] and siblings): every `Sym`
//!    edge branches over every same-tagged e-node, so no member's shape is
//!    hidden behind a cheaper representative. Candidate rules (ascending
//!    position, active-mask and quarantine filtered — the same discipline
//!    as the fixpoint engine's candidate scan) are then e-matched against
//!    the *class structure*: metavariables bind e-classes, alternatives
//!    backtrack over every e-node of a class, and function rules use the
//!    same chain-prefix semantics as
//!    [`crate::imatch::imatch_func_prefix`], decomposing chain classes
//!    through their `∘` e-nodes.
//! 3. *Apply*: each match instantiates the rule body as e-nodes and unions
//!    it with the matched class. Every application that changes the graph
//!    costs one budget step.
//! 4. *Rebuild*: restore congruence; if the graph did not change this
//!    round, the rule set is saturated.
//!
//! ## Completeness and bounds
//!
//! E-matching here is deliberately *bounded*: the index walk carries a
//! node-visit fuel budget (pathological same-tag fanout truncates candidate
//! collection), chain decomposition is depth-capped, and match enumeration
//! is capped per (class, rule) pair. All bounds trade completeness for
//! predictable cost; soundness is never at stake because every union is
//! justified by a rule instance, and the seed wave — not matcher
//! completeness — is what guarantees the differential gate. Budget
//! exhaustion mid-saturation simply stops asserting new equalities;
//! extraction still returns the best of everything proven so far (never
//! worse than the wave).

use crate::budget::{Budget, RewriteReport, StopReason};
use crate::dtree::RuleIndex;
use crate::egraph::{ClassId, EGraph, ENode};
use crate::engine::Oriented;
use crate::extract::{CostModel, Extractor};
use crate::imatch::ipreconditions_hold;
use crate::imatch::ISubst;
use crate::props::PropDb;
use crate::rule::{Direction, RewritePair, Rule};
use kola::intern::{ITerm, Interner, Payload, Tag};
use kola::pattern::{PFunc, PPred, PQuery};
use kola::term::Query;
use kola::value::Sym;
use std::collections::BTreeMap;

/// Everything the saturation loop needs besides the graph itself.
pub struct SaturationParams<'r, 'a> {
    /// The rule list, in engine order (positions match `index`).
    pub rules: &'r [Oriented<'a>],
    /// Property database for precondition checks.
    pub props: &'r PropDb,
    /// Discrimination tree over `rules` (quarantine pruning already
    /// applied by the caller, exactly as in the fixpoint engine).
    pub index: &'r RuleIndex,
    /// Per-position activity mask (`None` = all active).
    pub active: Option<&'r [bool]>,
    /// Max e-match bindings enumerated per (class, rule) per round.
    pub match_cap: usize,
}

/// What saturation produced (the caller assembles the final `Rewritten`).
#[derive(Debug)]
pub struct SaturationResult {
    /// The extracted best query, right-normalized.
    pub query: Query,
    /// Its cost under the engine's cost model.
    pub cost: u64,
    /// Cost of the seed wave's fixpoint output under the same model — the
    /// differential baseline (extracted `cost` ≤ this, structurally).
    pub fixpoint_cost: u64,
    /// True iff a match-apply round changed nothing (fixpoint reached).
    pub saturated: bool,
    /// Match-apply-rebuild rounds run.
    pub iterations: usize,
    /// Canonical e-classes at the end.
    pub classes: usize,
    /// E-nodes at the end.
    pub nodes: usize,
}

/// Register the fixpoint trajectory (input, every intermediate, output) and
/// union it into one root class. Returns the root.
pub fn seed_trajectory(
    eg: &mut EGraph,
    it: &mut Interner,
    input: &Query,
    steps: &[Query],
) -> ClassId {
    let root = eg.add_term(&it.intern_query(&input.normalize()));
    for q in steps {
        let c = eg.add_term(&it.intern_query(&q.normalize()));
        eg.union(root, c);
    }
    eg.rebuild();
    eg.find(root)
}

/// Run seeded saturation + extraction. `report` arrives with the seed
/// wave's steps/quarantines already recorded and is extended in place;
/// `budget.max_steps` bounds *total* steps (wave + saturation), mirroring
/// how the fixpoint engine treats one budget per run.
pub fn saturate_from_trajectory(
    input: &Query,
    trajectory: &[Query],
    params: &SaturationParams,
    budget: &Budget,
    cost: &dyn CostModel,
    report: &mut RewriteReport,
    it: &mut Interner,
) -> SaturationResult {
    let mut eg = EGraph::new();
    let root = seed_trajectory(&mut eg, it, input, trajectory);
    // Cost the fixpoint output itself (the root class's best may already be
    // cheaper thanks to wave intermediates — we want the raw baseline).
    let fixpoint_cost = {
        let fix_q = trajectory
            .last()
            .cloned()
            .unwrap_or_else(|| input.normalize());
        let fix_t = it.intern_query(&fix_q.normalize());
        term_cost(&fix_t, cost)
    };

    let mut sat = Sat {
        eg,
        params,
        it,
        reps: Vec::new(),
    };
    let mut saturated = false;
    let mut iterations = 0usize;
    'outer: loop {
        if report.steps >= budget.max_steps {
            report.stop = StopReason::BudgetExhausted;
            break;
        }
        if budget.expired() {
            report.stop = StopReason::DeadlineExpired;
            break;
        }
        sat.refresh_reps(cost);
        let matches = sat.match_round(report);
        let before = sat.eg.version();
        let mut progressed = false;
        for m in matches {
            if report.steps >= budget.max_steps {
                report.stop = StopReason::BudgetExhausted;
                sat.eg.rebuild();
                break 'outer;
            }
            if budget.expired() {
                report.stop = StopReason::DeadlineExpired;
                sat.eg.rebuild();
                break 'outer;
            }
            let v = sat.eg.version();
            let applied = sat.apply(&m);
            if applied && sat.eg.version() != v {
                report.steps += 1;
                report.record_fire(&sat.params.rules[m.pos].rule.id);
                progressed = true;
            }
        }
        sat.eg.rebuild();
        iterations += 1;
        if !progressed && sat.eg.version() == before {
            saturated = true;
            report.stop = StopReason::NormalForm;
            break;
        }
    }

    let Sat { eg, it, .. } = sat;
    let ext = Extractor::new(&eg, cost);
    let (query, cost_out) = match ext.term(&eg, root, it) {
        Some(t) => {
            let c = ext.cost(&eg, root).unwrap_or(u64::MAX);
            (t.to_query().normalize(), c)
        }
        // Unreachable in practice (the root always has the concrete input
        // as witness), but never panic on it.
        None => (input.normalize(), u64::MAX),
    };
    SaturationResult {
        query,
        cost: cost_out,
        fixpoint_cost,
        saturated,
        iterations,
        classes: eg.num_classes(),
        nodes: eg.num_nodes(),
    }
}

/// Cost of one concrete interned term under `cost` (no e-graph involved).
pub fn term_cost(t: &ITerm, cost: &dyn CostModel) -> u64 {
    let kid_costs: Vec<u64> = t.kids().iter().map(|k| term_cost(k, cost)).collect();
    cost.node_cost(t.tag(), t.payload(), &kid_costs)
}

/// Class-valued metavariable bindings (the e-matching [`ISubst`]).
/// Consistency is canonical-class equality: two syntactically different
/// binding candidates in one class are provably equal, so unifying them is
/// sound — strictly more matches than the pointer-equality the destructive
/// matcher requires.
#[derive(Debug, Clone, Default)]
struct EBinds {
    funcs: BTreeMap<Sym, ClassId>,
    preds: BTreeMap<Sym, ClassId>,
    objs: BTreeMap<Sym, ClassId>,
}

impl EBinds {
    fn bind(map: &mut BTreeMap<Sym, ClassId>, v: &Sym, c: ClassId) -> bool {
        match map.get(v) {
            Some(&existing) => existing == c,
            None => {
                map.insert(v.clone(), c);
                true
            }
        }
    }
}

/// One scheduled rule application: rule position, the alternative whose
/// head matched, the matched class, bindings, and (for function rules) the
/// unconsumed chain suffix.
struct Match {
    pos: usize,
    /// Index into the rule's `alts` — the body instantiated must belong to
    /// the same alternative the head match bound.
    alt: usize,
    class: ClassId,
    binds: EBinds,
    /// Chain segments left over after a prefix match (function level only);
    /// the instantiated body is re-composed onto them.
    remainder: Vec<ClassId>,
}

/// Per-round decomposition/enumeration limits. Depth bounds recursion
/// through chain e-nodes (cyclic classes make unbounded descent possible).
const CHAIN_DEPTH: usize = 64;

struct Sat<'s, 'r, 'a> {
    eg: EGraph,
    params: &'s SaturationParams<'r, 'a>,
    it: &'s mut Interner,
    /// Representative (cheapest) term per raw class id; `None` while a
    /// class has no finite-cost realization yet.
    reps: Vec<Option<ITerm>>,
}

impl Sat<'_, '_, '_> {
    fn rep(&self, c: ClassId) -> Option<&ITerm> {
        self.reps
            .get(self.eg.find(c) as usize)
            .and_then(Option::as_ref)
    }

    fn refresh_reps(&mut self, cost: &dyn CostModel) {
        let ext = Extractor::new(&self.eg, cost);
        let mut reps: Vec<Option<ITerm>> = vec![None; self.eg.id_bound()];
        for c in self.eg.class_ids() {
            reps[c as usize] = ext.term(&self.eg, c, self.it);
        }
        self.reps = reps;
    }

    /// Collect this round's matches. Deterministic: classes ascending,
    /// candidates ascending, alternatives and e-nodes in canonical order.
    fn match_round(&mut self, report: &RewriteReport) -> Vec<Match> {
        let mut out = Vec::new();
        let mut cand: Vec<usize> = Vec::new();
        let mut buf: Vec<usize> = Vec::new();
        let classes: Vec<ClassId> = self.eg.class_ids().collect();
        for &c in &classes {
            // Walk the discrimination tree against the class itself: every
            // `Sym` edge branches over every same-tagged e-node, so no
            // member's shape is hidden behind a cheaper representative.
            let level = self.eg.nodes(c).first().map(|n| level_of(n.tag));
            let Some(level) = level else { continue };
            match level {
                Level::F => self
                    .params
                    .index
                    .func_candidates_class(&self.eg, c, &mut buf),
                Level::P => self
                    .params
                    .index
                    .pred_candidates_class(&self.eg, c, &mut buf),
                Level::Q => self
                    .params
                    .index
                    .query_candidates_class(&self.eg, c, &mut buf),
            }
            std::mem::swap(&mut cand, &mut buf);
            for &pos in &cand {
                if self.params.active.is_some_and(|m| !m[pos]) {
                    continue;
                }
                let o = &self.params.rules[pos];
                if report.is_quarantined(&o.rule.id) {
                    continue;
                }
                if o.dir == Direction::Backward && !o.rule.bidirectional {
                    continue;
                }
                self.ematch_rule(o.rule, o.dir, &level, c, pos, &mut out);
            }
        }
        out
    }

    /// E-match one rule (all alternatives of the class's level) and push
    /// scheduled applications, capped at `match_cap` per (class, rule).
    fn ematch_rule(
        &mut self,
        rule: &Rule,
        dir: Direction,
        level: &Level,
        c: ClassId,
        pos: usize,
        out: &mut Vec<Match>,
    ) {
        let cap = self.params.match_cap;
        let mut found = 0usize;
        for (ai, alt) in rule.alts.iter().enumerate() {
            if found >= cap {
                break;
            }
            match (alt, level) {
                (RewritePair::F(l, r), Level::F) => {
                    let head = match dir {
                        Direction::Forward => l,
                        Direction::Backward => r,
                    };
                    let psegs = crate::matching::pchain_segments(head);
                    let mut hits: Vec<(EBinds, Vec<ClassId>)> = Vec::new();
                    let mut fuel = cap.saturating_sub(found);
                    self.ematch_chain(
                        &psegs,
                        &[c],
                        &EBinds::default(),
                        &mut hits,
                        &mut fuel,
                        CHAIN_DEPTH,
                    );
                    for (binds, remainder) in hits {
                        found += 1;
                        out.push(Match {
                            pos,
                            alt: ai,
                            class: c,
                            binds,
                            remainder,
                        });
                    }
                }
                (RewritePair::P(l, r), Level::P) => {
                    let head = match dir {
                        Direction::Forward => l,
                        Direction::Backward => r,
                    };
                    let mut hits: Vec<EBinds> = Vec::new();
                    let mut fuel = cap.saturating_sub(found);
                    self.ematch_pred(
                        head,
                        c,
                        &EBinds::default(),
                        &mut hits,
                        &mut fuel,
                        CHAIN_DEPTH,
                    );
                    for binds in hits {
                        found += 1;
                        out.push(Match {
                            pos,
                            alt: ai,
                            class: c,
                            binds,
                            remainder: Vec::new(),
                        });
                    }
                }
                (RewritePair::Q(l, r), Level::Q) => {
                    let head = match dir {
                        Direction::Forward => l,
                        Direction::Backward => r,
                    };
                    let mut hits: Vec<EBinds> = Vec::new();
                    let mut fuel = cap.saturating_sub(found);
                    self.ematch_query(
                        head,
                        c,
                        &EBinds::default(),
                        &mut hits,
                        &mut fuel,
                        CHAIN_DEPTH,
                    );
                    for binds in hits {
                        found += 1;
                        out.push(Match {
                            pos,
                            alt: ai,
                            class: c,
                            binds,
                            remainder: Vec::new(),
                        });
                    }
                }
                _ => {}
            }
        }
    }

    /// Chain-prefix e-matching: match pattern segments against the chain
    /// structure of a cursor (a list of classes whose composition is the
    /// chain), decomposing through `∘` e-nodes. Mirrors
    /// [`crate::imatch::imatch_func_prefix`]: all but the last segment
    /// consume exactly one chain segment; a trailing metavariable swallows
    /// the whole rest; a trailing concrete segment consumes one and leaves
    /// the remainder for re-composition.
    fn ematch_chain(
        &mut self,
        psegs: &[&PFunc],
        cursor: &[ClassId],
        binds: &EBinds,
        out: &mut Vec<(EBinds, Vec<ClassId>)>,
        fuel: &mut usize,
        depth: usize,
    ) {
        if *fuel == 0 || depth == 0 {
            return;
        }
        let [last] = psegs else {
            let Some(p) = psegs.first() else { return };
            // Non-final segment: consume exactly one chain segment.
            for (seg, rest) in self.segment_splits(cursor, depth) {
                if *fuel == 0 {
                    return;
                }
                if let PFunc::Var(v) = p {
                    let mut b = binds.clone();
                    if EBinds::bind(&mut b.funcs, v, self.eg.find(seg)) {
                        self.ematch_chain(&psegs[1..], &rest, &b, out, fuel, depth - 1);
                    }
                } else {
                    let mut seg_hits: Vec<EBinds> = Vec::new();
                    self.ematch_segment(p, seg, binds, &mut seg_hits, fuel, depth - 1);
                    for b in seg_hits {
                        self.ematch_chain(&psegs[1..], &rest, &b, out, fuel, depth - 1);
                    }
                }
            }
            return;
        };
        // Final pattern segment.
        match last {
            PFunc::Var(v) => {
                if cursor.is_empty() {
                    return;
                }
                let folded = self.fold_cursor(cursor);
                let mut b = binds.clone();
                if EBinds::bind(&mut b.funcs, v, self.eg.find(folded)) {
                    *fuel = fuel.saturating_sub(1);
                    out.push((b, Vec::new()));
                }
            }
            _ => {
                for (seg, rest) in self.segment_splits(cursor, depth) {
                    if *fuel == 0 {
                        return;
                    }
                    let mut seg_hits: Vec<EBinds> = Vec::new();
                    self.ematch_segment(last, seg, binds, &mut seg_hits, fuel, depth - 1);
                    for b in seg_hits {
                        *fuel = fuel.saturating_sub(1);
                        out.push((b, rest.clone()));
                    }
                }
            }
        }
    }

    /// Enumerate ways to peel one chain segment off the cursor:
    /// `(segment class, remaining cursor)`. The head class itself counts as
    /// a segment when it has a non-`∘` e-node; each of its `∘` e-nodes
    /// splits into head and tail. Deduplicated, deterministic order.
    fn segment_splits(&self, cursor: &[ClassId], depth: usize) -> Vec<(ClassId, Vec<ClassId>)> {
        let mut out: Vec<(ClassId, Vec<ClassId>)> = Vec::new();
        if depth == 0 {
            return out;
        }
        let Some((&c0, rest)) = cursor.split_first() else {
            return out;
        };
        let c0 = self.eg.find(c0);
        if self.eg.nodes(c0).iter().any(|n| n.tag != Tag::FCompose) {
            out.push((c0, rest.to_vec()));
        }
        for n in self.eg.nodes(c0) {
            if n.tag != Tag::FCompose {
                continue;
            }
            let head = self.eg.find(n.kids[0]);
            let tail = self.eg.find(n.kids[1]);
            // Guard against cyclic chain classes: never descend back into
            // the class we are decomposing.
            if head == c0 {
                continue;
            }
            let mut sub = Vec::with_capacity(rest.len() + 2);
            sub.push(head);
            sub.push(tail);
            sub.extend_from_slice(rest);
            for split in self.segment_splits(&sub, depth - 1) {
                if !out.contains(&split) {
                    out.push(split);
                }
            }
        }
        out
    }

    /// Fold a cursor back into a single class, right-associated.
    fn fold_cursor(&mut self, cursor: &[ClassId]) -> ClassId {
        let mut iter = cursor.iter().rev();
        let mut acc = *iter.next().expect("fold_cursor: non-empty cursor");
        for &c in iter {
            acc = self.eg.add(ENode {
                tag: Tag::FCompose,
                payload: Payload::None,
                kids: vec![c, acc],
            });
        }
        acc
    }

    /// Match a *non-compose* function pattern against one chain segment
    /// (a class). Compose patterns recurse back through chain matching so
    /// nested chains in either the pattern or the class line up.
    fn ematch_segment(
        &mut self,
        pat: &PFunc,
        c: ClassId,
        binds: &EBinds,
        out: &mut Vec<EBinds>,
        fuel: &mut usize,
        depth: usize,
    ) {
        self.ematch_func(pat, c, binds, out, fuel, depth);
    }

    /// E-match a function pattern against a class: a metavariable binds the
    /// class; anything else backtracks over the class's e-nodes. Compose
    /// patterns go through full-consumption chain matching, so association
    /// differences between pattern and class cannot hide a match.
    fn ematch_func(
        &mut self,
        pat: &PFunc,
        c: ClassId,
        binds: &EBinds,
        out: &mut Vec<EBinds>,
        fuel: &mut usize,
        depth: usize,
    ) {
        if *fuel == 0 || depth == 0 {
            return;
        }
        let c = self.eg.find(c);
        if let PFunc::Var(v) = pat {
            let mut b = binds.clone();
            if EBinds::bind(&mut b.funcs, v, c) {
                out.push(b);
            }
            return;
        }
        if matches!(pat, PFunc::Compose(..)) {
            let psegs = crate::matching::pchain_segments(pat);
            let mut hits: Vec<(EBinds, Vec<ClassId>)> = Vec::new();
            self.ematch_chain(&psegs, &[c], binds, &mut hits, fuel, depth);
            // Full consumption only: a sub-pattern chain must equal the
            // whole segment, not a prefix of it.
            out.extend(
                hits.into_iter()
                    .filter(|(_, rem)| rem.is_empty())
                    .map(|(b, _)| b),
            );
            return;
        }
        let nodes = self.eg.nodes(c).to_vec();
        for node in nodes {
            if *fuel == 0 {
                return;
            }
            self.ematch_func_node(pat, &node, binds, out, fuel, depth);
        }
    }

    fn ematch_func_node(
        &mut self,
        pat: &PFunc,
        n: &ENode,
        binds: &EBinds,
        out: &mut Vec<EBinds>,
        fuel: &mut usize,
        depth: usize,
    ) {
        match (pat, n.tag) {
            (PFunc::Id, Tag::FId)
            | (PFunc::Pi1, Tag::FPi1)
            | (PFunc::Pi2, Tag::FPi2)
            | (PFunc::Flat, Tag::FFlat)
            | (PFunc::Bagify, Tag::FBagify)
            | (PFunc::Dedup, Tag::FDedup)
            | (PFunc::BUnion, Tag::FBUnion)
            | (PFunc::BFlat, Tag::FBFlat)
            | (PFunc::SetUnion, Tag::FSetUnion)
            | (PFunc::SetIntersect, Tag::FSetIntersect)
            | (PFunc::SetDiff, Tag::FSetDiff) => {
                *fuel = fuel.saturating_sub(1);
                out.push(binds.clone());
            }
            (PFunc::Prim(a), Tag::FPrim) => {
                if matches!(&n.payload, Payload::Sym(b) if a == b) {
                    *fuel = fuel.saturating_sub(1);
                    out.push(binds.clone());
                }
            }
            (PFunc::PairWith(p1, p2), Tag::FPairWith)
            | (PFunc::Times(p1, p2), Tag::FTimes)
            | (PFunc::Nest(p1, p2), Tag::FNest)
            | (PFunc::Unnest(p1, p2), Tag::FUnnest)
                if same_ff(pat, n.tag) =>
            {
                let mut mid = Vec::new();
                self.ematch_func(p1, n.kids[0], binds, &mut mid, fuel, depth - 1);
                for b in mid {
                    self.ematch_func(p2, n.kids[1], &b, out, fuel, depth - 1);
                }
            }
            (PFunc::ConstF(pq), Tag::FConstF) => {
                self.ematch_query(pq, n.kids[0], binds, out, fuel, depth - 1);
            }
            (PFunc::CurryF(pf, pq), Tag::FCurryF) => {
                let mut mid = Vec::new();
                self.ematch_func(pf, n.kids[0], binds, &mut mid, fuel, depth - 1);
                for b in mid {
                    self.ematch_query(pq, n.kids[1], &b, out, fuel, depth - 1);
                }
            }
            (PFunc::Cond(pp, pf, pg), Tag::FCond) => {
                let mut mid = Vec::new();
                self.ematch_pred(pp, n.kids[0], binds, &mut mid, fuel, depth - 1);
                let mut mid2 = Vec::new();
                for b in mid {
                    self.ematch_func(pf, n.kids[1], &b, &mut mid2, fuel, depth - 1);
                }
                for b in mid2 {
                    self.ematch_func(pg, n.kids[2], &b, out, fuel, depth - 1);
                }
            }
            (PFunc::Iterate(pp, pf), Tag::FIterate)
            | (PFunc::Iter(pp, pf), Tag::FIter)
            | (PFunc::Join(pp, pf), Tag::FJoin)
            | (PFunc::BIterate(pp, pf), Tag::FBIterate)
                if same_pf_iter(pat, n.tag) =>
            {
                let mut mid = Vec::new();
                self.ematch_pred(pp, n.kids[0], binds, &mut mid, fuel, depth - 1);
                for b in mid {
                    self.ematch_func(pf, n.kids[1], &b, out, fuel, depth - 1);
                }
            }
            _ => {}
        }
    }

    fn ematch_pred(
        &mut self,
        pat: &PPred,
        c: ClassId,
        binds: &EBinds,
        out: &mut Vec<EBinds>,
        fuel: &mut usize,
        depth: usize,
    ) {
        if *fuel == 0 || depth == 0 {
            return;
        }
        let c = self.eg.find(c);
        if let PPred::Var(v) = pat {
            let mut b = binds.clone();
            if EBinds::bind(&mut b.preds, v, c) {
                out.push(b);
            }
            return;
        }
        let nodes = self.eg.nodes(c).to_vec();
        for n in nodes {
            if *fuel == 0 {
                return;
            }
            match (pat, n.tag) {
                (PPred::Eq, Tag::PEq)
                | (PPred::Lt, Tag::PLt)
                | (PPred::Leq, Tag::PLeq)
                | (PPred::Gt, Tag::PGt)
                | (PPred::Geq, Tag::PGeq)
                | (PPred::In, Tag::PIn) => {
                    *fuel = fuel.saturating_sub(1);
                    out.push(binds.clone());
                }
                (PPred::PrimP(a), Tag::PPrimP) => {
                    if matches!(&n.payload, Payload::Sym(b) if a == b) {
                        *fuel = fuel.saturating_sub(1);
                        out.push(binds.clone());
                    }
                }
                (PPred::ConstP(a), Tag::PConstP) => {
                    if matches!(&n.payload, Payload::Bool(b) if *a == *b) {
                        *fuel = fuel.saturating_sub(1);
                        out.push(binds.clone());
                    }
                }
                (PPred::Oplus(pp, pf), Tag::POplus) => {
                    let mut mid = Vec::new();
                    self.ematch_pred(pp, n.kids[0], binds, &mut mid, fuel, depth - 1);
                    for b in mid {
                        self.ematch_func(pf, n.kids[1], &b, out, fuel, depth - 1);
                    }
                }
                (PPred::And(p1, p2), Tag::PAnd) | (PPred::Or(p1, p2), Tag::POr)
                    if same_pp2(pat, n.tag) =>
                {
                    let mut mid = Vec::new();
                    self.ematch_pred(p1, n.kids[0], binds, &mut mid, fuel, depth - 1);
                    for b in mid {
                        self.ematch_pred(p2, n.kids[1], &b, out, fuel, depth - 1);
                    }
                }
                (PPred::Not(p), Tag::PNot) | (PPred::Conv(p), Tag::PConv)
                    if same_pp1(pat, n.tag) =>
                {
                    self.ematch_pred(p, n.kids[0], binds, out, fuel, depth - 1);
                }
                (PPred::CurryP(pp, pq), Tag::PCurryP) => {
                    let mut mid = Vec::new();
                    self.ematch_pred(pp, n.kids[0], binds, &mut mid, fuel, depth - 1);
                    for b in mid {
                        self.ematch_query(pq, n.kids[1], &b, out, fuel, depth - 1);
                    }
                }
                _ => {}
            }
        }
    }

    fn ematch_query(
        &mut self,
        pat: &PQuery,
        c: ClassId,
        binds: &EBinds,
        out: &mut Vec<EBinds>,
        fuel: &mut usize,
        depth: usize,
    ) {
        if *fuel == 0 || depth == 0 {
            return;
        }
        let c = self.eg.find(c);
        if let PQuery::Var(v) = pat {
            let mut b = binds.clone();
            if EBinds::bind(&mut b.objs, v, c) {
                out.push(b);
            }
            return;
        }
        let nodes = self.eg.nodes(c).to_vec();
        for n in nodes {
            if *fuel == 0 {
                return;
            }
            match (pat, n.tag) {
                (PQuery::Lit(a), Tag::QLit) => {
                    if matches!(&n.payload, Payload::Value(b) if b.as_ref() == a) {
                        *fuel = fuel.saturating_sub(1);
                        out.push(binds.clone());
                    }
                }
                (PQuery::Extent(a), Tag::QExtent) => {
                    if matches!(&n.payload, Payload::Sym(b) if a == b) {
                        *fuel = fuel.saturating_sub(1);
                        out.push(binds.clone());
                    }
                }
                (PQuery::PairQ(p1, p2), Tag::QPairQ)
                | (PQuery::Union(p1, p2), Tag::QUnion)
                | (PQuery::Intersect(p1, p2), Tag::QIntersect)
                | (PQuery::Diff(p1, p2), Tag::QDiff)
                    if same_qq2(pat, n.tag) =>
                {
                    let mut mid = Vec::new();
                    self.ematch_query(p1, n.kids[0], binds, &mut mid, fuel, depth - 1);
                    for b in mid {
                        self.ematch_query(p2, n.kids[1], &b, out, fuel, depth - 1);
                    }
                }
                (PQuery::App(pf, pq), Tag::QApp) => {
                    let mut mid = Vec::new();
                    self.ematch_func(pf, n.kids[0], binds, &mut mid, fuel, depth - 1);
                    for b in mid {
                        self.ematch_query(pq, n.kids[1], &b, out, fuel, depth - 1);
                    }
                }
                (PQuery::Test(pp, pq), Tag::QTest) => {
                    let mut mid = Vec::new();
                    self.ematch_pred(pp, n.kids[0], binds, &mut mid, fuel, depth - 1);
                    for b in mid {
                        self.ematch_query(pq, n.kids[1], &b, out, fuel, depth - 1);
                    }
                }
                _ => {}
            }
        }
    }

    /// Apply one scheduled match: check preconditions on representatives,
    /// instantiate the body as e-nodes, union with the matched class.
    /// Returns false when the application was skipped (failed precondition
    /// or unbound variable — the latter mirrors the fixpoint engine's
    /// contained `RuleFailed`).
    fn apply(&mut self, m: &Match) -> bool {
        let o = &self.params.rules[m.pos];
        if !o.rule.preconditions.is_empty() {
            // Reify each bound function class's representative; properties
            // are semantic, so any member's verdict stands for the class.
            let mut s = ISubst::new();
            for (v, &c) in &m.binds.funcs {
                match self.rep(c) {
                    Some(t) => {
                        s.funcs.insert(v.clone(), t.clone());
                    }
                    None => return false,
                }
            }
            if !ipreconditions_hold(&o.rule.preconditions, &s, self.params.props) {
                return false;
            }
        }
        // The body must come from the same alternative whose head produced
        // the bindings — alts of one rule need not share variable sets.
        let level = class_level(&self.eg, m.class);
        match (&o.rule.alts[m.alt], &level) {
            (RewritePair::F(l, r), Some(Level::F)) => {
                let body = match o.dir {
                    Direction::Forward => r,
                    Direction::Backward => l,
                };
                let Ok(body_c) = self.einst_func(body, &m.binds) else {
                    return false;
                };
                let result = if m.remainder.is_empty() {
                    body_c
                } else {
                    let tail = self.fold_cursor(&m.remainder);
                    self.eg.add(ENode {
                        tag: Tag::FCompose,
                        payload: Payload::None,
                        kids: vec![body_c, tail],
                    })
                };
                self.eg.union(m.class, result);
                true
            }
            (RewritePair::P(l, r), Some(Level::P)) => {
                let body = match o.dir {
                    Direction::Forward => r,
                    Direction::Backward => l,
                };
                let Ok(body_c) = self.einst_pred(body, &m.binds) else {
                    return false;
                };
                self.eg.union(m.class, body_c);
                true
            }
            (RewritePair::Q(l, r), Some(Level::Q)) => {
                let body = match o.dir {
                    Direction::Forward => r,
                    Direction::Backward => l,
                };
                let Ok(body_c) = self.einst_query(body, &m.binds) else {
                    return false;
                };
                self.eg.union(m.class, body_c);
                true
            }
            _ => false,
        }
    }

    fn einst_func(&mut self, pat: &PFunc, binds: &EBinds) -> Result<ClassId, ()> {
        macro_rules! leaf {
            ($tag:expr) => {
                Ok(self.eg.add(ENode::leaf($tag, Payload::None)))
            };
        }
        macro_rules! node {
            ($tag:expr, $kids:expr) => {{
                let kids = $kids;
                Ok(self.eg.add(ENode {
                    tag: $tag,
                    payload: Payload::None,
                    kids,
                }))
            }};
        }
        match pat {
            PFunc::Var(v) => binds.funcs.get(v).copied().ok_or(()),
            PFunc::Id => leaf!(Tag::FId),
            PFunc::Pi1 => leaf!(Tag::FPi1),
            PFunc::Pi2 => leaf!(Tag::FPi2),
            PFunc::Flat => leaf!(Tag::FFlat),
            PFunc::Bagify => leaf!(Tag::FBagify),
            PFunc::Dedup => leaf!(Tag::FDedup),
            PFunc::BUnion => leaf!(Tag::FBUnion),
            PFunc::BFlat => leaf!(Tag::FBFlat),
            PFunc::SetUnion => leaf!(Tag::FSetUnion),
            PFunc::SetIntersect => leaf!(Tag::FSetIntersect),
            PFunc::SetDiff => leaf!(Tag::FSetDiff),
            PFunc::Prim(n) => Ok(self
                .eg
                .add(ENode::leaf(Tag::FPrim, Payload::Sym(n.clone())))),
            PFunc::Compose(a, b) => {
                let ia = self.einst_func(a, binds)?;
                let ib = self.einst_func(b, binds)?;
                node!(Tag::FCompose, vec![ia, ib])
            }
            PFunc::PairWith(a, b) => {
                let k = vec![self.einst_func(a, binds)?, self.einst_func(b, binds)?];
                node!(Tag::FPairWith, k)
            }
            PFunc::Times(a, b) => {
                let k = vec![self.einst_func(a, binds)?, self.einst_func(b, binds)?];
                node!(Tag::FTimes, k)
            }
            PFunc::ConstF(q) => {
                let k = vec![self.einst_query(q, binds)?];
                node!(Tag::FConstF, k)
            }
            PFunc::CurryF(f, q) => {
                let k = vec![self.einst_func(f, binds)?, self.einst_query(q, binds)?];
                node!(Tag::FCurryF, k)
            }
            PFunc::Cond(p, f, g) => {
                let k = vec![
                    self.einst_pred(p, binds)?,
                    self.einst_func(f, binds)?,
                    self.einst_func(g, binds)?,
                ];
                node!(Tag::FCond, k)
            }
            PFunc::Iterate(p, f) => {
                let k = vec![self.einst_pred(p, binds)?, self.einst_func(f, binds)?];
                node!(Tag::FIterate, k)
            }
            PFunc::Iter(p, f) => {
                let k = vec![self.einst_pred(p, binds)?, self.einst_func(f, binds)?];
                node!(Tag::FIter, k)
            }
            PFunc::Join(p, f) => {
                let k = vec![self.einst_pred(p, binds)?, self.einst_func(f, binds)?];
                node!(Tag::FJoin, k)
            }
            PFunc::Nest(f, g) => {
                let k = vec![self.einst_func(f, binds)?, self.einst_func(g, binds)?];
                node!(Tag::FNest, k)
            }
            PFunc::Unnest(f, g) => {
                let k = vec![self.einst_func(f, binds)?, self.einst_func(g, binds)?];
                node!(Tag::FUnnest, k)
            }
            PFunc::BIterate(p, f) => {
                let k = vec![self.einst_pred(p, binds)?, self.einst_func(f, binds)?];
                node!(Tag::FBIterate, k)
            }
        }
    }

    fn einst_pred(&mut self, pat: &PPred, binds: &EBinds) -> Result<ClassId, ()> {
        macro_rules! leaf {
            ($tag:expr) => {
                Ok(self.eg.add(ENode::leaf($tag, Payload::None)))
            };
        }
        match pat {
            PPred::Var(v) => binds.preds.get(v).copied().ok_or(()),
            PPred::Eq => leaf!(Tag::PEq),
            PPred::Lt => leaf!(Tag::PLt),
            PPred::Leq => leaf!(Tag::PLeq),
            PPred::Gt => leaf!(Tag::PGt),
            PPred::Geq => leaf!(Tag::PGeq),
            PPred::In => leaf!(Tag::PIn),
            PPred::PrimP(n) => Ok(self
                .eg
                .add(ENode::leaf(Tag::PPrimP, Payload::Sym(n.clone())))),
            PPred::ConstP(b) => Ok(self.eg.add(ENode::leaf(Tag::PConstP, Payload::Bool(*b)))),
            PPred::Oplus(p, f) => {
                let k = vec![self.einst_pred(p, binds)?, self.einst_func(f, binds)?];
                Ok(self.eg.add(ENode {
                    tag: Tag::POplus,
                    payload: Payload::None,
                    kids: k,
                }))
            }
            PPred::And(a, b) => {
                let k = vec![self.einst_pred(a, binds)?, self.einst_pred(b, binds)?];
                Ok(self.eg.add(ENode {
                    tag: Tag::PAnd,
                    payload: Payload::None,
                    kids: k,
                }))
            }
            PPred::Or(a, b) => {
                let k = vec![self.einst_pred(a, binds)?, self.einst_pred(b, binds)?];
                Ok(self.eg.add(ENode {
                    tag: Tag::POr,
                    payload: Payload::None,
                    kids: k,
                }))
            }
            PPred::Not(p) => {
                let k = vec![self.einst_pred(p, binds)?];
                Ok(self.eg.add(ENode {
                    tag: Tag::PNot,
                    payload: Payload::None,
                    kids: k,
                }))
            }
            PPred::Conv(p) => {
                let k = vec![self.einst_pred(p, binds)?];
                Ok(self.eg.add(ENode {
                    tag: Tag::PConv,
                    payload: Payload::None,
                    kids: k,
                }))
            }
            PPred::CurryP(p, q) => {
                let k = vec![self.einst_pred(p, binds)?, self.einst_query(q, binds)?];
                Ok(self.eg.add(ENode {
                    tag: Tag::PCurryP,
                    payload: Payload::None,
                    kids: k,
                }))
            }
        }
    }

    fn einst_query(&mut self, pat: &PQuery, binds: &EBinds) -> Result<ClassId, ()> {
        match pat {
            PQuery::Var(v) => binds.objs.get(v).copied().ok_or(()),
            PQuery::Lit(v) => Ok(self.eg.add(ENode::leaf(
                Tag::QLit,
                Payload::Value(std::sync::Arc::new(v.clone())),
            ))),
            PQuery::Extent(n) => Ok(self
                .eg
                .add(ENode::leaf(Tag::QExtent, Payload::Sym(n.clone())))),
            PQuery::PairQ(a, b) => {
                let k = vec![self.einst_query(a, binds)?, self.einst_query(b, binds)?];
                Ok(self.eg.add(ENode {
                    tag: Tag::QPairQ,
                    payload: Payload::None,
                    kids: k,
                }))
            }
            PQuery::App(f, q) => {
                let k = vec![self.einst_func(f, binds)?, self.einst_query(q, binds)?];
                Ok(self.eg.add(ENode {
                    tag: Tag::QApp,
                    payload: Payload::None,
                    kids: k,
                }))
            }
            PQuery::Test(p, q) => {
                let k = vec![self.einst_pred(p, binds)?, self.einst_query(q, binds)?];
                Ok(self.eg.add(ENode {
                    tag: Tag::QTest,
                    payload: Payload::None,
                    kids: k,
                }))
            }
            PQuery::Union(a, b) => {
                let k = vec![self.einst_query(a, binds)?, self.einst_query(b, binds)?];
                Ok(self.eg.add(ENode {
                    tag: Tag::QUnion,
                    payload: Payload::None,
                    kids: k,
                }))
            }
            PQuery::Intersect(a, b) => {
                let k = vec![self.einst_query(a, binds)?, self.einst_query(b, binds)?];
                Ok(self.eg.add(ENode {
                    tag: Tag::QIntersect,
                    payload: Payload::None,
                    kids: k,
                }))
            }
            PQuery::Diff(a, b) => {
                let k = vec![self.einst_query(a, binds)?, self.einst_query(b, binds)?];
                Ok(self.eg.add(ENode {
                    tag: Tag::QDiff,
                    payload: Payload::None,
                    kids: k,
                }))
            }
        }
    }
}

/// Term level of a class (from any e-node's tag — levels never mix within
/// a class because every rule and every congruence is level-preserving).
fn class_level(eg: &EGraph, c: ClassId) -> Option<Level> {
    eg.nodes(c).first().map(|n| level_of(n.tag))
}

enum Level {
    F,
    P,
    Q,
}

fn level_of(t: Tag) -> Level {
    if t <= Tag::FSetDiff {
        Level::F
    } else if t <= Tag::PCurryP {
        Level::P
    } else {
        Level::Q
    }
}

fn same_ff(pat: &PFunc, tag: Tag) -> bool {
    matches!(
        (pat, tag),
        (PFunc::PairWith(..), Tag::FPairWith)
            | (PFunc::Times(..), Tag::FTimes)
            | (PFunc::Nest(..), Tag::FNest)
            | (PFunc::Unnest(..), Tag::FUnnest)
    )
}

fn same_pf_iter(pat: &PFunc, tag: Tag) -> bool {
    matches!(
        (pat, tag),
        (PFunc::Iterate(..), Tag::FIterate)
            | (PFunc::Iter(..), Tag::FIter)
            | (PFunc::Join(..), Tag::FJoin)
            | (PFunc::BIterate(..), Tag::FBIterate)
    )
}

fn same_pp2(pat: &PPred, tag: Tag) -> bool {
    matches!(
        (pat, tag),
        (PPred::And(..), Tag::PAnd) | (PPred::Or(..), Tag::POr)
    )
}

fn same_pp1(pat: &PPred, tag: Tag) -> bool {
    matches!(
        (pat, tag),
        (PPred::Not(..), Tag::PNot) | (PPred::Conv(..), Tag::PConv)
    )
}

fn same_qq2(pat: &PQuery, tag: Tag) -> bool {
    matches!(
        (pat, tag),
        (PQuery::PairQ(..), Tag::QPairQ)
            | (PQuery::Union(..), Tag::QUnion)
            | (PQuery::Intersect(..), Tag::QIntersect)
            | (PQuery::Diff(..), Tag::QDiff)
    )
}
