//! Strategy combinators: deterministic control over rule firing.
//!
//! The paper's closing sections sketch COKO "rule blocks — sets of rules
//! that are used together, together with strategies for their firing". A
//! [`Strategy`] is that control language as data; the `kola-coko` crate
//! parses COKO source into it. The hidden-join pipeline of §4.1 is five
//! strategies run in sequence ([`crate::hidden_join`]).

use crate::budget::{
    measure_query, Budget, CycleDetector, RewriteError, RewriteReport, StopReason,
};
use crate::catalog::Catalog;
use crate::engine::{
    rewrite_bottom_up_governed, rewrite_fix_with, rewrite_once_governed, Oriented, Step, Trace,
    DEFAULT_FUEL,
};
use crate::fast::{Engine, EngineConfig};
use crate::fault::FaultPlan;
use crate::props::PropDb;
use kola::term::Query;
use std::fmt;

/// A firing strategy over the rule catalog.
#[derive(Debug, Clone)]
pub enum Strategy {
    /// Apply one rule once (leftmost-outermost). Reference syntax: `"11"`
    /// forward, `"12-1"` backward.
    Apply(String),
    /// Try each reference in order at each position; first match wins.
    /// Applies at most once.
    ApplyAny(Vec<String>),
    /// Run strategies in order; fails if any fails.
    Seq(Vec<Strategy>),
    /// First strategy that succeeds; fails if none do.
    Choice(Vec<Strategy>),
    /// Run the strategy; succeed even if it fails.
    Try(Box<Strategy>),
    /// Run the strategy repeatedly until it fails (bounded by fuel).
    /// Always succeeds.
    Repeat(Box<Strategy>),
    /// Exhaustively apply a rule set to fixpoint (bounded by fuel).
    /// Always succeeds. This is the workhorse for "push X everywhere".
    Fix(Vec<String>),
    /// One bottom-up sweep: normalize children first, then the node, with
    /// the rule set exhausted at each position (§4.2's "throughout a
    /// tree"). Always succeeds. COKO syntax: `BU { [r], … }`.
    BottomUp(Vec<String>),
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Strategy::Apply(r) => write!(f, "{r}"),
            Strategy::ApplyAny(rs) => write!(f, "any({})", rs.join(", ")),
            Strategy::Seq(ss) => {
                write!(f, "(")?;
                for (i, s) in ss.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ; ")?;
                    }
                    write!(f, "{s}")?;
                }
                write!(f, ")")
            }
            Strategy::Choice(ss) => {
                write!(f, "(")?;
                for (i, s) in ss.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{s}")?;
                }
                write!(f, ")")
            }
            Strategy::Try(s) => write!(f, "try {s}"),
            Strategy::Repeat(s) => write!(f, "repeat {s}"),
            Strategy::Fix(rs) => write!(f, "fix({})", rs.join(", ")),
            Strategy::BottomUp(rs) => write!(f, "bu({})", rs.join(", ")),
        }
    }
}

/// Outcome of running a strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The strategy made at least the progress it demanded.
    Success,
    /// The strategy could not apply.
    Failure,
}

/// A strategy interpreter bound to a catalog and a property database,
/// governed by a [`Budget`] and an optional [`FaultPlan`].
pub struct Runner<'a> {
    /// Rule catalog used to resolve references.
    pub catalog: &'a Catalog,
    /// Property database for preconditions.
    pub props: &'a PropDb,
    /// Bound on strategy-level iterations (`Repeat`); kept distinct from
    /// the budget's step cap for backward compatibility.
    pub fuel: usize,
    /// Resource budget shared across the whole strategy run.
    pub budget: Budget,
    /// Injected faults (empty by default).
    pub faults: FaultPlan,
    /// When set, `Fix` fixpoints run on the fast engine
    /// ([`crate::fast::Engine`]) with this layer configuration instead of
    /// the boxed reference engine. `None` (the default) keeps the slow
    /// path — the two are differentially tested to be interchangeable.
    pub engine: Option<EngineConfig>,
}

impl<'a> Runner<'a> {
    /// A runner with default fuel, default budget, no faults.
    pub fn new(catalog: &'a Catalog, props: &'a PropDb) -> Self {
        Runner {
            catalog,
            props,
            fuel: DEFAULT_FUEL,
            budget: Budget::default(),
            faults: FaultPlan::default(),
            engine: None,
        }
    }

    /// Replace the budget (builder style). The iteration fuel follows the
    /// budget's step cap.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.fuel = budget.max_steps;
        self.budget = budget;
        self
    }

    /// Attach a fault plan (builder style).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Run fixpoints on the fast engine with the given layer configuration
    /// (builder style).
    pub fn with_engine(mut self, config: EngineConfig) -> Self {
        self.engine = Some(config);
        self
    }

    fn try_resolve_set(&self, refs: &[String]) -> Result<Vec<Oriented<'a>>, RewriteError> {
        refs.iter()
            .map(|spec| {
                let (rule, dir) = self.catalog.try_resolve(spec)?;
                Ok(Oriented { rule, dir })
            })
            .collect()
    }

    /// Resolve a rule set; on an unknown reference, record the error in the
    /// report and return `None` (the strategy degrades to `Failure` instead
    /// of panicking).
    fn resolve_or_report(
        &self,
        refs: &[String],
        report: &mut RewriteReport,
    ) -> Option<Vec<Oriented<'a>>> {
        match self.try_resolve_set(refs) {
            Ok(rules) => Some(rules),
            Err(e) => {
                if report.failures.len() < 8 {
                    report.failures.push(e.to_string());
                }
                None
            }
        }
    }

    /// Steps still available under the budget.
    fn remaining(&self, report: &RewriteReport) -> usize {
        self.budget.max_steps.saturating_sub(report.steps)
    }

    fn mark_stop(report: &mut RewriteReport, stop: StopReason) {
        if report.stop == StopReason::NormalForm {
            report.stop = stop;
        }
    }

    /// Run `strategy` on `q`, appending steps to `trace`. Returns the
    /// (possibly rewritten) query and whether the strategy succeeded.
    /// Convenience over [`Runner::run_governed`], discarding the report.
    pub fn run(&self, strategy: &Strategy, q: Query, trace: &mut Trace) -> (Query, Outcome) {
        let (q, out, _) = self.run_governed(strategy, q, trace);
        (q, out)
    }

    /// Run `strategy` on `q` under the runner's budget and fault plan.
    /// Also returns the accumulated [`RewriteReport`]: total steps, per-rule
    /// fire/fail counts, quarantined rules, and the first abnormal stop
    /// reason encountered anywhere in the run (or `NormalForm`).
    pub fn run_governed(
        &self,
        strategy: &Strategy,
        q: Query,
        trace: &mut Trace,
    ) -> (Query, Outcome, RewriteReport) {
        let mut report = RewriteReport::new();
        let (q, out) = self.go(strategy, q, trace, &mut report);
        (q, out, report)
    }

    /// [`Runner::run_governed`] behind a panic boundary: a rule that
    /// unwinds (a [`crate::fault::FaultKind::Panic`] fault or a genuine
    /// bug) is caught and classified instead of propagating — the per-rung
    /// entry point the optimization service's degradation ladder uses. On
    /// `Err`, `trace` holds whatever steps completed before the panic;
    /// treat it as diagnostic only.
    pub fn try_run_governed(
        &self,
        strategy: &Strategy,
        q: Query,
        trace: &mut Trace,
    ) -> Result<(Query, Outcome, RewriteReport), crate::fault::CaughtPanic> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.run_governed(strategy, q, trace)
        }))
        .map_err(crate::fault::CaughtPanic::from_payload)
    }

    fn go(
        &self,
        strategy: &Strategy,
        q: Query,
        trace: &mut Trace,
        report: &mut RewriteReport,
    ) -> (Query, Outcome) {
        match strategy {
            Strategy::Apply(spec) => self.apply_set(std::slice::from_ref(spec), q, trace, report),
            Strategy::ApplyAny(specs) => self.apply_set(specs, q, trace, report),
            Strategy::Seq(ss) => {
                let mut cur = q;
                for s in ss {
                    let (next, out) = self.go(s, cur, trace, report);
                    cur = next;
                    if out == Outcome::Failure {
                        return (cur, Outcome::Failure);
                    }
                }
                (cur, Outcome::Success)
            }
            Strategy::Choice(ss) => {
                let mut cur = q;
                for s in ss {
                    let (next, out) = self.go(s, cur, trace, report);
                    cur = next;
                    if out == Outcome::Success {
                        return (cur, Outcome::Success);
                    }
                }
                (cur, Outcome::Failure)
            }
            Strategy::Try(s) => {
                let (next, _) = self.go(s, q, trace, report);
                (next, Outcome::Success)
            }
            Strategy::Repeat(s) => {
                // Bounded by fuel AND the step budget, with cycle detection:
                // a repeated term fingerprint means the body is looping
                // (e.g. a forward/backward rule pair), so stop — repeating
                // is deterministic and would never converge.
                let mut cur = q;
                let mut seen = CycleDetector::new();
                seen.seen(measure_query(&cur).1, &cur);
                let mut converged = false;
                for _ in 0..self.fuel {
                    if self.remaining(report) == 0 {
                        break;
                    }
                    let (next, out) = self.go(s, cur, trace, report);
                    cur = next;
                    if out == Outcome::Failure {
                        converged = true;
                        break;
                    }
                    if seen.seen(measure_query(&cur).1, &cur) {
                        Self::mark_stop(report, StopReason::CycleDetected);
                        converged = true;
                        break;
                    }
                }
                if !converged && self.remaining(report) == 0 {
                    Self::mark_stop(report, StopReason::BudgetExhausted);
                }
                (cur, Outcome::Success)
            }
            Strategy::BottomUp(specs) => {
                let Some(rules) = self.resolve_or_report(specs, report) else {
                    return (q, Outcome::Failure);
                };
                let fuel = self.fuel.min(self.remaining(report).max(1));
                let (out, fires) = rewrite_bottom_up_governed(
                    &rules,
                    &q,
                    self.props,
                    fuel,
                    &self.budget,
                    &self.faults,
                    report,
                );
                report.steps += fires;
                // Record one summary step so traces stay readable.
                if fires > 0 {
                    trace.steps.push(Step {
                        rule_id: format!("bu×{fires}"),
                        dir: crate::rule::Direction::Forward,
                        after: out.clone(),
                    });
                }
                (out, Outcome::Success)
            }
            Strategy::Fix(specs) => {
                let Some(rules) = self.resolve_or_report(specs, report) else {
                    return (q, Outcome::Failure);
                };
                // Delegate to the governed fixpoint driver with whatever
                // budget is left, then fold its accounting into ours.
                let sub = Budget {
                    max_steps: self.remaining(report),
                    ..self.budget.clone()
                };
                let r = match &self.engine {
                    Some(cfg) => Engine::new(rules, self.props, cfg.clone()).normalize_with(
                        &q,
                        &sub,
                        &self.faults,
                    ),
                    None => rewrite_fix_with(&rules, &q, self.props, &sub, &self.faults),
                };
                trace.steps.extend(r.trace.steps);
                report.merge(&r.report);
                (r.query, Outcome::Success)
            }
        }
    }

    fn apply_set(
        &self,
        specs: &[String],
        q: Query,
        trace: &mut Trace,
        report: &mut RewriteReport,
    ) -> (Query, Outcome) {
        let Some(rules) = self.resolve_or_report(specs, report) else {
            return (q, Outcome::Failure);
        };
        let q = q.normalize();
        if self.remaining(report) == 0 {
            Self::mark_stop(report, StopReason::BudgetExhausted);
            return (q, Outcome::Failure);
        }
        match rewrite_once_governed(&rules, &q, self.props, &self.budget, &self.faults, report) {
            Some(applied) => {
                let result = applied.result.normalize();
                let (size, _) = measure_query(&result);
                if size > self.budget.max_term_size {
                    let e = RewriteError::TermTooLarge {
                        size,
                        limit: self.budget.max_term_size,
                    };
                    report.record_failure(
                        &applied.rule_id,
                        &e,
                        self.budget.quarantine_after,
                        report.steps,
                    );
                    return (q, Outcome::Failure);
                }
                report.steps += 1;
                report.record_fire(&applied.rule_id);
                trace.steps.push(Step {
                    rule_id: applied.rule_id,
                    dir: applied.dir,
                    after: result.clone(),
                });
                (result, Outcome::Success)
            }
            None => (q, Outcome::Failure),
        }
    }
}

/// Convenience: build a [`Strategy::Fix`] from string literals.
pub fn fix(refs: &[&str]) -> Strategy {
    Strategy::Fix(refs.iter().map(|s| s.to_string()).collect())
}

/// Convenience: build a [`Strategy::Seq`].
pub fn seq(ss: Vec<Strategy>) -> Strategy {
    Strategy::Seq(ss)
}

/// Convenience: build a [`Strategy::Apply`].
pub fn apply(r: &str) -> Strategy {
    Strategy::Apply(r.to_string())
}

/// Convenience: build a [`Strategy::Try`].
pub fn try_(s: Strategy) -> Strategy {
    Strategy::Try(Box::new(s))
}

/// Convenience: build a [`Strategy::Repeat`].
pub fn repeat(s: Strategy) -> Strategy {
    Strategy::Repeat(Box::new(s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kola::parse::parse_query;

    fn setup() -> (Catalog, PropDb) {
        (Catalog::paper(), PropDb::new())
    }

    #[test]
    fn fix_runs_to_normal_form() {
        let (c, p) = setup();
        let r = Runner::new(&c, &p);
        let q = parse_query("id . id . age . id ! P").unwrap();
        let mut t = Trace::new();
        let (out, oc) = r.run(&fix(&["1", "2"]), q, &mut t);
        assert_eq!(oc, Outcome::Success);
        assert_eq!(out, parse_query("age ! P").unwrap());
    }

    #[test]
    fn fix_on_fast_engine_matches_reference() {
        let (c, p) = setup();
        let slow = Runner::new(&c, &p);
        let fast = Runner::new(&c, &p).with_engine(EngineConfig::fast());
        let q = parse_query("id . id . age . id ! P").unwrap();
        let strat = fix(&["1", "2"]);
        let (mut ts, mut tf) = (Trace::new(), Trace::new());
        let (out_s, oc_s) = slow.run(&strat, q.clone(), &mut ts);
        let (out_f, oc_f) = fast.run(&strat, q, &mut tf);
        assert_eq!(oc_s, oc_f);
        assert_eq!(out_s, out_f);
        assert_eq!(ts.justifications(), tf.justifications());
    }

    #[test]
    fn seq_fails_fast() {
        let (c, p) = setup();
        let r = Runner::new(&c, &p);
        let q = parse_query("age ! P").unwrap();
        let mut t = Trace::new();
        // "2" can't fire on `age`; the Seq must report failure.
        let (_, oc) = r.run(&seq(vec![apply("2"), apply("1")]), q, &mut t);
        assert_eq!(oc, Outcome::Failure);
    }

    #[test]
    fn try_masks_failure() {
        let (c, p) = setup();
        let r = Runner::new(&c, &p);
        let q = parse_query("age ! P").unwrap();
        let mut t = Trace::new();
        let (_, oc) = r.run(&try_(apply("2")), q, &mut t);
        assert_eq!(oc, Outcome::Success);
    }

    #[test]
    fn backward_reference() {
        let (c, p) = setup();
        let r = Runner::new(&c, &p);
        let q = parse_query("age ! P").unwrap();
        let mut t = Trace::new();
        let (out, oc) = r.run(&apply("2-1"), q, &mut t);
        assert_eq!(oc, Outcome::Success);
        assert_eq!(out, parse_query("id . age ! P").unwrap());
        assert_eq!(t.justifications(), vec!["2-1"]);
    }

    #[test]
    fn choice_takes_first_applicable() {
        let (c, p) = setup();
        let r = Runner::new(&c, &p);
        let q = parse_query("id . age ! P").unwrap();
        let mut t = Trace::new();
        let (out, oc) = r.run(&Strategy::Choice(vec![apply("1"), apply("2")]), q, &mut t);
        assert_eq!(oc, Outcome::Success);
        assert_eq!(out, parse_query("age ! P").unwrap());
        assert_eq!(t.justifications(), vec!["2"]);
    }
}
