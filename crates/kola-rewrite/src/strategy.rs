//! Strategy combinators: deterministic control over rule firing.
//!
//! The paper's closing sections sketch COKO "rule blocks — sets of rules
//! that are used together, together with strategies for their firing". A
//! [`Strategy`] is that control language as data; the `kola-coko` crate
//! parses COKO source into it. The hidden-join pipeline of §4.1 is five
//! strategies run in sequence ([`crate::hidden_join`]).

use crate::catalog::Catalog;
use crate::engine::{rewrite_bottom_up, rewrite_once_query, Oriented, Step, Trace, DEFAULT_FUEL};
use crate::props::PropDb;
use kola::term::Query;
use std::fmt;

/// A firing strategy over the rule catalog.
#[derive(Debug, Clone)]
pub enum Strategy {
    /// Apply one rule once (leftmost-outermost). Reference syntax: `"11"`
    /// forward, `"12-1"` backward.
    Apply(String),
    /// Try each reference in order at each position; first match wins.
    /// Applies at most once.
    ApplyAny(Vec<String>),
    /// Run strategies in order; fails if any fails.
    Seq(Vec<Strategy>),
    /// First strategy that succeeds; fails if none do.
    Choice(Vec<Strategy>),
    /// Run the strategy; succeed even if it fails.
    Try(Box<Strategy>),
    /// Run the strategy repeatedly until it fails (bounded by fuel).
    /// Always succeeds.
    Repeat(Box<Strategy>),
    /// Exhaustively apply a rule set to fixpoint (bounded by fuel).
    /// Always succeeds. This is the workhorse for "push X everywhere".
    Fix(Vec<String>),
    /// One bottom-up sweep: normalize children first, then the node, with
    /// the rule set exhausted at each position (§4.2's "throughout a
    /// tree"). Always succeeds. COKO syntax: `BU { [r], … }`.
    BottomUp(Vec<String>),
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Strategy::Apply(r) => write!(f, "{r}"),
            Strategy::ApplyAny(rs) => write!(f, "any({})", rs.join(", ")),
            Strategy::Seq(ss) => {
                write!(f, "(")?;
                for (i, s) in ss.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ; ")?;
                    }
                    write!(f, "{s}")?;
                }
                write!(f, ")")
            }
            Strategy::Choice(ss) => {
                write!(f, "(")?;
                for (i, s) in ss.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{s}")?;
                }
                write!(f, ")")
            }
            Strategy::Try(s) => write!(f, "try {s}"),
            Strategy::Repeat(s) => write!(f, "repeat {s}"),
            Strategy::Fix(rs) => write!(f, "fix({})", rs.join(", ")),
            Strategy::BottomUp(rs) => write!(f, "bu({})", rs.join(", ")),
        }
    }
}

/// Outcome of running a strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The strategy made at least the progress it demanded.
    Success,
    /// The strategy could not apply.
    Failure,
}

/// A strategy interpreter bound to a catalog and a property database.
pub struct Runner<'a> {
    /// Rule catalog used to resolve references.
    pub catalog: &'a Catalog,
    /// Property database for preconditions.
    pub props: &'a PropDb,
    /// Bound on total rule applications (shared across nested fixpoints).
    pub fuel: usize,
}

impl<'a> Runner<'a> {
    /// A runner with default fuel.
    pub fn new(catalog: &'a Catalog, props: &'a PropDb) -> Self {
        Runner {
            catalog,
            props,
            fuel: DEFAULT_FUEL,
        }
    }

    fn resolve_set(&self, refs: &[String]) -> Vec<Oriented<'a>> {
        refs.iter()
            .map(|spec| {
                let (rule, dir) = self.catalog.resolve(spec);
                Oriented { rule, dir }
            })
            .collect()
    }

    /// Run `strategy` on `q`, appending steps to `trace`. Returns the
    /// (possibly rewritten) query and whether the strategy succeeded.
    pub fn run(&self, strategy: &Strategy, q: Query, trace: &mut Trace) -> (Query, Outcome) {
        match strategy {
            Strategy::Apply(spec) => self.apply_set(std::slice::from_ref(spec), q, trace),
            Strategy::ApplyAny(specs) => self.apply_set(specs, q, trace),
            Strategy::Seq(ss) => {
                let mut cur = q;
                for s in ss {
                    let (next, out) = self.run(s, cur, trace);
                    cur = next;
                    if out == Outcome::Failure {
                        return (cur, Outcome::Failure);
                    }
                }
                (cur, Outcome::Success)
            }
            Strategy::Choice(ss) => {
                let mut cur = q;
                for s in ss {
                    let (next, out) = self.run(s, cur, trace);
                    cur = next;
                    if out == Outcome::Success {
                        return (cur, Outcome::Success);
                    }
                }
                (cur, Outcome::Failure)
            }
            Strategy::Try(s) => {
                let (next, _) = self.run(s, q, trace);
                (next, Outcome::Success)
            }
            Strategy::Repeat(s) => {
                let mut cur = q;
                for _ in 0..self.fuel {
                    let (next, out) = self.run(s, cur, trace);
                    cur = next;
                    if out == Outcome::Failure {
                        break;
                    }
                }
                (cur, Outcome::Success)
            }
            Strategy::BottomUp(specs) => {
                let rules = self.resolve_set(specs);
                let (out, fires) = rewrite_bottom_up(&rules, &q, self.props, self.fuel);
                // Record one summary step so traces stay readable.
                if fires > 0 {
                    trace.steps.push(Step {
                        rule_id: format!("bu×{fires}"),
                        dir: crate::rule::Direction::Forward,
                        after: out.clone(),
                    });
                }
                (out, Outcome::Success)
            }
            Strategy::Fix(specs) => {
                let rules = self.resolve_set(specs);
                let mut cur = q.normalize();
                for _ in 0..self.fuel {
                    match rewrite_once_query(&rules, &cur, self.props) {
                        Some(applied) => {
                            cur = applied.result.normalize();
                            trace.steps.push(Step {
                                rule_id: applied.rule_id,
                                dir: applied.dir,
                                after: cur.clone(),
                            });
                        }
                        None => break,
                    }
                }
                (cur, Outcome::Success)
            }
        }
    }

    fn apply_set(
        &self,
        specs: &[String],
        q: Query,
        trace: &mut Trace,
    ) -> (Query, Outcome) {
        let rules = self.resolve_set(specs);
        let q = q.normalize();
        match rewrite_once_query(&rules, &q, self.props) {
            Some(applied) => {
                let result = applied.result.normalize();
                trace.steps.push(Step {
                    rule_id: applied.rule_id,
                    dir: applied.dir,
                    after: result.clone(),
                });
                (result, Outcome::Success)
            }
            None => (q, Outcome::Failure),
        }
    }
}

/// Convenience: build a [`Strategy::Fix`] from string literals.
pub fn fix(refs: &[&str]) -> Strategy {
    Strategy::Fix(refs.iter().map(|s| s.to_string()).collect())
}

/// Convenience: build a [`Strategy::Seq`].
pub fn seq(ss: Vec<Strategy>) -> Strategy {
    Strategy::Seq(ss)
}

/// Convenience: build a [`Strategy::Apply`].
pub fn apply(r: &str) -> Strategy {
    Strategy::Apply(r.to_string())
}

/// Convenience: build a [`Strategy::Try`].
pub fn try_(s: Strategy) -> Strategy {
    Strategy::Try(Box::new(s))
}

/// Convenience: build a [`Strategy::Repeat`].
pub fn repeat(s: Strategy) -> Strategy {
    Strategy::Repeat(Box::new(s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kola::parse::parse_query;

    fn setup() -> (Catalog, PropDb) {
        (Catalog::paper(), PropDb::new())
    }

    #[test]
    fn fix_runs_to_normal_form() {
        let (c, p) = setup();
        let r = Runner::new(&c, &p);
        let q = parse_query("id . id . age . id ! P").unwrap();
        let mut t = Trace::new();
        let (out, oc) = r.run(&fix(&["1", "2"]), q, &mut t);
        assert_eq!(oc, Outcome::Success);
        assert_eq!(out, parse_query("age ! P").unwrap());
    }

    #[test]
    fn seq_fails_fast() {
        let (c, p) = setup();
        let r = Runner::new(&c, &p);
        let q = parse_query("age ! P").unwrap();
        let mut t = Trace::new();
        // "2" can't fire on `age`; the Seq must report failure.
        let (_, oc) = r.run(&seq(vec![apply("2"), apply("1")]), q, &mut t);
        assert_eq!(oc, Outcome::Failure);
    }

    #[test]
    fn try_masks_failure() {
        let (c, p) = setup();
        let r = Runner::new(&c, &p);
        let q = parse_query("age ! P").unwrap();
        let mut t = Trace::new();
        let (_, oc) = r.run(&try_(apply("2")), q, &mut t);
        assert_eq!(oc, Outcome::Success);
    }

    #[test]
    fn backward_reference() {
        let (c, p) = setup();
        let r = Runner::new(&c, &p);
        let q = parse_query("age ! P").unwrap();
        let mut t = Trace::new();
        let (out, oc) = r.run(&apply("2-1"), q, &mut t);
        assert_eq!(oc, Outcome::Success);
        assert_eq!(out, parse_query("id . age ! P").unwrap());
        assert_eq!(t.justifications(), vec!["2-1"]);
    }

    #[test]
    fn choice_takes_first_applicable() {
        let (c, p) = setup();
        let r = Runner::new(&c, &p);
        let q = parse_query("id . age ! P").unwrap();
        let mut t = Trace::new();
        let (out, oc) = r.run(
            &Strategy::Choice(vec![apply("1"), apply("2")]),
            q,
            &mut t,
        );
        assert_eq!(oc, Outcome::Success);
        assert_eq!(out, parse_query("age ! P").unwrap());
        assert_eq!(t.justifications(), vec!["2"]);
    }
}
