//! Substitutions: bindings of metavariables to concrete terms, and pattern
//! instantiation.
//!
//! A [`Subst`] is produced by matching (see [`crate::matching`]) and consumed
//! by [`instantiate_func`]/[`instantiate_pred`]/[`instantiate_query`], which
//! replace every metavariable in a rule's body pattern by its binding. This
//! pair of operations is *all* the machinery a KOLA rule needs — the paper's
//! point is that no further code (variable renaming, environment analysis,
//! expression composition) is required.

use kola::pattern::{PFunc, PPred, PQuery};
use kola::term::{Func, Pred, Query};
use kola::value::Sym;
use std::collections::BTreeMap;
use std::fmt;

/// Bindings for the three kinds of metavariables.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Subst {
    /// Function variable bindings (`$f`).
    pub funcs: BTreeMap<Sym, Func>,
    /// Predicate variable bindings (`%p`).
    pub preds: BTreeMap<Sym, Pred>,
    /// Object variable bindings (`^x`).
    pub objs: BTreeMap<Sym, Query>,
}

impl Subst {
    /// An empty substitution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind a function variable; returns false (and leaves the substitution
    /// unchanged) if the variable is already bound to a different term.
    pub fn bind_func(&mut self, v: &Sym, t: &Func) -> bool {
        match self.funcs.get(v) {
            Some(existing) => existing == t,
            None => {
                self.funcs.insert(v.clone(), t.clone());
                true
            }
        }
    }

    /// Bind a predicate variable (consistently; see [`Subst::bind_func`]).
    pub fn bind_pred(&mut self, v: &Sym, t: &Pred) -> bool {
        match self.preds.get(v) {
            Some(existing) => existing == t,
            None => {
                self.preds.insert(v.clone(), t.clone());
                true
            }
        }
    }

    /// Bind an object variable (consistently; see [`Subst::bind_func`]).
    pub fn bind_obj(&mut self, v: &Sym, t: &Query) -> bool {
        match self.objs.get(v) {
            Some(existing) => existing == t,
            None => {
                self.objs.insert(v.clone(), t.clone());
                true
            }
        }
    }
}

impl fmt::Display for Subst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            Ok(())
        };
        write!(f, "{{")?;
        for (k, v) in &self.funcs {
            sep(f)?;
            write!(f, "${k} -> {v}")?;
        }
        for (k, v) in &self.preds {
            sep(f)?;
            write!(f, "%{k} -> {v}")?;
        }
        for (k, v) in &self.objs {
            sep(f)?;
            write!(f, "^{k} -> {v}")?;
        }
        write!(f, "}}")
    }
}

/// Error raised when a rule body mentions a metavariable its head never
/// bound — a malformed rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnboundVar(pub Sym);

impl fmt::Display for UnboundVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unbound metavariable {}", self.0)
    }
}

impl std::error::Error for UnboundVar {}

/// Instantiate a function pattern under a substitution.
pub fn instantiate_func(pat: &PFunc, s: &Subst) -> Result<Func, UnboundVar> {
    Ok(match pat {
        PFunc::Var(v) => s
            .funcs
            .get(v)
            .cloned()
            .ok_or_else(|| UnboundVar(v.clone()))?,
        PFunc::Id => Func::Id,
        PFunc::Pi1 => Func::Pi1,
        PFunc::Pi2 => Func::Pi2,
        PFunc::Prim(n) => Func::Prim(n.clone()),
        PFunc::Compose(a, b) => Func::Compose(
            Box::new(instantiate_func(a, s)?),
            Box::new(instantiate_func(b, s)?),
        ),
        PFunc::PairWith(a, b) => Func::PairWith(
            Box::new(instantiate_func(a, s)?),
            Box::new(instantiate_func(b, s)?),
        ),
        PFunc::Times(a, b) => Func::Times(
            Box::new(instantiate_func(a, s)?),
            Box::new(instantiate_func(b, s)?),
        ),
        PFunc::ConstF(q) => Func::ConstF(Box::new(instantiate_query(q, s)?)),
        PFunc::CurryF(f, q) => Func::CurryF(
            Box::new(instantiate_func(f, s)?),
            Box::new(instantiate_query(q, s)?),
        ),
        PFunc::Cond(p, f, g) => Func::Cond(
            Box::new(instantiate_pred(p, s)?),
            Box::new(instantiate_func(f, s)?),
            Box::new(instantiate_func(g, s)?),
        ),
        PFunc::Flat => Func::Flat,
        PFunc::Iterate(p, f) => Func::Iterate(
            Box::new(instantiate_pred(p, s)?),
            Box::new(instantiate_func(f, s)?),
        ),
        PFunc::Iter(p, f) => Func::Iter(
            Box::new(instantiate_pred(p, s)?),
            Box::new(instantiate_func(f, s)?),
        ),
        PFunc::Join(p, f) => Func::Join(
            Box::new(instantiate_pred(p, s)?),
            Box::new(instantiate_func(f, s)?),
        ),
        PFunc::Nest(f, g) => Func::Nest(
            Box::new(instantiate_func(f, s)?),
            Box::new(instantiate_func(g, s)?),
        ),
        PFunc::Unnest(f, g) => Func::Unnest(
            Box::new(instantiate_func(f, s)?),
            Box::new(instantiate_func(g, s)?),
        ),
        PFunc::Bagify => Func::Bagify,
        PFunc::Dedup => Func::Dedup,
        PFunc::BUnion => Func::BUnion,
        PFunc::BFlat => Func::BFlat,
        PFunc::BIterate(p, f) => Func::BIterate(
            Box::new(instantiate_pred(p, s)?),
            Box::new(instantiate_func(f, s)?),
        ),
        PFunc::SetUnion => Func::SetUnion,
        PFunc::SetIntersect => Func::SetIntersect,
        PFunc::SetDiff => Func::SetDiff,
    })
}

/// Instantiate a predicate pattern under a substitution.
pub fn instantiate_pred(pat: &PPred, s: &Subst) -> Result<Pred, UnboundVar> {
    Ok(match pat {
        PPred::Var(v) => s
            .preds
            .get(v)
            .cloned()
            .ok_or_else(|| UnboundVar(v.clone()))?,
        PPred::Eq => Pred::Eq,
        PPred::Lt => Pred::Lt,
        PPred::Leq => Pred::Leq,
        PPred::Gt => Pred::Gt,
        PPred::Geq => Pred::Geq,
        PPred::In => Pred::In,
        PPred::PrimP(n) => Pred::PrimP(n.clone()),
        PPred::Oplus(p, f) => Pred::Oplus(
            Box::new(instantiate_pred(p, s)?),
            Box::new(instantiate_func(f, s)?),
        ),
        PPred::And(p, q) => Pred::And(
            Box::new(instantiate_pred(p, s)?),
            Box::new(instantiate_pred(q, s)?),
        ),
        PPred::Or(p, q) => Pred::Or(
            Box::new(instantiate_pred(p, s)?),
            Box::new(instantiate_pred(q, s)?),
        ),
        PPred::Not(p) => Pred::Not(Box::new(instantiate_pred(p, s)?)),
        PPred::Conv(p) => Pred::Conv(Box::new(instantiate_pred(p, s)?)),
        PPred::ConstP(b) => Pred::ConstP(*b),
        PPred::CurryP(p, q) => Pred::CurryP(
            Box::new(instantiate_pred(p, s)?),
            Box::new(instantiate_query(q, s)?),
        ),
    })
}

/// Instantiate a query pattern under a substitution.
pub fn instantiate_query(pat: &PQuery, s: &Subst) -> Result<Query, UnboundVar> {
    Ok(match pat {
        PQuery::Var(v) => s
            .objs
            .get(v)
            .cloned()
            .ok_or_else(|| UnboundVar(v.clone()))?,
        PQuery::Lit(v) => Query::Lit(v.clone()),
        PQuery::Extent(n) => Query::Extent(n.clone()),
        PQuery::PairQ(a, b) => Query::PairQ(
            Box::new(instantiate_query(a, s)?),
            Box::new(instantiate_query(b, s)?),
        ),
        PQuery::App(f, q) => {
            Query::App(instantiate_func(f, s)?, Box::new(instantiate_query(q, s)?))
        }
        PQuery::Test(p, q) => {
            Query::Test(instantiate_pred(p, s)?, Box::new(instantiate_query(q, s)?))
        }
        PQuery::Union(a, b) => Query::Union(
            Box::new(instantiate_query(a, s)?),
            Box::new(instantiate_query(b, s)?),
        ),
        PQuery::Intersect(a, b) => Query::Intersect(
            Box::new(instantiate_query(a, s)?),
            Box::new(instantiate_query(b, s)?),
        ),
        PQuery::Diff(a, b) => Query::Diff(
            Box::new(instantiate_query(a, s)?),
            Box::new(instantiate_query(b, s)?),
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kola::builder::*;
    use kola::parse::{parse_pfunc, parse_ppred};
    use std::sync::Arc;

    #[test]
    fn instantiation_replaces_vars() {
        let pat = parse_pfunc("$f . id").unwrap();
        let mut s = Subst::new();
        assert!(s.bind_func(&Arc::from("f"), &prim("age")));
        assert_eq!(instantiate_func(&pat, &s).unwrap(), o(prim("age"), id()));
    }

    #[test]
    fn unbound_var_errors() {
        let pat = parse_pfunc("$f").unwrap();
        let s = Subst::new();
        assert_eq!(instantiate_func(&pat, &s), Err(UnboundVar(Arc::from("f"))));
    }

    #[test]
    fn consistent_binding() {
        let mut s = Subst::new();
        let f: Sym = Arc::from("f");
        assert!(s.bind_func(&f, &prim("age")));
        assert!(s.bind_func(&f, &prim("age"))); // same term again: fine
        assert!(!s.bind_func(&f, &prim("addr"))); // different: rejected
    }

    #[test]
    fn cross_kind_instantiation() {
        let pat = parse_ppred("%p @ $f").unwrap();
        let mut s = Subst::new();
        s.bind_pred(&Arc::from("p"), &gt());
        s.bind_func(&Arc::from("f"), &prim("age"));
        assert_eq!(
            instantiate_pred(&pat, &s).unwrap(),
            oplus(gt(), prim("age"))
        );
    }

    #[test]
    fn display_subst() {
        let mut s = Subst::new();
        s.bind_func(&Arc::from("f"), &id());
        assert_eq!(s.to_string(), "{$f -> id}");
    }
}
