//! Long-lived engine correctness: epoch-scoped caches and bounded arenas.
//!
//! A service worker keeps one [`Engine`] alive across many requests and
//! many rule-set epochs (breaker trips and resets). These tests pin the
//! two properties that reuse must preserve:
//!
//! 1. **Parity across epochs** — a persistent engine masking rules via
//!    [`Engine::set_epoch`] answers byte-for-byte like a fresh engine
//!    built over just the active subset, and stale-epoch memo entries are
//!    never replayed into a different rule set.
//! 2. **Bounded arena** — a thousand sequential requests through one
//!    engine leave the intern arena bounded by the compaction cap plus a
//!    fixed multiple of the largest single request, not by the request
//!    count.

use kola::term::{Func, Query};
use kola_rewrite::{Budget, Catalog, Engine, EngineConfig, Oriented, PropDb};
use std::sync::Arc;

fn tower(height: usize, leaf: &str) -> Query {
    let mut f = Func::Prim(Arc::from(leaf));
    for _ in 0..height {
        f = Func::Compose(Box::new(Func::Id), Box::new(f));
    }
    Query::App(f, Box::new(Query::Extent(Arc::from("P"))))
}

#[test]
fn set_epoch_invalidates_memo_across_rule_set_swaps() {
    let catalog = Catalog::paper();
    let props = PropDb::new();
    let budget = Budget::default();
    let q = tower(6, "age");

    // The persistent engine: full catalog, disabled rules masked per epoch.
    let rules: Vec<Oriented<'_>> = catalog.rules().iter().map(Oriented::fwd).collect();
    let mut engine = Engine::new(rules, &props, EngineConfig::fast());

    // Fresh single-epoch engines to compare against, built over exactly
    // the rule subset each epoch serves.
    let run_fresh = |drop_id: Option<&str>| {
        let subset: Vec<Oriented<'_>> = catalog
            .rules()
            .iter()
            .filter(|r| drop_id != Some(r.id.as_str()))
            .map(Oriented::fwd)
            .collect();
        Engine::new(subset, &props, EngineConfig::fast()).normalize(&q, &budget)
    };
    let full = run_fresh(None);
    let reduced = run_fresh(Some("app"));
    assert_ne!(
        full.report.rule_stats, reduced.report.rule_stats,
        "the swap must be observable: \"app\" fires on id-towers"
    );

    // Epoch 0, full set: parity, then a memo replay that must stay exact.
    let r = engine.normalize(&q, &budget);
    assert_eq!(r.query, full.query);
    assert_eq!(r.report, full.report);
    let replay = engine.normalize(&q, &budget);
    assert_eq!(replay.query, full.query);
    assert_eq!(replay.report, full.report);

    // Epoch 1, "app" masked: the epoch-0 memo (whose derivations fired
    // "app") must be invalidated, and the masked engine must match a fresh
    // engine built over the subset — including consult-order-sensitive
    // rule_stats, i.e. the mask is equivalent to an index over the subset.
    engine.set_epoch(1, &["app".to_string()]);
    let r = engine.normalize(&q, &budget);
    assert_eq!(r.query, reduced.query);
    assert_eq!(r.report, reduced.report);
    assert!(!r.report.rule_stats.contains_key("app"));

    // Epoch 2, full set again: the epoch-1 memo must not leak back either.
    engine.set_epoch(2, &[]);
    let r = engine.normalize(&q, &budget);
    assert_eq!(r.query, full.query);
    assert_eq!(r.report, full.report);
}

#[test]
fn persistent_engine_arena_stays_bounded_over_1k_requests() {
    let catalog = Catalog::paper();
    let props = PropDb::new();
    let budget = Budget::default();
    let config = EngineConfig {
        arena_capacity: 4096,
        ..EngineConfig::fast()
    };

    // Every request uses fresh primitive names, so nothing is shared
    // between requests and the arena would grow linearly without
    // compaction (towers over a common leaf would hash-cons into each
    // other and mask the leak).
    let query = |i: usize| tower(1 + (i * 7) % 40, &format!("p{i}"));

    let rules: Vec<Oriented<'_>> = catalog.rules().iter().map(Oriented::fwd).collect();
    let mut engine = Engine::new(rules, &props, config.clone());
    let mut peak = 0usize;
    let mut max_fresh = 0usize;
    for i in 0..1000 {
        let q = query(i);
        engine.normalize(&q, &budget);
        peak = peak.max(engine.arena_len());
        if 1 + (i * 7) % 40 == 40 {
            // Sample the tallest request shape's arena footprint on a
            // throwaway engine — the worst single-request growth.
            let subset: Vec<Oriented<'_>> = catalog.rules().iter().map(Oriented::fwd).collect();
            let mut fresh = Engine::new(subset, &props, config.clone());
            fresh.normalize(&q, &budget);
            max_fresh = max_fresh.max(fresh.arena_len());
        }
    }
    assert!(
        engine.compactions() > 0,
        "1k disjoint requests over a 4096-node cap must compact (peak {peak})"
    );
    assert!(
        peak <= config.arena_capacity + 4 * max_fresh,
        "arena peaked at {peak} nodes — not bounded by cap {} + 4 × single-request {max_fresh}",
        config.arena_capacity
    );
}
