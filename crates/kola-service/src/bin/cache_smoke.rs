//! Plan-cache smoke gate for CI (`scripts/ci.sh --cache-smoke`).
//!
//! ```sh
//! cargo run -p kola-service --bin cache-smoke --release
//! ```
//!
//! Two checks, both sized for a CI lane:
//!
//! 1. **Hit-rate soak** — a short repeated-traffic stream at a 90% target
//!    hit rate: every `RepeatedReport` invariant must hold (all requests
//!    optimized on the fast rung, conservation books balanced, zero
//!    panics) and the achieved hit rate must be ≥ 85%.
//! 2. **Mini parity** — a cache-enabled and a cache-disabled service
//!    driven with identical request streams, including an injected-fault
//!    lane that trips a breaker and an operator reset mid-stream, must
//!    answer byte-identically response by response. (The full 500-seed
//!    suite lives in `tests/cache.rs`; this is the always-on subset.)
//!
//! Environment: `CACHE_SMOKE_REQUESTS` (default 1200) sizes the soak.
//! Exits nonzero on any failure.

use kola_rewrite::{FaultKind, FaultPlan, FaultSpec, StepSelector};
use kola_service::{
    run_repeated_stream, RepeatedConfig, Request, RequestOptions, Response, Service, ServiceConfig,
};
use std::time::Duration;

fn id_tower_text(height: usize) -> String {
    let mut s = String::new();
    for _ in 0..height {
        s.push_str("id . ");
    }
    s.push_str("age ! P");
    s
}

/// Everything semantic about a response (id and wall-clock excluded).
fn fingerprint(r: &Response) -> String {
    format!(
        "{:?} | {:?} | {:?} | {:?} | retries={} | panics={} | {:?}",
        r.outcome,
        r.plan,
        r.report,
        r.quarantine,
        r.retries,
        r.panics.len(),
        r.error
    )
}

fn fail(msg: &str) -> ! {
    eprintln!("CACHE SMOKE FAILED: {msg}");
    std::process::exit(1);
}

fn hit_rate_soak(requests: usize) {
    let cfg = RepeatedConfig {
        requests,
        hit_target: 0.9,
        ..RepeatedConfig::default()
    };
    let report = run_repeated_stream(&cfg);
    println!(
        "repeated soak: {} requests, {} hits ({:.1}% of a 90% target), {:.0} req/s",
        report.requests,
        report.cache_hits,
        report.hit_actual * 100.0,
        report.throughput_rps()
    );
    if !report.violations.is_empty() {
        fail(&format!(
            "repeated soak violated invariants:\n{}",
            report.violations.join("\n")
        ));
    }
    if report.hit_actual < 0.85 {
        fail(&format!(
            "achieved hit rate {:.1}% < 85% at a 90% target",
            report.hit_actual * 100.0
        ));
    }
}

fn parity_service(cache_capacity: usize) -> Service {
    Service::start(ServiceConfig {
        workers: 1,
        cache_capacity,
        breaker_threshold: 3,
        ..ServiceConfig::default()
    })
}

fn mini_parity() {
    let cached = parity_service(2_048);
    let uncached = parity_service(0);
    let pool: Vec<String> = (0..4).map(|h| id_tower_text(3 + h)).collect();
    let fault_request = || {
        Request::text(id_tower_text(4)).with_options(RequestOptions {
            faults: FaultPlan::new().with(FaultSpec {
                rule_id: "app".to_string(),
                at: StepSelector::Steps(vec![0]),
                kind: FaultKind::Fail,
            }),
            backoff: Duration::from_micros(10),
            ..RequestOptions::default()
        })
    };
    let mut hits_seen = 0u64;
    for op in 0..60usize {
        let request = match op % 10 {
            // Fault lane: charges "app"; three of these trip it (a
            // snapshot swap every resident plan must notice).
            3 => fault_request(),
            // Unique tail.
            7 => Request::text(format!("gt ? [{}, 2]", op + 3)),
            // Pool repeats: hits on the cached side from the second lap.
            k => Request::text(pool[k % pool.len()].clone()),
        };
        let a = cached.call(request.clone());
        let b = uncached.call(request);
        if fingerprint(&a) != fingerprint(&b) {
            fail(&format!(
                "parity diverged at op {op}:\n  cache-on:  {}\n  cache-off: {}",
                fingerprint(&a),
                fingerprint(&b)
            ));
        }
        // Mid-stream operator reset — identical on both sides, and
        // another generation move for the cache to survive.
        if op == 40 {
            let open = cached.breaker().open_rules();
            if open != uncached.breaker().open_rules() {
                fail("breaker open sets diverged between parity services");
            }
            for rule in open {
                cached.breaker().reset(&rule);
                uncached.breaker().reset(&rule);
            }
        }
        hits_seen = cached.metrics_snapshot().counter("cache_hits");
    }
    let stale = cached.metrics_snapshot().counter("cache_stale");
    println!("mini parity: 60 ops byte-identical, {hits_seen} hits, {stale} stale reclaims");
    if hits_seen == 0 {
        fail("parity stream never hit the cache — the check proved nothing");
    }
    if stale == 0 {
        fail("no stale reclaim: the trip never invalidated a resident plan");
    }
}

fn main() {
    let requests = std::env::var("CACHE_SMOKE_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_200);
    hit_rate_soak(requests);
    mini_parity();
    println!(
        "cache smoke passed: hit rate >= 85% at 90% target, parity holds through trips/resets"
    );
}
