//! Chaos soak driver for the optimization service.
//!
//! ```sh
//! CHAOS_REQUESTS=10000 cargo run -p kola-service --bin chaos-soak --release
//! ```
//!
//! Environment:
//! - `CHAOS_REQUESTS` — requests to generate (default 10000)
//! - `CHAOS_SEED` — master seed (default 0xC0FFEE)
//! - `CHAOS_WORKERS` — worker threads (default 4)
//! - `CHAOS_TRACE` — set to `0` to disable trace recording + replay
//!   (default on: the soak is the replay harness's proving ground)
//!
//! Writes `BENCH_obs.json` at the repo root: the full metric snapshot,
//! the trace-replay tally, and the conservation verdict. Exits nonzero if
//! any soak invariant is violated (unclassified request, escaped panic,
//! invalid classification, semantic-gate failure, unbalanced books, or a
//! divergent trace replay).

use kola_service::{run_chaos, ChaosConfig};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let cfg = ChaosConfig {
        requests: env_u64("CHAOS_REQUESTS", 10_000) as usize,
        seed: env_u64("CHAOS_SEED", 0xC0FFEE),
        workers: env_u64("CHAOS_WORKERS", 4) as usize,
        tracing: env_u64("CHAOS_TRACE", 1) != 0,
        ..ChaosConfig::default()
    };
    println!(
        "chaos soak: {} requests, seed {:#x}, {} workers, tracing {}",
        cfg.requests,
        cfg.seed,
        cfg.workers,
        if cfg.tracing { "on" } else { "off" }
    );
    let report = run_chaos(&cfg);
    println!("{}", report.summary());
    let violations = report.violations();

    let out = report.obs_json("chaos_soak", &cfg);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    match std::fs::write(path, &out) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    if violations.is_empty() {
        println!(
            "soak passed: every request classified, books balanced, {} traces replayed exactly",
            report.traces_replayed
        );
    } else {
        for v in &violations {
            eprintln!("VIOLATION: {v}");
        }
        std::process::exit(1);
    }
}
