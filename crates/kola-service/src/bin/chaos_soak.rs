//! Chaos soak driver for the optimization service.
//!
//! ```sh
//! CHAOS_REQUESTS=10000 cargo run -p kola-service --bin chaos-soak --release
//! ```
//!
//! Environment:
//! - `CHAOS_REQUESTS` — requests to generate (default 10000)
//! - `CHAOS_SEED` — master seed (default 0xC0FFEE)
//! - `CHAOS_WORKERS` — worker threads (default 4)
//!
//! Exits nonzero if any soak invariant is violated (unclassified request,
//! escaped panic, invalid classification, semantic-gate failure).

use kola_service::{run_chaos, ChaosConfig};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let cfg = ChaosConfig {
        requests: env_u64("CHAOS_REQUESTS", 10_000) as usize,
        seed: env_u64("CHAOS_SEED", 0xC0FFEE),
        workers: env_u64("CHAOS_WORKERS", 4) as usize,
        ..ChaosConfig::default()
    };
    println!(
        "chaos soak: {} requests, seed {:#x}, {} workers",
        cfg.requests, cfg.seed, cfg.workers
    );
    let report = run_chaos(&cfg);
    println!("{}", report.summary());
    let violations = report.violations();
    if violations.is_empty() {
        println!("soak passed: every request terminated classified, no escaped panics");
    } else {
        for v in &violations {
            eprintln!("VIOLATION: {v}");
        }
        std::process::exit(1);
    }
}
