//! Noisy-neighbor smoke driver for multi-tenant isolation.
//!
//! ```sh
//! TENANT_REQUESTS=2000 cargo run -p kola-service --bin tenant-smoke --release
//! ```
//!
//! Environment:
//! - `TENANT_REQUESTS` — requests per tenant (default 2000)
//! - `TENANT_SEED` — master seed (default 0x7E4A47)
//! - `TENANT_WORKERS` — worker threads (default 8)
//!
//! Runs a clean victim tenant against a poison+flood aggressor tenant on
//! one service and exits nonzero if any isolation invariant is violated:
//! a victim reply that is not `Optimized { rung: Fast }`, a cross-tenant
//! breaker charge, a stale cache reclaim, an escaped panic, or unbalanced
//! per-tenant books.

use kola_service::{run_noisy_neighbor, TenantChaosConfig};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let requests = env_u64("TENANT_REQUESTS", 2_000) as usize;
    let cfg = TenantChaosConfig {
        victim_requests: requests,
        aggressor_requests: requests,
        seed: env_u64("TENANT_SEED", 0x7E4A47),
        workers: env_u64("TENANT_WORKERS", 8) as usize,
        ..TenantChaosConfig::default()
    };
    println!(
        "tenant smoke: {} requests/tenant, seed {:#x}, {} workers",
        requests, cfg.seed, cfg.workers
    );
    let report = run_noisy_neighbor(&cfg);
    println!("{}", report.summary());
    let violations = report.violations();
    if violations.is_empty() {
        println!(
            "smoke passed: victim taxonomy unchanged under {} aggressor trips",
            report.aggressor_breaker_opened
        );
    } else {
        for v in &violations {
            eprintln!("VIOLATION: {v}");
        }
        std::process::exit(1);
    }
}
