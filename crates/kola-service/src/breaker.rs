//! Cross-request per-rule circuit breakers.
//!
//! `kola-rewrite`'s budget layer quarantines a rule *within one run*; a
//! service sees the same poisoned rule again on the very next request. The
//! [`Breaker`] lifts that quarantine across requests: each rule implicated
//! in a failed request (a caught poison-rule panic, an injected fault, an
//! oversize result) is charged once per request, and after `threshold`
//! charged requests the breaker *opens* — the rule is dropped from the rule
//! set handed to the engines, which also evicts it from the fast engine's
//! head-symbol `RuleIndex` (the index is built from exactly that set).
//!
//! An open breaker is a deliberate operator-visible state, not a timeout:
//! rules are data that someone registered, and a rule that keeps panicking
//! should stay out of service until a human (or a test) calls
//! [`Breaker::reset`]. All methods take `&self`; the state sits behind a
//! mutex so workers share one breaker.

use kola_rewrite::{QuarantineEntry, QuarantineReport};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Failure record for one rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BreakerEntry {
    /// Requests in which this rule was implicated in a failure.
    pub trips: usize,
    /// Whether the breaker is open (rule evicted from service).
    pub open: bool,
    /// Id of the first request that charged this rule.
    pub first_request: Option<u64>,
    /// Id of the most recent request that charged this rule.
    pub last_request: Option<u64>,
}

/// A shared per-rule circuit breaker (see module docs).
#[derive(Debug)]
pub struct Breaker {
    threshold: usize,
    state: Mutex<HashMap<String, BreakerEntry>>,
    /// Bumped on every transition that changes the *served rule set* — a
    /// breaker opening or an open breaker being reset. Snapshot publication
    /// (see `crate::snapshot`) keys off this: readers compare one atomic
    /// against their cached snapshot's epoch instead of taking the state
    /// lock per request. The bump happens while the state lock is held, so
    /// any reader that observed the new open-set under the lock is
    /// guaranteed to observe the new generation too.
    generation: AtomicU64,
    /// Lifetime count of breaker openings (monotone; unlike `generation`
    /// it counts only openings, so `opened - reset` trends tell an operator
    /// whether trips are accumulating). Bumped inside the state lock.
    opened_total: AtomicU64,
    /// Lifetime count of open breakers reset (readmissions).
    reset_total: AtomicU64,
}

impl Breaker {
    /// A breaker that opens a rule after `threshold` charged requests
    /// (`0` is treated as `1`; `usize::MAX` never opens).
    pub fn new(threshold: usize) -> Self {
        Breaker {
            threshold: threshold.max(1),
            state: Mutex::new(HashMap::new()),
            generation: AtomicU64::new(0),
            opened_total: AtomicU64::new(0),
            reset_total: AtomicU64::new(0),
        }
    }

    /// The current rule-set generation (see the `generation` field docs).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Charge `rule_id` for a failure in request `request_id`. Returns
    /// `true` iff the breaker is open after the charge. Callers charge a
    /// rule at most once per request (the ladder dedupes).
    pub fn charge(&self, rule_id: &str, request_id: u64) -> bool {
        let mut state = self.state.lock().unwrap();
        let e = state.entry(rule_id.to_string()).or_default();
        e.trips += 1;
        if e.first_request.is_none() {
            e.first_request = Some(request_id);
        }
        e.last_request = Some(request_id);
        if self.threshold != usize::MAX && e.trips >= self.threshold && !e.open {
            e.open = true;
            // Inside the lock: see the `generation` field docs.
            self.generation.fetch_add(1, Ordering::Release);
            self.opened_total.fetch_add(1, Ordering::Release);
        }
        e.open
    }

    /// Read-only failure record for `rule_id` — trip count, open state, and
    /// the first/last implicating request ids — or `None` if the rule was
    /// never charged. The per-request surface `QuarantineReport` only shows
    /// *open* rules; this exposes the accumulating state below threshold,
    /// which is what an operator watches to see a rule trending toward a
    /// trip.
    pub fn entry(&self, rule_id: &str) -> Option<BreakerEntry> {
        self.state.lock().unwrap().get(rule_id).copied()
    }

    /// Lifetime count of breaker openings.
    pub fn opened_total(&self) -> u64 {
        self.opened_total.load(Ordering::Acquire)
    }

    /// Lifetime count of open breakers reset.
    pub fn reset_total(&self) -> u64 {
        self.reset_total.load(Ordering::Acquire)
    }

    /// True iff `rule_id`'s breaker is open.
    pub fn is_open(&self, rule_id: &str) -> bool {
        self.state
            .lock()
            .unwrap()
            .get(rule_id)
            .is_some_and(|e| e.open)
    }

    /// Ids of all open-breaker rules, sorted.
    pub fn open_rules(&self) -> Vec<String> {
        let state = self.state.lock().unwrap();
        let mut v: Vec<String> = state
            .iter()
            .filter(|(_, e)| e.open)
            .map(|(id, _)| id.clone())
            .collect();
        v.sort();
        v
    }

    /// Close `rule_id`'s breaker and forget its trip history, readmitting
    /// the rule. Returns `true` iff there was state to clear.
    pub fn reset(&self, rule_id: &str) -> bool {
        let mut state = self.state.lock().unwrap();
        let removed = state.remove(rule_id);
        if removed.as_ref().is_some_and(|e| e.open) {
            // Inside the lock: see the `generation` field docs.
            self.generation.fetch_add(1, Ordering::Release);
            self.reset_total.fetch_add(1, Ordering::Release);
        }
        removed.is_some()
    }

    /// Every rule with breaker state, sorted by rule id.
    pub fn snapshot(&self) -> Vec<(String, BreakerEntry)> {
        let state = self.state.lock().unwrap();
        let mut v: Vec<(String, BreakerEntry)> =
            state.iter().map(|(id, e)| (id.clone(), *e)).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// The open rules as a [`QuarantineReport`] — the same observability
    /// shape the per-run quarantine uses, with request ids in the step
    /// slots.
    pub fn report(&self) -> QuarantineReport {
        QuarantineReport {
            entries: self
                .snapshot()
                .into_iter()
                .filter(|(_, e)| e.open)
                .map(|(rule_id, e)| QuarantineEntry {
                    rule_id,
                    trips: e.trips,
                    first_failure: e.first_request.map(|r| r as usize),
                    last_failure: e.last_request.map(|r| r as usize),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_open_at_threshold_and_reset_closes() {
        let b = Breaker::new(3);
        assert!(!b.charge("9", 1));
        assert!(!b.charge("9", 2));
        assert!(!b.is_open("9"));
        assert!(b.charge("9", 7));
        assert!(b.is_open("9"));
        assert_eq!(b.open_rules(), vec!["9".to_string()]);
        let report = b.report();
        assert_eq!(report.entries.len(), 1);
        assert_eq!(report.entries[0].trips, 3);
        assert_eq!(report.entries[0].first_failure, Some(1));
        assert_eq!(report.entries[0].last_failure, Some(7));
        assert!(b.reset("9"));
        assert!(!b.is_open("9"));
        assert!(b.open_rules().is_empty());
        assert!(!b.reset("9"));
    }

    #[test]
    fn generation_moves_only_on_rule_set_changes() {
        let b = Breaker::new(2);
        assert_eq!(b.generation(), 0);
        b.charge("app", 1);
        // Charged but not open: the served rule set is unchanged.
        assert_eq!(b.generation(), 0);
        b.charge("app", 2);
        assert!(b.is_open("app"));
        assert_eq!(b.generation(), 1);
        // Further charges on an already-open rule change nothing.
        b.charge("app", 3);
        assert_eq!(b.generation(), 1);
        // Resetting a never-charged rule changes nothing.
        b.reset("e121");
        assert_eq!(b.generation(), 1);
        // Resetting charged-but-closed state changes nothing either.
        b.charge("9", 4);
        b.reset("9");
        assert_eq!(b.generation(), 1);
        // Resetting the open rule readmits it: generation moves.
        b.reset("app");
        assert_eq!(b.generation(), 2);
    }

    #[test]
    fn entry_exposes_accumulating_state_across_trip_and_reset() {
        let b = Breaker::new(3);
        assert_eq!(b.entry("9"), None);
        assert_eq!((b.opened_total(), b.reset_total()), (0, 0));

        // Below threshold: visible through `entry`, invisible to the
        // open-rules surfaces.
        b.charge("9", 10);
        b.charge("9", 11);
        let e = b.entry("9").expect("charged rule has an entry");
        assert_eq!(e.trips, 2);
        assert!(!e.open);
        assert_eq!(e.first_request, Some(10));
        assert_eq!(e.last_request, Some(11));
        assert!(b.report().entries.is_empty());
        assert_eq!((b.opened_total(), b.reset_total()), (0, 0));

        // Trip: entry flips open, opened_total moves once.
        b.charge("9", 12);
        let e = b.entry("9").unwrap();
        assert!(e.open);
        assert_eq!(e.trips, 3);
        assert_eq!((b.opened_total(), b.reset_total()), (1, 0));
        // Extra charges on an open breaker accumulate without re-opening.
        b.charge("9", 13);
        assert_eq!(b.entry("9").unwrap().trips, 4);
        assert_eq!(b.opened_total(), 1);

        // Reset: entry clears, reset_total moves once.
        assert!(b.reset("9"));
        assert_eq!(b.entry("9"), None);
        assert_eq!((b.opened_total(), b.reset_total()), (1, 1));
        // Resetting charged-but-never-open state is not a readmission.
        b.charge("app", 20);
        b.reset("app");
        assert_eq!((b.opened_total(), b.reset_total()), (1, 1));
    }

    #[test]
    fn never_threshold_never_opens() {
        let b = Breaker::new(usize::MAX);
        for i in 0..1000 {
            assert!(!b.charge("2", i));
        }
        assert!(!b.is_open("2"));
    }
}
