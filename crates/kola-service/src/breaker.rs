//! Cross-request per-rule circuit breakers.
//!
//! `kola-rewrite`'s budget layer quarantines a rule *within one run*; a
//! service sees the same poisoned rule again on the very next request. The
//! [`Breaker`] lifts that quarantine across requests: each rule implicated
//! in a failed request (a caught poison-rule panic, an injected fault, an
//! oversize result) is charged once per request, and after `threshold`
//! charged requests the breaker *opens* — the rule is dropped from the rule
//! set handed to the engines, which also evicts it from the fast engine's
//! discrimination-tree `RuleIndex` (the index is built from exactly that
//! set).
//!
//! An open breaker is a deliberate operator-visible state, not a timeout:
//! rules are data that someone registered, and a rule that keeps panicking
//! should stay out of service until a human (or a test) calls
//! [`Breaker::reset`]. All methods take `&self` so workers share one
//! breaker.
//!
//! ## Sharded charge path
//!
//! The original breaker kept every rule behind one `Mutex<HashMap>`; every
//! failed request on every worker serialized on that lock, which is exactly
//! backwards — the breaker exists *for* the degraded path, so it must be as
//! parallel as the happy path. [`Breaker::sharded`] pre-registers the
//! catalog's rule ids into fixed slots and gives each worker a shard of
//! relaxed-atomic trip counters:
//!
//! - **charge** (hot): one relaxed `fetch_add` on the worker's own shard
//!   counter, a one-time CAS for `first_request`, a relaxed store for
//!   `last_request`, and a relaxed read of the slot's open bit. No lock.
//! - **trip** (cold): only when the cross-shard sum reaches the threshold
//!   does the charger take the state lock, re-sum under the lock (so a
//!   racing [`Breaker::reset`] can't be overridden by a stale sum), set the
//!   slot's open bit, and bump the generation — inside the lock, exactly
//!   like the global breaker, so snapshot publication (see
//!   `crate::snapshot`) is untouched: served-set changes are still observed
//!   with one atomic generation load per request.
//! - **merge**: trip/reset decisions *are* the merge. Shard counters are
//!   never drained; every read surface (`entry`, `snapshot`, `report`)
//!   folds the per-shard counters on demand, so the observable trip counts
//!   are byte-identical to the global breaker's (`tests/breaker_parity.rs`
//!   drives both implementations through identical streams and asserts
//!   identical trip/reset sequences and reports).
//!
//! Rule ids that were never registered (operator typos, rules added after
//! start) fall back to a central locked map with the original semantics.

use kola_rewrite::{QuarantineEntry, QuarantineReport};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Failure record for one rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BreakerEntry {
    /// Requests in which this rule was implicated in a failure.
    pub trips: usize,
    /// Whether the breaker is open (rule evicted from service).
    pub open: bool,
    /// Id of the first request that charged this rule.
    pub first_request: Option<u64>,
    /// Id of the most recent request that charged this rule.
    pub last_request: Option<u64>,
}

/// `u64::MAX` marks an unset `first_request`/`last_request` slot (request
/// ids are sequence numbers and never reach it).
const UNSET: u64 = u64::MAX;

/// Per-slot lock-free breaker state shared by all shards: the open bit and
/// the first/last implicating request ids. Trip counters live per shard.
#[derive(Debug)]
struct Slot {
    open: AtomicBool,
    first: AtomicU64,
    last: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            open: AtomicBool::new(false),
            first: AtomicU64::new(UNSET),
            last: AtomicU64::new(UNSET),
        }
    }
}

/// One worker's trip counters, one per registered rule slot.
#[derive(Debug)]
struct Shard {
    trips: Vec<AtomicUsize>,
}

/// A shared per-rule circuit breaker (see module docs).
#[derive(Debug)]
pub struct Breaker {
    threshold: usize,
    /// Registered rule id → slot index into `slots` / `shards[_].trips`.
    index: HashMap<String, usize>,
    /// Registered rule ids, by slot index.
    rule_ids: Vec<String>,
    /// Lock-free per-slot state (open bit, first/last request ids).
    slots: Vec<Slot>,
    /// Per-worker trip counters; `shards[s].trips[slot]`.
    shards: Vec<Shard>,
    /// Unregistered rule ids: the original locked-map slow path. The same
    /// mutex also serializes trip/reset transitions for registered slots,
    /// so generation bumps stay ordered exactly as in the global breaker.
    state: Mutex<HashMap<String, BreakerEntry>>,
    /// Bumped on every transition that changes the *served rule set* — a
    /// breaker opening or an open breaker being reset. Snapshot publication
    /// (see `crate::snapshot`) keys off this: readers compare one atomic
    /// against their cached snapshot's epoch instead of taking the state
    /// lock per request. The bump happens while the state lock is held and
    /// *after* the open bit is published, so a reader that observes the new
    /// generation is guaranteed to observe the new open-set too.
    generation: AtomicU64,
    /// Lifetime count of breaker openings (monotone; unlike `generation`
    /// it counts only openings, so `opened - reset` trends tell an operator
    /// whether trips are accumulating). Bumped inside the state lock.
    opened_total: AtomicU64,
    /// Lifetime count of open breakers reset (readmissions).
    reset_total: AtomicU64,
}

impl Breaker {
    /// A breaker that opens a rule after `threshold` charged requests
    /// (`0` is treated as `1`; `usize::MAX` never opens). No rules are
    /// pre-registered: every charge takes the central-map slow path, which
    /// preserves the original single-lock semantics for small tests.
    pub fn new(threshold: usize) -> Self {
        Breaker::sharded(threshold, 1, Vec::<String>::new())
    }

    /// A breaker with `shards` independent charge lanes (one per worker)
    /// and the given rule ids pre-registered into lock-free slots. Charges
    /// to unregistered ids still work through the locked fallback map.
    pub fn sharded(
        threshold: usize,
        shards: usize,
        rule_ids: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        let rule_ids: Vec<String> = rule_ids.into_iter().map(Into::into).collect();
        let index = rule_ids
            .iter()
            .enumerate()
            .map(|(i, id)| (id.clone(), i))
            .collect();
        let slots = (0..rule_ids.len()).map(|_| Slot::new()).collect();
        let shards = (0..shards.max(1))
            .map(|_| Shard {
                trips: (0..rule_ids.len()).map(|_| AtomicUsize::new(0)).collect(),
            })
            .collect();
        Breaker {
            threshold: threshold.max(1),
            index,
            rule_ids,
            slots,
            shards,
            state: Mutex::new(HashMap::new()),
            generation: AtomicU64::new(0),
            opened_total: AtomicU64::new(0),
            reset_total: AtomicU64::new(0),
        }
    }

    /// Number of charge lanes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The current rule-set generation (see the `generation` field docs).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Trip total for a registered slot, folded across shards.
    fn slot_trips(&self, slot: usize) -> usize {
        self.shards
            .iter()
            .map(|s| s.trips[slot].load(Ordering::Relaxed))
            .sum()
    }

    /// Charge `rule_id` for a failure in request `request_id`. Returns
    /// `true` iff the breaker is open after the charge. Callers charge a
    /// rule at most once per request (the ladder dedupes). Equivalent to
    /// [`Breaker::charge_from`] on shard 0.
    pub fn charge(&self, rule_id: &str, request_id: u64) -> bool {
        self.charge_from(0, rule_id, request_id)
    }

    /// [`Breaker::charge`] through shard `shard` (a worker index; wrapped
    /// modulo the shard count). Registered rules pay one relaxed RMW on
    /// this shard's counter; the state lock is taken only to decide a trip.
    pub fn charge_from(&self, shard: usize, rule_id: &str, request_id: u64) -> bool {
        let Some(&slot) = self.index.get(rule_id) else {
            return self.charge_unregistered(rule_id, request_id);
        };
        let lane = &self.shards[shard % self.shards.len()];
        lane.trips[slot].fetch_add(1, Ordering::Relaxed);
        let s = &self.slots[slot];
        let _ = s
            .first
            .compare_exchange(UNSET, request_id, Ordering::AcqRel, Ordering::Relaxed);
        s.last.store(request_id, Ordering::Relaxed);
        if s.open.load(Ordering::Relaxed) {
            return true;
        }
        if self.threshold != usize::MAX && self.slot_trips(slot) >= self.threshold {
            // Cold path: serialize the trip decision on the state lock and
            // re-sum under it, so a racing reset (which zeroes the counters
            // under the same lock) cannot be overridden by a stale sum.
            let _state = self.state.lock().unwrap();
            if !s.open.load(Ordering::Relaxed) && self.slot_trips(slot) >= self.threshold {
                s.open.store(true, Ordering::Release);
                // Inside the lock, after the open bit: see `generation`.
                self.generation.fetch_add(1, Ordering::Release);
                self.opened_total.fetch_add(1, Ordering::Release);
            }
        }
        s.open.load(Ordering::Relaxed)
    }

    /// Charge every rule in `rule_ids` for request `request_id` through
    /// shard `shard` — the ladder's batched entry point: one call per
    /// failed request instead of one locked call per implicated rule.
    pub fn charge_many<'r>(
        &self,
        shard: usize,
        rule_ids: impl IntoIterator<Item = &'r str>,
        request_id: u64,
    ) {
        for rule_id in rule_ids {
            self.charge_from(shard, rule_id, request_id);
        }
    }

    /// The original locked-map path for ids outside the registered set.
    fn charge_unregistered(&self, rule_id: &str, request_id: u64) -> bool {
        let mut state = self.state.lock().unwrap();
        let e = state.entry(rule_id.to_string()).or_default();
        e.trips += 1;
        if e.first_request.is_none() {
            e.first_request = Some(request_id);
        }
        e.last_request = Some(request_id);
        if self.threshold != usize::MAX && e.trips >= self.threshold && !e.open {
            e.open = true;
            // Inside the lock: see the `generation` field docs.
            self.generation.fetch_add(1, Ordering::Release);
            self.opened_total.fetch_add(1, Ordering::Release);
        }
        e.open
    }

    /// Fold one registered slot into a [`BreakerEntry`], or `None` if it
    /// was never charged since its last reset.
    fn slot_entry(&self, slot: usize) -> Option<BreakerEntry> {
        let s = &self.slots[slot];
        let first = s.first.load(Ordering::Acquire);
        if first == UNSET {
            return None;
        }
        let last = s.last.load(Ordering::Relaxed);
        Some(BreakerEntry {
            trips: self.slot_trips(slot),
            open: s.open.load(Ordering::Acquire),
            first_request: Some(first),
            last_request: (last != UNSET).then_some(last),
        })
    }

    /// Read-only failure record for `rule_id` — trip count, open state, and
    /// the first/last implicating request ids — or `None` if the rule was
    /// never charged. The per-request surface `QuarantineReport` only shows
    /// *open* rules; this exposes the accumulating state below threshold,
    /// which is what an operator watches to see a rule trending toward a
    /// trip.
    pub fn entry(&self, rule_id: &str) -> Option<BreakerEntry> {
        match self.index.get(rule_id) {
            Some(&slot) => self.slot_entry(slot),
            None => self.state.lock().unwrap().get(rule_id).copied(),
        }
    }

    /// Lifetime count of breaker openings.
    pub fn opened_total(&self) -> u64 {
        self.opened_total.load(Ordering::Acquire)
    }

    /// Lifetime count of open breakers reset.
    pub fn reset_total(&self) -> u64 {
        self.reset_total.load(Ordering::Acquire)
    }

    /// True iff `rule_id`'s breaker is open.
    pub fn is_open(&self, rule_id: &str) -> bool {
        match self.index.get(rule_id) {
            Some(&slot) => self.slots[slot].open.load(Ordering::Acquire),
            None => self
                .state
                .lock()
                .unwrap()
                .get(rule_id)
                .is_some_and(|e| e.open),
        }
    }

    /// Ids of all open-breaker rules, sorted.
    pub fn open_rules(&self) -> Vec<String> {
        let mut v: Vec<String> = {
            let state = self.state.lock().unwrap();
            state
                .iter()
                .filter(|(_, e)| e.open)
                .map(|(id, _)| id.clone())
                .collect()
        };
        for (slot, id) in self.rule_ids.iter().enumerate() {
            if self.slots[slot].open.load(Ordering::Acquire) {
                v.push(id.clone());
            }
        }
        v.sort();
        v
    }

    /// Close `rule_id`'s breaker and forget its trip history, readmitting
    /// the rule. Returns `true` iff there was state to clear.
    pub fn reset(&self, rule_id: &str) -> bool {
        let mut state = self.state.lock().unwrap();
        let Some(&slot) = self.index.get(rule_id) else {
            let removed = state.remove(rule_id);
            if removed.as_ref().is_some_and(|e| e.open) {
                // Inside the lock: see the `generation` field docs.
                self.generation.fetch_add(1, Ordering::Release);
                self.reset_total.fetch_add(1, Ordering::Release);
            }
            return removed.is_some();
        };
        let s = &self.slots[slot];
        let existed = s.first.load(Ordering::Acquire) != UNSET;
        for lane in &self.shards {
            lane.trips[slot].store(0, Ordering::Relaxed);
        }
        s.first.store(UNSET, Ordering::Release);
        s.last.store(UNSET, Ordering::Relaxed);
        if s.open.swap(false, Ordering::AcqRel) {
            // Inside the lock: see the `generation` field docs.
            self.generation.fetch_add(1, Ordering::Release);
            self.reset_total.fetch_add(1, Ordering::Release);
        }
        existed
    }

    /// Every rule with breaker state, sorted by rule id.
    pub fn snapshot(&self) -> Vec<(String, BreakerEntry)> {
        let mut v: Vec<(String, BreakerEntry)> = {
            let state = self.state.lock().unwrap();
            state.iter().map(|(id, e)| (id.clone(), *e)).collect()
        };
        for (slot, id) in self.rule_ids.iter().enumerate() {
            if let Some(e) = self.slot_entry(slot) {
                v.push((id.clone(), e));
            }
        }
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// The open rules as a [`QuarantineReport`] — the same observability
    /// shape the per-run quarantine uses, with request ids in the step
    /// slots.
    pub fn report(&self) -> QuarantineReport {
        QuarantineReport {
            entries: self
                .snapshot()
                .into_iter()
                .filter(|(_, e)| e.open)
                .map(|(rule_id, e)| QuarantineEntry {
                    rule_id,
                    trips: e.trips,
                    first_failure: e.first_request.map(|r| r as usize),
                    last_failure: e.last_request.map(|r| r as usize),
                })
                .collect(),
        }
    }
}

/// The original single-lock breaker: every rule behind one
/// `Mutex<HashMap>`. Kept as the executable specification the sharded
/// [`Breaker`] is differential-tested against (`tests/breaker_parity.rs`
/// drives identical charge/reset streams through both and asserts identical
/// trip/reset sequences and reports). Not used by the service.
#[derive(Debug)]
pub struct GlobalBreaker {
    threshold: usize,
    state: Mutex<HashMap<String, BreakerEntry>>,
    generation: AtomicU64,
    opened_total: AtomicU64,
    reset_total: AtomicU64,
}

impl GlobalBreaker {
    /// A breaker that opens a rule after `threshold` charged requests
    /// (`0` is treated as `1`; `usize::MAX` never opens).
    pub fn new(threshold: usize) -> Self {
        GlobalBreaker {
            threshold: threshold.max(1),
            state: Mutex::new(HashMap::new()),
            generation: AtomicU64::new(0),
            opened_total: AtomicU64::new(0),
            reset_total: AtomicU64::new(0),
        }
    }

    /// The current rule-set generation.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Charge `rule_id` for a failure in request `request_id`. Returns
    /// `true` iff the breaker is open after the charge.
    pub fn charge(&self, rule_id: &str, request_id: u64) -> bool {
        let mut state = self.state.lock().unwrap();
        let e = state.entry(rule_id.to_string()).or_default();
        e.trips += 1;
        if e.first_request.is_none() {
            e.first_request = Some(request_id);
        }
        e.last_request = Some(request_id);
        if self.threshold != usize::MAX && e.trips >= self.threshold && !e.open {
            e.open = true;
            self.generation.fetch_add(1, Ordering::Release);
            self.opened_total.fetch_add(1, Ordering::Release);
        }
        e.open
    }

    /// Read-only failure record for `rule_id`, or `None` if never charged.
    pub fn entry(&self, rule_id: &str) -> Option<BreakerEntry> {
        self.state.lock().unwrap().get(rule_id).copied()
    }

    /// Lifetime count of breaker openings.
    pub fn opened_total(&self) -> u64 {
        self.opened_total.load(Ordering::Acquire)
    }

    /// Lifetime count of open breakers reset.
    pub fn reset_total(&self) -> u64 {
        self.reset_total.load(Ordering::Acquire)
    }

    /// True iff `rule_id`'s breaker is open.
    pub fn is_open(&self, rule_id: &str) -> bool {
        self.state
            .lock()
            .unwrap()
            .get(rule_id)
            .is_some_and(|e| e.open)
    }

    /// Ids of all open-breaker rules, sorted.
    pub fn open_rules(&self) -> Vec<String> {
        let state = self.state.lock().unwrap();
        let mut v: Vec<String> = state
            .iter()
            .filter(|(_, e)| e.open)
            .map(|(id, _)| id.clone())
            .collect();
        v.sort();
        v
    }

    /// Close `rule_id`'s breaker and forget its trip history. Returns
    /// `true` iff there was state to clear.
    pub fn reset(&self, rule_id: &str) -> bool {
        let mut state = self.state.lock().unwrap();
        let removed = state.remove(rule_id);
        if removed.as_ref().is_some_and(|e| e.open) {
            self.generation.fetch_add(1, Ordering::Release);
            self.reset_total.fetch_add(1, Ordering::Release);
        }
        removed.is_some()
    }

    /// Every rule with breaker state, sorted by rule id.
    pub fn snapshot(&self) -> Vec<(String, BreakerEntry)> {
        let state = self.state.lock().unwrap();
        let mut v: Vec<(String, BreakerEntry)> =
            state.iter().map(|(id, e)| (id.clone(), *e)).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// The open rules as a [`QuarantineReport`].
    pub fn report(&self) -> QuarantineReport {
        QuarantineReport {
            entries: self
                .snapshot()
                .into_iter()
                .filter(|(_, e)| e.open)
                .map(|(rule_id, e)| QuarantineEntry {
                    rule_id,
                    trips: e.trips,
                    first_failure: e.first_request.map(|r| r as usize),
                    last_failure: e.last_request.map(|r| r as usize),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_open_at_threshold_and_reset_closes() {
        let b = Breaker::new(3);
        assert!(!b.charge("9", 1));
        assert!(!b.charge("9", 2));
        assert!(!b.is_open("9"));
        assert!(b.charge("9", 7));
        assert!(b.is_open("9"));
        assert_eq!(b.open_rules(), vec!["9".to_string()]);
        let report = b.report();
        assert_eq!(report.entries.len(), 1);
        assert_eq!(report.entries[0].trips, 3);
        assert_eq!(report.entries[0].first_failure, Some(1));
        assert_eq!(report.entries[0].last_failure, Some(7));
        assert!(b.reset("9"));
        assert!(!b.is_open("9"));
        assert!(b.open_rules().is_empty());
        assert!(!b.reset("9"));
    }

    #[test]
    fn sharded_trips_open_at_threshold_across_shards() {
        // Charges for one rule spread across three shards still trip at the
        // cross-shard sum, with first/last request ids in stream order.
        let b = Breaker::sharded(3, 3, ["9", "11"]);
        assert!(!b.charge_from(0, "9", 1));
        assert!(!b.charge_from(1, "9", 2));
        assert!(!b.is_open("9"));
        assert!(b.charge_from(2, "9", 7));
        assert!(b.is_open("9"));
        assert!(!b.is_open("11"));
        assert_eq!(b.open_rules(), vec!["9".to_string()]);
        let report = b.report();
        assert_eq!(report.entries.len(), 1);
        assert_eq!(report.entries[0].trips, 3);
        assert_eq!(report.entries[0].first_failure, Some(1));
        assert_eq!(report.entries[0].last_failure, Some(7));
        assert!(b.reset("9"));
        assert!(!b.is_open("9"));
        assert!(b.open_rules().is_empty());
        assert!(!b.reset("9"));
    }

    #[test]
    fn generation_moves_only_on_rule_set_changes() {
        let b = Breaker::sharded(2, 4, ["app", "9"]);
        assert_eq!(b.generation(), 0);
        b.charge_from(1, "app", 1);
        // Charged but not open: the served rule set is unchanged.
        assert_eq!(b.generation(), 0);
        b.charge_from(3, "app", 2);
        assert!(b.is_open("app"));
        assert_eq!(b.generation(), 1);
        // Further charges on an already-open rule change nothing.
        b.charge_from(0, "app", 3);
        assert_eq!(b.generation(), 1);
        // Resetting a never-charged rule changes nothing ("e121" is not
        // even registered: the fallback path agrees).
        b.reset("e121");
        assert_eq!(b.generation(), 1);
        // Resetting charged-but-closed state changes nothing either.
        b.charge_from(2, "9", 4);
        b.reset("9");
        assert_eq!(b.generation(), 1);
        // Resetting the open rule readmits it: generation moves.
        b.reset("app");
        assert_eq!(b.generation(), 2);
    }

    #[test]
    fn entry_exposes_accumulating_state_across_trip_and_reset() {
        let b = Breaker::sharded(3, 2, ["9", "app"]);
        assert_eq!(b.entry("9"), None);
        assert_eq!((b.opened_total(), b.reset_total()), (0, 0));

        // Below threshold: visible through `entry`, invisible to the
        // open-rules surfaces.
        b.charge_from(0, "9", 10);
        b.charge_from(1, "9", 11);
        let e = b.entry("9").expect("charged rule has an entry");
        assert_eq!(e.trips, 2);
        assert!(!e.open);
        assert_eq!(e.first_request, Some(10));
        assert_eq!(e.last_request, Some(11));
        assert!(b.report().entries.is_empty());
        assert_eq!((b.opened_total(), b.reset_total()), (0, 0));

        // Trip: entry flips open, opened_total moves once.
        b.charge_from(0, "9", 12);
        let e = b.entry("9").unwrap();
        assert!(e.open);
        assert_eq!(e.trips, 3);
        assert_eq!((b.opened_total(), b.reset_total()), (1, 0));
        // Extra charges on an open breaker accumulate without re-opening.
        b.charge_from(1, "9", 13);
        assert_eq!(b.entry("9").unwrap().trips, 4);
        assert_eq!(b.opened_total(), 1);

        // Reset: entry clears, reset_total moves once.
        assert!(b.reset("9"));
        assert_eq!(b.entry("9"), None);
        assert_eq!((b.opened_total(), b.reset_total()), (1, 1));
        // Resetting charged-but-never-open state is not a readmission.
        b.charge("app", 20);
        b.reset("app");
        assert_eq!((b.opened_total(), b.reset_total()), (1, 1));
    }

    #[test]
    fn never_threshold_never_opens() {
        let b = Breaker::sharded(usize::MAX, 2, ["2"]);
        for i in 0..1000 {
            assert!(!b.charge_from(i as usize % 2, "2", i));
        }
        assert!(!b.is_open("2"));
    }

    #[test]
    fn unregistered_rules_fall_back_to_locked_map() {
        let b = Breaker::sharded(2, 4, ["app"]);
        // "mystery" was never registered: charges work, trip semantics and
        // the quarantine report match the registered path.
        assert!(!b.charge_from(3, "mystery", 5));
        assert!(b.charge_from(1, "mystery", 6));
        assert!(b.is_open("mystery"));
        assert_eq!(b.generation(), 1);
        assert_eq!(b.open_rules(), vec!["mystery".to_string()]);
        let e = b.entry("mystery").unwrap();
        assert_eq!(
            (e.trips, e.first_request, e.last_request),
            (2, Some(5), Some(6))
        );
        assert!(b.reset("mystery"));
        assert_eq!(b.generation(), 2);
        assert!(b.open_rules().is_empty());
    }

    #[test]
    fn charge_many_charges_each_rule_once() {
        let b = Breaker::sharded(2, 2, ["app", "9", "11"]);
        b.charge_many(0, ["app", "9"], 1);
        b.charge_many(1, ["app", "11"], 2);
        assert!(b.is_open("app"));
        assert!(!b.is_open("9"));
        assert!(!b.is_open("11"));
        assert_eq!(b.entry("9").unwrap().trips, 1);
        assert_eq!(b.entry("app").unwrap().trips, 2);
    }
}
