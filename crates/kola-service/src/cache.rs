//! The fingerprint-keyed normalized-plan cache: serve repeated traffic
//! without touching a worker engine.
//!
//! Normalization is a deterministic function of (input term, active rule
//! set, resource budget) — the paper's rule algebra has no other inputs —
//! which makes its output cacheable by construction. This module memoizes
//! that function at the service door:
//!
//! - **Key.** AST payloads key on [`kola::query_fp`], the interner's
//!   64-bit structural fingerprint computed arena-free on the submitting
//!   thread; text payloads key on a hash of the raw source string (a hit
//!   skips the parse too). Both are folded with the request's budget
//!   parameters — the same query under a different step cap is a
//!   different cache line. A fingerprint match is confirmed structurally
//!   ([`kola_rewrite::budget::queries_equal`] / byte equality) before a
//!   hit is served, closing the 2⁻⁶⁴ collision hole.
//! - **Invalidation.** Every entry is tagged with the breaker
//!   [`generation`](crate::Breaker::generation) it was computed under —
//!   the same counter that versions [`RuleSnapshot`](crate::RuleSnapshot)
//!   epochs. A trip or reset invalidates every entry with one counter
//!   bump: lookups compare epochs and lazily reclaim stale slots; no scan,
//!   no flush, and the publication-ordering argument is the snapshot
//!   cell's (`snapshot.rs`), inherited wholesale.
//! - **Eviction.** Bounded per-shard capacity under CLOCK/second-chance:
//!   a lookup sets the entry's reference bit; the insert hand clears bits
//!   until it finds an unreferenced (or stale — evicted eagerly) victim.
//! - **Single flight.** A miss registers an in-flight marker before it is
//!   enqueued; concurrent identical misses attach as waiters instead of
//!   consuming queue slots and engine passes. The leader's completion
//!   answers every waiter from the one computed response — *when* that
//!   response is serveable (cacheable, derived at the current generation).
//!   A leader that failed, degraded, panicked, or raced a generation bump
//!   instead hands its waiters back to the worker, which requeues each as
//!   a fresh solo job: a waiter is never answered with a reply its own
//!   engine pass would not have produced, and never parks past its
//!   leader's failure.
//! - **Tenancy.** Keys are salted with the request's resolved tenant
//!   index, and entries and flights carry the tenant and compare it on
//!   match — a cross-tenant hit or coalesce is structurally impossible,
//!   not just 2⁻⁶⁴ unlikely. Because invalidation compares each entry's
//!   epoch against *its own tenant's* breaker generation, one tenant's
//!   trip reclaims only that tenant's plans.
//!
//! Only *pure* requests participate (no injected faults or forced rung
//! failures), and only fast-rung successes with no retries, no caught
//! panics, no quarantine, and no contained rule failures are inserted —
//! exactly the responses that are a pure function of (term, rule set,
//! budget). Everything else takes the ordinary worker path, which is what
//! keeps cache-on byte-identical to cache-off (`tests/cache.rs` proves it
//! over 500 seeds with trips and resets mid-stream).

use crate::metrics::ServiceMetrics;
use crate::request::{Outcome, Payload, Request, Response};
use crate::Rung;
use kola::query_fp;
use kola::term::Query;
use kola_rewrite::budget::queries_equal;
use kola_rewrite::{QuarantineReport, RewriteReport};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Domain separators so a text source and an AST can never alias one
/// cache line even if the string hash happened to equal a fingerprint.
const TEXT_SALT: u64 = 0x7e57_0000_0000_0001;
const AST_SALT: u64 = 0xa57e_0000_0000_0002;

/// The payload half of a cache key. Owned (`Arc`) so the key survives in
/// the flight table and in resident entries without re-cloning the term.
#[derive(Debug, Clone)]
enum KeyInput {
    /// Raw source text, compared byte-for-byte on a fingerprint match.
    Text(Arc<str>),
    /// Parsed query, compared with `queries_equal` on a fingerprint match.
    Ast(Arc<Query>),
}

impl KeyInput {
    fn matches(&self, other: &KeyInput) -> bool {
        match (self, other) {
            (KeyInput::Text(a), KeyInput::Text(b)) => a == b,
            (KeyInput::Ast(a), KeyInput::Ast(b)) => Arc::ptr_eq(a, b) || queries_equal(a, b),
            _ => false,
        }
    }
}

/// The budget half of a cache key: every option that shapes the plan. The
/// wall-clock timeout and hold are deliberately absent — a successful
/// rung never stopped on a deadline (the ladder classifies that as
/// failure), so cached derivations are deadline-independent, the same
/// argument trace replay relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct BudgetKey {
    max_steps: usize,
    max_depth: usize,
    max_term_size: usize,
    quarantine_after: usize,
}

/// A fully-derived cache key, computed once on the submitting thread and
/// carried by the job so the leader's completion can insert without
/// recomputing anything.
#[derive(Debug, Clone)]
pub(crate) struct CacheKey {
    hash: u64,
    /// Resolved tenant index, folded into `hash` and compared on every
    /// match: one tenant's lines and flights are invisible to another's.
    tenant: usize,
    input: KeyInput,
    budget: BudgetKey,
}

/// The memoized answer: everything a [`Response`] needs except the
/// per-request id and latency. Shared by `Arc` — serving a hit clones
/// handles, not plans.
#[derive(Debug)]
pub(crate) struct CachedPlan {
    outcome: Outcome,
    plan: Arc<Query>,
    report: Option<RewriteReport>,
    quarantine: QuarantineReport,
}

impl CachedPlan {
    /// Materialize the response this plan answers request `id` with,
    /// labeled for `tenant`. Identical to what the worker path produced
    /// when the entry was inserted: insertion requires no retries, no
    /// panics, no failures, and no error text, so those fields are
    /// constants here.
    pub(crate) fn response(&self, id: u64, tenant: Arc<str>) -> Response {
        Response {
            id,
            tenant,
            outcome: self.outcome.clone(),
            plan: Some(Arc::clone(&self.plan)),
            report: self.report.clone(),
            quarantine: self.quarantine.clone(),
            panics: Vec::new(),
            retries: 0,
            error: None,
            latency: Duration::ZERO,
        }
    }

    /// Positional label in the `cache_served` counter family.
    pub(crate) fn served_index(&self) -> usize {
        served_index(&self.outcome)
    }
}

/// `cache_served` family position for an outcome (labels registered in
/// [`ServiceMetrics::new`] in this order).
fn served_index(outcome: &Outcome) -> usize {
    match outcome {
        Outcome::Optimized { rung: Rung::Fast } => 0,
        Outcome::Optimized {
            rung: Rung::Reference,
        } => 1,
        Outcome::Passthrough => 2,
        Outcome::Overloaded | Outcome::Invalid => 3,
    }
}

/// A coalesced identical miss, parked on the leader's flight. Carries the
/// original request so a failed leader's completion can hand the waiter
/// back to the worker for requeue as a fresh solo job ([`PlanCache::complete`]).
pub(crate) struct Waiter {
    /// Service-assigned id of the parked request.
    pub(crate) id: u64,
    /// Submission instant (the waiter's latency clock, whether it is
    /// answered from the leader's pass or requeued).
    pub(crate) submitted: Instant,
    /// The parked request's own deadline, carried into the requeued job.
    pub(crate) deadline: Option<Instant>,
    /// Resolved tenant index (same as the leader's — cross-tenant
    /// coalescing is structurally impossible).
    pub(crate) tenant: usize,
    /// The parked request, cloned at park time for the requeue path.
    pub(crate) request: Request,
    /// The parked submitter's reply channel.
    pub(crate) tx: mpsc::Sender<Response>,
}

/// One in-flight leader computation.
struct Flight {
    input: KeyInput,
    budget: BudgetKey,
    tenant: usize,
    /// Breaker generation the leader registered under; waiters only
    /// attach at the same generation (a coalesced reply must be the reply
    /// the waiter's own engine pass would have produced).
    generation: u64,
    waiters: Vec<Waiter>,
}

/// A resident cache line.
struct Entry {
    input: KeyInput,
    budget: BudgetKey,
    tenant: usize,
    /// Breaker generation the plan was derived under; a mismatch with the
    /// reader's generation is staleness, reclaimed on sight.
    epoch: u64,
    /// CLOCK reference bit: set on hit, cleared by the sweeping hand.
    referenced: bool,
    value: Arc<CachedPlan>,
}

struct ShardInner {
    /// key-hash → slot index. One entry per hash: a colliding insert
    /// replaces (2⁻⁶⁴ events; correctness is preserved by the structural
    /// confirm on read).
    index: HashMap<u64, usize>,
    slots: Vec<Option<Entry>>,
    free: Vec<usize>,
    hand: usize,
    flights: HashMap<u64, Flight>,
}

/// What the pre-admission probe decided (see [`PlanCache::probe`]).
pub(crate) enum Probe {
    /// Fresh entry: serve on the submitting thread, touch no queue slot.
    Hit(Arc<CachedPlan>),
    /// Identical miss already in flight: the sender was parked on it.
    Coalesced,
    /// Proceed to admission.
    Miss,
}

/// What the post-admission claim decided (see [`PlanCache::claim`]).
pub(crate) enum Claim {
    /// An identical miss completed between probe and claim: serve the
    /// fresh entry (the caller releases its queue reservation).
    Hit(Arc<CachedPlan>),
    /// A flight appeared between probe and claim: parked as a waiter (the
    /// caller releases its queue reservation).
    Coalesced,
    /// This request is the flight leader; the key rides with the job and
    /// must be completed ([`PlanCache::complete`]) exactly once.
    Lead(CacheKey),
    /// Cacheable but cannot lead (a different key's flight owns the hash
    /// slot, or the generation moved): compute solo, insert nothing.
    Solo,
}

/// The sharded, lock-light plan cache. Shard count is fixed at
/// construction; each shard is an independent `Mutex<ShardInner>` whose
/// critical sections are a hash-map probe and a bounded CLOCK sweep —
/// never an engine run, never a cross-shard walk.
#[derive(Debug)]
pub(crate) struct PlanCache {
    shards: Vec<Mutex<ShardInner>>,
    per_shard: usize,
    /// Entries reclaimed because their epoch predates the current
    /// generation (lazy invalidation odometer, surfaced as `cache_stale`).
    stale: AtomicU64,
    /// Entries displaced by the CLOCK hand (surfaced as `cache_evicted`).
    evicted: AtomicU64,
}

impl std::fmt::Debug for ShardInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardInner")
            .field("resident", &self.index.len())
            .field("in_flight", &self.flights.len())
            .finish()
    }
}

impl PlanCache {
    /// A cache holding at most `capacity` plans across `shards` shards
    /// (per-shard capacity is the ceiling division, so small caps still
    /// hold something in every shard).
    pub(crate) fn new(capacity: usize, shards: usize) -> PlanCache {
        let shards = shards.max(1).min(capacity.max(1));
        let per_shard = capacity.div_ceil(shards).max(1);
        PlanCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(ShardInner {
                        index: HashMap::new(),
                        slots: Vec::new(),
                        free: Vec::new(),
                        hand: 0,
                        flights: HashMap::new(),
                    })
                })
                .collect(),
            per_shard,
            stale: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    /// Derive the cache key for `request` under resolved tenant index
    /// `tenant`, or `None` when the request must not touch the cache:
    /// injected faults and forced rung failures make the outcome a
    /// function of more than (term, rule set, budget). Timeouts, backoff,
    /// and holds stay cacheable — they shape *when* a plan arrives, never
    /// *which* plan (see [`BudgetKey`]).
    pub(crate) fn key_of(request: &Request, tenant: usize) -> Option<CacheKey> {
        let o = &request.options;
        if !o.faults.is_empty() || !o.force_fail.is_empty() || !o.transient_fail.is_empty() {
            return None;
        }
        let budget = BudgetKey {
            max_steps: o.max_steps,
            max_depth: o.max_depth,
            max_term_size: o.max_term_size,
            quarantine_after: o.quarantine_after,
        };
        let (salted, input) = match &request.payload {
            Payload::Text(src) => {
                let mut h = DefaultHasher::new();
                src.hash(&mut h);
                (
                    h.finish() ^ TEXT_SALT,
                    KeyInput::Text(Arc::from(src.as_str())),
                )
            }
            Payload::Ast(q) => (query_fp(q) ^ AST_SALT, KeyInput::Ast(Arc::clone(q))),
        };
        let mut h = DefaultHasher::new();
        salted.hash(&mut h);
        budget.hash(&mut h);
        tenant.hash(&mut h);
        Some(CacheKey {
            hash: h.finish(),
            tenant,
            input,
            budget,
        })
    }

    fn shard(&self, hash: u64) -> &Mutex<ShardInner> {
        &self.shards[(hash as usize) % self.shards.len()]
    }

    /// Pre-admission consult at the key's tenant's breaker generation
    /// `gen`. A [`Probe::Hit`] never touches the depth counter;
    /// [`Probe::Coalesced`] parks the request on the in-flight leader
    /// (cloning it, so a failed leader can hand it back for requeue).
    /// Miss decisions are re-made under the lock by [`PlanCache::claim`]
    /// after the caller has reserved a queue slot — the two-step shape
    /// keeps the depth CAS out of every shard critical section.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn probe(
        &self,
        key: &CacheKey,
        gen: u64,
        id: u64,
        request: &Request,
        submitted: Instant,
        deadline: Option<Instant>,
        tx: &mpsc::Sender<Response>,
        metrics: &ServiceMetrics,
    ) -> Probe {
        let mut inner = self.shard(key.hash).lock().unwrap();
        if let Some(value) = self.lookup_locked(&mut inner, key, gen, metrics) {
            return Probe::Hit(value);
        }
        if let Some(flight) = inner.flights.get_mut(&key.hash) {
            if flight.generation == gen
                && flight.tenant == key.tenant
                && flight.budget == key.budget
                && flight.input.matches(&key.input)
            {
                flight.waiters.push(Waiter {
                    id,
                    submitted,
                    deadline,
                    tenant: key.tenant,
                    request: request.clone(),
                    tx: tx.clone(),
                });
                return Probe::Coalesced;
            }
        }
        Probe::Miss
    }

    /// Post-admission re-check and flight registration (the caller holds
    /// a queue-slot reservation). Re-made from scratch because the world
    /// may have moved between [`PlanCache::probe`] and here: an identical
    /// leader may have completed (→ [`Claim::Hit`]) or registered
    /// (→ [`Claim::Coalesced`]).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn claim(
        &self,
        key: CacheKey,
        gen: u64,
        id: u64,
        request: &Request,
        submitted: Instant,
        deadline: Option<Instant>,
        tx: &mpsc::Sender<Response>,
        metrics: &ServiceMetrics,
    ) -> Claim {
        let mut inner = self.shard(key.hash).lock().unwrap();
        if let Some(value) = self.lookup_locked(&mut inner, &key, gen, metrics) {
            return Claim::Hit(value);
        }
        if let Some(flight) = inner.flights.get_mut(&key.hash) {
            if flight.generation == gen
                && flight.tenant == key.tenant
                && flight.budget == key.budget
                && flight.input.matches(&key.input)
            {
                flight.waiters.push(Waiter {
                    id,
                    submitted,
                    deadline,
                    tenant: key.tenant,
                    request: request.clone(),
                    tx: tx.clone(),
                });
                return Claim::Coalesced;
            }
            // A different key's flight owns this hash (2⁻⁶⁴), or the same
            // key is in flight under an older generation — don't stack a
            // second leader; compute solo and leave the books simple.
            metrics.cache_misses.inc();
            return Claim::Solo;
        }
        metrics.cache_misses.inc();
        inner.flights.insert(
            key.hash,
            Flight {
                input: key.input.clone(),
                budget: key.budget,
                tenant: key.tenant,
                generation: gen,
                waiters: Vec::new(),
            },
        );
        Claim::Lead(key)
    }

    /// Leader completion: retire the flight and, when the response is
    /// serveable — cacheable (fast rung, pure) *and* derived at
    /// `epoch == gen` — insert it and answer every parked waiter from it,
    /// doing the waiters' hit accounting here (a coalesced park is not a
    /// hit until its leader actually delivers). Otherwise the waiters are
    /// returned and the caller **must requeue each as a fresh job**: the
    /// leader failed, degraded, panicked, or raced a generation bump, so
    /// its reply is not the reply the waiters' own engine passes would
    /// produce. Called by the worker after the response is built, panic
    /// path included — which is what guarantees a waiter never parks past
    /// its leader's failure.
    #[must_use = "unserved waiters must be requeued as fresh jobs"]
    pub(crate) fn complete(
        &self,
        key: &CacheKey,
        response: &Response,
        epoch: u64,
        gen: u64,
        metrics: &ServiceMetrics,
    ) -> Vec<Waiter> {
        let serveable = cacheable_response(response) && epoch == gen;
        let waiters = {
            let mut inner = self.shard(key.hash).lock().unwrap();
            let flight = inner.flights.remove(&key.hash);
            if serveable {
                if let Some(plan) = &response.plan {
                    let value = Arc::new(CachedPlan {
                        outcome: response.outcome.clone(),
                        plan: Arc::clone(plan),
                        report: response.report.clone(),
                        quarantine: response.quarantine.clone(),
                    });
                    self.insert_locked(&mut inner, key, epoch, value, metrics);
                }
            }
            flight.map(|f| f.waiters).unwrap_or_default()
        };
        if !serveable {
            return waiters;
        }
        // Answer waiters outside the shard lock: sends are cheap but
        // there is no reason to serialize other submitters behind them.
        for w in waiters {
            metrics.cache_hits.inc();
            metrics.cache_coalesced.inc();
            metrics
                .cache_served
                .add_index(served_index(&response.outcome), 1);
            metrics.tenant_cache_hits.add_index(w.tenant, 1);
            let mut r = response.clone();
            r.id = w.id;
            r.latency = w.submitted.elapsed();
            let _ = w.tx.send(r);
        }
        Vec::new()
    }

    /// Locked lookup: confirm the fingerprint structurally, compare the
    /// entry's epoch against `gen`, reclaim stale lines on sight.
    fn lookup_locked(
        &self,
        inner: &mut ShardInner,
        key: &CacheKey,
        gen: u64,
        metrics: &ServiceMetrics,
    ) -> Option<Arc<CachedPlan>> {
        let slot = *inner.index.get(&key.hash)?;
        let entry = inner.slots[slot].as_mut()?;
        if entry.tenant != key.tenant
            || entry.budget != key.budget
            || !entry.input.matches(&key.input)
        {
            return None;
        }
        if entry.epoch != gen {
            // Stale: the rule set moved since this plan was derived.
            // Reclaim lazily — this is the whole invalidation protocol.
            inner.slots[slot] = None;
            inner.index.remove(&key.hash);
            inner.free.push(slot);
            self.stale.fetch_add(1, Ordering::Relaxed);
            metrics.cache_stale.inc();
            return None;
        }
        entry.referenced = true;
        Some(Arc::clone(&entry.value))
    }

    /// Locked insert with CLOCK/second-chance eviction. Replaces in place
    /// on a hash collision; otherwise fills a free slot, grows up to the
    /// per-shard cap, then sweeps the hand: stale entries are evicted on
    /// sight, referenced entries get their second chance, and the first
    /// unreferenced entry is the victim.
    fn insert_locked(
        &self,
        inner: &mut ShardInner,
        key: &CacheKey,
        epoch: u64,
        value: Arc<CachedPlan>,
        metrics: &ServiceMetrics,
    ) {
        metrics.cache_insertions.inc();
        let entry = Entry {
            input: key.input.clone(),
            budget: key.budget,
            tenant: key.tenant,
            epoch,
            referenced: true,
            value,
        };
        if let Some(&slot) = inner.index.get(&key.hash) {
            inner.slots[slot] = Some(entry);
            return;
        }
        let slot = if let Some(free) = inner.free.pop() {
            free
        } else if inner.slots.len() < self.per_shard {
            inner.slots.push(None);
            inner.slots.len() - 1
        } else {
            // Bounded sweep: after one full lap every reference bit is
            // clear, so the second lap's first occupied slot is a victim.
            let mut victim = None;
            for _ in 0..inner.slots.len() * 2 {
                let i = inner.hand;
                inner.hand = (inner.hand + 1) % inner.slots.len();
                match &mut inner.slots[i] {
                    // Eager-stale eviction compares epochs only within the
                    // inserting tenant: another tenant's generation is a
                    // different counter, and judging its entries by ours
                    // would let a trip-churning tenant preferentially
                    // evict its neighbors' fresh plans.
                    Some(e) if e.tenant == key.tenant && e.epoch != epoch => {
                        victim = Some(i);
                        break;
                    }
                    Some(e) if e.referenced => e.referenced = false,
                    Some(_) => {
                        victim = Some(i);
                        break;
                    }
                    None => {
                        victim = Some(i);
                        break;
                    }
                }
            }
            let i = victim.expect("a full CLOCK sweep always yields a victim");
            if inner.slots[i].is_some() {
                self.evicted.fetch_add(1, Ordering::Relaxed);
                metrics.cache_evicted.inc();
                // The victim's hash still points at this slot.
                inner.index.retain(|_, s| *s != i);
            }
            i
        };
        inner.slots[slot] = Some(entry);
        inner.index.insert(key.hash, slot);
    }

    /// Entries reclaimed as stale so far (test surface).
    #[cfg(test)]
    pub(crate) fn stale_total(&self) -> u64 {
        self.stale.load(Ordering::Relaxed)
    }

    /// Entries displaced by the CLOCK hand so far (test surface).
    #[cfg(test)]
    pub(crate) fn evicted_total(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }
}

/// Plans too large to be worth pinning in memory: one chaos-lane deep AST
/// can be ~3000 nodes; 2048 resident entries of that size would dominate
/// the fleet's footprint. The bound is on the *plan* (the dominant
/// allocation of an entry); inputs are shared `Arc`s either way.
const MAX_CACHED_PLAN_NODES: usize = 2_048;

/// Is `response` a pure function of (term, rule set, budget)? Fast-rung
/// success, no retries, no caught panics, no error notes, no quarantine,
/// and no contained per-rule failures — any of those would make a cached
/// replay observably different from a fresh engine pass (different panic
/// attributions, different breaker charges). Reference-rung successes are
/// excluded too: a request only reaches that rung through a failure,
/// which already disqualifies it.
fn cacheable_response(response: &Response) -> bool {
    matches!(response.outcome, Outcome::Optimized { rung: Rung::Fast })
        && response.error.is_none()
        && response.retries == 0
        && response.panics.is_empty()
        && response.quarantine.entries.is_empty()
        && response
            .report
            .as_ref()
            .is_some_and(|r| r.rule_stats.values().all(|s| s.failed == 0))
        && response
            .plan
            .as_ref()
            .is_some_and(|p| p.size() <= MAX_CACHED_PLAN_NODES)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestOptions;

    fn metrics() -> ServiceMetrics {
        ServiceMetrics::new(&["app".to_string()], 8)
    }

    fn plan_for(src: &str) -> Arc<CachedPlan> {
        Arc::new(CachedPlan {
            outcome: Outcome::Optimized { rung: Rung::Fast },
            plan: Arc::new(kola::parse::parse_query(src).unwrap()),
            report: None,
            quarantine: QuarantineReport::default(),
        })
    }

    fn key_for(src: &str) -> CacheKey {
        PlanCache::key_of(&Request::text(src), 0).expect("pure request")
    }

    #[test]
    fn text_and_ast_forms_never_alias() {
        let q = kola::parse::parse_query("id . age ! P").unwrap();
        let text = PlanCache::key_of(&Request::text("id . age ! P"), 0).unwrap();
        let ast = PlanCache::key_of(&Request::ast(q), 0).unwrap();
        assert_ne!(text.hash, ast.hash);
        // Same payload, different budget: different line.
        let tight = Request::text("id . age ! P").with_options(RequestOptions {
            max_steps: 7,
            ..RequestOptions::default()
        });
        assert_ne!(PlanCache::key_of(&tight, 0).unwrap().hash, text.hash);
        // Same payload, different tenant: different line.
        assert_ne!(
            PlanCache::key_of(&Request::text("id . age ! P"), 1)
                .unwrap()
                .hash,
            text.hash
        );
    }

    #[test]
    fn tenant_entries_never_serve_other_tenants() {
        let cache = PlanCache::new(8, 1);
        let m = metrics();
        let for_a = PlanCache::key_of(&Request::text("id . age ! P"), 0).unwrap();
        let for_b = PlanCache::key_of(&Request::text("id . age ! P"), 1).unwrap();
        let mut inner = cache.shards[0].lock().unwrap();
        cache.insert_locked(&mut inner, &for_a, 0, plan_for("age ! P"), &m);
        // Tenant b misses on the identical query even at the same
        // generation — and even if the hashes ever collided, the stored
        // tenant tag would refuse the match.
        assert!(cache.lookup_locked(&mut inner, &for_b, 0, &m).is_none());
        assert!(cache.lookup_locked(&mut inner, &for_a, 0, &m).is_some());
        // b's lines are invalidated by *b's* generation, not a's.
        cache.insert_locked(&mut inner, &for_b, 3, plan_for("age ! P"), &m);
        assert!(cache.lookup_locked(&mut inner, &for_b, 3, &m).is_some());
        assert!(cache.lookup_locked(&mut inner, &for_a, 0, &m).is_some());
    }

    #[test]
    fn faulted_requests_are_uncacheable() {
        use kola_rewrite::{FaultKind, FaultPlan, FaultSpec, StepSelector};
        let faulted = Request::text("id . age ! P").with_options(RequestOptions {
            faults: FaultPlan::new().with(FaultSpec {
                rule_id: "app".into(),
                at: StepSelector::Always,
                kind: FaultKind::Panic,
            }),
            ..RequestOptions::default()
        });
        assert!(PlanCache::key_of(&faulted, 0).is_none());
        let forced = Request::text("id . age ! P").with_options(RequestOptions {
            force_fail: vec![Rung::Fast],
            ..RequestOptions::default()
        });
        assert!(PlanCache::key_of(&forced, 0).is_none());
    }

    #[test]
    fn stale_epoch_entries_are_reclaimed_on_lookup() {
        let cache = PlanCache::new(8, 1);
        let m = metrics();
        let key = key_for("id . age ! P");
        {
            let mut inner = cache.shards[0].lock().unwrap();
            cache.insert_locked(&mut inner, &key, 0, plan_for("age ! P"), &m);
            assert!(cache.lookup_locked(&mut inner, &key, 0, &m).is_some());
            // Generation moved: the entry is stale and reclaimed on sight.
            assert!(cache.lookup_locked(&mut inner, &key, 1, &m).is_none());
            assert!(cache.lookup_locked(&mut inner, &key, 1, &m).is_none());
        }
        assert_eq!(cache.stale_total(), 1);
        assert_eq!(m.cache_stale.get(), 1);
    }

    #[test]
    fn clock_gives_referenced_entries_a_second_chance() {
        let cache = PlanCache::new(3, 1);
        let m = metrics();
        let keys: Vec<CacheKey> = ["age ! P", "city ! P", "addr ! P", "id ! P"]
            .iter()
            .map(|s| key_for(&format!("id . {s}")))
            .collect();
        let mut inner = cache.shards[0].lock().unwrap();
        for k in &keys[..3] {
            cache.insert_locked(&mut inner, k, 0, plan_for("P union Q"), &m);
        }
        // Sweep once so every reference bit is cleared, then re-touch only
        // the first entry.
        for k in &keys[..3] {
            assert!(cache.lookup_locked(&mut inner, k, 0, &m).is_some());
        }
        cache.insert_locked(&mut inner, &keys[3], 0, plan_for("P union Q"), &m);
        // Everyone was referenced: the hand cleared all three bits and
        // evicted the first unreferenced slot (the oldest, keys[0]).
        assert_eq!(cache.evicted_total(), 1);
        assert!(cache.lookup_locked(&mut inner, &keys[0], 0, &m).is_none());
        assert!(cache.lookup_locked(&mut inner, &keys[3], 0, &m).is_some());
        // Second-chance proper: touch keys[1], insert a fifth — the
        // untouched keys[2] is the victim, not the referenced keys[1].
        assert!(cache.lookup_locked(&mut inner, &keys[1], 0, &m).is_some());
        let k5 = key_for("id . id . age ! P");
        cache.insert_locked(&mut inner, &k5, 0, plan_for("P union Q"), &m);
        assert!(cache.lookup_locked(&mut inner, &keys[1], 0, &m).is_some());
        assert!(cache.lookup_locked(&mut inner, &keys[2], 0, &m).is_none());
    }

    #[test]
    fn oversized_plans_are_not_cacheable() {
        use kola::term::Func;
        let mut f = Func::Prim(Arc::from("age"));
        for _ in 0..MAX_CACHED_PLAN_NODES {
            f = Func::Compose(Box::new(Func::Id), Box::new(f));
        }
        let big = Query::App(f, Box::new(Query::Extent(Arc::from("P"))));
        let r = Response {
            id: 0,
            tenant: Arc::from(crate::tenant::DEFAULT_TENANT),
            outcome: Outcome::Optimized { rung: Rung::Fast },
            plan: Some(Arc::new(big)),
            report: Some(RewriteReport::default()),
            quarantine: QuarantineReport::default(),
            panics: Vec::new(),
            retries: 0,
            error: None,
            latency: Duration::ZERO,
        };
        assert!(!cacheable_response(&r));
    }

    #[test]
    fn failed_leader_hands_waiters_back_for_requeue() {
        let cache = PlanCache::new(8, 1);
        let m = metrics();
        let req = Request::text("id . age ! P");
        let key = PlanCache::key_of(&req, 0).unwrap();
        let now = Instant::now();
        let (lead_tx, _lead_rx) = mpsc::channel();
        let Claim::Lead(lead_key) = cache.claim(key.clone(), 0, 1, &req, now, None, &lead_tx, &m)
        else {
            panic!("first claim must lead");
        };
        // A second identical submission parks on the flight.
        let (tx, rx) = mpsc::channel();
        assert!(matches!(
            cache.probe(&key, 0, 2, &req, now, None, &tx, &m),
            Probe::Coalesced
        ));
        // The leader degrades to passthrough (not serveable): the waiter
        // comes back for requeue instead of being answered, no hit is
        // booked, and nothing was sent on its channel.
        let degraded = Response {
            id: 1,
            tenant: Arc::from(crate::tenant::DEFAULT_TENANT),
            outcome: Outcome::Passthrough,
            plan: Some(Arc::new(kola::parse::parse_query("age ! P").unwrap())),
            report: None,
            quarantine: QuarantineReport::default(),
            panics: Vec::new(),
            retries: 1,
            error: Some("fast: injected".into()),
            latency: Duration::ZERO,
        };
        let unserved = cache.complete(&lead_key, &degraded, 0, 0, &m);
        assert_eq!(unserved.len(), 1);
        assert_eq!(unserved[0].id, 2);
        assert_eq!(unserved[0].tenant, 0);
        assert_eq!(m.cache_hits.get(), 0);
        assert_eq!(m.cache_coalesced.get(), 0);
        assert!(rx.try_recv().is_err(), "waiter must not see the failure");
        // The flight is retired: the returned request can lead afresh.
        assert!(matches!(
            cache.claim(
                PlanCache::key_of(&unserved[0].request, 0).unwrap(),
                0,
                2,
                &unserved[0].request,
                now,
                None,
                &tx,
                &m
            ),
            Claim::Lead(_)
        ));
    }

    #[test]
    fn successful_leader_answers_waiters_with_hit_accounting() {
        let cache = PlanCache::new(8, 1);
        let m = metrics();
        let req = Request::text("id . age ! P");
        let key = PlanCache::key_of(&req, 0).unwrap();
        let now = Instant::now();
        let (lead_tx, _lead_rx) = mpsc::channel();
        let Claim::Lead(lead_key) = cache.claim(key.clone(), 0, 1, &req, now, None, &lead_tx, &m)
        else {
            panic!("first claim must lead");
        };
        let (tx, rx) = mpsc::channel();
        assert!(matches!(
            cache.probe(&key, 0, 2, &req, now, None, &tx, &m),
            Probe::Coalesced
        ));
        let ok = Response {
            id: 1,
            tenant: Arc::from(crate::tenant::DEFAULT_TENANT),
            outcome: Outcome::Optimized { rung: Rung::Fast },
            plan: Some(Arc::new(kola::parse::parse_query("age ! P").unwrap())),
            report: Some(RewriteReport::default()),
            quarantine: QuarantineReport::default(),
            panics: Vec::new(),
            retries: 0,
            error: None,
            latency: Duration::ZERO,
        };
        let unserved = cache.complete(&lead_key, &ok, 0, 0, &m);
        assert!(unserved.is_empty());
        let reply = rx.try_recv().expect("waiter answered at completion");
        assert_eq!(reply.id, 2);
        // Hit accounting happens at completion, once per waiter.
        assert_eq!(m.cache_hits.get(), 1);
        assert_eq!(m.cache_coalesced.get(), 1);
        assert_eq!(m.cache_insertions.get(), 1);
        let s = m.snapshot();
        assert_eq!(s.family("tenant_cache_hits"), &[("default".to_string(), 1)]);
    }
}
