//! Deterministic chaos soak for the optimization service.
//!
//! One seeded [`ChaosConfig`] fully determines the request stream: a mix
//! of well-formed OQL/KOLA text, adversarially deep AST payloads,
//! poison-rule fault plans (rules that panic mid-rewrite), injected rung
//! faults, random deadlines, and artificial holds that push the queue into
//! overload. Thread scheduling still varies run to run — which requests
//! get shed, which deadlines expire — but the service's *invariants* must
//! not: every request terminates with exactly one classified outcome, no
//! panic escapes a worker, and every optimized plan passes the semantic
//! gate. [`ChaosReport::violations`] checks exactly those
//! scheduling-independent properties.

use crate::metrics::conservation_violations;
use crate::request::{Outcome, Payload, Request, RequestOptions};
use crate::service::{Service, ServiceConfig};
use crate::Rung;
use kola::term::{Func, Pred, Query};
use kola::Value;
use kola_exec::rng::{splitmix64, Rng};
use kola_obs::{ReplayWorker, Snapshot};
use kola_rewrite::{Catalog, FaultKind, FaultPlan, FaultSpec, PropDb, StepSelector};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Parameters of one soak.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Requests to generate.
    pub requests: usize,
    /// Master seed; the request stream is a pure function of it.
    pub seed: u64,
    /// Worker threads.
    pub workers: usize,
    /// Work-queue capacity (small enough that holds cause real shedding).
    pub queue_capacity: usize,
    /// Run the semantic gate on every optimized plan.
    pub verify: bool,
    /// Record structured rewrite traces and, at the end of the soak,
    /// replay every trace still in the ring against the boxed reference
    /// engine (divergences are invariant violations).
    pub tracing: bool,
    /// Per-worker trace-ring capacity when `tracing` is on.
    pub trace_capacity: usize,
    /// Simulated per-request materialization stall, applied to **every**
    /// generated request (generated timeouts are extended by the same
    /// amount, so deadline semantics are stall-independent). Same rationale
    /// as [`CleanConfig::stall`]: on a single-core host, overlapping stalls
    /// are what makes worker concurrency measurable under chaos too; see
    /// `DESIGN.md` §5d and §5f.
    pub stall: Duration,
    /// Plan-cache capacity for the soaked service (`0` disables). On by
    /// default so the soak exercises cache invalidation *while* breakers
    /// trip and reset.
    pub cache_capacity: usize,
    /// Fraction of generated requests drawn from a small fixed pool with
    /// fixed budgets — the repeated-traffic lane that gives the cache
    /// something to hit while the poison lanes move the rule generation
    /// under it. `0.0` reproduces the pre-cache stream shape.
    pub repeated: f64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            requests: 10_000,
            seed: 0xC0FFEE,
            workers: 4,
            queue_capacity: 32,
            verify: true,
            tracing: false,
            trace_capacity: 1024,
            stall: Duration::from_millis(2),
            cache_capacity: 2048,
            repeated: 0.15,
        }
    }
}

/// What a soak observed.
#[derive(Debug, Clone, Default)]
pub struct ChaosReport {
    /// Requests generated (and therefore classified).
    pub requests: usize,
    /// `Optimized { rung: Fast }` replies.
    pub optimized_fast: usize,
    /// `Optimized { rung: Reference }` replies.
    pub optimized_reference: usize,
    /// `Passthrough` replies.
    pub passthrough: usize,
    /// Structured sheds at submission.
    pub overloaded: usize,
    /// `Invalid` replies (must stay zero: the generator only emits
    /// parseable payloads within the size limit).
    pub invalid: usize,
    /// Retries taken across all requests.
    pub retries: usize,
    /// Poison-rule panics caught and attributed by the ladder.
    pub caught_panics: usize,
    /// Panics that reached a worker boundary unclassified (must be zero).
    pub unexpected_panics: usize,
    /// Optimized plans the semantic gate rejected (must be zero).
    pub gate_failures: usize,
    /// Rules whose cross-request breaker opened at least once.
    pub breaker_opened: usize,
    /// High-water mark of any worker engine's intern arena, in live nodes
    /// (must stay under [`PEAK_ARENA_BOUND`]: workers reuse their engine
    /// across every request of the soak, so an unbounded arena would show
    /// up here as linear growth in the request count).
    pub peak_arena_nodes: usize,
    /// Per-request end-to-end latencies, microseconds, unsorted.
    pub latencies_us: Vec<u64>,
    /// Plan-cache hits (direct + coalesced) over the soak.
    pub cache_hits: u64,
    /// Plan-cache misses that took an engine pass.
    pub cache_misses: u64,
    /// Identical concurrent misses coalesced onto one flight leader.
    pub cache_coalesced: u64,
    /// Stale-generation entries reclaimed on lookup — nonzero whenever the
    /// repeated lane overlaps a breaker trip or reset, which is exactly
    /// what the soak is for.
    pub cache_stale: u64,
    /// Metric snapshot taken after the last reply (quiescent, so the
    /// conservation invariants must hold on it).
    pub metrics: Snapshot,
    /// Conservation-invariant violations found in `metrics` (must be
    /// empty; see [`crate::metrics`] for the two equations).
    pub conservation: Vec<String>,
    /// Structured traces recorded over the soak (0 unless
    /// [`ChaosConfig::tracing`]).
    pub traces_recorded: u64,
    /// Traces evicted from the ring before the soak ended.
    pub traces_dropped: u64,
    /// Ring traces replayed step-by-step on the boxed reference engine.
    pub traces_replayed: usize,
    /// Replays that diverged from the recorded derivation (must be zero).
    pub traces_divergent: usize,
    /// Wall-clock of the *serving* window only: submit through last reply.
    /// Post-hoc audits (trace replay, breaker sweeps) are excluded, so this
    /// is the number worker-scaling claims divide by.
    pub elapsed: Duration,
}

/// Upper bound on [`ChaosReport::peak_arena_nodes`]: the fast engine's
/// compaction cap (`EngineConfig::fast().arena_capacity`, 64Ki nodes) plus
/// a generous allowance for the growth of the single request that runs
/// after the cap check — compaction fires *between* requests' normalize
/// calls, so the peak is "cap + one request", never "requests × size".
pub const PEAK_ARENA_BOUND: usize = (1 << 16) + (1 << 18);

impl ChaosReport {
    /// The scheduling-independent invariants. Empty means the soak passed.
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        let classified =
            self.optimized_fast + self.optimized_reference + self.passthrough + self.overloaded;
        if classified + self.invalid != self.requests {
            v.push(format!(
                "classification leak: {} of {} requests accounted for",
                classified + self.invalid,
                self.requests
            ));
        }
        if self.invalid != 0 {
            v.push(format!(
                "{} generated requests classified Invalid",
                self.invalid
            ));
        }
        if self.unexpected_panics != 0 {
            v.push(format!(
                "{} panics escaped ladder classification",
                self.unexpected_panics
            ));
        }
        if self.gate_failures != 0 {
            v.push(format!(
                "{} optimized plans failed the semantic gate",
                self.gate_failures
            ));
        }
        if self.peak_arena_nodes > PEAK_ARENA_BOUND {
            v.push(format!(
                "worker arena peaked at {} nodes (bound {PEAK_ARENA_BOUND}): \
                 compaction is not keeping persistent engines bounded",
                self.peak_arena_nodes
            ));
        }
        v.extend(self.conservation.iter().cloned());
        // Client-side tallies vs the metric books, per outcome: worker
        // completions plus cache serves (direct hits and coalesced
        // waiters) must account for exactly the responses clients hold.
        // This is what pins "zero stale-generation plans escape": a hit
        // served past a generation bump would have been computed as a
        // worker completion under the old books, and the taxonomy here
        // would no longer balance against what clients observed.
        let served = |label: &str| -> u64 {
            self.metrics
                .family("cache_served")
                .iter()
                .find(|(l, _)| l == label)
                .map_or(0, |(_, n)| *n)
        };
        let cross = [
            (
                "optimized_fast",
                self.optimized_fast,
                self.metrics.counter("optimized_fast") + served("fast"),
            ),
            (
                "optimized_reference",
                self.optimized_reference,
                self.metrics.counter("optimized_reference") + served("reference"),
            ),
            (
                "passthrough",
                self.passthrough,
                self.metrics.counter("passthrough") + served("passthrough"),
            ),
            (
                "overloaded",
                self.overloaded,
                self.metrics.counter("overloaded"),
            ),
            (
                "invalid",
                self.invalid,
                self.metrics.counter("completed_invalid")
                    + self.metrics.counter("rejected_invalid")
                    + self.metrics.counter("panicked")
                    + served("invalid"),
            ),
        ];
        for (name, client, books) in cross {
            if client as u64 != books {
                v.push(format!(
                    "taxonomy cross-check failed for {name}: clients hold {client}, books say {books}"
                ));
            }
        }
        // Caught panics conserve exactly: flights only form for fault-free
        // requests, which never panic, so no coalesced reply can carry a
        // second copy of a leader's panic attribution.
        if self.caught_panics as u64 != self.metrics.counter("caught_panics") {
            v.push(format!(
                "caught-panic books unbalanced: clients hold {}, counter says {}",
                self.caught_panics,
                self.metrics.counter("caught_panics"),
            ));
        }
        if self.traces_divergent != 0 {
            v.push(format!(
                "{} of {} replayed traces diverged from the reference engine",
                self.traces_divergent, self.traces_replayed
            ));
        }
        v
    }

    /// Serving-window throughput in requests per second (0 before
    /// [`run_chaos`] fills [`ChaosReport::elapsed`]).
    pub fn throughput_rps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.requests as f64 / self.elapsed.as_secs_f64()
    }

    /// Traces dropped as a percentage of traces recorded (`0.0` when
    /// nothing was recorded) — the fleet-wide ring-loss figure the CI obs
    /// gate bounds.
    pub fn dropped_pct(&self) -> f64 {
        if self.traces_recorded == 0 {
            0.0
        } else {
            self.traces_dropped as f64 * 100.0 / self.traces_recorded as f64
        }
    }

    /// Render this report's observability slice — full metric snapshot,
    /// trace-replay tally, conservation verdict — as the `BENCH_obs.json`
    /// document both the chaos-soak binary and the service benchmark emit.
    pub fn obs_json(&self, harness: &str, cfg: &ChaosConfig) -> String {
        format!(
            "{{\n  \"meta\": {{\"harness\": {}, \"requests\": {}, \"seed\": {}, \"workers\": {}, \"tracing\": {}}},\n  \"metrics\": {},\n  \"traces\": {{\"recorded\": {}, \"dropped\": {}, \"dropped_pct\": {:.2}, \"replayed\": {}, \"divergent\": {}}},\n  \"conservation\": {{\"ok\": {}, \"violations\": [{}]}}\n}}\n",
            kola_obs::json::string(harness),
            cfg.requests,
            cfg.seed,
            cfg.workers,
            cfg.tracing,
            self.metrics.to_json(),
            self.traces_recorded,
            self.traces_dropped,
            self.dropped_pct(),
            self.traces_replayed,
            self.traces_divergent,
            self.conservation.is_empty(),
            self.conservation
                .iter()
                .map(|v| kola_obs::json::string(v))
                .collect::<Vec<_>>()
                .join(", "),
        )
    }

    /// Multi-line human summary.
    pub fn summary(&self) -> String {
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        format!(
            "requests            {}\n\
             optimized (fast)    {}\n\
             optimized (ref)     {}\n\
             passthrough         {}\n\
             overloaded          {}\n\
             invalid             {}\n\
             retries             {}\n\
             caught panics       {}\n\
             unexpected panics   {}\n\
             gate failures       {}\n\
             breakers opened     {}\n\
             peak arena nodes    {}\n\
             cache hit/miss      {} / {}\n\
             cache coal/stale    {} / {}\n\
             conservation        {}\n\
             traces rec/rep/div  {} / {} / {}\n\
             latency p50/p95/p99 {} / {} / {} us",
            self.requests,
            self.optimized_fast,
            self.optimized_reference,
            self.passthrough,
            self.overloaded,
            self.invalid,
            self.retries,
            self.caught_panics,
            self.unexpected_panics,
            self.gate_failures,
            self.breaker_opened,
            self.peak_arena_nodes,
            self.cache_hits,
            self.cache_misses,
            self.cache_coalesced,
            self.cache_stale,
            if self.conservation.is_empty() {
                "balanced"
            } else {
                "VIOLATED"
            },
            self.traces_recorded,
            self.traces_replayed,
            self.traces_divergent,
            percentile(&sorted, 50.0),
            percentile(&sorted, 95.0),
            percentile(&sorted, 99.0),
        )
    }
}

/// Nearest-rank percentile over an ascending-sorted slice (0 if empty).
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn id_tower_text(height: usize) -> String {
    let mut s = String::with_capacity(height * 5 + 10);
    for _ in 0..height {
        s.push_str("id . ");
    }
    s.push_str("age ! P");
    s
}

fn deep_compose_ast(height: usize) -> Query {
    let mut f = Func::Prim(Arc::from("age"));
    for _ in 0..height {
        f = Func::Compose(Box::new(Func::Id), Box::new(f));
    }
    Query::App(f, Box::new(Query::Extent(Arc::from("P"))))
}

fn deep_not_ast(height: usize) -> Query {
    let mut p = Pred::Eq;
    for _ in 0..height {
        p = Pred::Not(Box::new(p));
    }
    Query::Test(p, Box::new(Query::Extent(Arc::from("P"))))
}

fn deep_pair_ast(height: usize) -> Query {
    let mut q = Query::Lit(Value::Int(0));
    for _ in 0..height {
        q = Query::PairQ(Box::new(q), Box::new(Query::Extent(Arc::from("P"))));
    }
    q
}

const KOLA_TEMPLATES: &[&str] = &[
    "iterate(Kp(T), city) . iterate(Kp(T), addr) ! P",
    "iterate(Kp(T), city . addr) ! P",
    "id . age ! P",
    "age . id ! P",
    "sunion ! [P, Q]",
    "P union Q",
    "gt ? [3, 2]",
    "iterate(Kp(T), id . city) ! P",
];

const OQL_TEMPLATES: &[&str] = &[
    "select p.age from p in P",
    "select p from p in P",
    "select p.age from p in P where p.age > 25",
    "select p from p in P where p.age > 18 and not p.age > 65",
];

/// One generated request of the seeded chaos stream (public so the service
/// benchmark can replay the same workload it soaks). Every request carries
/// the configured materialization `stall` as its baseline hold, and every
/// generated timeout is extended by the same stall, so which requests
/// expire is a property of the stream — not of the stall. `repeated` is
/// the probability of drawing from the repeated-traffic lane.
pub fn generate_request(rng: &mut Rng, stall: Duration, repeated: f64) -> Request {
    if repeated > 0.0 && rng.gen_bool(repeated) {
        // Repeated lane: a small fixed pool under FIXED budgets, so
        // identical draws share one plan-cache line (the stream's trailing
        // budget randomization below would disperse the keys). Pure —
        // no faults, no forced failures — so the requests are cacheable,
        // and the poison lanes' breaker trips invalidate their entries
        // mid-soak, which is the interaction this lane exists to exercise.
        let pick = rng.gen_range(0..8usize);
        let options = RequestOptions {
            hold_for: (!stall.is_zero()).then_some(stall),
            timeout: Some(stall + Duration::from_millis(25)),
            max_steps: 400,
            ..RequestOptions::default()
        };
        return Request {
            payload: Payload::Text(id_tower_text(2 + pick)),
            options,
            tenant: None,
        };
    }
    let mut options = RequestOptions {
        backoff: Duration::from_micros(100 + rng.gen_range(0..200usize) as u64),
        hold_for: (!stall.is_zero()).then_some(stall),
        ..RequestOptions::default()
    };
    // Random deadlines on roughly a third of all requests — tight enough
    // that some die in the queue or mid-rewrite, loose enough that most
    // survive to an engine rung.
    if rng.gen_bool(0.35) {
        options.timeout =
            Some(stall + Duration::from_micros(1000 + rng.gen_range(0..8000usize) as u64));
    }
    let roll = rng.gen_range(0..100usize);
    let payload = if roll < 40 {
        // Well-formed KOLA text, occasionally a tower with real redexes.
        if rng.gen_bool(0.4) {
            Payload::Text(id_tower_text(1 + rng.gen_range(0..12usize)))
        } else {
            Payload::Text(KOLA_TEMPLATES[rng.gen_range(0..KOLA_TEMPLATES.len())].to_string())
        }
    } else if roll < 50 {
        Payload::Text(OQL_TEMPLATES[rng.gen_range(0..OQL_TEMPLATES.len())].to_string())
    } else if roll < 65 {
        // Adversarially deep ASTs: way past any recursion a naive engine
        // would survive. Small step budget + tight deadline.
        options.max_steps = 32;
        options.timeout =
            Some(stall + Duration::from_micros(200 + rng.gen_range(0..1500usize) as u64));
        let h = 500 + rng.gen_range(0..2500usize);
        Payload::Ast(Arc::new(match rng.gen_range(0..3usize) {
            0 => deep_compose_ast(h),
            1 => deep_not_ast(h),
            _ => deep_pair_ast(h),
        }))
    } else if roll < 75 {
        // Injected rung faults: mostly transient (retry absorbs them),
        // sometimes permanent (ladder degrades).
        if rng.gen_bool(0.7) {
            options.transient_fail = vec![Rung::Fast];
        } else {
            options.force_fail = vec![Rung::Fast];
            if rng.gen_bool(0.3) {
                options.force_fail.push(Rung::Reference);
            }
        }
        Payload::Text(id_tower_text(1 + rng.gen_range(0..8usize)))
    } else if roll < 90 {
        // Poison rules: a rule that panics (or fails) mid-rewrite on a
        // payload that actually exercises it ("app"/"e121" are the rules
        // that fire on id-towers under the full forward catalog).
        let rule = if rng.gen_bool(0.5) { "app" } else { "e121" };
        let at = match rng.gen_range(0..3usize) {
            0 => StepSelector::Always,
            1 => StepSelector::Steps(vec![0, 1]),
            _ => StepSelector::EveryNth(2),
        };
        let kind = if rng.gen_bool(0.7) {
            FaultKind::Panic
        } else {
            FaultKind::Fail
        };
        options.faults = FaultPlan::new().with(FaultSpec {
            rule_id: rule.to_string(),
            at,
            kind,
        });
        Payload::Text(id_tower_text(2 + rng.gen_range(0..8usize)))
    } else {
        // Slow requests: extra pre-ladder work on top of the baseline
        // stall that backs the queue up and forces structured shedding.
        options.hold_for =
            Some(stall + Duration::from_micros(200 + rng.gen_range(0..800usize) as u64));
        Payload::Text(KOLA_TEMPLATES[rng.gen_range(0..KOLA_TEMPLATES.len())].to_string())
    };
    // Every chaos request is bounded the way a real client's would be: a
    // fallback deadline and a modest step cap. Without these, a request
    // that arrives while the breaker has evicted a load-bearing structural
    // rule (e.g. "app") can grind through the full default fuel instead of
    // reaching a normal form in a handful of steps.
    if options.timeout.is_none() {
        options.timeout =
            Some(stall + Duration::from_millis(15 + rng.gen_range(0..25usize) as u64));
    }
    options.max_steps = options.max_steps.min(300 + rng.gen_range(0..200usize));
    Request {
        payload,
        options,
        tenant: None,
    }
}

/// Run one soak: generate `cfg.requests` seeded requests, drive them
/// through a fresh service, and tally the outcome taxonomy.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosReport {
    let service = Service::start(ServiceConfig {
        workers: cfg.workers,
        queue_capacity: cfg.queue_capacity,
        verify: cfg.verify,
        tracing: cfg.tracing,
        trace_capacity: cfg.trace_capacity,
        cache_capacity: cfg.cache_capacity,
        ..ServiceConfig::default()
    });
    let mut report = ChaosReport {
        requests: cfg.requests,
        ..ChaosReport::default()
    };
    let mut opened: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();

    let mut pending = Vec::new();
    let absorb = |resp: crate::request::Response, report: &mut ChaosReport| {
        match resp.outcome {
            Outcome::Optimized { rung: Rung::Fast } => report.optimized_fast += 1,
            Outcome::Optimized {
                rung: Rung::Reference,
            } => report.optimized_reference += 1,
            Outcome::Passthrough => report.passthrough += 1,
            Outcome::Overloaded => report.overloaded += 1,
            Outcome::Invalid => report.invalid += 1,
        }
        report.retries += resp.retries;
        report.caught_panics += resp.panics.len();
        if resp
            .error
            .as_deref()
            .is_some_and(|e| e.contains("semantic gate:"))
        {
            report.gate_failures += 1;
        }
        report.latencies_us.push(resp.latency.as_micros() as u64);
    };

    let mut seed = cfg.seed;
    let started = Instant::now();
    for i in 0..cfg.requests {
        let mut rng = Rng::seed_from_u64(splitmix64(&mut seed) ^ i as u64);
        let request = generate_request(&mut rng, cfg.stall, cfg.repeated);
        match service.submit(request) {
            Ok(p) => pending.push(p),
            Err(rejection) => {
                absorb(rejection, &mut report);
                // Shed: let the workers catch up a little before the next
                // burst, so the soak keeps exercising the engine lanes too.
                for p in pending.drain(..pending.len().min(4)) {
                    absorb(p.wait(), &mut report);
                }
            }
        }
        // Alternate paced and flood arrival. Paced phases keep the
        // queue-wait share of each deadline bounded; flood phases submit
        // without draining until the queue is full, forcing real
        // structured sheds.
        let flood = (i / 97) % 7 == 6;
        if !flood {
            while pending.len() >= (cfg.queue_capacity / 2).max(8) {
                absorb(pending.remove(0).wait(), &mut report);
            }
        }
        // Periodically note and reset opened breakers so the poison lane
        // keeps exercising the panic path instead of being filtered out.
        if i % 64 == 63 {
            for rule in service.breaker().open_rules() {
                opened.insert(rule.clone());
                service.breaker().reset(&rule);
            }
        }
    }
    for p in pending {
        let resp = p.wait();
        absorb(resp, &mut report);
    }
    // Serving window ends with the last reply in hand; everything below is
    // post-hoc audit and must not count against worker-scaling claims.
    report.elapsed = started.elapsed();
    for rule in service.breaker().open_rules() {
        opened.insert(rule);
    }
    report.breaker_opened = opened.len();
    report.unexpected_panics = service.unexpected_panics();
    report.peak_arena_nodes = service.peak_arena_nodes();
    // Every reply is in hand: the service is quiescent, so the snapshot
    // must balance its books.
    report.metrics = service.metrics_snapshot();
    report.conservation = conservation_violations(&report.metrics);
    report.cache_hits = report.metrics.counter("cache_hits");
    report.cache_misses = report.metrics.counter("cache_misses");
    report.cache_coalesced = report.metrics.counter("cache_coalesced");
    report.cache_stale = report.metrics.counter("cache_stale");
    report.traces_recorded = report.metrics.counter("traces_recorded");
    report.traces_dropped = report.metrics.counter("traces_dropped");
    if cfg.tracing {
        // Re-execute every trace still in the rings, step for step, on the
        // boxed reference engine. Faulted runs re-inject their recorded
        // fault plan; deadlines never shaped a successful derivation (see
        // `kola_obs::replay`), so replay runs unclocked. One pooled
        // deep-stack worker serves the whole audit instead of a fresh
        // 32MiB thread per trace.
        let auditor = ReplayWorker::new(Catalog::paper(), PropDb::new());
        for trace in service.traces() {
            report.traces_replayed += 1;
            if !auditor.replay(trace).is_match() {
                report.traces_divergent += 1;
            }
        }
    }
    report
}

// ---------------------------------------------------------------------------
// Clean stream: the throughput-scaling workload.
// ---------------------------------------------------------------------------

/// Parameters of one clean-stream run (no faults, no poison rules, no
/// adversarial terms — the workload for measuring how service throughput
/// scales with the worker count).
///
/// Each request carries a fixed [`CleanConfig::stall`]: simulated
/// per-request materialization work (catalog lookups, I/O) that the worker
/// performs while holding no locks. On a single-core host — where this
/// repo's benchmarks run — CPU-bound work cannot scale with workers at
/// all, so the stall is what makes worker *concurrency* measurable: N
/// workers overlap N stalls, and throughput scales with N until the
/// rewrite work itself saturates the core. That is the honest claim the
/// scaling gate checks; see `DESIGN.md` §5d.
#[derive(Debug, Clone)]
pub struct CleanConfig {
    /// Requests to drive through the service in total.
    pub requests: usize,
    /// Master seed; the request stream is a pure function of it.
    pub seed: u64,
    /// Worker threads.
    pub workers: usize,
    /// Closed-loop client threads (each keeps exactly one request in
    /// flight, so admission depth never exceeds this).
    pub clients: usize,
    /// Work-queue capacity; sized above `clients` so a clean stream never
    /// sheds.
    pub queue_capacity: usize,
    /// Simulated per-request materialization stall (see type docs).
    pub stall: Duration,
}

impl Default for CleanConfig {
    fn default() -> Self {
        CleanConfig {
            requests: 4_000,
            seed: 0xBEEF,
            workers: 4,
            clients: 16,
            queue_capacity: 64,
            stall: Duration::from_millis(2),
        }
    }
}

/// What a clean-stream run observed.
#[derive(Debug, Clone, Default)]
pub struct CleanReport {
    /// Requests driven (all of them classified).
    pub requests: usize,
    /// `Optimized { rung: Fast }` replies — a clean stream must produce
    /// nothing else.
    pub optimized_fast: usize,
    /// Replies with any other outcome (degradations, sheds, rejections).
    pub other: usize,
    /// High-water mark of any worker engine's arena, in live nodes.
    pub peak_arena_nodes: usize,
    /// Wall-clock for the whole run.
    pub elapsed: Duration,
    /// Per-request end-to-end latencies, microseconds, unsorted.
    pub latencies_us: Vec<u64>,
}

impl CleanReport {
    /// End-to-end throughput in requests per second.
    pub fn throughput_rps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.requests as f64 / self.elapsed.as_secs_f64()
    }
}

/// One request of the seeded clean stream: a parseable query with real
/// redexes, default budgets, **no** deadline and **no** faults — so the
/// persistent engine's memo is eligible and the stream measures the
/// service's fast path, not its failure handling.
pub fn generate_clean_request(rng: &mut Rng, stall: Duration) -> Request {
    let roll = rng.gen_range(0..100usize);
    let payload = if roll < 55 {
        Payload::Text(id_tower_text(4 + rng.gen_range(0..48usize)))
    } else if roll < 80 {
        Payload::Text(KOLA_TEMPLATES[rng.gen_range(0..KOLA_TEMPLATES.len())].to_string())
    } else {
        Payload::Text(OQL_TEMPLATES[rng.gen_range(0..OQL_TEMPLATES.len())].to_string())
    };
    Request {
        payload,
        options: RequestOptions {
            hold_for: Some(stall),
            ..RequestOptions::default()
        },
        tenant: None,
    }
}

/// Drive `cfg.requests` clean requests through a fresh service from
/// `cfg.clients` closed-loop client threads and measure throughput.
pub fn run_clean_stream(cfg: &CleanConfig) -> CleanReport {
    let service = Service::start(ServiceConfig {
        workers: cfg.workers,
        queue_capacity: cfg.queue_capacity.max(cfg.clients),
        verify: false,
        // The clean stream measures worker scaling; its templates repeat
        // heavily, so a cache would answer most of them at the door and
        // the gate would measure the cache instead. The repeated-traffic
        // stream ([`run_repeated_stream`]) is where the cache is measured.
        cache_capacity: 0,
        ..ServiceConfig::default()
    });
    let clients = cfg.clients.max(1);
    let per_client = cfg.requests / clients;
    let remainder = cfg.requests % clients;
    let started = std::time::Instant::now();
    let mut partials: Vec<(usize, usize, Vec<u64>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let service = &service;
                let n = per_client + usize::from(c < remainder);
                let seed = cfg.seed ^ ((c as u64 + 1) << 32);
                let stall = cfg.stall;
                s.spawn(move || {
                    let mut rng = Rng::seed_from_u64(seed);
                    let mut fast = 0usize;
                    let mut other = 0usize;
                    let mut latencies = Vec::with_capacity(n);
                    for _ in 0..n {
                        let resp = service.call(generate_clean_request(&mut rng, stall));
                        match resp.outcome {
                            Outcome::Optimized { rung: Rung::Fast } => fast += 1,
                            _ => other += 1,
                        }
                        latencies.push(resp.latency.as_micros() as u64);
                    }
                    (fast, other, latencies)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = started.elapsed();
    let mut report = CleanReport {
        requests: cfg.requests,
        elapsed,
        ..CleanReport::default()
    };
    for (fast, other, mut lat) in partials.drain(..) {
        report.optimized_fast += fast;
        report.other += other;
        report.latencies_us.append(&mut lat);
    }
    report.peak_arena_nodes = service.peak_arena_nodes();
    report
}

// ---------------------------------------------------------------------------
// Repeated stream: the plan-cache workload.
// ---------------------------------------------------------------------------

/// Parameters of one repeated-traffic run: clients draw from a fixed query
/// pool with Zipf-ish skew at a configured target hit rate, with the rest
/// of the stream unique misses. This is the millions-of-users traffic
/// shape the plan cache exists for — overwhelmingly repetitive, with a
/// long unique tail.
#[derive(Debug, Clone)]
pub struct RepeatedConfig {
    /// Requests to drive through the service in total (timed window).
    pub requests: usize,
    /// Master seed; which requests are pool draws, and which pool member
    /// each draws, is a pure function of it.
    pub seed: u64,
    /// Worker threads.
    pub workers: usize,
    /// Closed-loop client threads.
    pub clients: usize,
    /// Work-queue capacity.
    pub queue_capacity: usize,
    /// Simulated per-request materialization stall for requests that reach
    /// a worker (cache hits never do — that asymmetry is the measurement).
    pub stall: Duration,
    /// Target hit rate in `[0, 1]`: the probability a request is a pool
    /// draw. The pool is prewarmed outside the timed window, so every pool
    /// draw is a hit and the achieved rate concentrates tightly here (the
    /// draw probability carries a small overshoot so seeded runs clear the
    /// target, not just approach it).
    pub hit_target: f64,
    /// Fixed pool size.
    pub pool: usize,
    /// Plan-cache capacity for the served service (`0` makes every request
    /// a worker pass — the 0%-hit baseline rows).
    pub cache_capacity: usize,
}

impl Default for RepeatedConfig {
    fn default() -> Self {
        RepeatedConfig {
            requests: 4_000,
            seed: 0xFACADE,
            workers: 4,
            clients: 8,
            queue_capacity: 64,
            stall: Duration::from_millis(2),
            hit_target: 0.9,
            pool: 32,
            cache_capacity: 2048,
        }
    }
}

/// What a repeated-traffic run observed.
#[derive(Debug, Clone, Default)]
pub struct RepeatedReport {
    /// Requests driven in the timed window (all of them classified).
    pub requests: usize,
    /// `Optimized { rung: Fast }` replies (worker passes and cache hits
    /// alike — a repeated stream must produce nothing else).
    pub optimized_fast: usize,
    /// Replies with any other outcome (must be zero).
    pub other: usize,
    /// Plan-cache hits inside the timed window.
    pub cache_hits: u64,
    /// Achieved hit rate: `cache_hits / requests`.
    pub hit_actual: f64,
    /// Client-tallied caught panics (must be zero, and must equal the
    /// metric counter — the per-row conservation cross-check).
    pub caught_panics: usize,
    /// Wall-clock of the timed window.
    pub elapsed: Duration,
    /// Per-request end-to-end latencies, microseconds, unsorted.
    pub latencies_us: Vec<u64>,
    /// Quiescent metric snapshot (prewarm included — the conservation
    /// invariants hold over the service's whole life).
    pub metrics: Snapshot,
    /// Conservation violations in `metrics` plus the client-vs-books
    /// cross-checks (must be empty).
    pub violations: Vec<String>,
}

impl RepeatedReport {
    /// Timed-window throughput in requests per second.
    pub fn throughput_rps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.requests as f64 / self.elapsed.as_secs_f64()
    }
}

/// Zipf-ish rank pick over `pool` members: rank `r` drawn with weight
/// `1/(r+1)`. Integer cumulative weights keep the draw exact and seeded.
fn zipf_pick(rng: &mut Rng, cumulative: &[u64]) -> usize {
    let total = *cumulative.last().expect("non-empty pool");
    let x = rng.gen_range(0..total as usize) as u64;
    cumulative.partition_point(|&c| c <= x)
}

/// Drive `cfg.requests` repeated-traffic requests through a fresh service
/// from `cfg.clients` closed-loop clients and measure hit rate, latency,
/// and throughput. The pool is prewarmed (one sequential pass) before the
/// timed window opens, so the window measures steady-state serving.
pub fn run_repeated_stream(cfg: &RepeatedConfig) -> RepeatedReport {
    let service = Service::start(ServiceConfig {
        workers: cfg.workers,
        queue_capacity: cfg.queue_capacity.max(cfg.clients),
        verify: false,
        cache_capacity: cfg.cache_capacity,
        ..ServiceConfig::default()
    });
    let pool: Vec<String> = (0..cfg.pool.max(1)).map(|r| id_tower_text(4 + r)).collect();
    // Integer Zipf weights, scaled to keep low-rank resolution: weight of
    // rank r is round(K / (r+1)).
    let mut cumulative = Vec::with_capacity(pool.len());
    let mut acc = 0u64;
    for r in 0..pool.len() {
        acc += (1_000_000 / (r as u64 + 1)).max(1);
        cumulative.push(acc);
    }
    let pool_request = |src: &str| Request {
        payload: Payload::Text(src.to_string()),
        options: RequestOptions {
            hold_for: (!cfg.stall.is_zero()).then_some(cfg.stall),
            ..RequestOptions::default()
        },
        tenant: None,
    };
    // Prewarm: one sequential pass over the pool fills the cache (a no-op
    // when the cache is disabled), outside the timed window.
    for src in &pool {
        let r = service.call(pool_request(src));
        assert!(
            matches!(r.outcome, Outcome::Optimized { rung: Rung::Fast }),
            "pool prewarm must optimize on the fast rung, got {}",
            r.outcome
        );
    }
    // Small overshoot so the achieved rate clears the target on any seed
    // (every pool draw is a hit after prewarm; uniques never are).
    let draw_p = if cfg.hit_target > 0.0 {
        (cfg.hit_target + 0.02).min(1.0)
    } else {
        0.0
    };
    let unique = std::sync::atomic::AtomicU64::new(0);
    let clients = cfg.clients.max(1);
    let per_client = cfg.requests / clients;
    let remainder = cfg.requests % clients;
    let hits_before = service.metrics_snapshot().counter("cache_hits");
    let started = Instant::now();
    let mut partials: Vec<(usize, usize, usize, Vec<u64>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let service = &service;
                let pool = &pool;
                let cumulative = &cumulative;
                let unique = &unique;
                let n = per_client + usize::from(c < remainder);
                let seed = cfg.seed ^ ((c as u64 + 1) << 32);
                s.spawn(move || {
                    let mut rng = Rng::seed_from_u64(seed);
                    let mut fast = 0usize;
                    let mut other = 0usize;
                    let mut panics = 0usize;
                    let mut latencies = Vec::with_capacity(n);
                    for _ in 0..n {
                        let request = if draw_p > 0.0 && rng.gen_bool(draw_p) {
                            pool_request(&pool[zipf_pick(&mut rng, cumulative)])
                        } else {
                            // The unique tail: never repeats, so never
                            // hits — and (deliberately cacheable) fills
                            // shards so eviction earns its keep.
                            let n = unique.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            pool_request(&format!("gt ? [{}, 2]", n + 3))
                        };
                        let resp = service.call(request);
                        match resp.outcome {
                            Outcome::Optimized { rung: Rung::Fast } => fast += 1,
                            _ => other += 1,
                        }
                        panics += resp.panics.len();
                        latencies.push(resp.latency.as_micros() as u64);
                    }
                    (fast, other, panics, latencies)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = started.elapsed();
    let mut report = RepeatedReport {
        requests: cfg.requests,
        elapsed,
        ..RepeatedReport::default()
    };
    for (fast, other, panics, mut lat) in partials.drain(..) {
        report.optimized_fast += fast;
        report.other += other;
        report.caught_panics += panics;
        report.latencies_us.append(&mut lat);
    }
    report.metrics = service.metrics_snapshot();
    report.cache_hits = report.metrics.counter("cache_hits") - hits_before;
    report.hit_actual = if cfg.requests == 0 {
        0.0
    } else {
        report.cache_hits as f64 / cfg.requests as f64
    };
    report.violations = conservation_violations(&report.metrics);
    if report.other != 0 {
        report.violations.push(format!(
            "{} repeated-stream requests not optimized on the fast rung",
            report.other
        ));
    }
    if report.caught_panics as u64 != report.metrics.counter("caught_panics") {
        report.violations.push(format!(
            "caught-panic books unbalanced: clients hold {}, counter says {}",
            report.caught_panics,
            report.metrics.counter("caught_panics"),
        ));
    }
    report
}

// ---------------------------------------------------------------------------
// Noisy neighbor: the multi-tenant isolation workload.
// ---------------------------------------------------------------------------

/// Parameters of one noisy-neighbor run: a clean **victim** tenant served
/// alongside an **aggressor** tenant that pours poison-rule panics and
/// admission floods into the same service. Tenant namespaces are the unit
/// of isolation under test: the aggressor must trip only its own breaker,
/// invalidate only its own plan-cache lines, and exhaust only its own
/// admission quota — the victim's outcome taxonomy must be exactly what it
/// would be running solo (every reply `Optimized { rung: Fast }`, zero
/// sheds, zero panics). Set [`TenantChaosConfig::aggressor`] to `false`
/// for the solo baseline the bench compares against.
#[derive(Debug, Clone)]
pub struct TenantChaosConfig {
    /// Requests the victim's closed-loop clients drive in total.
    pub victim_requests: usize,
    /// Requests the aggressor's clients drive in total (ignored when
    /// `aggressor` is off).
    pub aggressor_requests: usize,
    /// Master seed; both tenants' streams are pure functions of it.
    pub seed: u64,
    /// Worker threads.
    pub workers: usize,
    /// Closed-loop victim client threads (keep this at or under
    /// `tenant_quota`, so a solo victim never sheds).
    pub victim_clients: usize,
    /// Aggressor client threads.
    pub aggressor_clients: usize,
    /// Work-queue capacity (global backpressure wall).
    pub queue_capacity: usize,
    /// Per-tenant admission quota — the noisy-neighbor wall. Sized so the
    /// aggressor's floods hit it while the victim's closed loop never does.
    pub tenant_quota: usize,
    /// Simulated per-request materialization stall (see [`CleanConfig`]).
    pub stall: Duration,
    /// Plan-cache capacity (tenant-salted keys; the victim's repeats hit).
    pub cache_capacity: usize,
    /// Run the aggressor at all (`false` = solo-victim baseline).
    pub aggressor: bool,
    /// Run the semantic gate on every optimized plan.
    pub verify: bool,
}

impl Default for TenantChaosConfig {
    fn default() -> Self {
        TenantChaosConfig {
            victim_requests: 2_000,
            aggressor_requests: 2_000,
            seed: 0x7E4A47,
            workers: 8,
            victim_clients: 4,
            aggressor_clients: 4,
            queue_capacity: 64,
            tenant_quota: 8,
            stall: Duration::from_millis(2),
            cache_capacity: 2048,
            aggressor: true,
            verify: false,
        }
    }
}

/// One tenant's client-side tally of a noisy-neighbor run.
#[derive(Debug, Clone, Default)]
pub struct TenantTally {
    /// Requests this tenant's clients drove (all of them classified).
    pub requests: usize,
    /// `Optimized { rung: Fast }` replies.
    pub optimized_fast: usize,
    /// Replies with any other completed outcome (degradations, rejections).
    pub other: usize,
    /// Structured sheds at submission (quota or queue).
    pub overloaded: usize,
    /// `Invalid` replies.
    pub invalid: usize,
    /// Poison-rule panics caught and attributed by the ladder.
    pub caught_panics: usize,
    /// Per-request end-to-end latencies, microseconds, unsorted.
    pub latencies_us: Vec<u64>,
}

impl TenantTally {
    fn absorb(&mut self, resp: &crate::request::Response) {
        self.requests += 1;
        match resp.outcome {
            Outcome::Optimized { rung: Rung::Fast } => self.optimized_fast += 1,
            Outcome::Overloaded => self.overloaded += 1,
            Outcome::Invalid => self.invalid += 1,
            _ => self.other += 1,
        }
        self.caught_panics += resp.panics.len();
        self.latencies_us.push(resp.latency.as_micros() as u64);
    }

    /// Nearest-rank p99 latency in microseconds.
    pub fn p99_us(&self) -> u64 {
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        percentile(&sorted, 99.0)
    }
}

/// What a noisy-neighbor run observed.
#[derive(Debug, Clone, Default)]
pub struct TenantChaosReport {
    /// Whether the aggressor ran (`false` = solo baseline).
    pub aggressor_enabled: bool,
    /// The clean tenant's client-side tally.
    pub victim: TenantTally,
    /// The poison tenant's client-side tally.
    pub aggressor: TenantTally,
    /// The victim's breaker generation after the run (must be 0: no
    /// cross-tenant charge ever reached it).
    pub victim_breaker_generation: u64,
    /// Times the aggressor's breaker opened a rule (must be nonzero when
    /// the aggressor ran — otherwise the aggression never landed and the
    /// isolation claim was not exercised).
    pub aggressor_breaker_opened: u64,
    /// Panics that reached a worker boundary unclassified (must be zero).
    pub unexpected_panics: usize,
    /// High-water mark of any worker engine's intern arena, in live nodes.
    pub peak_arena_nodes: usize,
    /// Quiescent metric snapshot (per-tenant and aggregate books must
    /// balance on it).
    pub metrics: Snapshot,
    /// Conservation violations in `metrics` (aggregate equations, every
    /// per-tenant lane, and the Σ-tenant partition checks).
    pub conservation: Vec<String>,
    /// Wall-clock from first submit to the victim's last reply — the
    /// window victim throughput divides by.
    pub victim_elapsed: Duration,
    /// Wall-clock of the whole serving window (both tenants drained).
    pub elapsed: Duration,
}

impl TenantChaosReport {
    /// The isolation invariants. Empty means the victim never noticed its
    /// neighbor.
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        v.extend(self.conservation.iter().cloned());
        // The victim's outcome taxonomy must be exactly its solo taxonomy:
        // every reply optimized on the fast rung.
        if self.victim.optimized_fast != self.victim.requests {
            v.push(format!(
                "victim taxonomy polluted: {} of {} replies fast ({} degraded, \
                 {} overloaded, {} invalid)",
                self.victim.optimized_fast,
                self.victim.requests,
                self.victim.other,
                self.victim.overloaded,
                self.victim.invalid
            ));
        }
        if self.victim.caught_panics != 0 {
            v.push(format!(
                "{} poison panics leaked into victim replies",
                self.victim.caught_panics
            ));
        }
        if self.victim_breaker_generation != 0 {
            v.push(format!(
                "victim breaker generation moved to {}: a cross-tenant \
                 charge landed",
                self.victim_breaker_generation
            ));
        }
        // All aggressor traffic is uncacheable (every request carries a
        // fault plan) and the victim's generation never moves, so no cache
        // line anywhere can go stale: a nonzero reclaim count means some
        // tenant's entries were invalidated across the namespace wall.
        if self.metrics.counter("cache_stale") != 0 {
            v.push(format!(
                "{} cache entries reclaimed as stale: an invalidation \
                 crossed the tenant wall",
                self.metrics.counter("cache_stale")
            ));
        }
        if self.aggressor_enabled && self.aggressor_breaker_opened == 0 {
            v.push("aggression never landed: the aggressor's breaker never opened".to_string());
        }
        if self.unexpected_panics != 0 {
            v.push(format!(
                "{} panics escaped ladder classification",
                self.unexpected_panics
            ));
        }
        if self.peak_arena_nodes > PEAK_ARENA_BOUND {
            v.push(format!(
                "worker arena peaked at {} nodes (bound {PEAK_ARENA_BOUND})",
                self.peak_arena_nodes
            ));
        }
        // Client-side per-tenant submission counts vs the books.
        let lane = |family: &str, label: &str| -> u64 {
            self.metrics
                .family(family)
                .iter()
                .find(|(l, _)| l == label)
                .map_or(0, |(_, n)| *n)
        };
        for (name, tally) in [("victim", &self.victim), ("aggressor", &self.aggressor)] {
            let books = lane("tenant_submitted", name);
            if tally.requests as u64 != books {
                v.push(format!(
                    "tenant {name:?} submission books unbalanced: clients drove {}, \
                     books say {books}",
                    tally.requests
                ));
            }
        }
        let client_panics = (self.victim.caught_panics + self.aggressor.caught_panics) as u64;
        if client_panics != self.metrics.counter("caught_panics") {
            v.push(format!(
                "caught-panic books unbalanced: clients hold {client_panics}, \
                 counter says {}",
                self.metrics.counter("caught_panics")
            ));
        }
        v
    }

    /// Victim throughput in requests per second over the victim's window.
    pub fn victim_throughput_rps(&self) -> f64 {
        if self.victim_elapsed.is_zero() {
            return 0.0;
        }
        self.victim.requests as f64 / self.victim_elapsed.as_secs_f64()
    }

    /// Multi-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "aggressor           {}\n\
             victim req/fast     {} / {}\n\
             victim ovl/inv/oth  {} / {} / {}\n\
             victim p99          {} us\n\
             victim throughput   {:.0} rps\n\
             aggressor req/fast  {} / {}\n\
             aggressor ovl/oth   {} / {}\n\
             aggressor panics    {}\n\
             aggressor trips     {}\n\
             victim breaker gen  {}\n\
             unexpected panics   {}\n\
             conservation        {}",
            if self.aggressor_enabled {
                "ON"
            } else {
                "off (solo baseline)"
            },
            self.victim.requests,
            self.victim.optimized_fast,
            self.victim.overloaded,
            self.victim.invalid,
            self.victim.other,
            self.victim.p99_us(),
            self.victim_throughput_rps(),
            self.aggressor.requests,
            self.aggressor.optimized_fast,
            self.aggressor.overloaded,
            self.aggressor.other,
            self.aggressor.caught_panics,
            self.aggressor_breaker_opened,
            self.victim_breaker_generation,
            self.unexpected_panics,
            if self.conservation.is_empty() {
                "balanced"
            } else {
                "VIOLATED"
            },
        )
    }
}

/// One aggressor request: an id-tower that exercises "app"/"e121" with a
/// fault plan that panics (or fails) those rules mid-rewrite. Every
/// aggressor request carries a fault plan, so none of them are cacheable —
/// the victim's plan lines are the only lines in the cache.
fn aggressor_request(rng: &mut Rng, stall: Duration) -> Request {
    let mut options = RequestOptions {
        backoff: Duration::from_micros(100 + rng.gen_range(0..200usize) as u64),
        hold_for: (!stall.is_zero()).then_some(stall),
        timeout: Some(stall + Duration::from_millis(15)),
        max_steps: 400,
        ..RequestOptions::default()
    };
    let rule = if rng.gen_bool(0.5) { "app" } else { "e121" };
    let kind = if rng.gen_bool(0.7) {
        FaultKind::Panic
    } else {
        FaultKind::Fail
    };
    options.faults = FaultPlan::new().with(FaultSpec {
        rule_id: rule.to_string(),
        at: StepSelector::Always,
        kind,
    });
    Request {
        payload: Payload::Text(id_tower_text(2 + rng.gen_range(0..8usize))),
        options,
        tenant: None,
    }
    .for_tenant("aggressor")
}

/// Run one noisy-neighbor soak: a clean closed-loop victim stream against
/// an aggressor mixing poison calls (~75%) with admission floods (~25%,
/// bursts submitted without draining so the aggressor's quota wall does
/// real shedding), on one service with tenants `["victim", "aggressor"]`.
pub fn run_noisy_neighbor(cfg: &TenantChaosConfig) -> TenantChaosReport {
    let service = Service::start(ServiceConfig {
        workers: cfg.workers,
        queue_capacity: cfg.queue_capacity,
        verify: cfg.verify,
        cache_capacity: cfg.cache_capacity,
        tenants: vec!["victim".to_string(), "aggressor".to_string()],
        tenant_quota: cfg.tenant_quota,
        ..ServiceConfig::default()
    });
    let victim_clients = cfg.victim_clients.max(1);
    let v_per = cfg.victim_requests / victim_clients;
    let v_rem = cfg.victim_requests % victim_clients;
    let aggressor_clients = cfg.aggressor_clients.max(1);
    let a_total = if cfg.aggressor {
        cfg.aggressor_requests
    } else {
        0
    };
    let a_per = a_total / aggressor_clients;
    let a_rem = a_total % aggressor_clients;
    let started = Instant::now();
    let (victim_parts, aggressor_parts): (Vec<(TenantTally, Duration)>, Vec<TenantTally>) =
        std::thread::scope(|s| {
            let victims: Vec<_> = (0..victim_clients)
                .map(|c| {
                    let service = &service;
                    let n = v_per + usize::from(c < v_rem);
                    let seed = cfg.seed ^ ((c as u64 + 1) << 32);
                    let stall = cfg.stall;
                    s.spawn(move || {
                        let mut rng = Rng::seed_from_u64(seed);
                        let mut tally = TenantTally::default();
                        for _ in 0..n {
                            let request =
                                generate_clean_request(&mut rng, stall).for_tenant("victim");
                            tally.absorb(&service.call(request));
                        }
                        (tally, started.elapsed())
                    })
                })
                .collect();
            let aggressors: Vec<_> = (0..aggressor_clients)
                .map(|c| {
                    let service = &service;
                    let n = a_per + usize::from(c < a_rem);
                    let seed = cfg.seed ^ 0xA66E ^ ((c as u64 + 101) << 32);
                    let stall = cfg.stall;
                    s.spawn(move || {
                        let mut rng = Rng::seed_from_u64(seed);
                        let mut tally = TenantTally::default();
                        let mut done = 0usize;
                        while done < n {
                            if rng.gen_bool(0.75) {
                                // Poison lane: one synchronous call whose
                                // fault plan panics a rule this payload
                                // actually fires — charges land on the
                                // aggressor's breaker shards only.
                                tally.absorb(&service.call(aggressor_request(&mut rng, stall)));
                                done += 1;
                            } else {
                                // Flood lane: a burst submitted without
                                // draining, so concurrent aggressor depth
                                // blows through the tenant quota and the
                                // quota wall sheds — while the victim's
                                // closed loop stays under its own quota.
                                let burst = (n - done).min(8);
                                let mut pending = Vec::with_capacity(burst);
                                for _ in 0..burst {
                                    match service.submit(aggressor_request(&mut rng, stall)) {
                                        Ok(p) => pending.push(p),
                                        Err(rejection) => tally.absorb(&rejection),
                                    }
                                    done += 1;
                                }
                                for p in pending {
                                    tally.absorb(&p.wait());
                                }
                            }
                        }
                        tally
                    })
                })
                .collect();
            (
                victims.into_iter().map(|h| h.join().unwrap()).collect(),
                aggressors.into_iter().map(|h| h.join().unwrap()).collect(),
            )
        });
    let elapsed = started.elapsed();
    let mut report = TenantChaosReport {
        aggressor_enabled: cfg.aggressor,
        elapsed,
        ..TenantChaosReport::default()
    };
    for (tally, window) in victim_parts {
        report.victim.requests += tally.requests;
        report.victim.optimized_fast += tally.optimized_fast;
        report.victim.other += tally.other;
        report.victim.overloaded += tally.overloaded;
        report.victim.invalid += tally.invalid;
        report.victim.caught_panics += tally.caught_panics;
        report.victim.latencies_us.extend(tally.latencies_us);
        report.victim_elapsed = report.victim_elapsed.max(window);
    }
    for tally in aggressor_parts {
        report.aggressor.requests += tally.requests;
        report.aggressor.optimized_fast += tally.optimized_fast;
        report.aggressor.other += tally.other;
        report.aggressor.overloaded += tally.overloaded;
        report.aggressor.invalid += tally.invalid;
        report.aggressor.caught_panics += tally.caught_panics;
        report.aggressor.latencies_us.extend(tally.latencies_us);
    }
    report.victim_breaker_generation = service
        .tenant_breaker("victim")
        .map_or(0, |b| b.generation());
    report.aggressor_breaker_opened = service
        .tenant_breaker("aggressor")
        .map_or(0, |b| b.opened_total());
    report.unexpected_panics = service.unexpected_panics();
    report.peak_arena_nodes = service.peak_arena_nodes();
    report.metrics = service.metrics_snapshot();
    report.conservation = conservation_violations(&report.metrics);
    report
}
