//! The degradation ladder: fast engine → reference engine → passthrough.
//!
//! Each worker answers a request by climbing down this ladder. Rung 1 runs
//! the fast (interned + head-indexed + memoized) engine; rung 2 the boxed
//! reference engine — slower, simpler, and sharing no state with rung 1,
//! so a fault that poisons one cannot poison the other; rung 3 returns the
//! input query unoptimized. Every rung:
//!
//! - runs under the request's **remaining** deadline (the budget's
//!   wall-clock cutoff is the request deadline, so a rung that overruns is
//!   stopped by the engine itself, not by the ladder);
//! - gets **one retry** after a deterministic jittered backoff, capped by
//!   the remaining deadline — enough to ride out a transient injected
//!   fault, never enough to blow the deadline;
//! - is wrapped in the `try_*` panic boundary of `kola-rewrite`, so a
//!   poison-rule panic is caught, attributed to its rule, and charged to
//!   the cross-request [`Breaker`](crate::Breaker).
//!
//! A rung *fails* when it panics, when an injected rung fault says so, or
//! when its report stops with `DeadlineExpired` or `TermTooLarge` — stops
//! that mean "no trustworthy optimized plan". `BudgetExhausted` and
//! `CycleDetected` are *successes*: the governed engines guarantee the best
//! (smallest) query seen so far, which is a valid plan.
//!
//! The fast rung runs on a **borrowed, long-lived engine** — the worker's
//! [`kola_rewrite::Engine`], whose arena, marks, and memo persist across
//! requests ([`Ladder::run_with`]). The rule set comes from an immutable
//! [`RuleSnapshot`]: the engine keeps the full catalog and index and masks
//! disabled rules per epoch, so a breaker trip costs an epoch swap, not an
//! engine rebuild. The reference rung is persistent too: the worker's
//! [`ReferenceRung`] caches the resolved active rule set, keyed by the same
//! snapshot epoch, so a degraded request re-resolves nothing — the old
//! per-request path rebuilt the id list, the strategy, *and* a `Runner` on
//! every climb past the fast rung, which made degradation strictly more
//! expensive per request than health.
//!
//! Exactness: the fast rung calls `Engine::try_normalize_with` with exactly
//! the request's budget and fault plan — byte-identical to a direct
//! fast-engine `Runner` run, whose `Fix` path folds the same engine report
//! into a fresh one (a zero-offset merge). The reference rung calls
//! `try_rewrite_fix_with` over the cached resolved active set — the exact
//! call the reference `Runner`'s `Fix` path bottoms out in, with the same
//! zero-offset merge argument (`Runner::run_governed` merges the fix
//! report into a fresh zero-step report and extends an empty trace, both
//! identities). The engines' differential-exactness contract thereby lifts
//! to the service — *including* cross-request reuse, because memo replays
//! are byte-identical to live runs and epoch tagging confines them to one
//! rule set (see `tests/service.rs`).

use crate::breaker::Breaker;
use crate::metrics::ServiceMetrics;
use crate::request::{Outcome, RequestOptions};
use crate::snapshot::RuleSnapshot;
use kola::term::Query;
use kola_exec::rng::splitmix64;
use kola_obs::{RewriteTrace, TraceRing};
use kola_rewrite::{
    try_rewrite_fix_with, Catalog, CaughtPanic, Engine, EngineConfig, Oriented, PropDb,
    QuarantineReport, RewriteReport, StopReason, Trace,
};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// One engine rung of the ladder (the passthrough rung carries no engine
/// and is represented by [`Outcome::Passthrough`] itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rung {
    /// The interned + head-indexed + memoized engine (`kola_rewrite::fast`).
    Fast,
    /// The boxed reference engine (`kola_rewrite::engine`).
    Reference,
}

/// The rungs in descending order of preference.
pub const RUNGS: [Rung; 2] = [Rung::Fast, Rung::Reference];

impl std::fmt::Display for Rung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Rung::Fast => "fast",
            Rung::Reference => "reference",
        })
    }
}

/// What the ladder produced for one request.
#[derive(Debug, Clone)]
pub struct LadderResult {
    /// `Optimized { rung }` or `Passthrough` — never the rejection
    /// outcomes; the ladder always answers.
    pub outcome: Outcome,
    /// The plan (the input itself on passthrough — an `Arc` clone of the
    /// caller's term, so exhausting the ladder deep-copies nothing; on
    /// success a freshly-allocated handle the plan cache can retain).
    pub plan: Arc<Query>,
    /// The successful rung's report, untouched. `None` on passthrough.
    pub report: Option<RewriteReport>,
    /// Per-run quarantine state of the successful rung.
    pub quarantine: QuarantineReport,
    /// Panics caught across all attempts.
    pub panics: Vec<CaughtPanic>,
    /// Retries taken across all rungs.
    pub retries: usize,
    /// One note per failed attempt.
    pub failures: Vec<String>,
}

/// How one rung attempt ended (private to the climb). Success carries the
/// rung's derivation trace so the observability sink can record it — empty
/// when tracing is off (the engine skips per-step trace building entirely).
enum Attempt {
    Ok(Query, RewriteReport, Trace),
    Failed(String, Option<RewriteReport>),
    Panicked(CaughtPanic),
}

/// The worker-resident reference rung: the snapshot's active rule set
/// resolved against the catalog once per snapshot epoch, not once per
/// degraded request. Lives in the worker's state next to the persistent
/// fast engine and is invalidated by the same epoch counter — a breaker
/// trip or reset re-resolves on the next degraded request; everything in
/// between reuses the cached slice.
#[derive(Default)]
pub struct ReferenceRung<'a> {
    /// Snapshot epoch `rules` was resolved under (`None` before first use).
    epoch: Option<u64>,
    /// The snapshot's active ids resolved to forward-oriented rules, in
    /// snapshot (catalog) order — exactly what `strategy::fix` over the
    /// active ids resolves to.
    rules: Vec<Oriented<'a>>,
}

impl<'a> ReferenceRung<'a> {
    /// An empty cache; the first [`Ladder::run_with`] that degrades fills
    /// it.
    pub fn new() -> ReferenceRung<'a> {
        ReferenceRung::default()
    }

    /// Re-resolve iff `snapshot` is from a different epoch than the cache.
    /// Keys on the *engine* epoch — unique per (generation, tenant) — so a
    /// rung shared across tenant lanes can never serve one tenant the
    /// other's resolved rule set.
    fn sync(&mut self, catalog: &'a Catalog, snapshot: &RuleSnapshot) {
        if self.epoch == Some(snapshot.engine_epoch) {
            return;
        }
        self.rules.clear();
        self.rules.extend(snapshot.active.iter().map(|id| {
            let rule = catalog
                .get(id)
                .expect("snapshot active ids are drawn from this catalog");
            Oriented::fwd(rule)
        }));
        self.epoch = Some(snapshot.engine_epoch);
    }
}

/// A worker's interruptible-backoff slot. The retry backoff used to be a
/// plain `thread::sleep`, which parks the whole worker where neither new
/// submissions nor shutdown can reach it; waiting on `park_timeout`
/// instead lets the service cut a backoff short ([`RetryPark::interrupt`])
/// when work lands on the worker's shard or the service shuts down — the
/// worker finishes its degraded request sooner and returns to the queue.
///
/// An interrupted (or spuriously woken) backoff simply retries early:
/// the backoff is advisory pacing, deadline-capped either way, and the
/// climb re-checks the deadline after every wait.
#[derive(Debug, Default)]
pub struct RetryPark {
    /// The worker thread to unpark; set once by [`RetryPark::register`].
    thread: OnceLock<std::thread::Thread>,
    /// True while the worker is inside [`RetryPark::wait`] — interrupters
    /// skip the unpark syscall entirely outside that window.
    parked: AtomicBool,
}

impl RetryPark {
    /// An unregistered slot.
    pub fn new() -> RetryPark {
        RetryPark::default()
    }

    /// Bind this slot to the calling thread (the worker, at loop start).
    pub fn register(&self) {
        let _ = self.thread.set(std::thread::current());
    }

    /// Wait up to `pause` on the calling (registered) thread. Returns
    /// early on [`RetryPark::interrupt`] — or on a stale park token from
    /// an earlier interrupt, which only shortens one advisory backoff.
    pub fn wait(&self, pause: Duration) {
        self.parked.store(true, Ordering::Release);
        std::thread::park_timeout(pause);
        self.parked.store(false, Ordering::Release);
    }

    /// Cut an in-progress backoff short (no-op while the worker is not
    /// waiting).
    pub fn interrupt(&self) {
        if self.parked.load(Ordering::Acquire) {
            if let Some(t) = self.thread.get() {
                t.unpark();
            }
        }
    }
}

/// The ladder, borrowing the service's shared catalog, properties, and
/// breaker — plus the (optional) observability surfaces.
pub struct Ladder<'a> {
    /// Rule catalog; the rule set handed to the engines is its forward
    /// orientation minus open-breaker rules.
    pub catalog: &'a Catalog,
    /// Property database for rule preconditions.
    pub props: &'a PropDb,
    /// The cross-request circuit breaker to consult and charge.
    pub breaker: &'a Breaker,
    /// Metric handles for per-rung failure counts; `None` runs unmetered.
    pub metrics: Option<&'a ServiceMetrics>,
    /// Trace sink — the calling worker's own ring shard. `Some` turns
    /// per-step trace recording ON for the fast engine and records every
    /// successful rung's derivation; `None` (the default service
    /// configuration) turns the engine's trace building OFF, so the
    /// untraced hot path never allocates per step.
    pub tracer: Option<&'a TraceRing>,
    /// Breaker shard all charges go through — the calling worker's index
    /// (`0` for standalone use).
    pub shard: usize,
    /// The worker's interruptible-backoff slot; `None` falls back to a
    /// plain sleep (standalone/test use).
    pub park: Option<&'a RetryPark>,
    /// Tenant name recorded in traces; `None` records `"default"`
    /// (standalone/test use).
    pub tenant: Option<&'a Arc<str>>,
}

impl<'a> Ladder<'a> {
    /// One-shot convenience: climb with a *fresh* fast engine and a
    /// snapshot built from the breaker's current state. Semantically
    /// identical to [`Ladder::run_with`]; production workers use that form
    /// with their long-lived engine instead of paying an engine build per
    /// request.
    pub fn run(
        &self,
        request_id: u64,
        q: &Arc<Query>,
        opts: &RequestOptions,
        deadline: Option<Instant>,
    ) -> LadderResult {
        let rules: Vec<Oriented<'_>> = self.catalog.rules().iter().map(Oriented::fwd).collect();
        let mut engine = Engine::new(rules, self.props, EngineConfig::fast());
        let snapshot = RuleSnapshot::build(self.breaker.generation(), self.catalog, self.breaker);
        let mut reference = ReferenceRung::new();
        self.run_with(
            request_id,
            q,
            opts,
            deadline,
            &mut engine,
            &snapshot,
            &mut reference,
        )
    }

    /// Climb the ladder for query `q` under `opts`, with the deadline
    /// already anchored (at submission time). `request_id` seeds the retry
    /// jitter and tags breaker charges. `engine` is the caller's persistent
    /// fast engine (built over the full forward catalog, rules in catalog
    /// order) and `snapshot` the rule-set snapshot this request runs under:
    /// the engine's caches are scoped to the snapshot's epoch before the
    /// climb, and disabled rules are masked out of its candidate scan.
    /// `reference` is the caller's persistent reference rung, re-resolved
    /// only when the snapshot epoch moved.
    #[allow(clippy::too_many_arguments)]
    pub fn run_with(
        &self,
        request_id: u64,
        q: &Arc<Query>,
        opts: &RequestOptions,
        deadline: Option<Instant>,
        engine: &mut Engine<'_>,
        snapshot: &RuleSnapshot,
        reference: &mut ReferenceRung<'a>,
    ) -> LadderResult {
        // The *engine* epoch, not the raw generation: on a multi-tenant
        // service the shared engine's memo must never alias two tenants'
        // rule masks (snapshot.rs maps generations injectively per tenant).
        engine.set_epoch(snapshot.engine_epoch, &snapshot.disabled);
        engine.set_trace(self.tracer.is_some());

        let mut panics: Vec<CaughtPanic> = Vec::new();
        let mut failures: Vec<String> = Vec::new();
        let mut retries = 0usize;
        // Rules to charge — at most once per request, whatever the attempt
        // count (so a breaker threshold of N means N bad *requests*).
        let mut implicated: BTreeSet<String> = BTreeSet::new();

        let mut success: Option<(Rung, Query, RewriteReport, Trace)> = None;
        'climb: for (ri, rung) in RUNGS.iter().copied().enumerate() {
            for attempt in 0..2u32 {
                if expired(deadline) {
                    // Note the expiry so a deadline-driven passthrough
                    // always carries an error, even when the deadline died
                    // before any rung got to run (e.g. queue wait ate it).
                    failures.push(format!("{rung} attempt {attempt}: deadline expired"));
                    break 'climb;
                }
                if attempt == 1 {
                    // One jittered retry, capped by the remaining deadline.
                    // Waiting the full remainder is deliberate: if the
                    // deadline dies during the backoff, the expiry check
                    // above degrades us to the next rung (and ultimately to
                    // passthrough) deterministically. The wait itself is
                    // interruptible (see [`RetryPark`]): a submission
                    // landing on this worker's shard cuts it short.
                    let pause = cap_to_deadline(jittered(opts.backoff, request_id, ri), deadline);
                    if !pause.is_zero() {
                        match self.park {
                            Some(p) => p.wait(pause),
                            None => std::thread::sleep(pause),
                        }
                    }
                    if expired(deadline) {
                        failures.push(format!("{rung} attempt {attempt}: deadline expired"));
                        break 'climb;
                    }
                    retries += 1;
                }
                match self.attempt(
                    rung, attempt, q, opts, deadline, engine, snapshot, reference,
                ) {
                    Attempt::Ok(plan, report, trace) => {
                        implicate_from_report(&report, &mut implicated);
                        success = Some((rung, plan, report, trace));
                        break 'climb;
                    }
                    Attempt::Failed(why, report) => {
                        let expired_stop = report
                            .as_ref()
                            .is_some_and(|r| r.stop == StopReason::DeadlineExpired);
                        if let Some(r) = &report {
                            implicate_from_report(r, &mut implicated);
                        }
                        if let Some(m) = self.metrics {
                            // Positional lane: family labels are RUNGS in
                            // order, so the failure path formats nothing.
                            m.rung_failures.add_index(ri, 1);
                        }
                        failures.push(format!("{rung} attempt {attempt}: {why}"));
                        if expired_stop {
                            // Retrying against a dead deadline is pointless.
                            break;
                        }
                    }
                    Attempt::Panicked(p) => {
                        if let Some(id) = &p.rule_id {
                            implicated.insert(id.clone());
                        }
                        if let Some(m) = self.metrics {
                            m.rung_failures.add_index(ri, 1);
                        }
                        failures.push(format!("{rung} attempt {attempt}: {p}"));
                        panics.push(p);
                    }
                }
            }
        }

        // One batched breaker call per failed request, through this
        // worker's own shard — the old loop took the breaker's state lock
        // once per implicated rule.
        if !implicated.is_empty() {
            self.breaker.charge_many(
                self.shard,
                implicated.iter().map(String::as_str),
                request_id,
            );
        }

        match success {
            Some((rung, plan, report, trace)) => {
                if let Some(ring) = self.tracer {
                    // Wall-clock deadlines are intentionally not recorded:
                    // a successful rung never stopped on one (classify
                    // treats DeadlineExpired as failure), so the derivation
                    // is deadline-independent and replays unclocked.
                    ring.push(RewriteTrace::record(
                        request_id,
                        self.tenant
                            .map(Arc::clone)
                            .unwrap_or_else(|| Arc::from(crate::tenant::DEFAULT_TENANT)),
                        &rung.to_string(),
                        q,
                        Arc::clone(&snapshot.active),
                        opts.max_steps,
                        opts.max_depth,
                        opts.max_term_size,
                        opts.quarantine_after,
                        opts.faults.clone(),
                        &trace,
                        report.stop,
                        &plan,
                    ));
                }
                let quarantine = self.catalog.quarantine_report(&report);
                LadderResult {
                    outcome: Outcome::Optimized { rung },
                    plan: Arc::new(plan),
                    report: Some(report),
                    quarantine,
                    panics,
                    retries,
                    failures,
                }
            }
            None => LadderResult {
                outcome: Outcome::Passthrough,
                plan: Arc::clone(q),
                report: None,
                quarantine: QuarantineReport::default(),
                panics,
                retries,
                failures,
            },
        }
    }

    // One parameter per climb-loop variable; bundling them into a struct
    // would only move the argument list.
    #[allow(clippy::too_many_arguments)]
    fn attempt(
        &self,
        rung: Rung,
        attempt: u32,
        q: &Query,
        opts: &RequestOptions,
        deadline: Option<Instant>,
        engine: &mut Engine<'_>,
        snapshot: &RuleSnapshot,
        reference: &mut ReferenceRung<'a>,
    ) -> Attempt {
        if opts.force_fail.contains(&rung) {
            return Attempt::Failed("injected rung fault (permanent)".into(), None);
        }
        if attempt == 0 && opts.transient_fail.contains(&rung) {
            return Attempt::Failed("injected rung fault (transient)".into(), None);
        }
        match rung {
            // The hot rung: straight into the borrowed persistent engine.
            // Byte-identical to the old per-request `Runner` path — the
            // `Fix` strategy ran this same `normalize_with` under the same
            // budget and merged its report into a fresh one (offset zero).
            Rung::Fast => {
                let budget = opts.budget(deadline);
                match engine.try_normalize_with(q, &budget, &opts.faults) {
                    Err(p) => Attempt::Panicked(p),
                    Ok(r) => classify(r.query, r.report, r.trace),
                }
            }
            // The degraded rung (only reached when the fast rung failed):
            // the boxed reference engine over the cached resolved active
            // set — deliberately sharing no engine state with the fast
            // rung, and re-resolving nothing per request. This is the
            // exact call the old per-request `Runner`'s `Fix` strategy
            // bottomed out in (see the module docs' exactness argument).
            Rung::Reference => {
                reference.sync(self.catalog, snapshot);
                let budget = opts.budget(deadline);
                match try_rewrite_fix_with(&reference.rules, q, self.props, &budget, &opts.faults) {
                    Err(p) => Attempt::Panicked(p),
                    Ok(r) => classify(r.query, r.report, r.trace),
                }
            }
        }
    }
}

/// Shared rung-outcome classification (see the module docs for why
/// `BudgetExhausted`/`CycleDetected` are successes).
fn classify(plan: Query, report: RewriteReport, trace: Trace) -> Attempt {
    match report.stop {
        StopReason::DeadlineExpired => {
            Attempt::Failed("deadline expired mid-rewrite".into(), Some(report))
        }
        StopReason::TermTooLarge => {
            Attempt::Failed("input exceeds term-size cap".into(), Some(report))
        }
        // NormalForm, BudgetExhausted, CycleDetected: the governed
        // engines return the best (smallest) query seen — a plan.
        _ => Attempt::Ok(plan, report, trace),
    }
}

fn expired(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() >= d)
}

fn cap_to_deadline(pause: Duration, deadline: Option<Instant>) -> Duration {
    match deadline {
        Some(d) => pause.min(d.saturating_duration_since(Instant::now())),
        None => pause,
    }
}

/// Deterministic jitter: base + up to 50% extra, derived from the request
/// id and rung index so reruns of a seeded chaos scenario sleep alike.
fn jittered(base: Duration, request_id: u64, rung_index: usize) -> Duration {
    let mut s = request_id ^ ((rung_index as u64 + 1) << 32) ^ 0x9E37_79B9_7F4A_7C15;
    let r = splitmix64(&mut s);
    let extra = (base.as_nanos() as u64 / 2)
        .checked_mul(r % 1024)
        .map_or(Duration::ZERO, |n| Duration::from_nanos(n / 1024));
    base + extra
}

/// Rules with contained failures in `report` (injected faults, oversize
/// results) are implicated for breaker accounting.
fn implicate_from_report(report: &RewriteReport, implicated: &mut BTreeSet<String>) {
    for (id, stats) in &report.rule_stats {
        if stats.failed > 0 {
            implicated.insert(id.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kola::term::Func;
    use std::sync::Arc;

    fn tower(n: usize) -> Query {
        let mut f = Func::Prim(Arc::from("age"));
        for _ in 0..n {
            f = Func::Compose(Box::new(Func::Id), Box::new(f));
        }
        Query::App(f, Box::new(Query::Extent(Arc::from("P"))))
    }

    #[test]
    fn transient_fault_costs_one_retry_not_the_request() {
        let catalog = Catalog::paper();
        let props = PropDb::new();
        let breaker = Breaker::new(usize::MAX);
        let ladder = Ladder {
            catalog: &catalog,
            props: &props,
            breaker: &breaker,
            metrics: None,
            tracer: None,
            shard: 0,
            park: None,
            tenant: None,
        };
        let opts = RequestOptions {
            transient_fail: vec![Rung::Fast],
            backoff: Duration::from_micros(50),
            ..RequestOptions::default()
        };
        let r = ladder.run(1, &Arc::new(tower(4)), &opts, None);
        assert_eq!(r.outcome, Outcome::Optimized { rung: Rung::Fast });
        assert_eq!(r.retries, 1);
        assert_eq!(r.failures.len(), 1);
        assert!(r.panics.is_empty());
    }

    #[test]
    fn permanent_fast_fault_degrades_to_reference() {
        let catalog = Catalog::paper();
        let props = PropDb::new();
        let breaker = Breaker::new(usize::MAX);
        let ladder = Ladder {
            catalog: &catalog,
            props: &props,
            breaker: &breaker,
            metrics: None,
            tracer: None,
            shard: 0,
            park: None,
            tenant: None,
        };
        let opts = RequestOptions {
            force_fail: vec![Rung::Fast],
            backoff: Duration::from_micros(50),
            ..RequestOptions::default()
        };
        let r = ladder.run(2, &Arc::new(tower(4)), &opts, None);
        assert_eq!(
            r.outcome,
            Outcome::Optimized {
                rung: Rung::Reference
            }
        );
        assert_eq!(r.failures.len(), 2);
    }

    #[test]
    fn both_rungs_down_returns_passthrough_plan() {
        let catalog = Catalog::paper();
        let props = PropDb::new();
        let breaker = Breaker::new(usize::MAX);
        let ladder = Ladder {
            catalog: &catalog,
            props: &props,
            breaker: &breaker,
            metrics: None,
            tracer: None,
            shard: 0,
            park: None,
            tenant: None,
        };
        let opts = RequestOptions {
            force_fail: vec![Rung::Fast, Rung::Reference],
            backoff: Duration::from_micros(50),
            ..RequestOptions::default()
        };
        let q = Arc::new(tower(4));
        let r = ladder.run(3, &q, &opts, None);
        assert_eq!(r.outcome, Outcome::Passthrough);
        assert_eq!(r.plan, q);
        assert!(r.report.is_none());
    }
}
