#![warn(missing_docs)]
//! # kola-service — a concurrent optimization service over the KOLA stack
//!
//! The paper treats the optimizer as a library; a deployed optimizer is a
//! *service*: requests arrive concurrently as text, carry deadlines, and
//! must always get an answer — a query optimizer that crashes or hangs
//! takes the whole database front door with it. This crate wraps the
//! governed rewrite engines of `kola-rewrite` in that service shell:
//!
//! - [`service::Service`] — a bounded, per-worker-sharded work queue (with
//!   work-stealing) in front of a pool of panic-isolated worker threads,
//!   each owning a long-lived fast engine whose arena, marks, and memo
//!   persist across requests. A full queue sheds load with a structured
//!   [`request::Outcome::Overloaded`] rejection — decided from one
//!   lock-free depth counter — instead of blocking or growing without
//!   bound.
//! - [`snapshot::SnapshotCell`] — the read-mostly published rule-set
//!   snapshot workers run under: one atomic load per request in steady
//!   state, an `Arc` swap when the breaker trips or resets, and an epoch
//!   that scopes the persistent engines' caches to one rule set.
//! - [`ladder::Ladder`] — the three-rung degradation ladder each worker
//!   runs: the fast (interned + indexed + memoized) engine first, the boxed
//!   reference engine second, and an unoptimized passthrough of the input
//!   last. Every rung runs under the request's remaining deadline with one
//!   jittered-backoff retry, so a transient injected fault costs a retry,
//!   not the request.
//! - [`breaker::Breaker`] — a cross-request per-rule circuit breaker: a
//!   rule implicated in repeated failures (injected faults, poison-rule
//!   panics, oversize results) is evicted from the rule set handed to the
//!   engines — and thereby from the fast engine's `RuleIndex` — until an
//!   operator resets it. This extends the per-run quarantine of
//!   `kola-rewrite::budget` across requests. Failure charges land in
//!   per-worker shards of relaxed atomic counters, so a fault-saturated
//!   stream scales with workers; trips fold the shards and stay
//!   byte-identical to the single-lock [`breaker::GlobalBreaker`] spec
//!   (see `tests/breaker_parity.rs`).
//! - [`metrics`] — the service's lock-free metric surface (built on
//!   `kola-obs`): request-lifecycle counters arranged as conservation
//!   invariants the chaos soak audits, per-rule attempt/fire families,
//!   latency/queue-depth histograms, and engine odometers delta-flushed
//!   from each worker's persistent engine. With
//!   [`service::ServiceConfig::tracing`] on, every successful optimization
//!   also records a structured `kola_obs::RewriteTrace` that replays
//!   byte-for-byte on the boxed reference engine.
//! - [`tenant`] — named tenant namespaces: each tenant owns its own
//!   breaker, published rule-set snapshot, and admission quota, with
//!   tenant-salted plan-cache keys and per-tenant metric families, so one
//!   tenant's poison traffic trips, invalidates, and backpressures only
//!   itself ([`chaos::run_noisy_neighbor`] proves the victim's outcome
//!   taxonomy is unchanged under an aggressor).
//! - [`chaos`] — a deterministic chaos-soak harness mixing well-formed
//!   queries, adversarially deep terms, poison rules, and random deadlines,
//!   asserting that every request terminates with a classified outcome,
//!   that no panic escapes a worker, that the metric books balance, and
//!   that every recorded trace replays exactly.
//!
//! Degradation preserves exactness: with no faults injected the service
//! answer is byte-identical to a direct [`kola_rewrite::Runner`] run on the
//! fast engine, and with the fast rung forced down it is byte-identical to
//! the boxed reference engine (see `tests/service.rs`).

pub mod breaker;
mod cache;
pub mod chaos;
pub mod ladder;
pub mod metrics;
pub mod request;
pub mod service;
pub mod snapshot;
pub mod tenant;

pub use breaker::{Breaker, BreakerEntry, GlobalBreaker};
pub use chaos::{
    generate_clean_request, percentile, run_chaos, run_clean_stream, run_noisy_neighbor,
    run_repeated_stream, ChaosConfig, ChaosReport, CleanConfig, CleanReport, RepeatedConfig,
    RepeatedReport, TenantChaosConfig, TenantChaosReport, PEAK_ARENA_BOUND,
};
pub use ladder::{Ladder, LadderResult, ReferenceRung, RetryPark, Rung};
pub use metrics::{conservation_violations, ServiceMetrics};
pub use request::{Outcome, Payload, Request, RequestOptions, Response};
pub use service::{Pending, Service, ServiceConfig};
pub use snapshot::{EpochScope, RuleSnapshot, SnapshotCell};
pub use tenant::{TenantState, Tenants, DEFAULT_TENANT};
