//! The service's metric surface: every counter the request lifecycle
//! touches, built on `kola-obs`'s lock-free instruments.
//!
//! The counters form two **conservation invariants** that hold whenever the
//! service is quiescent (every submitted request has been answered):
//!
//! ```text
//! submitted  == overloaded + rejected_invalid + admitted + cache_hits
//! admitted   == optimized_fast + optimized_reference + passthrough
//!               + completed_invalid + panicked
//! cache_hits == Σ cache_served[label]
//! ```
//!
//! The first partitions admissions (shed at the door, rejected at the door,
//! queued, or answered at the door from the plan cache — a cache hit never
//! consumes queue depth or a worker, so it is its own admission class), the
//! second partitions completions (each admitted request bumps exactly one
//! terminal counter before its reply is sent, so a client that has every
//! reply in hand can check the books), and the third ties every cache hit
//! to the outcome taxonomy it was served under. The chaos soak asserts all
//! three over its full run ([`conservation_violations`]).
//!
//! `cache_hits` counts both direct hits (answered on the submitting thread
//! from a resident entry) and coalesced identical misses (parked on an
//! in-flight leader, answered from its one engine pass); the latter are
//! additionally counted in `cache_coalesced`. The leader itself is an
//! ordinary admitted request — only the waiters are hits.
//!
//! On a multi-tenant service every lifecycle counter above also has a
//! per-tenant **family** (`tenant_submitted`, `tenant_admitted`, …) labeled
//! by tenant name, and a per-tenant latency histogram
//! (`tenant_latency_us/<name>`). The conservation invariants then hold
//! twice over: per tenant label, and in aggregate — with the additional
//! cross-check that each family sums to its aggregate counter. A request
//! naming a tenant the service does not serve lands in the family's
//! catch-all `other` lane, which participates in the per-label equations
//! like any tenant.

use kola_obs::{Counter, CounterFamily, Histogram, MaxGauge, Registry, Snapshot};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Handles into the service's metric [`Registry`]. All hot-path recording
/// goes through these `Arc`s — lock-free, allocation-free; the registry
/// itself is only locked to snapshot.
#[derive(Debug)]
pub struct ServiceMetrics {
    registry: Registry,
    /// Requests presented to [`crate::Service::submit`].
    pub submitted: Arc<Counter>,
    /// Shed at the door: queue full.
    pub overloaded: Arc<Counter>,
    /// Rejected at the door: oversized payload.
    pub rejected_invalid: Arc<Counter>,
    /// Dequeued by a worker (every one terminates in exactly one of the
    /// five completion counters below).
    pub admitted: Arc<Counter>,
    /// Completed `Optimized { rung: Fast }`.
    pub optimized_fast: Arc<Counter>,
    /// Completed `Optimized { rung: Reference }`.
    pub optimized_reference: Arc<Counter>,
    /// Completed `Passthrough` (ladder exhausted or semantic-gate degrade).
    pub passthrough: Arc<Counter>,
    /// Completed `Invalid` in the worker (parse failure).
    pub completed_invalid: Arc<Counter>,
    /// Panics that reached the worker boundary (answered `Invalid`; counted
    /// here, not in `completed_invalid`, so the books distinguish them).
    pub panicked: Arc<Counter>,
    /// Plan-cache hits: requests answered without admission (direct hits
    /// plus coalesced waiters; see module docs).
    pub cache_hits: Arc<Counter>,
    /// Plan-cache misses that went on to an engine pass (flight leaders
    /// and solo computations).
    pub cache_misses: Arc<Counter>,
    /// Identical concurrent misses parked on an in-flight leader instead
    /// of consuming a queue slot (subset of `cache_hits`).
    pub cache_coalesced: Arc<Counter>,
    /// Stale-generation entries reclaimed lazily on lookup (the breaker
    /// generation moved since the plan was derived).
    pub cache_stale: Arc<Counter>,
    /// Entries displaced by CLOCK/second-chance eviction.
    pub cache_evicted: Arc<Counter>,
    /// Plans inserted into the cache by flight leaders.
    pub cache_insertions: Arc<Counter>,
    /// Cache hits by the outcome they served, labeled
    /// `fast` / `reference` / `passthrough` / `invalid` (only `fast` plans
    /// are inserted today; the full taxonomy keeps the conservation
    /// cross-check honest if that ever widens).
    pub cache_served: Arc<CounterFamily>,
    /// Submit-to-reply latency (µs) of direct cache hits — the headline
    /// "served without touching a worker engine" number.
    pub cache_hit_latency_us: Arc<Histogram>,
    /// Ladder retries taken (all rungs).
    pub retries: Arc<Counter>,
    /// Poison-rule panics caught *and classified* by the ladder.
    pub caught_panics: Arc<Counter>,
    /// Optimized plans degraded to passthrough by the semantic gate.
    pub gate_degradations: Arc<Counter>,
    /// Failed rung attempts, labeled `fast` / `reference`.
    pub rung_failures: Arc<CounterFamily>,
    /// Engine node visits attributed to requests (delta-flushed per
    /// request from the worker's persistent engine).
    pub engine_visits: Arc<Counter>,
    /// Engine interner constructions (arena cache misses).
    pub engine_constructed: Arc<Counter>,
    /// Normalization-memo replays.
    pub engine_memo_hits: Arc<Counter>,
    /// Normalization-memo lookups (hits + misses).
    pub engine_memo_lookups: Arc<Counter>,
    /// Bounded-arena compactions across all worker engines.
    pub engine_compactions: Arc<Counter>,
    /// High-water mark of any worker engine's arena (live nodes).
    pub arena_peak: Arc<MaxGauge>,
    /// Discrimination-tree shape, as reported by the worker engines'
    /// [`kola_rewrite::IndexStats`]: total trie nodes across the three
    /// per-level trees.
    pub index_tree_nodes: Arc<MaxGauge>,
    /// Deepest path in any level's tree (pattern-walk length).
    pub index_tree_max_depth: Arc<MaxGauge>,
    /// Total edges (symbol + wildcard) across the trees.
    pub index_tree_edges: Arc<MaxGauge>,
    /// Wildcard (metavariable) edges — the non-discriminating fraction.
    pub index_tree_wildcard_edges: Arc<MaxGauge>,
    /// Mean interior-node fanout, in thousandths (gauges are integers).
    pub index_tree_mean_fanout_milli: Arc<MaxGauge>,
    /// Rule application *attempts* per rule id (the candidate scans the
    /// discrimination-tree index could not rule out).
    pub rules_attempted: Arc<CounterFamily>,
    /// Successful rule firings per rule id.
    pub rules_fired: Arc<CounterFamily>,
    /// Queue depth observed at each successful admission.
    pub queue_depth: Arc<Histogram>,
    /// Deadline remaining (µs) when a worker dequeued the request — how
    /// much of each budget the queue already spent.
    pub deadline_remaining_us: Arc<Histogram>,
    /// End-to-end latency (µs) of worker-completed requests.
    pub latency_us: Arc<Histogram>,
    /// Wall-clock µs workers spent handling requests (utilization numerator).
    pub worker_busy_us: Arc<Counter>,
    /// Per-tenant `submitted`, labeled by tenant name (unknown tenants
    /// land in the family's `other` lane).
    pub tenant_submitted: Arc<CounterFamily>,
    /// Per-tenant `overloaded` — includes requests shed by the tenant's own
    /// admission quota while other tenants kept admitting.
    pub tenant_overloaded: Arc<CounterFamily>,
    /// Per-tenant `rejected_invalid` (oversized payloads and unknown
    /// tenant names; the latter count in `other`).
    pub tenant_rejected_invalid: Arc<CounterFamily>,
    /// Per-tenant `admitted`.
    pub tenant_admitted: Arc<CounterFamily>,
    /// Per-tenant `cache_hits` — zero cross-tenant hits is an isolation
    /// invariant, so these sum to the aggregate exactly.
    pub tenant_cache_hits: Arc<CounterFamily>,
    /// Per-tenant `optimized_fast`.
    pub tenant_optimized_fast: Arc<CounterFamily>,
    /// Per-tenant `optimized_reference`.
    pub tenant_optimized_reference: Arc<CounterFamily>,
    /// Per-tenant `passthrough`.
    pub tenant_passthrough: Arc<CounterFamily>,
    /// Per-tenant `completed_invalid`.
    pub tenant_completed_invalid: Arc<CounterFamily>,
    /// Per-tenant `panicked`.
    pub tenant_panicked: Arc<CounterFamily>,
    /// Per-tenant end-to-end latency histograms, indexed by tenant slot;
    /// registered as `tenant_latency_us/<name>` (names escape in JSON).
    pub tenant_latency_us: Vec<Arc<Histogram>>,
}

impl ServiceMetrics {
    /// Single-tenant metrics: one `"default"` tenant lane behind the
    /// aggregate counters.
    pub fn new(rule_ids: &[String], queue_capacity: usize) -> ServiceMetrics {
        ServiceMetrics::with_tenants(
            rule_ids,
            queue_capacity,
            &[crate::tenant::DEFAULT_TENANT.to_string()],
        )
    }

    /// Metrics over the served catalog: `rule_ids` (catalog order) label
    /// the per-rule families, `queue_capacity` shapes the depth histogram,
    /// and `tenant_names` label the per-tenant lifecycle families.
    pub fn with_tenants(
        rule_ids: &[String],
        queue_capacity: usize,
        tenant_names: &[String],
    ) -> ServiceMetrics {
        let registry = Registry::new();
        let tenants = |name: &str| registry.family(name, tenant_names.iter().cloned());
        // One hour in µs comfortably tops any latency/deadline this
        // service sees; pow2 buckets keep the scan short.
        let us_cap = 3_600_000_000;
        ServiceMetrics {
            submitted: registry.counter("submitted"),
            overloaded: registry.counter("overloaded"),
            rejected_invalid: registry.counter("rejected_invalid"),
            admitted: registry.counter("admitted"),
            optimized_fast: registry.counter("optimized_fast"),
            optimized_reference: registry.counter("optimized_reference"),
            passthrough: registry.counter("passthrough"),
            completed_invalid: registry.counter("completed_invalid"),
            panicked: registry.counter("panicked"),
            cache_hits: registry.counter("cache_hits"),
            cache_misses: registry.counter("cache_misses"),
            cache_coalesced: registry.counter("cache_coalesced"),
            cache_stale: registry.counter("cache_stale"),
            cache_evicted: registry.counter("cache_evicted"),
            cache_insertions: registry.counter("cache_insertions"),
            cache_served: registry.family(
                "cache_served",
                ["fast", "reference", "passthrough", "invalid"],
            ),
            cache_hit_latency_us: registry.histogram("cache_hit_latency_us", &pow2_bounds(us_cap)),
            retries: registry.counter("retries"),
            caught_panics: registry.counter("caught_panics"),
            gate_degradations: registry.counter("gate_degradations"),
            rung_failures: registry.family("rung_failures", ["fast", "reference"]),
            engine_visits: registry.counter("engine_visits"),
            engine_constructed: registry.counter("engine_constructed"),
            engine_memo_hits: registry.counter("engine_memo_hits"),
            engine_memo_lookups: registry.counter("engine_memo_lookups"),
            engine_compactions: registry.counter("engine_compactions"),
            arena_peak: registry.max_gauge("arena_peak"),
            index_tree_nodes: registry.max_gauge("index_tree_nodes"),
            index_tree_max_depth: registry.max_gauge("index_tree_max_depth"),
            index_tree_edges: registry.max_gauge("index_tree_edges"),
            index_tree_wildcard_edges: registry.max_gauge("index_tree_wildcard_edges"),
            index_tree_mean_fanout_milli: registry.max_gauge("index_tree_mean_fanout_milli"),
            rules_attempted: registry.family("rules_attempted", rule_ids.iter().cloned()),
            rules_fired: registry.family("rules_fired", rule_ids.iter().cloned()),
            queue_depth: registry
                .histogram("queue_depth", &pow2_bounds(queue_capacity.max(1) as u64)),
            deadline_remaining_us: registry
                .histogram("deadline_remaining_us", &pow2_bounds(us_cap)),
            latency_us: registry.histogram("latency_us", &pow2_bounds(us_cap)),
            worker_busy_us: registry.counter("worker_busy_us"),
            tenant_submitted: tenants("tenant_submitted"),
            tenant_overloaded: tenants("tenant_overloaded"),
            tenant_rejected_invalid: tenants("tenant_rejected_invalid"),
            tenant_admitted: tenants("tenant_admitted"),
            tenant_cache_hits: tenants("tenant_cache_hits"),
            tenant_optimized_fast: tenants("tenant_optimized_fast"),
            tenant_optimized_reference: tenants("tenant_optimized_reference"),
            tenant_passthrough: tenants("tenant_passthrough"),
            tenant_completed_invalid: tenants("tenant_completed_invalid"),
            tenant_panicked: tenants("tenant_panicked"),
            tenant_latency_us: tenant_names
                .iter()
                .map(|name| {
                    registry.histogram(&format!("tenant_latency_us/{name}"), &pow2_bounds(us_cap))
                })
                .collect(),
            registry,
        }
    }

    /// Plain-data copy of every instrument.
    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }
}

fn pow2_bounds(cap: u64) -> Vec<u64> {
    let mut bounds = Vec::new();
    let mut b = 1u64;
    loop {
        bounds.push(b);
        if b >= cap {
            break;
        }
        b = b.saturating_mul(2);
    }
    bounds
}

/// Check the conservation invariants (module docs) against a quiescent
/// snapshot. Returns one message per violated equation — empty means the
/// books balance.
pub fn conservation_violations(s: &Snapshot) -> Vec<String> {
    let mut v = Vec::new();
    let submitted = s.counter("submitted");
    let admissions = s.counter("overloaded")
        + s.counter("rejected_invalid")
        + s.counter("admitted")
        + s.counter("cache_hits");
    if submitted != admissions {
        v.push(format!(
            "admission books unbalanced: submitted {} != overloaded {} + rejected_invalid {} + admitted {} + cache_hits {}",
            submitted,
            s.counter("overloaded"),
            s.counter("rejected_invalid"),
            s.counter("admitted"),
            s.counter("cache_hits"),
        ));
    }
    let admitted = s.counter("admitted");
    let completions = s.counter("optimized_fast")
        + s.counter("optimized_reference")
        + s.counter("passthrough")
        + s.counter("completed_invalid")
        + s.counter("panicked");
    if admitted != completions {
        v.push(format!(
            "completion books unbalanced: admitted {} != optimized_fast {} + optimized_reference {} + passthrough {} + completed_invalid {} + panicked {}",
            admitted,
            s.counter("optimized_fast"),
            s.counter("optimized_reference"),
            s.counter("passthrough"),
            s.counter("completed_invalid"),
            s.counter("panicked"),
        ));
    }
    let hits = s.counter("cache_hits");
    let served: u64 = s.family("cache_served").iter().map(|(_, n)| n).sum();
    if hits != served {
        v.push(format!(
            "cache books unbalanced: cache_hits {hits} != Σ cache_served {served}",
        ));
    }

    // Per-tenant books: the same two equations per tenant label, plus the
    // cross-check that each per-tenant family sums to its aggregate
    // counter. Family snapshots report only nonzero lanes, so take the
    // union of labels across all ten families (this includes the `other`
    // catch-all lane unknown-tenant submissions land in).
    const TENANT_FAMILIES: [&str; 10] = [
        "tenant_submitted",
        "tenant_overloaded",
        "tenant_rejected_invalid",
        "tenant_admitted",
        "tenant_cache_hits",
        "tenant_optimized_fast",
        "tenant_optimized_reference",
        "tenant_passthrough",
        "tenant_completed_invalid",
        "tenant_panicked",
    ];
    let lane = |family: &str, label: &str| -> u64 {
        s.family(family)
            .iter()
            .find(|(l, _)| l == label)
            .map(|&(_, n)| n)
            .unwrap_or(0)
    };
    let labels: BTreeSet<String> = TENANT_FAMILIES
        .iter()
        .flat_map(|f| s.family(f).iter().map(|(l, _)| l.clone()))
        .collect();
    for label in &labels {
        let submitted = lane("tenant_submitted", label);
        let admissions = lane("tenant_overloaded", label)
            + lane("tenant_rejected_invalid", label)
            + lane("tenant_admitted", label)
            + lane("tenant_cache_hits", label);
        if submitted != admissions {
            v.push(format!(
                "tenant {label:?} admission books unbalanced: submitted {} != overloaded {} + rejected_invalid {} + admitted {} + cache_hits {}",
                submitted,
                lane("tenant_overloaded", label),
                lane("tenant_rejected_invalid", label),
                lane("tenant_admitted", label),
                lane("tenant_cache_hits", label),
            ));
        }
        let admitted = lane("tenant_admitted", label);
        let completions = lane("tenant_optimized_fast", label)
            + lane("tenant_optimized_reference", label)
            + lane("tenant_passthrough", label)
            + lane("tenant_completed_invalid", label)
            + lane("tenant_panicked", label);
        if admitted != completions {
            v.push(format!(
                "tenant {label:?} completion books unbalanced: admitted {} != optimized_fast {} + optimized_reference {} + passthrough {} + completed_invalid {} + panicked {}",
                admitted,
                lane("tenant_optimized_fast", label),
                lane("tenant_optimized_reference", label),
                lane("tenant_passthrough", label),
                lane("tenant_completed_invalid", label),
                lane("tenant_panicked", label),
            ));
        }
    }
    for (family, aggregate) in [
        ("tenant_submitted", "submitted"),
        ("tenant_overloaded", "overloaded"),
        ("tenant_rejected_invalid", "rejected_invalid"),
        ("tenant_admitted", "admitted"),
        ("tenant_cache_hits", "cache_hits"),
        ("tenant_optimized_fast", "optimized_fast"),
        ("tenant_optimized_reference", "optimized_reference"),
        ("tenant_passthrough", "passthrough"),
        ("tenant_completed_invalid", "completed_invalid"),
        ("tenant_panicked", "panicked"),
    ] {
        let total: u64 = s.family(family).iter().map(|(_, n)| n).sum();
        let agg = s.counter(aggregate);
        if total != agg {
            v.push(format!(
                "tenant partition unbalanced: Σ {family} {total} != {aggregate} {agg}",
            ));
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservation_detects_imbalance() {
        let m = ServiceMetrics::new(&["11".to_string()], 64);
        assert!(conservation_violations(&m.snapshot()).is_empty());
        // Each lifecycle event lands in the aggregate counter *and* its
        // tenant lane, so an imbalance shows up in both sets of books.
        m.submitted.add(3);
        m.tenant_submitted.add_index(0, 3);
        m.overloaded.inc();
        m.tenant_overloaded.add_index(0, 1);
        m.admitted.add(2);
        m.tenant_admitted.add_index(0, 2);
        m.optimized_fast.inc();
        m.tenant_optimized_fast.add_index(0, 1);
        // One admitted request unaccounted for — aggregate and per-tenant.
        let v = conservation_violations(&m.snapshot());
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.contains("completion books")));
        m.passthrough.inc();
        m.tenant_passthrough.add_index(0, 1);
        assert!(conservation_violations(&m.snapshot()).is_empty());
        m.submitted.inc();
        m.tenant_submitted.add_index(0, 1);
        let v = conservation_violations(&m.snapshot());
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.contains("admission books")));
        // A cache hit is its own admission class…
        m.cache_hits.inc();
        m.tenant_cache_hits.add_index(0, 1);
        // …but must be tied to the outcome it served.
        let v = conservation_violations(&m.snapshot());
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("cache books"));
        m.cache_served.add_index(0, 1);
        assert!(conservation_violations(&m.snapshot()).is_empty());
    }

    #[test]
    fn tenant_books_are_checked_per_label_and_against_aggregates() {
        let two_tenants = || {
            ServiceMetrics::with_tenants(
                &["11".to_string()],
                64,
                &["victim".to_string(), "aggressor".to_string()],
            )
        };

        // Balanced: one fast completion for victim, one panic for
        // aggressor, fully mirrored in the aggregates — and an unknown
        // tenant rejected into the `other` catch-all lane, which obeys the
        // per-label equations like any tenant.
        let m = two_tenants();
        m.submitted.add(3);
        m.admitted.add(2);
        m.optimized_fast.inc();
        m.panicked.inc();
        m.rejected_invalid.inc();
        m.tenant_submitted.add("victim", 1);
        m.tenant_admitted.add("victim", 1);
        m.tenant_optimized_fast.add("victim", 1);
        m.tenant_submitted.add("aggressor", 1);
        m.tenant_admitted.add("aggressor", 1);
        m.tenant_panicked.add("aggressor", 1);
        m.tenant_submitted.add_index(usize::MAX, 1);
        m.tenant_rejected_invalid.add_index(usize::MAX, 1);
        assert!(conservation_violations(&m.snapshot()).is_empty());

        // A completion charged to the wrong tenant balances in aggregate
        // but trips both tenants' per-label books.
        let m = two_tenants();
        m.submitted.inc();
        m.admitted.inc();
        m.passthrough.inc();
        m.tenant_submitted.add("victim", 1);
        m.tenant_admitted.add("victim", 1);
        m.tenant_passthrough.add("aggressor", 1);
        let v = conservation_violations(&m.snapshot());
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|v| v.contains("\"victim\" completion")));
        assert!(v.iter().any(|v| v.contains("\"aggressor\" completion")));

        // Σ family must equal the aggregate: a request counted only in the
        // aggregates (no tenant lane at all) balances the aggregate books
        // and trips no per-label equation — only the partition cross-check
        // catches it.
        let m = two_tenants();
        m.submitted.inc();
        m.cache_hits.inc();
        m.cache_served.add_index(0, 1);
        let v = conservation_violations(&m.snapshot());
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|v| v.contains("Σ tenant_submitted")));
        assert!(v.iter().any(|v| v.contains("Σ tenant_cache_hits")));
    }

    #[test]
    fn families_label_rules() {
        let m = ServiceMetrics::new(&["11".to_string(), "9".to_string()], 8);
        m.rules_fired.add("9", 2);
        m.rules_attempted.add_index(0, 5);
        let s = m.snapshot();
        assert_eq!(s.family("rules_fired"), &[("9".to_string(), 2)]);
        assert_eq!(s.family("rules_attempted"), &[("11".to_string(), 5)]);
    }
}
