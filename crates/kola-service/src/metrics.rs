//! The service's metric surface: every counter the request lifecycle
//! touches, built on `kola-obs`'s lock-free instruments.
//!
//! The counters form two **conservation invariants** that hold whenever the
//! service is quiescent (every submitted request has been answered):
//!
//! ```text
//! submitted  == overloaded + rejected_invalid + admitted + cache_hits
//! admitted   == optimized_fast + optimized_reference + passthrough
//!               + completed_invalid + panicked
//! cache_hits == Σ cache_served[label]
//! ```
//!
//! The first partitions admissions (shed at the door, rejected at the door,
//! queued, or answered at the door from the plan cache — a cache hit never
//! consumes queue depth or a worker, so it is its own admission class), the
//! second partitions completions (each admitted request bumps exactly one
//! terminal counter before its reply is sent, so a client that has every
//! reply in hand can check the books), and the third ties every cache hit
//! to the outcome taxonomy it was served under. The chaos soak asserts all
//! three over its full run ([`conservation_violations`]).
//!
//! `cache_hits` counts both direct hits (answered on the submitting thread
//! from a resident entry) and coalesced identical misses (parked on an
//! in-flight leader, answered from its one engine pass); the latter are
//! additionally counted in `cache_coalesced`. The leader itself is an
//! ordinary admitted request — only the waiters are hits.

use kola_obs::{Counter, CounterFamily, Histogram, MaxGauge, Registry, Snapshot};
use std::sync::Arc;

/// Handles into the service's metric [`Registry`]. All hot-path recording
/// goes through these `Arc`s — lock-free, allocation-free; the registry
/// itself is only locked to snapshot.
#[derive(Debug)]
pub struct ServiceMetrics {
    registry: Registry,
    /// Requests presented to [`crate::Service::submit`].
    pub submitted: Arc<Counter>,
    /// Shed at the door: queue full.
    pub overloaded: Arc<Counter>,
    /// Rejected at the door: oversized payload.
    pub rejected_invalid: Arc<Counter>,
    /// Dequeued by a worker (every one terminates in exactly one of the
    /// five completion counters below).
    pub admitted: Arc<Counter>,
    /// Completed `Optimized { rung: Fast }`.
    pub optimized_fast: Arc<Counter>,
    /// Completed `Optimized { rung: Reference }`.
    pub optimized_reference: Arc<Counter>,
    /// Completed `Passthrough` (ladder exhausted or semantic-gate degrade).
    pub passthrough: Arc<Counter>,
    /// Completed `Invalid` in the worker (parse failure).
    pub completed_invalid: Arc<Counter>,
    /// Panics that reached the worker boundary (answered `Invalid`; counted
    /// here, not in `completed_invalid`, so the books distinguish them).
    pub panicked: Arc<Counter>,
    /// Plan-cache hits: requests answered without admission (direct hits
    /// plus coalesced waiters; see module docs).
    pub cache_hits: Arc<Counter>,
    /// Plan-cache misses that went on to an engine pass (flight leaders
    /// and solo computations).
    pub cache_misses: Arc<Counter>,
    /// Identical concurrent misses parked on an in-flight leader instead
    /// of consuming a queue slot (subset of `cache_hits`).
    pub cache_coalesced: Arc<Counter>,
    /// Stale-generation entries reclaimed lazily on lookup (the breaker
    /// generation moved since the plan was derived).
    pub cache_stale: Arc<Counter>,
    /// Entries displaced by CLOCK/second-chance eviction.
    pub cache_evicted: Arc<Counter>,
    /// Plans inserted into the cache by flight leaders.
    pub cache_insertions: Arc<Counter>,
    /// Cache hits by the outcome they served, labeled
    /// `fast` / `reference` / `passthrough` / `invalid` (only `fast` plans
    /// are inserted today; the full taxonomy keeps the conservation
    /// cross-check honest if that ever widens).
    pub cache_served: Arc<CounterFamily>,
    /// Submit-to-reply latency (µs) of direct cache hits — the headline
    /// "served without touching a worker engine" number.
    pub cache_hit_latency_us: Arc<Histogram>,
    /// Ladder retries taken (all rungs).
    pub retries: Arc<Counter>,
    /// Poison-rule panics caught *and classified* by the ladder.
    pub caught_panics: Arc<Counter>,
    /// Optimized plans degraded to passthrough by the semantic gate.
    pub gate_degradations: Arc<Counter>,
    /// Failed rung attempts, labeled `fast` / `reference`.
    pub rung_failures: Arc<CounterFamily>,
    /// Engine node visits attributed to requests (delta-flushed per
    /// request from the worker's persistent engine).
    pub engine_visits: Arc<Counter>,
    /// Engine interner constructions (arena cache misses).
    pub engine_constructed: Arc<Counter>,
    /// Normalization-memo replays.
    pub engine_memo_hits: Arc<Counter>,
    /// Normalization-memo lookups (hits + misses).
    pub engine_memo_lookups: Arc<Counter>,
    /// Bounded-arena compactions across all worker engines.
    pub engine_compactions: Arc<Counter>,
    /// High-water mark of any worker engine's arena (live nodes).
    pub arena_peak: Arc<MaxGauge>,
    /// Rule application *attempts* per rule id (the candidate scans the
    /// head-symbol index could not rule out).
    pub rules_attempted: Arc<CounterFamily>,
    /// Successful rule firings per rule id.
    pub rules_fired: Arc<CounterFamily>,
    /// Queue depth observed at each successful admission.
    pub queue_depth: Arc<Histogram>,
    /// Deadline remaining (µs) when a worker dequeued the request — how
    /// much of each budget the queue already spent.
    pub deadline_remaining_us: Arc<Histogram>,
    /// End-to-end latency (µs) of worker-completed requests.
    pub latency_us: Arc<Histogram>,
    /// Wall-clock µs workers spent handling requests (utilization numerator).
    pub worker_busy_us: Arc<Counter>,
}

impl ServiceMetrics {
    /// Metrics over the served catalog: `rule_ids` (catalog order) label
    /// the per-rule families and `queue_capacity` shapes the depth
    /// histogram.
    pub fn new(rule_ids: &[String], queue_capacity: usize) -> ServiceMetrics {
        let registry = Registry::new();
        // One hour in µs comfortably tops any latency/deadline this
        // service sees; pow2 buckets keep the scan short.
        let us_cap = 3_600_000_000;
        ServiceMetrics {
            submitted: registry.counter("submitted"),
            overloaded: registry.counter("overloaded"),
            rejected_invalid: registry.counter("rejected_invalid"),
            admitted: registry.counter("admitted"),
            optimized_fast: registry.counter("optimized_fast"),
            optimized_reference: registry.counter("optimized_reference"),
            passthrough: registry.counter("passthrough"),
            completed_invalid: registry.counter("completed_invalid"),
            panicked: registry.counter("panicked"),
            cache_hits: registry.counter("cache_hits"),
            cache_misses: registry.counter("cache_misses"),
            cache_coalesced: registry.counter("cache_coalesced"),
            cache_stale: registry.counter("cache_stale"),
            cache_evicted: registry.counter("cache_evicted"),
            cache_insertions: registry.counter("cache_insertions"),
            cache_served: registry.family(
                "cache_served",
                ["fast", "reference", "passthrough", "invalid"],
            ),
            cache_hit_latency_us: registry.histogram("cache_hit_latency_us", &pow2_bounds(us_cap)),
            retries: registry.counter("retries"),
            caught_panics: registry.counter("caught_panics"),
            gate_degradations: registry.counter("gate_degradations"),
            rung_failures: registry.family("rung_failures", ["fast", "reference"]),
            engine_visits: registry.counter("engine_visits"),
            engine_constructed: registry.counter("engine_constructed"),
            engine_memo_hits: registry.counter("engine_memo_hits"),
            engine_memo_lookups: registry.counter("engine_memo_lookups"),
            engine_compactions: registry.counter("engine_compactions"),
            arena_peak: registry.max_gauge("arena_peak"),
            rules_attempted: registry.family("rules_attempted", rule_ids.iter().cloned()),
            rules_fired: registry.family("rules_fired", rule_ids.iter().cloned()),
            queue_depth: registry
                .histogram("queue_depth", &pow2_bounds(queue_capacity.max(1) as u64)),
            deadline_remaining_us: registry
                .histogram("deadline_remaining_us", &pow2_bounds(us_cap)),
            latency_us: registry.histogram("latency_us", &pow2_bounds(us_cap)),
            worker_busy_us: registry.counter("worker_busy_us"),
            registry,
        }
    }

    /// Plain-data copy of every instrument.
    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }
}

fn pow2_bounds(cap: u64) -> Vec<u64> {
    let mut bounds = Vec::new();
    let mut b = 1u64;
    loop {
        bounds.push(b);
        if b >= cap {
            break;
        }
        b = b.saturating_mul(2);
    }
    bounds
}

/// Check the conservation invariants (module docs) against a quiescent
/// snapshot. Returns one message per violated equation — empty means the
/// books balance.
pub fn conservation_violations(s: &Snapshot) -> Vec<String> {
    let mut v = Vec::new();
    let submitted = s.counter("submitted");
    let admissions = s.counter("overloaded")
        + s.counter("rejected_invalid")
        + s.counter("admitted")
        + s.counter("cache_hits");
    if submitted != admissions {
        v.push(format!(
            "admission books unbalanced: submitted {} != overloaded {} + rejected_invalid {} + admitted {} + cache_hits {}",
            submitted,
            s.counter("overloaded"),
            s.counter("rejected_invalid"),
            s.counter("admitted"),
            s.counter("cache_hits"),
        ));
    }
    let admitted = s.counter("admitted");
    let completions = s.counter("optimized_fast")
        + s.counter("optimized_reference")
        + s.counter("passthrough")
        + s.counter("completed_invalid")
        + s.counter("panicked");
    if admitted != completions {
        v.push(format!(
            "completion books unbalanced: admitted {} != optimized_fast {} + optimized_reference {} + passthrough {} + completed_invalid {} + panicked {}",
            admitted,
            s.counter("optimized_fast"),
            s.counter("optimized_reference"),
            s.counter("passthrough"),
            s.counter("completed_invalid"),
            s.counter("panicked"),
        ));
    }
    let hits = s.counter("cache_hits");
    let served: u64 = s.family("cache_served").iter().map(|(_, n)| n).sum();
    if hits != served {
        v.push(format!(
            "cache books unbalanced: cache_hits {hits} != Σ cache_served {served}",
        ));
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservation_detects_imbalance() {
        let m = ServiceMetrics::new(&["11".to_string()], 64);
        assert!(conservation_violations(&m.snapshot()).is_empty());
        m.submitted.add(3);
        m.overloaded.inc();
        m.admitted.add(2);
        m.optimized_fast.inc();
        // One admitted request unaccounted for.
        let v = conservation_violations(&m.snapshot());
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("completion books"));
        m.passthrough.inc();
        assert!(conservation_violations(&m.snapshot()).is_empty());
        m.submitted.inc();
        let v = conservation_violations(&m.snapshot());
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("admission books"));
        // A cache hit is its own admission class…
        m.cache_hits.inc();
        // …but must be tied to the outcome it served.
        let v = conservation_violations(&m.snapshot());
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("cache books"));
        m.cache_served.add_index(0, 1);
        assert!(conservation_violations(&m.snapshot()).is_empty());
    }

    #[test]
    fn families_label_rules() {
        let m = ServiceMetrics::new(&["11".to_string(), "9".to_string()], 8);
        m.rules_fired.add("9", 2);
        m.rules_attempted.add_index(0, 5);
        let s = m.snapshot();
        assert_eq!(s.family("rules_fired"), &[("9".to_string(), 2)]);
        assert_eq!(s.family("rules_attempted"), &[("11".to_string(), 5)]);
    }
}
