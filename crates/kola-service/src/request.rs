//! Request/response types for the optimization service.
//!
//! A request is a query in either surface syntax (OQL or KOLA text) or as
//! an already-parsed AST, plus per-request resource options. A response is
//! always produced — the service's contract is that every accepted request
//! terminates with exactly one classified [`Outcome`].

use crate::ladder::Rung;
use kola::term::Query;
use kola_rewrite::{Budget, CaughtPanic, FaultPlan, QuarantineReport, RewriteReport};
use std::sync::Arc;
use std::time::Duration;

/// The query payload of a request.
#[derive(Debug, Clone)]
pub enum Payload {
    /// Surface text: OQL (detected by its leading `select`) or KOLA
    /// concrete syntax, parsed by `kola_frontend::parse_any_query`.
    Text(String),
    /// An already-parsed query, shared by `Arc`: submission, the queued
    /// job, and the worker all borrow one allocation, so admission never
    /// deep-copies a term on the submitting thread. The chaos harness uses
    /// this lane for adversarially deep terms whose concrete syntax would
    /// be megabytes.
    Ast(Arc<Query>),
}

/// Per-request resource options. Everything a client may bound about its
/// own request; service-wide limits (queue depth, worker count, request
/// size) live in [`crate::service::ServiceConfig`].
#[derive(Debug, Clone)]
pub struct RequestOptions {
    /// Step cap for each ladder rung (see [`Budget::max_steps`]).
    pub max_steps: usize,
    /// Traversal-depth cap (see [`Budget::max_depth`]).
    pub max_depth: usize,
    /// Intermediate-term size cap (see [`Budget::max_term_size`]).
    pub max_term_size: usize,
    /// Per-run rule quarantine threshold (see [`Budget::quarantine_after`]).
    pub quarantine_after: usize,
    /// Wall-clock deadline, measured from *submission* — queue wait counts
    /// against it, as it does for the client.
    pub timeout: Option<Duration>,
    /// Injected faults, forwarded to the engines (testing/chaos surface).
    pub faults: FaultPlan,
    /// Base retry backoff; the actual sleep is jittered deterministically
    /// from the request id and capped by the remaining deadline.
    pub backoff: Duration,
    /// Injected *permanent* rung failures: listed rungs fail on every
    /// attempt (testing/chaos surface — how the parity suite forces the
    /// service down to the reference engine).
    pub force_fail: Vec<Rung>,
    /// Injected *transient* rung failures: listed rungs fail on their first
    /// attempt only, so the jittered-backoff retry succeeds.
    pub transient_fail: Vec<Rung>,
    /// Simulated pre-ladder work (testing/chaos surface — deterministic
    /// queue backpressure for the overload tests).
    pub hold_for: Option<Duration>,
}

impl Default for RequestOptions {
    fn default() -> Self {
        let b = Budget::default();
        RequestOptions {
            max_steps: b.max_steps,
            max_depth: b.max_depth,
            max_term_size: b.max_term_size,
            quarantine_after: b.quarantine_after,
            timeout: None,
            faults: FaultPlan::default(),
            backoff: Duration::from_micros(200),
            force_fail: Vec::new(),
            transient_fail: Vec::new(),
            hold_for: None,
        }
    }
}

impl RequestOptions {
    /// The per-rung [`Budget`] these options describe. The deadline is
    /// supplied by the caller (it is anchored at submission time, not at
    /// budget-construction time).
    pub fn budget(&self, deadline: Option<std::time::Instant>) -> Budget {
        let mut b = Budget::default()
            .steps(self.max_steps)
            .depth(self.max_depth)
            .term_size(self.max_term_size)
            .quarantine_after(self.quarantine_after);
        b.deadline = deadline;
        b
    }
}

/// One optimization request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The query to optimize.
    pub payload: Payload,
    /// Per-request resource options.
    pub options: RequestOptions,
    /// Tenant namespace this request runs under. `None` resolves to the
    /// service's first configured tenant (`"default"` on a single-tenant
    /// service); a name the service does not serve is rejected
    /// [`Outcome::Invalid`] at the door.
    pub tenant: Option<Arc<str>>,
}

impl Request {
    /// A request with default options.
    pub fn text(src: impl Into<String>) -> Self {
        Request {
            payload: Payload::Text(src.into()),
            options: RequestOptions::default(),
            tenant: None,
        }
    }

    /// An AST request with default options.
    pub fn ast(q: impl Into<Arc<Query>>) -> Self {
        Request {
            payload: Payload::Ast(q.into()),
            options: RequestOptions::default(),
            tenant: None,
        }
    }

    /// Replace the options (builder style).
    pub fn with_options(mut self, options: RequestOptions) -> Self {
        self.options = options;
        self
    }

    /// Address the request to tenant `name` (builder style).
    pub fn for_tenant(mut self, name: impl Into<Arc<str>>) -> Self {
        self.tenant = Some(name.into());
        self
    }
}

/// Terminal classification of a request. Every submitted request ends in
/// exactly one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// A ladder rung produced an optimized plan within budget.
    Optimized {
        /// Which rung succeeded.
        rung: Rung,
    },
    /// Every engine rung failed or the deadline expired: the input query is
    /// returned unoptimized. Slower for the executor, but correct — and an
    /// answer, not an error.
    Passthrough,
    /// The work queue was full at submission; the request was never
    /// admitted. Structured load shedding, not an error path.
    Overloaded,
    /// The request could not be parsed or violated a service-wide limit;
    /// see [`Response::error`].
    Invalid,
}

impl std::fmt::Display for Outcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Outcome::Optimized { rung } => write!(f, "optimized({rung})"),
            Outcome::Passthrough => write!(f, "passthrough"),
            Outcome::Overloaded => write!(f, "overloaded"),
            Outcome::Invalid => write!(f, "invalid"),
        }
    }
}

/// What the service sends back for one request.
#[derive(Debug, Clone)]
pub struct Response {
    /// Service-assigned request id (also the jitter seed).
    pub id: u64,
    /// Tenant namespace that served the request (the resolved name, so a
    /// `None`-tenant submission comes back labeled with the tenant it
    /// actually ran under).
    pub tenant: Arc<str>,
    /// Terminal classification.
    pub outcome: Outcome,
    /// The plan: the optimized query, or the input itself on
    /// [`Outcome::Passthrough`]. `None` only for `Overloaded`/`Invalid`.
    /// Shared by `Arc` so the plan cache can answer a hit — and a
    /// passthrough can return its input — without deep-copying the term.
    pub plan: Option<Arc<Query>>,
    /// The successful rung's rewrite report, untouched — byte-identical to
    /// what a direct [`kola_rewrite::Runner`] run would report.
    pub report: Option<RewriteReport>,
    /// Per-run quarantine state (satellite of the successful rung's
    /// report), restricted to rules the catalog owns.
    pub quarantine: QuarantineReport,
    /// Poison-rule panics caught (and attributed) during the ladder run.
    pub panics: Vec<CaughtPanic>,
    /// Retries taken across all rungs.
    pub retries: usize,
    /// Human-readable notes for every failed rung attempt, plus the parse
    /// or gate error when `outcome` is `Invalid`/degraded.
    pub error: Option<String>,
    /// End-to-end latency from submission to reply (includes queue wait).
    pub latency: Duration,
}

impl Response {
    /// Structured rejection for a request that was never admitted.
    pub(crate) fn rejected(id: u64, outcome: Outcome, why: String) -> Self {
        Response {
            id,
            tenant: Arc::from(crate::tenant::DEFAULT_TENANT),
            outcome,
            plan: None,
            report: None,
            quarantine: QuarantineReport::default(),
            panics: Vec::new(),
            retries: 0,
            error: Some(why),
            latency: Duration::ZERO,
        }
    }
}
