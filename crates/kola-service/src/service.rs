//! The concurrent optimization service: sharded bounded queue, worker pool
//! with persistent per-worker engines, panic isolation, and the semantic
//! gate.
//!
//! Request lifecycle (README "Serving" has the picture):
//!
//! ```text
//! submit ──full?──▶ Overloaded (lock-free depth check, never blocks)
//!    │
//!    ▼ queued on a per-worker shard (deadline anchored here: queue wait
//!    │                               counts; idle workers steal)
//! worker: parse text ──err──▶ Invalid
//!    │
//!    ▼ snapshot refresh: one atomic load; epoch swap on breaker change
//!    ▼ ladder: fast ▷ reference ▷ passthrough   (fast rung = the worker's
//!    │          long-lived engine; each rung: retry once, under remaining
//!    │          deadline, panics caught & attributed)
//!    ▼ semantic gate (optional): plan ≡ input on a sample database,
//!    │          else degrade to Passthrough
//!    ▼ reply: Optimized{rung} | Passthrough
//! ```
//!
//! Three structures keep the hot path off shared locks:
//!
//! - **Per-worker engines.** Each worker owns one `kola_rewrite::Engine`
//!   for its lifetime: the intern arena, normal-subtree marks, and
//!   normalization memo amortize across requests instead of being rebuilt
//!   per request. Arena growth is bounded by the engine's compaction cap,
//!   and [`Service::peak_arena_nodes`] exposes the high-water mark.
//! - **Snapshot-swapped rule state.** The served rule set is an immutable
//!   [`RuleSnapshot`](crate::snapshot::RuleSnapshot) behind an `Arc`;
//!   workers detect breaker trips/resets with one atomic generation load
//!   and swap epochs — no reader locks, no per-request catalog filtering.
//! - **Sharded admission.** One bounded queue per worker with
//!   work-stealing; the Overloaded decision reads a single lock-free depth
//!   counter, and enqueue touches only the target shard's lock.
//!
//! Workers run on dedicated threads with oversized stacks (deep-term
//! traversals are explicit-stack throughout the engine layer, but debug
//! evaluator frames are large) and wrap each request in `catch_unwind`:
//! the ladder already isolates poison-rule panics, so anything reaching
//! the worker boundary is counted in
//! [`Service::unexpected_panics`] and answered with `Invalid` — the
//! thread, and the service, survive. The engine's cross-run state survives
//! a caught panic intact (see `Engine::try_normalize_with`), so the worker
//! keeps its warm engine afterwards.

use crate::breaker::Breaker;
use crate::cache::{CacheKey, CachedPlan, Claim, PlanCache, Probe, Waiter};
use crate::ladder::{Ladder, ReferenceRung, RetryPark, Rung};
use crate::metrics::ServiceMetrics;
use crate::request::{Outcome, Payload, Request, Response};
use crate::snapshot::RuleSnapshot;
use crate::tenant::Tenants;
use kola::term::Query;
use kola::Db;
use kola_exec::datagen::{generate, DataSpec};
use kola_obs::{RewriteTrace, ShardedTraceRing, Snapshot as MetricsSnapshot};
use kola_rewrite::{
    Catalog, Engine, EngineConfig, EngineStats, Oriented, PropDb, QuarantineReport,
};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Service-wide limits and tuning.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads.
    pub workers: usize,
    /// Total work-queue capacity across all shards; submissions beyond it
    /// are shed as [`Outcome::Overloaded`].
    pub queue_capacity: usize,
    /// Cross-request breaker threshold: open a rule after this many
    /// requests in which it was implicated in a failure.
    pub breaker_threshold: usize,
    /// Reject text payloads larger than this (bytes). Text parsing is
    /// recursive; bounding the input bounds the parse.
    pub max_request_bytes: usize,
    /// Worker stack size in bytes.
    pub stack_size: usize,
    /// Run the semantic gate: evaluate input and plan on a small generated
    /// database and degrade to passthrough if they disagree.
    pub verify: bool,
    /// Record a structured [`RewriteTrace`] for every successfully
    /// optimized request. Off by default: with tracing off the fast
    /// engine's per-step trace building is disabled entirely, so the hot
    /// path carries no provenance cost (the scaling benchmark gates this).
    pub tracing: bool,
    /// Per-worker trace ring capacity when `tracing` is on — each worker's
    /// ring shard keeps the most recent this-many of *its* traces and
    /// counts evictions; the fleet-wide odometers sum the shards.
    pub trace_capacity: usize,
    /// Total plan-cache capacity (resident normalized plans across all
    /// cache shards). `0` disables the cache entirely — every request
    /// takes the worker path, which is what the parity suite compares
    /// against.
    pub cache_capacity: usize,
    /// Plan-cache shard count (clamped to at least 1 and at most the
    /// capacity). More shards, less submit-side lock contention.
    pub cache_shards: usize,
    /// Tenant namespaces to serve, in order (the first is where unlabeled
    /// requests go). Empty means one `"default"` tenant — the
    /// single-tenant service, unchanged. Each tenant owns its own breaker,
    /// rule-set snapshot generation, admission quota, and plan-cache key
    /// space (see [`crate::tenant`]).
    pub tenants: Vec<String>,
    /// Per-tenant admission quota: the most queued jobs one tenant may
    /// hold at once, layered under the global `queue_capacity`. A tenant
    /// at quota is shed [`Outcome::Overloaded`] while the others keep
    /// admitting. `0` means "no per-tenant cap beyond the global one".
    pub tenant_quota: usize,
    /// Configuration for the long-lived worker engines. Defaults to
    /// [`EngineConfig::fast`]; [`EngineConfig::saturating`] opts the whole
    /// worker fleet into equality saturation with cost-based extraction
    /// (the ladder's rungs, snapshot masking, and breaker charging are
    /// engine-mode agnostic).
    pub engine: EngineConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            queue_capacity: 64,
            breaker_threshold: 3,
            max_request_bytes: 64 * 1024,
            stack_size: 16 * 1024 * 1024,
            verify: false,
            tracing: false,
            trace_capacity: 1024,
            cache_capacity: 2048,
            cache_shards: 8,
            tenants: Vec::new(),
            tenant_quota: 0,
            engine: EngineConfig::fast(),
        }
    }
}

struct Job {
    id: u64,
    request: Request,
    submitted: Instant,
    deadline: Option<Instant>,
    reply: mpsc::Sender<Response>,
    /// The single-flight leadership ticket: `Some` iff this job registered
    /// the in-flight marker for its cache key at admission. The worker
    /// must complete it exactly once — insert the response if cacheable
    /// and answer every coalesced waiter, or requeue the waiters when the
    /// response turned out unserveable.
    cache: Option<CacheKey>,
    /// Resolved tenant index (into `Shared::tenants`).
    tenant: usize,
}

/// One worker's slice of the admission queue. Enqueue and dequeue touch
/// only this shard's lock; the global admission decision reads only
/// `Shared::depth`.
struct Shard {
    jobs: Mutex<VecDeque<Job>>,
    cv: Condvar,
}

/// An idle worker with an empty home shard parks this long before
/// re-scanning its siblings for stealable work. Submissions to its own
/// shard wake it immediately; work landing on a busy sibling's shard is
/// picked up within one poll.
const STEAL_POLL: Duration = Duration::from_micros(200);

struct Shared {
    catalog: Catalog,
    props: PropDb,
    /// The tenant table: per-tenant breaker, snapshot cell, and quota
    /// depth. A single-tenant service is a one-entry table.
    tenants: Tenants,
    verify_db: Option<Db>,
    shards: Vec<Shard>,
    /// Queued-but-unclaimed jobs across all shards: the lock-free input to
    /// the Overloaded decision.
    depth: AtomicUsize,
    /// Round-robin shard cursor for submissions.
    next_shard: AtomicUsize,
    shutdown: AtomicBool,
    capacity: usize,
    max_request_bytes: usize,
    unexpected_panics: AtomicUsize,
    /// High-water mark of any worker engine's arena, sampled after each
    /// request (the chaos soak asserts boundedness).
    peak_arena: AtomicUsize,
    /// Lock-free metric instruments (see [`crate::metrics`]).
    metrics: ServiceMetrics,
    /// Structured-trace sink, present iff [`ServiceConfig::tracing`] — one
    /// ring shard per worker, so recording never crosses workers.
    tracer: Option<ShardedTraceRing>,
    /// Per-worker interruptible-backoff slots (indexed like `shards`):
    /// submissions landing on a shard cut its worker's retry backoff short.
    parks: Vec<RetryPark>,
    /// The fingerprint-keyed normalized-plan cache (see [`crate::cache`]);
    /// `None` when [`ServiceConfig::cache_capacity`] is zero.
    cache: Option<PlanCache>,
    /// Worker-engine configuration ([`ServiceConfig::engine`]).
    engine_config: EngineConfig,
}

/// A ticket for a queued request; [`Pending::wait`] blocks for the reply.
pub struct Pending {
    id: u64,
    rx: mpsc::Receiver<Response>,
}

impl Pending {
    /// The service-assigned request id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Block until the worker replies. A worker always replies — every
    /// admitted request terminates with a classified outcome.
    pub fn wait(self) -> Response {
        self.rx
            .recv()
            .expect("worker dropped reply channel without responding")
    }
}

/// The running service. Dropping it drains the queue and joins the
/// workers.
pub struct Service {
    shared: Arc<Shared>,
    workers: Vec<thread::JoinHandle<()>>,
    next_id: AtomicU64,
}

impl Service {
    /// Start a service over the paper catalog with `config`.
    pub fn start(config: ServiceConfig) -> Service {
        // Poison-rule panics are caught and attributed; keep their default
        // hook spam out of service logs (chains to the previous hook for
        // everything else).
        kola_rewrite::fault::silence_poison_panics();
        let catalog = Catalog::paper();
        let workers_n = config.workers.max(1);
        let capacity = config.queue_capacity.max(1);
        let rule_ids: Vec<String> = catalog.rules().iter().map(|r| r.id.clone()).collect();
        // Each tenant gets its own breaker (every catalog rule in a
        // lock-free slot, charges through the charging worker's own shard)
        // and its own scoped snapshot cell. A quota of 0 means the global
        // capacity is the only cap.
        let quota = if config.tenant_quota == 0 {
            usize::MAX
        } else {
            config.tenant_quota
        };
        let tenants = Tenants::new(
            &config.tenants,
            config.breaker_threshold,
            workers_n,
            &rule_ids,
            &catalog,
            quota,
        );
        let metrics = ServiceMetrics::with_tenants(&rule_ids, capacity, &tenants.names());
        let shared = Arc::new(Shared {
            catalog,
            props: PropDb::new(),
            tenants,
            verify_db: config.verify.then(|| generate(&DataSpec::small(123))),
            shards: (0..workers_n)
                .map(|_| Shard {
                    jobs: Mutex::new(VecDeque::new()),
                    cv: Condvar::new(),
                })
                .collect(),
            depth: AtomicUsize::new(0),
            next_shard: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            capacity,
            max_request_bytes: config.max_request_bytes,
            unexpected_panics: AtomicUsize::new(0),
            peak_arena: AtomicUsize::new(0),
            metrics,
            tracer: config
                .tracing
                .then(|| ShardedTraceRing::new(workers_n, config.trace_capacity)),
            parks: (0..workers_n).map(|_| RetryPark::new()).collect(),
            cache: (config.cache_capacity > 0)
                .then(|| PlanCache::new(config.cache_capacity, config.cache_shards)),
            engine_config: config.engine.clone(),
        });
        let workers = (0..workers_n)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("kola-svc-{i}"))
                    .stack_size(config.stack_size)
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn service worker")
            })
            .collect();
        Service {
            shared,
            workers,
            next_id: AtomicU64::new(0),
        }
    }

    /// Submit a request. `Err` carries the structured rejection (a full
    /// queue or an oversized/invalid-at-the-door payload); `Ok` is a ticket
    /// for the eventual reply. Never blocks: the admission decision is a
    /// lock-free reservation against the depth counter, and enqueue only
    /// touches one shard's (uncontended in steady state) lock.
    // The Err arm is the cold shed path; boxing it would tax every caller
    // for a variant built only under overload.
    #[allow(clippy::result_large_err)]
    pub fn submit(&self, request: Request) -> Result<Pending, Response> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let m = &self.shared.metrics;
        m.submitted.inc();
        // Resolve the tenant at the door. An unknown name is Invalid —
        // accepting it into some default namespace would let a typo'd
        // label consume (and trip) another tenant's state. The rejection
        // is accounted in the families' `other` catch-all lane.
        let Some(tenant) = self.shared.tenants.resolve(request.tenant.as_deref()) else {
            m.tenant_submitted.add_index(usize::MAX, 1);
            m.rejected_invalid.inc();
            m.tenant_rejected_invalid.add_index(usize::MAX, 1);
            let mut r = Response::rejected(
                id,
                Outcome::Invalid,
                format!(
                    "unknown tenant {:?}",
                    request.tenant.as_deref().unwrap_or_default()
                ),
            );
            if let Some(name) = &request.tenant {
                r.tenant = Arc::clone(name);
            }
            return Err(r);
        };
        m.tenant_submitted.add_index(tenant, 1);
        let ten = self.shared.tenants.get(tenant);
        if let Payload::Text(src) = &request.payload {
            if src.len() > self.shared.max_request_bytes {
                m.rejected_invalid.inc();
                m.tenant_rejected_invalid.add_index(tenant, 1);
                let mut r = Response::rejected(
                    id,
                    Outcome::Invalid,
                    format!(
                        "request too large: {} bytes (limit {})",
                        src.len(),
                        self.shared.max_request_bytes
                    ),
                );
                r.tenant = Arc::clone(&ten.name);
                return Err(r);
            }
        }
        let submitted = Instant::now();
        let deadline = request.options.timeout.map(|t| submitted + t);
        let (tx, rx) = mpsc::channel();
        // Plan-cache consult, BEFORE admission: a hit is answered right
        // here on the submitting thread — no queue slot, no worker, no
        // engine. An identical in-flight miss parks this sender on the
        // leader. Both paths re-validate the tenant's breaker generation
        // so no stale-generation plan is ever served (see `crate::cache`).
        // Keys are tenant-salted: this tenant can only ever see its own
        // lines and flights.
        let key = self
            .shared
            .cache
            .as_ref()
            .and_then(|_| PlanCache::key_of(&request, tenant));
        if let (Some(cache), Some(k)) = (self.shared.cache.as_ref(), &key) {
            let gen = ten.breaker.generation();
            match cache.probe(k, gen, id, &request, submitted, deadline, &tx, m) {
                Probe::Hit(value) => {
                    if ten.breaker.generation() == gen {
                        return Ok(self.serve_hit(id, tenant, submitted, &value, &tx, rx));
                    }
                    // The rule set moved between the generation read and
                    // the lookup: fall through to the worker path rather
                    // than risk a stale plan.
                }
                Probe::Coalesced => {
                    // No hit accounting yet: a park only becomes a hit
                    // when its leader delivers (PlanCache::complete); a
                    // failed leader requeues this request instead.
                    return Ok(Pending { id, rx });
                }
                Probe::Miss => {}
            }
        }
        // Per-tenant quota first: a tenant at its cap is shed while other
        // tenants keep admitting — the noisy-neighbor backpressure wall.
        let mut ten_depth = ten.depth.load(Ordering::Relaxed);
        loop {
            if ten_depth >= ten.quota {
                m.overloaded.inc();
                m.tenant_overloaded.add_index(tenant, 1);
                let mut r = Response::rejected(
                    id,
                    Outcome::Overloaded,
                    format!("tenant {:?} at quota ({} requests)", &*ten.name, ten.quota),
                );
                r.tenant = Arc::clone(&ten.name);
                return Err(r);
            }
            match ten.depth.compare_exchange_weak(
                ten_depth,
                ten_depth + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(current) => ten_depth = current,
            }
        }
        // Then the global backpressure wall. Reserve a queue slot
        // optimistically; losing a race just retries the compare-exchange
        // against the fresher value.
        let mut depth = self.shared.depth.load(Ordering::Relaxed);
        loop {
            if depth >= self.shared.capacity {
                ten.depth.fetch_sub(1, Ordering::AcqRel);
                m.overloaded.inc();
                m.tenant_overloaded.add_index(tenant, 1);
                let mut r = Response::rejected(
                    id,
                    Outcome::Overloaded,
                    format!("work queue full ({} requests)", self.shared.capacity),
                );
                r.tenant = Arc::clone(&ten.name);
                return Err(r);
            }
            match self.shared.depth.compare_exchange_weak(
                depth,
                depth + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(current) => depth = current,
            }
        }
        // Re-decide under the shard lock now that a slot is held: an
        // identical leader may have completed (serve the fresh entry and
        // release the slots) or registered (park as a waiter and release
        // the slots) between the probe and here; otherwise this request
        // either becomes the flight leader or proceeds solo.
        let mut ticket = None;
        if let (Some(cache), Some(k)) = (self.shared.cache.as_ref(), key) {
            let gen = ten.breaker.generation();
            match cache.claim(k, gen, id, &request, submitted, deadline, &tx, m) {
                Claim::Hit(value) => {
                    if ten.breaker.generation() == gen {
                        self.shared.depth.fetch_sub(1, Ordering::AcqRel);
                        ten.depth.fetch_sub(1, Ordering::AcqRel);
                        return Ok(self.serve_hit(id, tenant, submitted, &value, &tx, rx));
                    }
                }
                Claim::Coalesced => {
                    self.shared.depth.fetch_sub(1, Ordering::AcqRel);
                    ten.depth.fetch_sub(1, Ordering::AcqRel);
                    return Ok(Pending { id, rx });
                }
                Claim::Lead(k) => ticket = Some(k),
                Claim::Solo => {}
            }
        }
        m.queue_depth.record(depth as u64 + 1);
        let job = Job {
            id,
            request,
            submitted,
            deadline,
            reply: tx,
            cache: ticket,
            tenant,
        };
        push_job(&self.shared, job);
        Ok(Pending { id, rx })
    }

    /// Submit and wait: the synchronous client surface. An overloaded or
    /// rejected submission comes back as the rejection response itself, so
    /// every call yields exactly one classified [`Response`].
    pub fn call(&self, request: Request) -> Response {
        match self.submit(request) {
            Ok(pending) => pending.wait(),
            Err(rejection) => rejection,
        }
    }

    /// Answer a cache hit on the submitting thread: clone handles, stamp
    /// the id and latency, send, and hand back the ticket. The plan itself
    /// is never copied — the response shares the cached `Arc`.
    fn serve_hit(
        &self,
        id: u64,
        tenant: usize,
        submitted: Instant,
        value: &CachedPlan,
        tx: &mpsc::Sender<Response>,
        rx: mpsc::Receiver<Response>,
    ) -> Pending {
        let m = &self.shared.metrics;
        m.cache_hits.inc();
        m.cache_served.add_index(value.served_index(), 1);
        m.tenant_cache_hits.add_index(tenant, 1);
        let mut response = value.response(id, Arc::clone(&self.shared.tenants.get(tenant).name));
        response.latency = submitted.elapsed();
        m.cache_hit_latency_us
            .record(response.latency.as_micros() as u64);
        let _ = tx.send(response);
        Pending { id, rx }
    }

    /// The first tenant's cross-request circuit breaker (observe trips,
    /// reset rules) — *the* breaker on a single-tenant service.
    pub fn breaker(&self) -> &Breaker {
        &self.shared.tenants.get(0).breaker
    }

    /// Tenant `name`'s circuit breaker, if the service serves that tenant.
    /// Trips and operator resets through it are scoped to that tenant.
    pub fn tenant_breaker(&self, name: &str) -> Option<&Breaker> {
        self.shared.tenants.by_name(name).map(|t| &t.breaker)
    }

    /// The tenant table (names, quotas, queue depths).
    pub fn tenants(&self) -> &Tenants {
        &self.shared.tenants
    }

    /// Panics that reached the worker boundary (i.e. were *not* classified
    /// by the ladder's poison-rule isolation). The chaos soak asserts this
    /// stays zero.
    pub fn unexpected_panics(&self) -> usize {
        self.shared.unexpected_panics.load(Ordering::Relaxed)
    }

    /// High-water mark of any worker engine's intern arena (live nodes),
    /// sampled after each request. Bounded by the engine's compaction cap
    /// plus one request's growth; the chaos soak asserts exactly that.
    pub fn peak_arena_nodes(&self) -> usize {
        self.shared.peak_arena.load(Ordering::Relaxed)
    }

    /// Plain-data snapshot of every metric instrument, with the breaker and
    /// trace-ring odometers appended (`breaker_opened`, `breaker_reset`,
    /// `traces_recorded`, `traces_dropped`) so one snapshot tells the whole
    /// story. See [`crate::metrics`] for the conservation invariants the
    /// counters obey.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut s = self.shared.metrics.snapshot();
        // Aggregate breaker odometers sum the tenants; each tenant also
        // gets its own `breaker_opened/<name>` / `breaker_reset/<name>`
        // pair (names are user-supplied — `to_json` escapes them).
        let mut opened = 0;
        let mut reset = 0;
        for t in self.shared.tenants.iter() {
            opened += t.breaker.opened_total();
            reset += t.breaker.reset_total();
            s.counters.push((
                format!("breaker_opened/{}", t.name),
                t.breaker.opened_total(),
            ));
            s.counters
                .push((format!("breaker_reset/{}", t.name), t.breaker.reset_total()));
        }
        s.counters.push(("breaker_opened".to_string(), opened));
        s.counters.push(("breaker_reset".to_string(), reset));
        let (recorded, dropped) = self
            .shared
            .tracer
            .as_ref()
            .map_or((0, 0), |t| (t.recorded(), t.dropped()));
        s.counters.push(("traces_recorded".to_string(), recorded));
        s.counters.push(("traces_dropped".to_string(), dropped));
        s
    }

    /// The traces currently held by the ring (oldest first). Empty when the
    /// service was started without [`ServiceConfig::tracing`].
    pub fn traces(&self) -> Vec<RewriteTrace> {
        self.shared
            .tracer
            .as_ref()
            .map_or_else(Vec::new, |t| t.snapshot())
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for shard in &self.shared.shards {
            // Acquiring the shard lock pairs with the wait-side re-check,
            // so no worker can sleep through the shutdown flag.
            drop(shard.jobs.lock().unwrap());
            shard.cv.notify_all();
        }
        for park in &self.shared.parks {
            // A worker mid-backoff finishes its request promptly instead of
            // waiting out the full pause before seeing the shutdown flag.
            park.interrupt();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Enqueue `job` on the next round-robin shard and wake its worker.
fn push_job(shared: &Shared, job: Job) {
    let cursor = shared.next_shard.fetch_add(1, Ordering::Relaxed);
    let target = cursor % shared.shards.len();
    let shard = &shared.shards[target];
    shard.jobs.lock().unwrap().push_back(job);
    shard.cv.notify_one();
    // If the shard's worker is mid-backoff on a degraded request, cut
    // the wait short: it retries immediately and gets back to the queue.
    shared.parks[target].interrupt();
}

/// Requeue the waiters of a failed flight leader as fresh solo jobs.
///
/// Each waiter was parked expecting the leader's one engine pass to stand
/// in for its own; the leader failed (or degraded, panicked, or raced a
/// generation bump), so that pass no longer represents what the waiter's
/// own run would produce — and the waiter must not hang until its deadline
/// either. It re-enters the queue with **no cache key**: no re-probe and
/// no second park, so one failed leader costs its waiters exactly one
/// extra queue round-trip, never a loop. The depth bumps here deliberately
/// bypass the admission walls — these requests were already admitted once
/// and shed-on-requeue would break the "every submission gets exactly one
/// classified reply" contract; the transient overshoot is bounded by the
/// waiter count of one flight. Conservation stays balanced: each requeued
/// waiter's `submitted` is answered by the `admitted` it counts at
/// dequeue.
fn requeue_waiters(shared: &Shared, waiters: Vec<Waiter>) {
    for w in waiters {
        shared.depth.fetch_add(1, Ordering::AcqRel);
        shared
            .tenants
            .get(w.tenant)
            .depth
            .fetch_add(1, Ordering::AcqRel);
        push_job(
            shared,
            Job {
                id: w.id,
                request: w.request,
                submitted: w.submitted,
                deadline: w.deadline,
                reply: w.tx,
                cache: None,
                tenant: w.tenant,
            },
        );
    }
}

/// One tenant's lane of a worker's persistent state: the cached rule-set
/// snapshot and the reference rung's resolved rule cache, both scoped to
/// that tenant's epochs (the fast engine is shared across lanes — its
/// memo is partitioned by the snapshot's scoped `engine_epoch`).
struct TenantLane<'a> {
    snapshot: Arc<RuleSnapshot>,
    reference: ReferenceRung<'a>,
}

/// Per-worker persistent state: the engine whose arena/marks/memo survive
/// across requests, plus one [`TenantLane`] per served tenant.
struct WorkerState<'a> {
    engine: Engine<'a>,
    lanes: Vec<TenantLane<'a>>,
    /// Engine odometer readings at the last flush; per-request deltas are
    /// pushed into the service counters so one worker's engine stats never
    /// double-count.
    last: EngineStats,
    /// Per-rule consult odometer readings at the last flush (engine rule
    /// positions, i.e. catalog order).
    last_consults: Vec<u64>,
}

/// Delta-flush the worker engine's odometers into the service counters.
fn flush_engine_stats(shared: &Shared, state: &mut WorkerState<'_>) {
    let m = &shared.metrics;
    let now = state.engine.stats();
    let last = &state.last;
    m.engine_visits.add(now.visits - last.visits);
    m.engine_constructed.add(now.constructed - last.constructed);
    m.engine_memo_hits.add(now.memo_hits - last.memo_hits);
    m.engine_memo_lookups
        .add(now.memo_lookups - last.memo_lookups);
    m.engine_compactions.add(now.compactions - last.compactions);
    m.arena_peak.record(now.arena_peak as u64);
    if let Some(ix) = state.engine.index_stats() {
        m.index_tree_nodes.record(ix.tree_nodes as u64);
        m.index_tree_max_depth.record(ix.tree_max_depth as u64);
        m.index_tree_edges.record(ix.tree_edges as u64);
        m.index_tree_wildcard_edges
            .record(ix.tree_wildcard_edges as u64);
        m.index_tree_mean_fanout_milli
            .record(ix.tree_mean_fanout_milli as u64);
    }
    state.last = now;
    for (i, &c) in state.engine.consults().iter().enumerate() {
        // `add_index` is the allocation-free positional lane: family labels
        // were registered in catalog order, matching engine rule positions.
        m.rules_attempted.add_index(i, c - state.last_consults[i]);
        state.last_consults[i] = c;
    }
}

fn worker_loop(shared: &Shared, index: usize) {
    // The long-lived engine is built over the FULL forward catalog, in
    // catalog order; per-request snapshots mask open-breaker rules out of
    // its candidate scan (see `RuleSnapshot`), so a breaker trip swaps an
    // epoch instead of forcing a rebuild.
    let rules: Vec<Oriented<'_>> = shared.catalog.rules().iter().map(Oriented::fwd).collect();
    let rule_count = rules.len();
    let mut state = WorkerState {
        engine: Engine::new(rules, &shared.props, shared.engine_config.clone()),
        lanes: shared
            .tenants
            .iter()
            .map(|t| TenantLane {
                snapshot: t.snapshots.load(),
                reference: ReferenceRung::new(),
            })
            .collect(),
        last: EngineStats::default(),
        last_consults: vec![0; rule_count],
    };
    // Bind this thread to its backoff slot so submissions can interrupt an
    // in-progress retry wait.
    shared.parks[index].register();
    while let Some(mut job) = next_job(shared, index) {
        let id = job.id;
        let tenant = job.tenant;
        let submitted = job.submitted;
        let reply = job.reply.clone();
        // Take the single-flight ticket out before the panic boundary so a
        // handler panic still retires the flight (waiters must never hang
        // — they are requeued below).
        let ticket = job.cache.take();
        let busy = Instant::now();
        let engine = &mut state.engine;
        let lane = &mut state.lanes[tenant];
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            handle(shared, job, engine, lane, index)
        }));
        let response = outcome.unwrap_or_else(|_| {
            // Nothing should reach this boundary — the ladder catches
            // poison-rule panics itself. Count it, answer anyway.
            shared.unexpected_panics.fetch_add(1, Ordering::Relaxed);
            shared.metrics.panicked.inc();
            shared.metrics.tenant_panicked.add_index(tenant, 1);
            let mut r = Response::rejected(
                id,
                Outcome::Invalid,
                "internal: request handler panicked".to_string(),
            );
            r.tenant = Arc::clone(&shared.tenants.get(tenant).name);
            r.latency = submitted.elapsed();
            r
        });
        if let (Some(cache), Some(key)) = (shared.cache.as_ref(), &ticket) {
            // Retire the flight this job led: insert the response and
            // answer every coalesced waiter if it is cacheable and the
            // tenant's rule set did not move while it was being computed
            // (`lane.snapshot.epoch` is the generation the ladder ran
            // under); otherwise the waiters come back for requeue as
            // fresh jobs — they are never answered with a failed leader's
            // reply and never left parked.
            let unserved = cache.complete(
                key,
                &response,
                state.lanes[tenant].snapshot.epoch,
                shared.tenants.get(tenant).breaker.generation(),
                &shared.metrics,
            );
            requeue_waiters(shared, unserved);
        }
        flush_engine_stats(shared, &mut state);
        shared
            .metrics
            .worker_busy_us
            .add(busy.elapsed().as_micros() as u64);
        let latency_us = response.latency.as_micros() as u64;
        shared.metrics.latency_us.record(latency_us);
        shared.metrics.tenant_latency_us[tenant].record(latency_us);
        // The client may have given up waiting; a dead receiver is fine.
        let _ = reply.send(response);
    }
}

/// Claim the next job for worker `index`: home shard first, then steal
/// from siblings, then park briefly on the home condvar. Returns `None`
/// only at shutdown with every shard drained.
fn next_job(shared: &Shared, index: usize) -> Option<Job> {
    let shards = &shared.shards;
    loop {
        if let Some(job) = shards[index].jobs.lock().unwrap().pop_front() {
            shared.depth.fetch_sub(1, Ordering::AcqRel);
            admit(shared, &job);
            return Some(job);
        }
        // Steal scan. `try_lock`: a contended shard is being served by its
        // own worker right now, so skipping it loses nothing.
        for k in 1..shards.len() {
            let other = &shards[(index + k) % shards.len()];
            if let Ok(mut jobs) = other.jobs.try_lock() {
                if let Some(job) = jobs.pop_front() {
                    drop(jobs);
                    shared.depth.fetch_sub(1, Ordering::AcqRel);
                    admit(shared, &job);
                    return Some(job);
                }
            }
        }
        if shared.shutdown.load(Ordering::Acquire) && shared.depth.load(Ordering::Acquire) == 0 {
            return None;
        }
        let jobs = shards[index].jobs.lock().unwrap();
        if jobs.is_empty() && !shared.shutdown.load(Ordering::Acquire) {
            // Timed wait, not indefinite: a job stolen *to* nobody — pushed
            // to a busy sibling's shard — must still be found promptly.
            let _ = shards[index].cv.wait_timeout(jobs, STEAL_POLL).unwrap();
        }
    }
}

/// Account a dequeued job: it is now *admitted* (owned by a worker, certain
/// to terminate in exactly one completion counter), its tenant's quota
/// slot is released, and whatever deadline budget the queue wait left is
/// sampled here.
fn admit(shared: &Shared, job: &Job) {
    shared
        .tenants
        .get(job.tenant)
        .depth
        .fetch_sub(1, Ordering::AcqRel);
    shared.metrics.admitted.inc();
    shared.metrics.tenant_admitted.add_index(job.tenant, 1);
    if let Some(deadline) = job.deadline {
        let remaining = deadline.saturating_duration_since(Instant::now());
        shared
            .metrics
            .deadline_remaining_us
            .record(remaining.as_micros() as u64);
    }
}

fn handle<'a>(
    shared: &'a Shared,
    job: Job,
    engine: &mut Engine<'a>,
    lane: &mut TenantLane<'a>,
    index: usize,
) -> Response {
    let Job {
        id,
        request,
        submitted,
        deadline,
        tenant,
        ..
    } = job;
    let ten = shared.tenants.get(tenant);
    if let Some(hold) = request.options.hold_for {
        thread::sleep(hold);
    }
    let input: Arc<Query> = match &request.payload {
        Payload::Text(src) => match kola_frontend::parse_any_query(src) {
            Ok(q) => Arc::new(q),
            Err(e) => {
                shared.metrics.completed_invalid.inc();
                shared.metrics.tenant_completed_invalid.add_index(tenant, 1);
                let mut r = Response::rejected(id, Outcome::Invalid, e);
                r.tenant = Arc::clone(&ten.name);
                r.latency = submitted.elapsed();
                return r;
            }
        },
        // By-Arc payloads are borrowed, never deep-cloned.
        Payload::Ast(q) => Arc::clone(q),
    };

    // One atomic load in steady state; an epoch swap when *this tenant's*
    // breaker tripped or reset since this worker last served it.
    ten.snapshots
        .refresh(&mut lane.snapshot, &shared.catalog, &ten.breaker);

    let ladder = Ladder {
        catalog: &shared.catalog,
        props: &shared.props,
        // The request's own tenant's breaker: poison charges, trips, and
        // the resulting rule masks never cross namespaces.
        breaker: &ten.breaker,
        metrics: Some(&shared.metrics),
        // Each worker records into its own trace shard and charges its own
        // breaker shard — no cross-worker contention on the failure path.
        tracer: shared.tracer.as_ref().map(|t| t.shard(index)),
        shard: index,
        park: Some(&shared.parks[index]),
        tenant: Some(&ten.name),
    };
    let mut result = ladder.run_with(
        id,
        &input,
        &request.options,
        deadline,
        engine,
        &lane.snapshot,
        &mut lane.reference,
    );
    let m = &shared.metrics;
    m.retries.add(result.retries as u64);
    m.caught_panics.add(result.panics.len() as u64);
    if let Some(report) = &result.report {
        for (rule_id, rs) in &report.rule_stats {
            m.rules_fired.add(rule_id, rs.fired as u64);
        }
    }

    // Semantic gate: an optimized plan that disagrees with its input on
    // the sample database is worse than no optimization — degrade it.
    let mut gate_error = None;
    if let (Some(db), Outcome::Optimized { .. }) = (&shared.verify_db, &result.outcome) {
        if let Err(e) = kola_verify::check_plan_semantics(db, &input, &result.plan) {
            gate_error = Some(format!("semantic gate: {e}"));
            m.gate_degradations.inc();
            result.outcome = Outcome::Passthrough;
            result.plan = Arc::clone(&input);
            result.report = None;
            result.quarantine = QuarantineReport::default();
        }
    }
    match &result.outcome {
        Outcome::Optimized { rung: Rung::Fast } => {
            m.optimized_fast.inc();
            m.tenant_optimized_fast.add_index(tenant, 1);
        }
        Outcome::Optimized {
            rung: Rung::Reference,
        } => {
            m.optimized_reference.inc();
            m.tenant_optimized_reference.add_index(tenant, 1);
        }
        Outcome::Passthrough => {
            m.passthrough.inc();
            m.tenant_passthrough.add_index(tenant, 1);
        }
        // The ladder never yields these; keep the books honest if it ever
        // does.
        Outcome::Invalid => {
            m.completed_invalid.inc();
            m.tenant_completed_invalid.add_index(tenant, 1);
        }
        Outcome::Overloaded => {
            m.passthrough.inc();
            m.tenant_passthrough.add_index(tenant, 1);
        }
    }

    shared
        .peak_arena
        .fetch_max(engine.arena_len(), Ordering::Relaxed);

    let error = match (gate_error, result.failures.is_empty()) {
        (Some(g), true) => Some(g),
        (Some(g), false) => Some(format!("{g}; {}", result.failures.join("; "))),
        (None, false) => Some(result.failures.join("; ")),
        (None, true) => None,
    };
    Response {
        id,
        tenant: Arc::clone(&ten.name),
        outcome: result.outcome,
        plan: Some(result.plan),
        report: result.report,
        quarantine: result.quarantine,
        panics: result.panics,
        retries: result.retries,
        error,
        latency: submitted.elapsed(),
    }
}
